#!/usr/bin/env python
"""A tour of the intranode shared-memory mechanisms of §II.

Runs the same intranode message pattern over each mechanism model —
POSIX-SHMEM (double copy), CMA/KNEM/LiMiC (kernel copy + syscall),
XPMEM (attach cache), PiP (zero syscall + size-sync handshake) — and
prints per-size costs, reproducing the paper's §II trade-off table:

* POSIX wins tiny messages (no syscalls, fire-and-forget) but pays the
  double copy for large ones;
* kernel-copy mechanisms pay a syscall per transfer and cold page faults;
* XPMEM amortises its attach across reuses;
* PiP pays only its size-sync handshake — and the *first* iteration is as
  fast as the rest, since there is nothing to warm up.

Run:  python examples/shmem_mechanism_tour.py
"""

import numpy as np

import repro
from repro.hw import Topology, bebop_broadwell
from repro.mpi import BYTE, Buffer, World
from repro.shmem import KernelCopy, PipShmem, PosixShmem, Xpmem

SIZES = [64, 4 * 1024, 64 * 1024, 1024 * 1024]
MECHANISMS = [
    ("POSIX-SHMEM", PosixShmem),
    ("CMA/kernel", KernelCopy),
    ("XPMEM", Xpmem),
    ("PiP", PipShmem),
]


def ping(mechanism_factory, nbytes, iterations=3):
    """One-way intranode transfer; returns (cold time, warm time)."""
    world = World(
        Topology(1, 2), bebop_broadwell(), mechanism=mechanism_factory()
    )
    payload = Buffer.real(np.full(nbytes, 7, dtype=np.uint8))
    sink = Buffer.alloc(BYTE, nbytes)
    times = []

    def body(ctx):
        for i in range(iterations):
            t0 = world.engine.now
            if ctx.rank == 0:
                yield from ctx.send(1, payload, tag=i)
            else:
                yield from ctx.recv(0, sink, tag=i)
                times.append(world.engine.now - t0)

    world.run(body)
    assert np.all(sink.array() == 7), "data corrupted"
    return times[0], times[-1]


def main() -> None:
    print("Intranode one-way transfer cost by mechanism "
          "(cold first use -> warm steady state)\n")
    header = f"{'size':>8} |" + "".join(f" {name:>22} |" for name, _ in MECHANISMS)
    print(header)
    print("-" * len(header))
    for nbytes in SIZES:
        cells = []
        for _name, factory in MECHANISMS:
            cold, warm = ping(factory, nbytes)
            cells.append(f"{cold * 1e6:8.2f} -> {warm * 1e6:8.2f}us")
        print(f"{repro.Buffer.phantom(nbytes).nbytes:>8} |"
              + "".join(f" {c:>22} |" for c in cells))
    print(
        "\ncold > warm for CMA/XPMEM (page faults, attach syscalls).  POSIX"
        "\nalso drops after the first message — not warmth, pipelining: its"
        "\neager double copy overlaps the sender's next copy-in with the"
        "\nreceiver's copy-out.  PiP is flat: nothing to warm, no second copy"
        "\nto hide, and only its size-sync handshake on top of one memcpy."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: run one PiP-MColl allreduce on a simulated cluster.

Builds a 4-node x 3-process cluster with the paper's Broadwell/Omni-Path
machine parameters, runs MPI_Allreduce through PiP-MColl with *real* data
(so the result is checkable against numpy), and prints the simulated
completion time next to the PiP-MPICH baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def run_allreduce(library_name: str, inputs: list[np.ndarray]) -> tuple[float, np.ndarray]:
    """Run one allreduce through ``library_name``; return (time, result)."""
    lib = repro.make_library(library_name)
    world = lib.make_world(repro.Topology(4, 3), repro.bebop_broadwell())

    sends = [repro.Buffer.real(x.copy()) for x in inputs]
    recvs = [repro.Buffer.alloc(repro.DOUBLE, inputs[0].size) for _ in inputs]

    def body(ctx):
        yield from lib.allreduce(ctx, sends[ctx.rank], recvs[ctx.rank], repro.SUM)

    result = world.run(body)
    return result.elapsed, recvs[0].array()


def main() -> None:
    rng = np.random.default_rng(42)
    world_size = 4 * 3
    count = 256
    inputs = [rng.random(count) for _ in range(world_size)]
    expected = np.sum(inputs, axis=0)

    print(f"MPI_Allreduce, {world_size} ranks (4 nodes x 3 ppn), "
          f"{count} doubles per rank\n")
    for name in ("PiP-MColl", "PiP-MPICH", "IntelMPI"):
        elapsed, result = run_allreduce(name, inputs)
        ok = np.allclose(result, expected)
        print(f"  {name:12s}  {elapsed * 1e6:8.2f} us   "
              f"result {'correct' if ok else 'WRONG'}")
        assert ok, f"{name} produced a wrong reduction"

    print("\nEvery rank of every library received the exact numpy ground "
          "truth - the simulator moves real data.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Distributed FFT-style allgather workload (§I cites multi-GPU FFT as a
major MPI_Allgather consumer).

A 1-D FFT distributed over ranks needs every rank to assemble the full
signal between butterfly stages; the classic implementation allgathers the
local shards.  We run the assembly step with real data, verify the
gathered signal (and its numpy FFT) is identical everywhere, and compare
PiP-MColl's small- and large-message allgather algorithms against the
baselines on both sides of the 64 kB switch.

Run:  python examples/parallel_fft_transpose.py
"""

import numpy as np

import repro

NODES, PPN = 8, 6


def assemble(library_name: str, shard_doubles: int):
    lib = repro.make_library(library_name)
    world = lib.make_world(repro.Topology(NODES, PPN), repro.bebop_broadwell())
    size = world.world_size

    rng = np.random.default_rng(11)
    signal = rng.random(size * shard_doubles)
    shards = [
        repro.Buffer.real(signal[r * shard_doubles:(r + 1) * shard_doubles].copy())
        for r in range(size)
    ]
    gathered = [repro.Buffer.alloc(repro.DOUBLE, size * shard_doubles)
                for _ in range(size)]

    def body(ctx):
        yield from lib.allgather(ctx, shards[ctx.rank], gathered[ctx.rank])

    elapsed = world.run(body).elapsed

    # every rank must hold the full signal, bit-identical
    for g in gathered:
        assert np.array_equal(g.array(), signal)
    # and the FFT computed anywhere agrees with the FFT of the original
    assert np.allclose(np.fft.rfft(gathered[0].array()),
                       np.fft.rfft(signal))
    return elapsed


def main() -> None:
    size = NODES * PPN
    print(f"FFT shard assembly (allgather) on {NODES}x{PPN} = {size} ranks\n")
    for label, shard in (("small shards: 64 doubles (512 B)", 64),
                         ("large shards: 16k doubles (128 kB)", 16384)):
        print(f"  {label}")
        for name in ("PiP-MColl", "PiP-MColl-small", "PiP-MPICH", "IntelMPI"):
            elapsed = assemble(name, shard)
            print(f"    {name:16s} {elapsed * 1e6:9.2f} us")
        print()
    print("PiP-MColl-small shows why the ring algorithm exists: forcing the "
          "Bruck algorithm onto 128 kB shards wastes bandwidth (Fig. 13).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Trace the overlap behaviour of PiP-MColl's large-message allgather.

Attaches an execution tracer, runs the multi-object ring allgather with
and without the overlapped intranode broadcast, prints the per-kind time
breakdown, and writes Chrome-trace JSON files you can open at
``chrome://tracing`` or https://ui.perfetto.dev to *see* the copies slide
under the in-flight ring transfers.

Run:  python examples/trace_overlap_visualizer.py
"""

import numpy as np

import repro
from repro.core import mcoll_allgather_large
from repro.hw import Topology, bebop_broadwell
from repro.mpi import DOUBLE, Buffer, World
from repro.shmem import PipShmem
from repro.sim import Tracer

NODES, PPN = 4, 4
COUNT = 32 * 1024  # 256 kB per rank


def run(overlap: bool) -> tuple[float, Tracer]:
    tracer = Tracer()
    world = World(
        Topology(NODES, PPN), bebop_broadwell(), mechanism=PipShmem(),
        tracer=tracer,
    )
    size = world.world_size
    rng = np.random.default_rng(0)
    inputs = [Buffer.real(rng.random(COUNT)) for _ in range(size)]
    outputs = [Buffer.alloc(DOUBLE, size * COUNT) for _ in range(size)]

    def body(ctx):
        yield from mcoll_allgather_large(
            ctx, inputs[ctx.rank], outputs[ctx.rank], overlap=overlap
        )

    elapsed = world.run(body).elapsed
    expected = np.concatenate([b.array() for b in inputs])
    assert np.array_equal(outputs[0].array(), expected)
    return elapsed, tracer


def main() -> None:
    print(f"Multi-object ring allgather, {NODES}x{PPN} ranks, "
          f"{COUNT * 8 // 1024} kB per rank\n")
    for overlap in (True, False):
        elapsed, tracer = run(overlap)
        label = "overlap ON " if overlap else "overlap OFF"
        print(f"== {label}: {elapsed * 1e3:.3f} ms total ==")
        busy = tracer.busy_time()
        for kind in sorted(busy):
            print(f"   {kind:12s} {busy[kind] * 1e3:9.3f} ms summed over ranks")
        path = f"trace_allgather_overlap_{'on' if overlap else 'off'}.json"
        tracer.dump_chrome_trace(path)
        print(f"   chrome trace written to {path}\n")
    print("With overlap ON the copy spans sit inside the wait-recv spans "
          "(open the traces to compare).")


if __name__ == "__main__":
    main()

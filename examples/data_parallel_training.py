#!/usr/bin/env python
"""Data-parallel SGD gradient synchronisation — the paper's motivating
deep-learning workload (§I cites S-Caffe/TensorFlow-style training).

Each simulated rank computes a local "gradient" (a deterministic function
of its shard), then the cluster allreduces it every step.  We run the same
training loop over PiP-MColl and the baselines and report simulated time
per step for a small (dense layer) and a large (conv backbone) gradient,
crossing PiP-MColl's 8 k-double algorithm switch.

Run:  python examples/data_parallel_training.py
"""

import numpy as np

import repro

NODES, PPN = 8, 6
STEPS = 3


def train(library_name: str, grad_count: int) -> tuple[float, np.ndarray]:
    """Simulate STEPS of synchronous SGD; return (time/step, final params)."""
    lib = repro.make_library(library_name)
    world = lib.make_world(repro.Topology(NODES, PPN), repro.bebop_broadwell())
    size = world.world_size

    rng = np.random.default_rng(7)
    base_grads = [rng.random(grad_count) for _ in range(size)]
    params = [np.zeros(grad_count) for _ in range(size)]
    lr = 0.01

    sends = [repro.Buffer.real(np.zeros(grad_count)) for _ in range(size)]
    recvs = [repro.Buffer.real(np.zeros(grad_count)) for _ in range(size)]

    def body(ctx):
        for step in range(STEPS):
            # "compute" the local gradient (deterministic, rank-dependent)
            local = base_grads[ctx.rank] * (step + 1)
            sends[ctx.rank].array()[:] = local
            # charge some compute time so communication/computation overlap
            # behaviour is realistic
            yield from ctx.compute(5e-6)
            yield from lib.allreduce(ctx, sends[ctx.rank], recvs[ctx.rank],
                                     repro.SUM)
            params[ctx.rank] -= lr * recvs[ctx.rank].array() / size

    result = world.run(body)
    return result.elapsed / STEPS, params[0]


def main() -> None:
    print(f"Synchronous data-parallel SGD on {NODES}x{PPN} = {NODES * PPN} "
          f"ranks, {STEPS} steps\n")
    for label, count in (("dense head:    1k doubles (8 kB)", 1024),
                         ("conv backbone: 64k doubles (512 kB)", 65536)):
        print(f"  gradient = {label}")
        reference = None
        for name in ("PiP-MColl", "PiP-MPICH", "IntelMPI", "OpenMPI"):
            per_step, params = train(name, count)
            if reference is None:
                reference = params
            else:
                assert np.allclose(params, reference), (
                    f"{name} diverged from the reference parameters"
                )
            print(f"    {name:12s} {per_step * 1e6:9.2f} us/step")
        print()
    print("All libraries converge to identical parameters; only the "
          "simulated time differs.")


if __name__ == "__main__":
    main()

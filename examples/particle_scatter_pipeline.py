#!/usr/bin/env python
"""Particle-distribution pipeline built on MPI_Scatter (§I cites Pelegant,
a parallel accelerator-tracking code whose rank 0 distributes particle
bunches every pipeline stage).

Rank 0 owns the particle table; each stage it scatters one attribute array
(positions, then momenta, then charges) to all ranks, which apply a local
kick and report a checksum reduction back.  Exercises scatter + allreduce
together, with real data verified end-to-end, and shows the multi-object
scatter's advantage growing with the process count.

Run:  python examples/particle_scatter_pipeline.py
"""

import numpy as np

import repro

PARTICLES_PER_RANK = 128
ATTRIBUTES = ("positions", "momenta", "charges")


def run_pipeline(library_name: str, nodes: int, ppn: int):
    lib = repro.make_library(library_name)
    world = lib.make_world(repro.Topology(nodes, ppn), repro.bebop_broadwell())
    size = world.world_size

    rng = np.random.default_rng(3)
    tables = {a: rng.random(size * PARTICLES_PER_RANK) for a in ATTRIBUTES}

    full = {a: repro.Buffer.real(tables[a].copy()) for a in ATTRIBUTES}
    shard = [
        {a: repro.Buffer.alloc(repro.DOUBLE, PARTICLES_PER_RANK)
         for a in ATTRIBUTES}
        for _ in range(size)
    ]
    local_sum = [repro.Buffer.alloc(repro.DOUBLE, 1) for _ in range(size)]
    global_sum = [repro.Buffer.alloc(repro.DOUBLE, 1) for _ in range(size)]
    checks = []

    def body(ctx):
        for a in ATTRIBUTES:
            sb = full[a] if ctx.rank == 0 else None
            yield from lib.scatter(ctx, sb, shard[ctx.rank][a], root=0)
            # local physics kick + checksum
            kicked = shard[ctx.rank][a].array() * 1.5
            local_sum[ctx.rank].array()[0] = kicked.sum()
            yield from ctx.compute(2e-6)
            yield from lib.allreduce(
                ctx, local_sum[ctx.rank], global_sum[ctx.rank], repro.SUM
            )
            if ctx.rank == 0:
                checks.append((a, global_sum[0].array()[0]))

    elapsed = world.run(body).elapsed

    for a, measured in checks:
        expected = tables[a].sum() * 1.5
        assert np.isclose(measured, expected), (a, measured, expected)
    return elapsed


def main() -> None:
    print("Particle scatter pipeline (3 attributes -> kick -> checksum)\n")
    for nodes, ppn in ((4, 4), (8, 8), (16, 12)):
        print(f"  cluster {nodes}x{ppn} = {nodes * ppn} ranks")
        for name in ("PiP-MColl", "PiP-MPICH", "MVAPICH2"):
            elapsed = run_pipeline(name, nodes, ppn)
            print(f"    {name:12s} {elapsed * 1e6:9.2f} us total")
        print()
    print("The multi-object scatter's edge grows with processes per node: "
          "every local process is an internode sender (Fig. 2).")


if __name__ == "__main__":
    main()

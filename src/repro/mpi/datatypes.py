"""MPI datatypes and reduction operations (numpy-backed).

Only the machinery the paper's collectives need: fixed-width numeric types
and the four arithmetic reductions.  Reductions are commutative and
associative (floating-point reassociation is accepted exactly as real MPI
implementations accept it; correctness tests compare with tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DataType", "ReduceOp", "BYTE", "INT32", "INT64", "FLOAT32",
           "DOUBLE", "SUM", "PROD", "MAX", "MIN"]


@dataclass(frozen=True)
class DataType:
    """A fixed-width element type."""

    name: str
    np_dtype: np.dtype

    @property
    def itemsize(self) -> int:
        return self.np_dtype.itemsize

    def __str__(self) -> str:
        return self.name


BYTE = DataType("byte", np.dtype(np.uint8))
INT32 = DataType("int32", np.dtype(np.int32))
INT64 = DataType("int64", np.dtype(np.int64))
FLOAT32 = DataType("float32", np.dtype(np.float32))
DOUBLE = DataType("double", np.dtype(np.float64))


@dataclass(frozen=True)
class ReduceOp:
    """A commutative, associative elementwise reduction."""

    name: str
    #: in-place accumulate: fn(accumulator, operand) writes into accumulator
    ufunc: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]

    def accumulate(self, acc: np.ndarray, operand: np.ndarray) -> None:
        """``acc = op(acc, operand)`` elementwise, in place."""
        self.ufunc(acc, operand, out=acc)

    def __str__(self) -> str:
        return self.name


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MAX = ReduceOp("max", np.maximum)
MIN = ReduceOp("min", np.minimum)

"""Runtime semantics oracles, armed by ``World(validate=True)``.

The simulator normally trusts its programs to obey MPI semantics.  In
*validate* mode a :class:`SemanticsValidator` rides along inside
:class:`~repro.mpi.transport.Transport` and checks, with real data, the
rules whose violations would otherwise corrupt payloads silently:

* **Send-buffer reuse before completion.**  MPI forbids touching a send
  buffer between ``isend`` and request completion.  The validator snapshots
  the buffer's content at send time and compares it

  - when the send request completes (eager: injection-pipeline drain;
    rendezvous/intranode single-copy: data pulled), and
  - at the moment a live-referenced payload is *captured* (the rendezvous
    CTS path and intranode single-copy mechanisms read the sender's buffer
    long after ``isend`` returned — exactly where an early reuse lands in
    the receiver's memory).

* **Non-overtaking order.**  Messages on one ``(src, dst, tag)`` triple
  must match posted receives in send order.  Every validated send draws a
  sequence number; every match checks it is the eldest outstanding one.

* **Quiescence.**  After a program finishes, no sent message may remain
  undelivered/unreceived and no posted receive unmatched (a legal MPI
  program completes every request it starts).

All checks raise :class:`ValidationError` naming the endpoint triple, so a
failed ``repro.verify`` campaign point pinpoints the broken path instead of
reporting a downstream payload diff.

Overheads are real but bounded (one ``ndarray.copy`` per validated send),
which is why the mode is opt-in and the benchmark sweeps never enable it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.buffer import Buffer
    from repro.mpi.request import Request
    from repro.mpi.transport import Message, Transport

__all__ = ["ValidationError", "SemanticsValidator"]

#: key of one ordered p2p channel
_ChannelKey = Tuple[int, int, Hashable]


class ValidationError(RuntimeError):
    """A program violated MPI semantics the validator checks."""


class SemanticsValidator:
    """Content sentinels and ordering oracles for one :class:`World`."""

    def __init__(self) -> None:
        # id(req) -> (send-time content copy | None, Message)
        self._pending: Dict[int, Tuple[Optional[np.ndarray], "Message"]] = {}
        # id(msg) -> send-time content copy, for capture-time checks
        self._msg_snap: Dict[int, Optional[np.ndarray]] = {}
        self._send_seq: Dict[_ChannelKey, int] = {}
        self._match_seq: Dict[_ChannelKey, int] = {}
        #: totals for campaign statistics
        self.sends_validated = 0
        self.captures_checked = 0
        self.matches_checked = 0

    # -- send side ---------------------------------------------------------

    def note_send(self, req: "Request", msg: "Message", buf: "Buffer") -> None:
        """Record send-time content and draw the channel sequence number."""
        key = (msg.src, msg.dst, msg.tag)
        seq = self._send_seq.get(key, 0) + 1
        self._send_seq[key] = seq
        msg.vseq = seq
        snap = buf.data.copy() if buf.data is not None else None
        self._pending[id(req)] = (snap, msg)
        self._msg_snap[id(msg)] = snap
        self.sends_validated += 1

    def on_send_complete(self, req: "Request") -> None:
        """The sender's request completed: its buffer must be untouched."""
        entry = self._pending.pop(id(req), None)
        if entry is None:
            return
        snap, msg = entry
        self._msg_snap.pop(id(msg), None)
        if (
            snap is not None
            and req.buf is not None
            and req.buf.data is not None
            and not np.array_equal(req.buf.data, snap)
        ):
            raise ValidationError(
                f"rank {msg.src} reused its send buffer before the send "
                f"completed ({msg.src}->{msg.dst} tag={msg.tag!r}, "
                f"{msg.nbytes}B)"
            )

    def on_capture(self, msg: "Message") -> None:
        """A live payload reference is about to be read (rendezvous CTS
        snapshot or intranode single-copy): content must equal send time."""
        self.captures_checked += 1
        snap = self._msg_snap.get(id(msg))
        if (
            snap is not None
            and msg.payload is not None
            and msg.payload.data is not None
            and not np.array_equal(msg.payload.data, snap)
        ):
            raise ValidationError(
                f"rank {msg.src} modified its send buffer while the "
                f"payload was still in flight ({msg.src}->{msg.dst} "
                f"tag={msg.tag!r}, {msg.nbytes}B captured at the receiver)"
            )

    # -- receive side ------------------------------------------------------

    def on_match(self, msg: "Message") -> None:
        """A message matched a posted receive: enforce FIFO per channel."""
        if msg.vseq == 0:
            return  # sent while validation was off
        self.matches_checked += 1
        key = (msg.src, msg.dst, msg.tag)
        expected = self._match_seq.get(key, 0) + 1
        if msg.vseq != expected:
            raise ValidationError(
                f"non-overtaking violation on {msg.src}->{msg.dst} "
                f"tag={msg.tag!r}: matched send #{msg.vseq} but "
                f"#{expected} is still outstanding"
            )
        self._match_seq[key] = expected

    # -- end of program ----------------------------------------------------

    def check_quiescent(self, transport: "Transport") -> None:
        """No in-flight state may survive a completed program."""
        leftovers = [
            (dst, key, len(fifo))
            for dst, table in enumerate(transport._arrived)
            for key, fifo in table.items()
        ]
        if leftovers:
            dst, (src, tag), n = leftovers[0]
            raise ValidationError(
                f"{len(leftovers)} channel(s) hold unreceived messages after "
                f"the program finished (first: {n} message(s) "
                f"{src}->{dst} tag={tag!r})"
            )
        unposted = [
            (dst, key, len(fifo))
            for dst, table in enumerate(transport._posted)
            for key, fifo in table.items()
        ]
        if unposted:
            dst, (src, tag), n = unposted[0]
            raise ValidationError(
                f"{len(unposted)} channel(s) hold receives that never "
                f"matched (first: {n} posted on rank {dst} for "
                f"{src}->{dst} tag={tag!r})"
            )

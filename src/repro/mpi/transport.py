"""Point-to-point transport: matching, eager/rendezvous internode paths,
mechanism-driven intranode paths.

Protocol selection
------------------
* **Internode, ``nbytes <= eager_threshold``** — eager: the payload is
  snapshotted at send time, the NIC path is reserved immediately, the send
  completes at injection-pipeline drain, and the message is delivered at
  wire arrival.  An arrival with no posted receive queues as *unexpected*
  and costs the receiver an extra bounce-buffer copy at match.
* **Internode, larger** — rendezvous: an RTS header travels the wire; the
  data path is reserved only once the receive is matched (+ one CTS wire
  latency), and the send completes at data injection drain.
* **Intranode** — delegated to the configured
  :class:`~repro.shmem.base.ShmemMechanism`: the sender runs the
  mechanism's sender work (e.g. POSIX copy-in), then either completes
  eagerly (double-copy mechanisms) or blocks until the receiver's
  single-copy completes (kernel/PiP mechanisms).

Matching is MPI-conformant for the subset used here: exact ``(src, tag)``
(no wildcards), non-overtaking per (src, dst, tag) triple.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.mpi.buffer import Buffer, BufferError
from repro.mpi.request import Request
from repro.shmem.base import MsgInfo, ShmemMechanism
from repro.sim.engine import Delay, Engine, Event, ProcGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterHW
    from repro.mpi.validation import SemanticsValidator

__all__ = ["Message", "Transport", "RTS_HEADER_BYTES"]

#: Size of the rendezvous RTS/CTS control headers on the wire.
RTS_HEADER_BYTES = 64


@dataclass(slots=True)
class Message:
    """One in-flight point-to-point message."""

    src: int
    dst: int
    tag: int
    nbytes: int
    #: eager: snapshot taken at send time; rendezvous/intranode single-copy:
    #: live reference to the sender's buffer
    payload: Optional[Buffer]
    src_buffer_id: int
    intranode: bool
    #: rendezvous data not yet transferred when matched
    rendezvous: bool = False
    #: local rank of the sender on its node (for NIC reservation)
    src_local: int = 0
    #: event completing the sender's request for non-eager paths
    sender_done: Optional[Event] = None
    #: arrival time at the destination (set for delivered eager messages)
    delivered_at: float = 0.0
    #: True if the message arrived before a receive was posted
    unexpected: bool = field(default=False)
    #: mechanism handling this message (intranode only)
    mechanism: Optional[ShmemMechanism] = None
    #: per-(src, dst, tag) send sequence number (0 = validation off)
    vseq: int = 0


class Transport:
    """Cluster-wide p2p matching and delivery."""

    def __init__(self, hw: "ClusterHW"):
        self.hw = hw
        self.engine: Engine = hw.engine
        self.params = hw.params
        self.topology = hw.topology
        n = self.topology.world_size
        # per-rank placement tables: isend runs per message, so the modulo
        # arithmetic plus range checks in Topology are paid once, here
        self._node_of = tuple(self.topology.node_of(r) for r in range(n))
        self._local_of = tuple(self.topology.local_rank_of(r) for r in range(n))
        # per destination rank: (src, tag) -> FIFO of arrived messages
        self._arrived: list[Dict[Tuple[int, int], Deque[Message]]] = [
            {} for _ in range(n)
        ]
        # per destination rank: (src, tag) -> FIFO of posted receives
        self._posted: list[Dict[Tuple[int, int], Deque[Request]]] = [
            {} for _ in range(n)
        ]
        #: count of messages that queued as unexpected (diagnostics)
        self.unexpected_count = 0
        #: semantics oracles, armed by ``World(validate=True)``
        self.validator: Optional["SemanticsValidator"] = None

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------

    def isend(
        self,
        src: int,
        dst: int,
        buf: Buffer,
        tag: int,
        mechanism: Optional[ShmemMechanism],
    ) -> ProcGen:
        """Sender-side work; returns the send :class:`Request`.

        Must be driven from the sending rank's process
        (``req = yield from transport.isend(...)``).
        """
        if src == dst:
            raise BufferError("self-sends are not used by any algorithm here")
        if self._node_of[src] == self._node_of[dst]:
            return (yield from self._isend_intranode(src, dst, buf, tag, mechanism))
        return (yield from self._isend_internode(src, dst, buf, tag))

    def _isend_internode(self, src: int, dst: int, buf: Buffer, tag: int) -> ProcGen:
        p = self.params
        nbytes = buf.nbytes
        ev = Event(self.engine, "send")
        req = Request("send", ev, buf=buf, src=src, dst=dst, tag=tag)
        yield Delay(p.send_overhead)
        nics = self.hw.nics
        src_nic = nics[self._node_of[src]]
        dst_nic = nics[self._node_of[dst]]
        src_local = self._local_of[src]

        if nbytes <= p.eager_threshold:
            payload = buf.snapshot()
            inject_done, arrival = src_nic.transfer(
                self.engine.now, src_local, dst_nic, nbytes
            )
            msg = Message(
                src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload,
                src_buffer_id=buf.base_id, intranode=False,
                src_local=src_local,
            )
            if self.validator is not None:
                self.validator.note_send(req, msg, buf)
            self.engine.call_at(arrival, lambda: self._deliver(msg))
            self.engine.call_at(
                inject_done, lambda: self._complete_send(req)
            )
        else:
            # RTS header travels the full wire path
            _, rts_arrival = src_nic.transfer(
                self.engine.now, src_local, dst_nic, RTS_HEADER_BYTES
            )
            msg = Message(
                src=src, dst=dst, tag=tag, nbytes=nbytes, payload=buf,
                src_buffer_id=buf.base_id, intranode=False, rendezvous=True,
                src_local=src_local,
                sender_done=Event(self.engine, "rndv-done"),
            )
            if self.validator is not None:
                self.validator.note_send(req, msg, buf)
            msg.sender_done.on_trigger(lambda _v: self._complete_send(req))
            self.engine.call_at(rts_arrival, lambda: self._deliver(msg))
        return req

    def _isend_intranode(
        self,
        src: int,
        dst: int,
        buf: Buffer,
        tag: int,
        mechanism: Optional[ShmemMechanism],
    ) -> ProcGen:
        if mechanism is None:
            raise ValueError(
                f"intranode message {src}->{dst} but no shmem mechanism configured"
            )
        nbytes = buf.nbytes
        mem = self.hw.memories[self._node_of[src]]
        info = MsgInfo(
            src_rank=src, dst_rank=dst, nbytes=nbytes, src_buffer_id=buf.base_id
        )
        ev = Event(self.engine, "shm-send")
        req = Request("send", ev, buf=buf, src=src, dst=dst, tag=tag)
        yield from mechanism.sender_work(mem, info)
        eager = mechanism.eager_for(nbytes)
        msg = Message(
            src=src, dst=dst, tag=tag, nbytes=nbytes,
            payload=buf.snapshot() if eager else buf,
            src_buffer_id=buf.base_id, intranode=True,
            src_local=self._local_of[src],
            sender_done=None if eager else Event(self.engine, "shm-done"),
            mechanism=mechanism,
        )
        if self.validator is not None:
            self.validator.note_send(req, msg, buf)
        if eager:
            self._deliver(msg)
            self._complete_send(req)
        else:
            msg.sender_done.on_trigger(lambda _v: self._complete_send(req))
            self._deliver(msg)
        return req

    def _complete_send(self, req: Request) -> None:
        if self.validator is not None:
            self.validator.on_send_complete(req)
        req.completed = True
        req.match_event.trigger(None)

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------

    def irecv(self, dst: int, src: int, buf: Buffer, tag: int) -> Request:
        """Post a receive; match happens now or on future delivery."""
        ev = Event(self.engine, "recv")
        req = Request("recv", ev, buf=buf, src=src, dst=dst, tag=tag)
        key = (src, tag)
        arrived = self._arrived[dst].get(key)
        if arrived:
            msg = arrived.popleft()
            if not arrived:
                del self._arrived[dst][key]
            self._match(req, msg)
        else:
            self._posted[dst].setdefault(key, deque()).append(req)
        return req

    def _deliver(self, msg: Message) -> None:
        """A message becomes matchable at the destination (engine callback)."""
        msg.delivered_at = self.engine.now
        key = (msg.src, msg.tag)
        posted = self._posted[msg.dst].get(key)
        if posted:
            req = posted.popleft()
            if not posted:
                del self._posted[msg.dst][key]
            self._match(req, msg)
        else:
            msg.unexpected = True
            self.unexpected_count += 1
            self._arrived[msg.dst].setdefault(key, deque()).append(msg)

    def _match(self, req: Request, msg: Message) -> None:
        """Pair a posted receive with a message.

        Envelope validation happens *here*, at match time: a dtype or size
        disagreement used to surface only when :meth:`_move_data` touched
        the payload — a :class:`~repro.mpi.buffer.BufferError` deep inside a
        delivery callback, with no endpoint context.  Failing at match names
        the channel while both sides are still identifiable.
        """
        buf = req.buf
        payload = msg.payload
        if buf is not None and payload is not None:
            if buf.nbytes != msg.nbytes:
                raise BufferError(
                    f"recv posted {buf.nbytes}B for a {msg.nbytes}B message "
                    f"({msg.src}->{msg.dst} tag={msg.tag!r})"
                )
            if buf.dtype.np_dtype != payload.dtype.np_dtype:
                raise BufferError(
                    f"recv posted dtype {buf.dtype} for a {payload.dtype} "
                    f"message ({msg.src}->{msg.dst} tag={msg.tag!r})"
                )
            if buf.is_real != payload.is_real:
                raise BufferError(
                    f"recv posted a {'real' if buf.is_real else 'phantom'} "
                    f"buffer for a "
                    f"{'real' if payload.is_real else 'phantom'} payload "
                    f"({msg.src}->{msg.dst} tag={msg.tag!r})"
                )
        if self.validator is not None:
            self.validator.on_match(msg)
        req.match_event.trigger(msg)

    def recv_work(self, req: Request, msg: Message) -> ProcGen:
        """Receiver-side completion, run inside the receiving process."""
        p = self.params
        if msg.intranode:
            yield from self._recv_work_intranode(req, msg)
        elif msg.rendezvous:
            yield from self._recv_work_rendezvous(req, msg)
        else:
            # internode eager
            if msg.unexpected:
                # bounce-buffer copy out of the unexpected queue
                mem = self.hw.memories[self._node_of[req.dst]]
                yield from mem.copy(msg.nbytes, extra_fixed=p.recv_overhead)
            else:
                yield Delay(p.recv_overhead)
            self._move_data(req, msg)
        req.completed = True

    def _recv_work_intranode(self, req: Request, msg: Message) -> ProcGen:
        mech = msg.mechanism
        assert mech is not None
        mem = self.hw.memories[self._node_of[req.dst]]
        info = MsgInfo(
            src_rank=msg.src, dst_rank=msg.dst, nbytes=msg.nbytes,
            src_buffer_id=msg.src_buffer_id,
        )
        fixed = mech.match_fixed(mem, info)
        yield from mem.copy(mech.receiver_copy_bytes(msg.nbytes), extra_fixed=fixed)
        if msg.sender_done is not None and self.validator is not None:
            # single-copy mechanisms read the sender's live buffer here
            self.validator.on_capture(msg)
        self._move_data(req, msg)
        if msg.sender_done is not None:
            msg.sender_done.trigger(None)

    def _recv_work_rendezvous(self, req: Request, msg: Message) -> ProcGen:
        p = self.params
        # CTS header travels back, then the data path is reserved
        data_start = self.engine.now + p.send_overhead + p.wire_latency
        nics = self.hw.nics
        src_nic = nics[self._node_of[msg.src]]
        dst_nic = nics[self._node_of[msg.dst]]
        inject_done, arrival = src_nic.transfer(
            data_start, msg.src_local, dst_nic, msg.nbytes, dma=True
        )
        # Capture payload now: the sender's request completes at injection
        # drain, after which it may legally reuse the buffer, but this
        # receive only materialises the data at arrival time.
        if self.validator is not None:
            self.validator.on_capture(msg)
        if msg.payload is not None:
            msg.payload = msg.payload.snapshot()
        assert msg.sender_done is not None
        self.engine.call_at(inject_done, lambda: msg.sender_done.trigger(None))
        yield Delay(arrival - self.engine.now + p.recv_overhead)
        self._move_data(req, msg)

    @staticmethod
    def _move_data(req: Request, msg: Message) -> None:
        if req.buf is None:
            return
        if req.buf.nbytes != msg.nbytes:
            raise BufferError(
                f"recv posted {req.buf.nbytes}B for a {msg.nbytes}B message "
                f"({msg.src}->{msg.dst} tag={msg.tag})"
            )
        if msg.payload is not None:
            req.buf.copy_from(msg.payload)

"""The simulated MPI world and per-rank execution contexts.

:class:`World` owns the hardware, transport, and PiP environments for one
simulated cluster.  :meth:`World.run` executes one *program*: a function
``body(ctx) -> generator`` instantiated once per rank, all ranks started at
the same simulated instant, run to completion, and timed.

Simulated state (resource queues, page-fault warmth, PiP boards) persists
across :meth:`World.run` calls on purpose: the paper's microbenchmark
protocol relies on a warm-up stage, and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Hashable, List, Optional, Sequence

import numpy as np

from repro.hw.cluster import ClusterHW
from repro.hw.params import MachineParams
from repro.hw.topology import Topology
from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import BYTE, DataType, ReduceOp
from repro.mpi.request import Request
from repro.mpi.transport import Transport
from repro.mpi.validation import SemanticsValidator
from repro.shmem.base import ShmemMechanism
from repro.shmem.pip_env import PipNode
from repro.sim.engine import Delay, Engine, ProcGen, WaitEvent
from repro.sim.trace import Tracer

__all__ = ["World", "RankCtx", "RunResult"]


def _record_end_time(end_times, rank, engine, _value) -> None:
    """Done-event callback: stamp the rank's completion time."""
    end_times[rank] = engine.now


@dataclass(frozen=True)
class RunResult:
    """Timing of one :meth:`World.run` invocation."""

    start: float
    end_times: tuple
    #: max over ranks of (finish - start): the collective's completion time
    elapsed: float

    @property
    def mean_elapsed(self) -> float:
        return sum(t - self.start for t in self.end_times) / len(self.end_times)


class RankCtx:
    """Everything one simulated MPI process can do.

    Communication methods are generators: drive them with ``yield from``
    inside a rank body.  ``isend`` returns its :class:`Request` via the
    generator return value (``req = yield from ctx.isend(...)``); ``irecv``
    posting is free and returns the request directly.
    """

    def __init__(self, world: "World", rank: int):
        self.world = world
        self.rank = rank
        topo = world.topology
        self.node, self.local_rank = topo.locate(rank)
        self.world_size = topo.world_size
        self.nodes = topo.nodes
        self.ppn = topo.ppn
        self.params: MachineParams = world.params
        self.mem = world.hw.memories[self.node]
        self.pip: PipNode = world.pip_nodes[self.node]
        #: name of the algorithm phase currently executing (set by the
        #: schedule executor's PhaseStep markers; threaded into trace spans)
        self.phase: Optional[str] = None
        # per-rank collective sequence number; identical across ranks because
        # MPI requires all ranks to invoke collectives in the same order
        self._op_seq = 0
        # per-(rank, group) sequence numbers: the communicator-scoped
        # ordering MPI guarantees — members of a group call its collectives
        # in the same order, and non-members never touch its counter
        self._group_seqs: dict = {}

    # -- identity helpers -------------------------------------------------

    def rank_of(self, node: int, local_rank: int) -> int:
        return self.world.topology.rank_of(node, local_rank)

    def node_of(self, rank: int) -> int:
        return self.world.topology.node_of(rank)

    def is_local_root(self) -> bool:
        return self.local_rank == 0

    def local_root_rank(self) -> int:
        return self.node * self.ppn

    def next_op_seq(self) -> int:
        """Agree on a namespace for one collective invocation.

        Valid because every rank calls the same collectives in the same
        order (an MPI correctness requirement the simulated programs obey).
        """
        self._op_seq += 1
        return self._op_seq

    def collective_tag(self, group) -> tuple:
        """A message tag scoping one collective invocation on ``group``.

        Combines the group's membership-derived ``tag_key`` with a
        per-(rank, group) call counter: all group members agree (they call
        the group's collectives in the same order) and invocations on
        different groups can never match each other — even when a rank
        participates in nested/hierarchical compositions that would make a
        single per-rank counter diverge across ranks.
        """
        seq = self._group_seqs.get(group.tag_key, 0) + 1
        self._group_seqs[group.tag_key] = seq
        return (group.tag_key, seq)

    # -- allocation (honours the world's data mode) ------------------------

    def alloc(self, dtype: DataType, count: int) -> Buffer:
        """Scratch buffer: real (zeroed) or phantom per the world's mode."""
        if self.world.phantom:
            return Buffer.phantom(count * dtype.itemsize, dtype)
        return Buffer.alloc(dtype, count)

    def alloc_bytes(self, nbytes: int) -> Buffer:
        return self.alloc(BYTE, nbytes)

    # -- point-to-point ----------------------------------------------------

    def isend(self, dst: int, buf: Buffer, tag: Hashable = 0) -> ProcGen:
        t0 = self.world.engine.now
        req = yield from self.world.transport.isend(
            self.rank, dst, buf, tag, self.world.mechanism
        )
        if self.world.tracer is not None:
            self._trace("isend", t0, f"->{dst}/{buf.nbytes}B")
        return req

    def irecv(self, src: int, buf: Buffer, tag: Hashable = 0) -> Request:
        return self.world.transport.irecv(self.rank, src, buf, tag)

    def wait(self, req: Request) -> ProcGen:
        t0 = self.world.engine.now
        msg = yield WaitEvent(req.match_event)
        if req.kind == "recv":
            yield from self.world.transport.recv_work(req, msg)
        if self.world.tracer is not None:
            self._trace(f"wait-{req.kind}", t0, f"{req.src}->{req.dst}")

    def waitall(self, reqs: Sequence[Request]) -> ProcGen:
        for req in reqs:
            yield from self.wait(req)

    def send(self, dst: int, buf: Buffer, tag: Hashable = 0) -> ProcGen:
        req = yield from self.isend(dst, buf, tag)
        yield from self.wait(req)

    def recv(self, src: int, buf: Buffer, tag: Hashable = 0) -> ProcGen:
        req = self.irecv(src, buf, tag)
        yield from self.wait(req)

    def sendrecv(
        self,
        dst: int,
        sendbuf: Buffer,
        src: int,
        recvbuf: Buffer,
        tag: Hashable = 0,
    ) -> ProcGen:
        """Simultaneous exchange (deadlock-free)."""
        rreq = self.irecv(src, recvbuf, tag)
        sreq = yield from self.isend(dst, sendbuf, tag)
        yield from self.wait(rreq)
        yield from self.wait(sreq)

    # -- local work ---------------------------------------------------------

    def copy(self, dst: Buffer, src: Buffer, extra_fixed: float = 0.0) -> ProcGen:
        """Timed local memcpy ``src -> dst``."""
        t0 = self.world.engine.now
        yield from self.mem.copy(src.nbytes, extra_fixed=extra_fixed)
        dst.copy_from(src)
        if self.world.tracer is not None:
            self._trace("copy", t0, f"{src.nbytes}B")

    def reduce_into(
        self, dst: Buffer, src: Buffer, op: ReduceOp, extra_fixed: float = 0.0
    ) -> ProcGen:
        """Timed local elementwise ``dst = op(dst, src)``."""
        t0 = self.world.engine.now
        yield from self.mem.reduce(src.nbytes, extra_fixed=extra_fixed)
        dst.reduce_from(src, op)
        if self.world.tracer is not None:
            self._trace("reduce", t0, f"{src.nbytes}B")

    def compute(self, seconds: float) -> ProcGen:
        t0 = self.world.engine.now
        yield Delay(seconds)
        self._trace("compute", t0)

    def _trace(self, kind: str, t0: float, detail: str = "") -> None:
        tracer = self.world.tracer
        if tracer is not None:
            tracer.record(
                self.rank, self.node, kind, t0, self.world.engine.now, detail,
                phase=self.phase or "",
            )


class World:
    """One simulated cluster plus its MPI machinery."""

    def __init__(
        self,
        topology: Topology,
        params: MachineParams,
        mechanism: Optional[ShmemMechanism] = None,
        phantom: bool = False,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        validate: bool = False,
    ):
        self.topology = topology
        self.params = params
        self.hw = ClusterHW(topology, params)
        self.engine: Engine = self.hw.engine
        self.transport = Transport(self.hw)
        self.mechanism = mechanism
        self.phantom = phantom
        #: optional execution tracer (see repro.sim.trace); None = off
        self.tracer = tracer
        #: semantics oracles (send-buffer reuse, non-overtaking, quiescence);
        #: see repro.mpi.validation.  Off by default: the checks copy real
        #: send payloads, so only correctness harnesses arm them.
        self.validator: Optional[SemanticsValidator] = (
            SemanticsValidator() if validate else None
        )
        self.transport.validator = self.validator
        self.pip_nodes: List[PipNode] = [
            PipNode(self.engine, params, node) for node in range(topology.nodes)
        ]
        self.rng = np.random.default_rng(seed)
        self._contexts = [RankCtx(self, r) for r in range(topology.world_size)]

    @property
    def world_size(self) -> int:
        return self.topology.world_size

    def ctx(self, rank: int) -> RankCtx:
        return self._contexts[rank]

    def run(self, body: Callable[[RankCtx], ProcGen]) -> RunResult:
        """Run ``body`` on every rank, starting now; return timings."""
        engine = self.engine
        start = engine.now
        end_times = [0.0] * self.world_size

        # Completion times are recorded from each rank's ``done`` event
        # rather than a wrapper generator: a wrapper adds one frame to the
        # yield-from delegation chain of every single engine step, which is
        # measurable across million-event sweeps.
        for rank in range(self.world_size):
            proc = engine.spawn(body(self._contexts[rank]), name=f"rank-{rank}")
            proc.done.on_trigger(
                partial(_record_end_time, end_times, rank, engine)
            )
        engine.run()
        if self.validator is not None:
            self.validator.check_quiescent(self.transport)
        elapsed = max(end_times) - start
        return RunResult(start=start, end_times=tuple(end_times), elapsed=elapsed)

    def reset_pip_boards(self) -> None:
        """Drop PiP board/counter state between independent programs."""
        for node in self.pip_nodes:
            node.clear()

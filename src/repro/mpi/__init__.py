"""Simulated MPI runtime: buffers, datatypes, p2p transport, world."""

from repro.mpi.buffer import Buffer, BufferError
from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT32,
    INT32,
    INT64,
    MAX,
    MIN,
    PROD,
    SUM,
    DataType,
    ReduceOp,
)
from repro.mpi.request import Request
from repro.mpi.runtime import RankCtx, RunResult, World
from repro.mpi.transport import Message, Transport
from repro.mpi.validation import SemanticsValidator, ValidationError

__all__ = [
    "Buffer",
    "BufferError",
    "BYTE",
    "DOUBLE",
    "FLOAT32",
    "INT32",
    "INT64",
    "MAX",
    "MIN",
    "PROD",
    "SUM",
    "DataType",
    "ReduceOp",
    "Request",
    "RankCtx",
    "RunResult",
    "World",
    "Message",
    "Transport",
    "SemanticsValidator",
    "ValidationError",
]

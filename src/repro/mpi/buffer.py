"""Message buffers with dual real/phantom data modes.

* **Real** buffers are numpy-backed; every copy and reduction actually
  happens, so functional correctness of the collective algorithms is
  directly testable against numpy ground truth.
* **Phantom** buffers carry only a size.  The 128-node × 18-ppn benchmark
  sweeps use them: materialising every rank's allgather destination buffer
  would need terabytes, and the *simulated timing path is identical* in both
  modes (timing is charged from byte counts, never from data contents).

Views (``Buffer.view``) are zero-copy element ranges of a base buffer; they
share the base's identity for page-fault warm accounting.

Copies and reductions between *overlapping* ranges of one allocation are
memmove-safe: the operand is staged through a temporary first.  ``np.copyto``
and in-place ufuncs only make that guarantee as a numpy implementation
detail, and collective algorithms legally shift blocks within a single
receive buffer, so the staging is explicit here (``Buffer.overlaps`` is the
detector, ``Buffer.staged_op_count`` counts staged operations for tests and
the ``repro.verify`` campaign statistics).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.mpi.datatypes import BYTE, DataType, ReduceOp

__all__ = ["Buffer", "BufferError"]

_buffer_ids = itertools.count(1)


class BufferError(RuntimeError):
    """Raised on misuse of buffers (mode mismatch, bad ranges, ...)."""


class Buffer:
    """A typed element range, real (numpy) or phantom (size-only)."""

    __slots__ = ("dtype", "count", "nbytes", "data", "base_id", "offset")

    #: number of copy/reduce operations that detected operand overlap and
    #: staged through a temporary (class-wide; cheap observability for
    #: regression tests and verification campaigns)
    staged_op_count: int = 0

    def __init__(
        self,
        dtype: DataType,
        count: int,
        data: Optional[np.ndarray],
        base_id: int,
        offset: int,
    ):
        if count < 0:
            raise BufferError(f"negative element count: {count}")
        self.dtype = dtype
        self.count = count
        #: total bytes; precomputed because nearly every transport and
        #: collective decision reads it (a property here is measurably hot)
        self.nbytes = count * dtype.itemsize
        self.data = data
        #: identity of the allocation this is a view into (fault-warm key)
        self.base_id = base_id
        #: element offset within the base allocation
        self.offset = offset

    # -- constructors ------------------------------------------------------

    @classmethod
    def real(cls, array: np.ndarray, dtype: Optional[DataType] = None) -> "Buffer":
        """Wrap a 1-D numpy array as a real buffer (no copy)."""
        if array.ndim != 1:
            raise BufferError(f"buffers are 1-D, got shape {array.shape}")
        dt = dtype or DataType(str(array.dtype), array.dtype)
        if array.dtype != dt.np_dtype:
            raise BufferError(f"array dtype {array.dtype} != {dt.np_dtype}")
        return cls(dt, array.shape[0], array, next(_buffer_ids), 0)

    @classmethod
    def alloc(cls, dtype: DataType, count: int) -> "Buffer":
        """Allocate a zeroed real buffer of ``count`` elements."""
        return cls.real(np.zeros(count, dtype=dtype.np_dtype), dtype)

    @classmethod
    def phantom(cls, nbytes: int, dtype: DataType = BYTE) -> "Buffer":
        """A size-only buffer of ``nbytes`` bytes (must divide itemsize)."""
        if nbytes % dtype.itemsize:
            raise BufferError(
                f"{nbytes} bytes is not a whole number of {dtype} elements"
            )
        return cls(dtype, nbytes // dtype.itemsize, None, next(_buffer_ids), 0)

    # -- properties ---------------------------------------------------------

    @property
    def is_real(self) -> bool:
        return self.data is not None

    def array(self) -> np.ndarray:
        """The backing numpy array (real buffers only)."""
        if self.data is None:
            raise BufferError("phantom buffer has no data")
        return self.data

    # -- views ---------------------------------------------------------------

    def view(self, offset: int, count: int) -> "Buffer":
        """Zero-copy sub-range of ``count`` elements starting at ``offset``."""
        if offset < 0 or count < 0 or offset + count > self.count:
            raise BufferError(
                f"view [{offset}, {offset + count}) out of range [0, {self.count})"
            )
        data = self.data[offset : offset + count] if self.data is not None else None
        return Buffer(self.dtype, count, data, self.base_id, self.offset + offset)

    def view_bytes(self, byte_offset: int, nbytes: int) -> "Buffer":
        """Sub-range expressed in bytes (must be element-aligned)."""
        isz = self.dtype.itemsize
        if byte_offset % isz or nbytes % isz:
            raise BufferError(
                f"byte range ({byte_offset}, {nbytes}) not aligned to "
                f"{isz}-byte elements"
            )
        return self.view(byte_offset // isz, nbytes // isz)

    # -- overlap detection --------------------------------------------------

    def overlaps(self, other: "Buffer") -> bool:
        """True if the two buffers alias any memory.

        Views of one allocation are compared by ``(base_id, offset)`` byte
        ranges (this also covers phantom buffers, which carry no numpy
        array); real buffers wrapped from different :meth:`real` calls may
        still alias the same ndarray storage, so they are additionally
        checked with ``np.shares_memory``.
        """
        if self.count == 0 or other.count == 0:
            return False
        if self.base_id == other.base_id:
            a0 = self.offset * self.dtype.itemsize
            b0 = other.offset * other.dtype.itemsize
            return a0 < b0 + other.nbytes and b0 < a0 + self.nbytes
        if self.data is not None and other.data is not None:
            return bool(np.shares_memory(self.data, other.data))
        return False

    # -- data operations (pure data; timing is charged elsewhere) -----------

    def copy_from(self, src: "Buffer") -> None:
        """Copy ``src``'s elements into this buffer (memmove semantics:
        overlapping source ranges are staged through a temporary)."""
        self._check_peer(src)
        if self.data is not None:
            assert src.data is not None
            operand = src.data
            if self.overlaps(src):
                operand = operand.copy()
                Buffer.staged_op_count += 1
            np.copyto(self.data, operand)

    def reduce_from(self, src: "Buffer", op: ReduceOp) -> None:
        """``self = op(self, src)`` elementwise, staging overlapping
        operands so the accumulation reads ``src``'s pre-update values."""
        self._check_peer(src)
        if self.data is not None:
            assert src.data is not None
            operand = src.data
            if self.overlaps(src):
                operand = operand.copy()
                Buffer.staged_op_count += 1
            op.accumulate(self.data, operand)

    def fill(self, value) -> None:
        """Set every element to ``value`` (no-op on phantom buffers)."""
        if self.data is not None:
            self.data[:] = value

    def snapshot(self) -> "Buffer":
        """An immutable-by-convention copy of current contents.

        Used by the eager send path, which must capture data at send time
        because the sender may legally reuse its buffer after local
        completion while the message is still in flight.
        """
        if self.data is None:
            return Buffer(self.dtype, self.count, None, self.base_id, self.offset)
        return Buffer(
            self.dtype, self.count, self.data.copy(), self.base_id, self.offset
        )

    def _check_peer(self, src: "Buffer") -> None:
        if src.count != self.count:
            raise BufferError(
                f"size mismatch: {src.count} -> {self.count} elements"
            )
        if src.dtype.np_dtype != self.dtype.np_dtype:
            raise BufferError(f"dtype mismatch: {src.dtype} -> {self.dtype}")
        if (src.data is None) != (self.data is None):
            raise BufferError(
                "cannot mix real and phantom buffers in one operation"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "real" if self.is_real else "phantom"
        return (
            f"<Buffer {mode} {self.count}x{self.dtype} "
            f"base={self.base_id}+{self.offset}>"
        )

"""Scatter algorithms (MPICH-style binomial tree).

The conventional algorithm the paper contrasts PiP-MColl against
(§III-A1): one sender/receiver pair per tree edge, ``ceil(log2 size)``
rounds, each holder forwarding the portion of data its subtree needs.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["scatter_binomial"]


def scatter_binomial(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer | None,
    recvbuf: Buffer,
    root_index: int = 0,
) -> ProcGen:
    """Binomial-tree scatter: ``sendbuf`` (root only, ``size * count``
    elements, ordered by group index) is split into per-rank blocks of
    ``recvbuf.count`` elements."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = recvbuf.count

    if size == 1:
        assert sendbuf is not None
        yield from ctx.copy(recvbuf, sendbuf.view(0, count))
        return

    relrank = (me - root_index) % size

    # staging buffer holds blocks for my whole subtree, in relative order
    if relrank == 0:
        assert sendbuf is not None, "root must supply a send buffer"
        if root_index == 0:
            staging = sendbuf
        else:
            # rotate into relative-rank order (one extra root-side copy,
            # exactly as MPICH pays for non-zero roots)
            staging = ctx.alloc(sendbuf.dtype, size * count)
            head = size - root_index
            yield from ctx.copy(
                staging.view(0, head * count),
                sendbuf.view(root_index * count, head * count),
            )
            yield from ctx.copy(
                staging.view(head * count, root_index * count),
                sendbuf.view(0, root_index * count),
            )
        my_blocks = size
    else:
        # receive my subtree's data from my parent
        mask = 1
        while not (relrank & mask):
            mask <<= 1
        my_blocks = min(mask, size - relrank)
        staging = ctx.alloc(recvbuf.dtype, my_blocks * count)
        parent = group.rank_at((relrank - mask + root_index) % size)
        yield from ctx.recv(parent, staging, tag=tag)
        mask >>= 1

    if relrank == 0:
        # root: find the top of its forwarding mask
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1

    # forward sub-blocks to children, largest subtree first
    while mask > 0:
        child_rel = relrank + mask
        if child_rel < size:
            child_blocks = min(mask, size - child_rel)
            dst = group.rank_at((child_rel + root_index) % size)
            yield from ctx.send(
                dst, staging.view(mask * count, child_blocks * count), tag=tag
            )
        mask >>= 1

    # my own block is the first block of my staging range
    yield from ctx.copy(recvbuf, staging.view(0, count))

"""Process groups for collective algorithms.

A :class:`Group` is an ordered set of global ranks; collective algorithms
address peers by *group index* and translate to global ranks for the wire.
The same algorithms therefore run over the world group (flat MPICH-style
collectives), one node's ranks (intranode phases), or the node-leader set
(hierarchical libraries).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = ["Group", "block_partition"]


class Group:
    """An ordered, duplicate-free set of global ranks."""

    __slots__ = ("ranks", "_index", "tag_key")

    def __init__(self, ranks: Sequence[int]):
        self.ranks: Tuple[int, ...] = tuple(ranks)
        if not self.ranks:
            raise ValueError("empty group")
        self._index: Dict[int, int] = {r: i for i, r in enumerate(self.ranks)}
        if len(self._index) != len(self.ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        #: stable identity derived from membership — the communicator
        #: "context id" analogue used to scope collective message tags so
        #: that concurrent collectives on different groups never match
        self.tag_key = hash(self.ranks)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank_at(self, index: int) -> int:
        return self.ranks[index % self.size]

    def index_of(self, rank: int) -> int:
        try:
            return self._index[rank]
        except KeyError:
            raise ValueError(f"rank {rank} not in group {self.ranks}") from None

    def __contains__(self, rank: int) -> bool:
        return rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group({list(self.ranks)!r})"


def block_partition(count: int, parts: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split ``count`` elements into ``parts`` near-equal blocks.

    Returns ``(counts, displs)``; the first ``count % parts`` blocks get one
    extra element (MPI's standard block distribution).
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    base, extra = divmod(count, parts)
    counts = tuple(base + (1 if i < extra else 0) for i in range(parts))
    displs = []
    acc = 0
    for c in counts:
        displs.append(acc)
        acc += c
    return counts, tuple(displs)

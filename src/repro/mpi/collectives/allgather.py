"""Allgather algorithms: Bruck, recursive doubling, ring.

These are the three classical choices the paper names (§III-A2): Bruck for
small non-power-of-two, recursive doubling for small power-of-two, ring for
large messages.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen
from repro.util.intmath import is_power_of

__all__ = ["allgather_bruck", "allgather_recursive_doubling", "allgather_ring"]


def allgather_bruck(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Bruck allgather: ``ceil(log2 size)`` rounds, any group size.

    Blocks accumulate in *relative* order (my own block first), doubling
    per round, with a final rotation into absolute order.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count
    if recvbuf.count != size * count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {size * count}"
        )

    if size == 1:
        yield from ctx.copy(recvbuf, sendbuf)
        return

    staging = ctx.alloc(sendbuf.dtype, size * count)
    yield from ctx.copy(staging.view(0, count), sendbuf)

    pof = 1
    while pof < size:
        blocks = min(pof, size - pof)
        dst = group.rank_at((me - pof) % size)
        src = group.rank_at((me + pof) % size)
        rreq = ctx.irecv(src, staging.view(pof * count, blocks * count), tag=tag)
        sreq = yield from ctx.isend(dst, staging.view(0, blocks * count), tag=tag)
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)
        pof <<= 1

    # staging block j holds rank (me + j) % size's data; rotate so that
    # recvbuf block i holds group index i's data
    head = size - me
    yield from ctx.copy(
        recvbuf.view(me * count, head * count), staging.view(0, head * count)
    )
    if me:
        yield from ctx.copy(
            recvbuf.view(0, me * count), staging.view(head * count, me * count)
        )


def allgather_recursive_doubling(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Recursive-doubling allgather (power-of-two group sizes only)."""
    size = group.size
    if not is_power_of(2, size):
        raise ValueError(f"recursive doubling needs a power-of-two size, got {size}")
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count
    if recvbuf.count != size * count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {size * count}"
        )

    yield from ctx.copy(recvbuf.view(me * count, count), sendbuf)

    mask = 1
    while mask < size:
        partner = me ^ mask
        base = (me // mask) * mask
        pbase = (partner // mask) * mask
        dst = group.rank_at(partner)
        rreq = ctx.irecv(
            dst, recvbuf.view(pbase * count, mask * count), tag=tag
        )
        sreq = yield from ctx.isend(
            dst, recvbuf.view(base * count, mask * count), tag=tag
        )
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)
        mask <<= 1


def allgather_ring(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Ring allgather: ``size - 1`` rounds of neighbour exchange.

    Bandwidth-optimal total traffic; the classical large-message choice.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count
    if recvbuf.count != size * count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {size * count}"
        )

    yield from ctx.copy(recvbuf.view(me * count, count), sendbuf)
    if size == 1:
        return

    right = group.rank_at((me + 1) % size)
    left = group.rank_at((me - 1) % size)
    for step in range(size - 1):
        send_block = (me - step) % size
        recv_block = (me - step - 1) % size
        rreq = ctx.irecv(
            left, recvbuf.view(recv_block * count, count), tag=tag
        )
        sreq = yield from ctx.isend(
            right, recvbuf.view(send_block * count, count), tag=tag
        )
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)

"""Allgather algorithms: Bruck, recursive doubling, ring.

These are the three classical choices the paper names (§III-A2): Bruck for
small non-power-of-two, recursive doubling for small power-of-two, ring for
large messages.

Each is compiled to a per-group-index schedule by the planners in
:mod:`repro.sched.plans.baseline` and replayed by the
:class:`~repro.sched.executor.ScheduleExecutor`.  The communicator-scoped
tag is drawn here (it mutates per-(rank, group) counters) and bound
symbolically into the schedule.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.baseline import (
    plan_allgather_bruck,
    plan_allgather_recursive_doubling,
    plan_allgather_ring,
)
from repro.sim.engine import ProcGen
from repro.util.intmath import is_power_of

__all__ = ["allgather_bruck", "allgather_recursive_doubling", "allgather_ring"]


def allgather_bruck(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Bruck allgather: ``ceil(log2 size)`` rounds, any group size.

    Blocks accumulate in *relative* order (my own block first), doubling
    per round, with a final rotation into absolute order.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count
    if recvbuf.count != size * count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {size * count}"
        )
    schedule = plan_allgather_bruck(group.ranks, count)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf},
        symbols={"tag": tag}, program_index=me,
    )


def allgather_recursive_doubling(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Recursive-doubling allgather (power-of-two group sizes only)."""
    size = group.size
    if not is_power_of(2, size):
        raise ValueError(f"recursive doubling needs a power-of-two size, got {size}")
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count
    if recvbuf.count != size * count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {size * count}"
        )
    schedule = plan_allgather_recursive_doubling(group.ranks, count)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf},
        symbols={"tag": tag}, program_index=me,
    )


def allgather_ring(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Ring allgather: ``size - 1`` rounds of neighbour exchange.

    Bandwidth-optimal total traffic; the classical large-message choice.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count
    if recvbuf.count != size * count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {size * count}"
        )
    schedule = plan_allgather_ring(group.ranks, count)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf},
        symbols={"tag": tag}, program_index=me,
    )

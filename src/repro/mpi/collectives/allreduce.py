"""Allreduce algorithms: recursive doubling and Rabenseifner.

Recursive doubling is MPICH's small-message default; Rabenseifner's
reduce-scatter + allgather is the large-message default the paper's §III-B2
contrasts against.  Both handle non-power-of-two sizes with the standard
fold: the first ``2*rem`` ranks pair up, odd ranks absorb their even
neighbour's data and join the power-of-two core, and results are copied
back at the end.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group, block_partition
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["allreduce_recursive_doubling", "allreduce_rabenseifner"]


def _fold_in(
    ctx: RankCtx, group: Group, me: int, rem: int, acc: Buffer, tmp: Buffer,
    op: ReduceOp, tag: int,
) -> ProcGen:
    """Pre-step: collapse to a power-of-two set.  Returns my new rank or -1."""
    if me < 2 * rem:
        if me % 2 == 0:
            yield from ctx.send(group.rank_at(me + 1), acc, tag=tag)
            return -1
        yield from ctx.recv(group.rank_at(me - 1), tmp, tag=tag)
        yield from ctx.reduce_into(acc, tmp, op)
        return me // 2
    return me - rem


def _fold_out(
    ctx: RankCtx, group: Group, me: int, rem: int, acc: Buffer, tag: int
) -> ProcGen:
    """Post-step: odd ranks return the final result to their even partner."""
    if me < 2 * rem:
        if me % 2 == 0:
            yield from ctx.recv(group.rank_at(me + 1), acc, tag=tag)
        else:
            yield from ctx.send(group.rank_at(me - 1), acc, tag=tag)


def _core_to_group(newrank: int, rem: int) -> int:
    """Map a power-of-two core rank back to its group index."""
    return newrank * 2 + 1 if newrank < rem else newrank + rem


def allreduce_recursive_doubling(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    recvbuf: Buffer,
    op: ReduceOp,
) -> ProcGen:
    """Recursive-doubling allreduce: ``log2`` rounds of full-buffer
    exchanges, latency-optimal for small messages."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count

    yield from ctx.copy(recvbuf, sendbuf)
    if size == 1:
        return
    tmp = ctx.alloc(sendbuf.dtype, count)

    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    newrank = yield from _fold_in(ctx, group, me, rem, recvbuf, tmp, op, tag)
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner = group.rank_at(_core_to_group(newrank ^ mask, rem))
            yield from ctx.sendrecv(partner, recvbuf, partner, tmp, tag=tag)
            yield from ctx.reduce_into(recvbuf, tmp, op)
            mask <<= 1
    yield from _fold_out(ctx, group, me, rem, recvbuf, tag)


def allreduce_rabenseifner(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    recvbuf: Buffer,
    op: ReduceOp,
) -> ProcGen:
    """Rabenseifner's allreduce: recursive-halving reduce-scatter followed
    by recursive-doubling allgather — bandwidth-optimal for large messages.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count

    yield from ctx.copy(recvbuf, sendbuf)
    if size == 1:
        return
    tmp = ctx.alloc(sendbuf.dtype, count)

    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    newrank = yield from _fold_in(ctx, group, me, rem, recvbuf, tmp, op, tag)
    if newrank != -1:
        counts, displs = block_partition(count, pof2)

        def block_range(lo: int, hi: int) -> Tuple[int, int]:
            """(element offset, element count) covering blocks [lo, hi)."""
            off = displs[lo]
            end = displs[hi - 1] + counts[hi - 1]
            return off, end - off

        # --- reduce-scatter by recursive halving ---------------------------
        lo, hi = 0, pof2
        mask = pof2 >> 1
        while mask > 0:
            half = (hi - lo) // 2
            mid = lo + half
            partner = group.rank_at(_core_to_group(newrank ^ half, rem))
            if newrank < mid:
                send_lo, send_hi = mid, hi
                keep_lo, keep_hi = lo, mid
            else:
                send_lo, send_hi = lo, mid
                keep_lo, keep_hi = mid, hi
            s_off, s_cnt = block_range(send_lo, send_hi)
            k_off, k_cnt = block_range(keep_lo, keep_hi)
            rreq = ctx.irecv(partner, tmp.view(k_off, k_cnt), tag=tag)
            sreq = yield from ctx.isend(partner, recvbuf.view(s_off, s_cnt), tag=tag)
            yield from ctx.wait(rreq)
            yield from ctx.wait(sreq)
            yield from ctx.reduce_into(
                recvbuf.view(k_off, k_cnt), tmp.view(k_off, k_cnt), op
            )
            lo, hi = keep_lo, keep_hi
            mask >>= 1
        assert (lo, hi) == (newrank, newrank + 1)

        # --- allgather by recursive doubling --------------------------------
        length = 1
        while length < pof2:
            partner_new = newrank ^ length
            partner = group.rank_at(_core_to_group(partner_new, rem))
            plo = (partner_new // length) * length
            phi = plo + length
            s_off, s_cnt = block_range(lo, hi)
            p_off, p_cnt = block_range(plo, phi)
            rreq = ctx.irecv(partner, recvbuf.view(p_off, p_cnt), tag=tag)
            sreq = yield from ctx.isend(partner, recvbuf.view(s_off, s_cnt), tag=tag)
            yield from ctx.wait(rreq)
            yield from ctx.wait(sreq)
            lo, hi = min(lo, plo), max(hi, phi)
            length *= 2
        assert (lo, hi) == (0, pof2)

    yield from _fold_out(ctx, group, me, rem, recvbuf, tag)

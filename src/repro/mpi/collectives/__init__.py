"""Classical MPI collective algorithms (the baselines' building blocks)."""

from repro.mpi.collectives.allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
)
from repro.mpi.collectives.allreduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
)
from repro.mpi.collectives.alltoall import alltoall_bruck, alltoall_pairwise
from repro.mpi.collectives.barrier import barrier_dissemination
from repro.mpi.collectives.bcast import bcast_binomial
from repro.mpi.collectives.gather import gather_binomial
from repro.mpi.collectives.group import Group, block_partition
from repro.mpi.collectives.reduce import reduce_binomial
from repro.mpi.collectives.reduce_scatter import (
    reduce_scatter_halving,
    reduce_scatter_pairwise,
)
from repro.mpi.collectives.scatter import scatter_binomial
from repro.mpi.collectives.vector import (
    allgatherv_ring,
    gatherv_linear,
    scatterv_linear,
)

__all__ = [
    "allgather_bruck",
    "allgather_recursive_doubling",
    "allgather_ring",
    "allreduce_rabenseifner",
    "allreduce_recursive_doubling",
    "alltoall_bruck",
    "alltoall_pairwise",
    "barrier_dissemination",
    "bcast_binomial",
    "gather_binomial",
    "Group",
    "block_partition",
    "reduce_binomial",
    "reduce_scatter_halving",
    "reduce_scatter_pairwise",
    "scatter_binomial",
    "allgatherv_ring",
    "gatherv_linear",
    "scatterv_linear",
]

"""Reduce algorithms (MPICH-style binomial tree, commutative ops)."""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["reduce_binomial"]


def reduce_binomial(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    recvbuf: Buffer | None,
    op: ReduceOp,
    root_index: int = 0,
) -> ProcGen:
    """Binomial-tree reduction into ``group[root_index]``'s ``recvbuf``."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count

    if size == 1:
        assert recvbuf is not None
        yield from ctx.copy(recvbuf, sendbuf)
        return

    relrank = (me - root_index) % size

    # accumulate into recvbuf at the root, a scratch buffer elsewhere
    if relrank == 0:
        assert recvbuf is not None, "root must supply a receive buffer"
        acc = recvbuf
    else:
        acc = ctx.alloc(sendbuf.dtype, count)
    yield from ctx.copy(acc, sendbuf)
    tmp = ctx.alloc(sendbuf.dtype, count)

    mask = 1
    while mask < size:
        if relrank & mask:
            dst = group.rank_at((relrank - mask + root_index) % size)
            yield from ctx.send(dst, acc, tag=tag)
            return
        src_rel = relrank | mask
        if src_rel < size:
            src = group.rank_at((src_rel + root_index) % size)
            yield from ctx.recv(src, tmp, tag=tag)
            yield from ctx.reduce_into(acc, tmp, op)
        mask <<= 1

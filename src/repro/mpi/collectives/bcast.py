"""Broadcast algorithms (MPICH-style binomial tree)."""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["bcast_binomial"]


def bcast_binomial(
    ctx: RankCtx, group: Group, buf: Buffer, root_index: int = 0
) -> ProcGen:
    """Binomial-tree broadcast of ``buf`` from ``group[root_index]``.

    The classic MPICH small-message broadcast: ``ceil(log2 size)`` rounds,
    each data holder forwarding to a rank ``mask`` away in relative-rank
    space.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    if size == 1:
        return

    relrank = (me - root_index) % size

    # receive from parent
    mask = 1
    while mask < size:
        if relrank & mask:
            src = group.rank_at((relrank - mask + root_index) % size)
            yield from ctx.recv(src, buf, tag=tag)
            break
        mask <<= 1
    # forward to children, highest subtree first
    mask >>= 1
    while mask > 0:
        if relrank + mask < size:
            dst = group.rank_at((relrank + mask + root_index) % size)
            yield from ctx.send(dst, buf, tag=tag)
        mask >>= 1

"""Gather algorithms (MPICH-style binomial tree)."""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["gather_binomial"]


def gather_binomial(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    recvbuf: Buffer | None,
    root_index: int = 0,
) -> ProcGen:
    """Binomial-tree gather: every rank's ``sendbuf`` (``count`` elements)
    lands in the root's ``recvbuf`` ordered by group index."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count

    if size == 1:
        assert recvbuf is not None
        yield from ctx.copy(recvbuf.view(0, count), sendbuf)
        return

    relrank = (me - root_index) % size

    # staging accumulates my subtree's blocks in relative order
    mask = 1
    while not (relrank & mask) and mask < size:
        mask <<= 1
    my_blocks = min(mask, size - relrank) if relrank else size
    staging = ctx.alloc(sendbuf.dtype, my_blocks * count)
    yield from ctx.copy(staging.view(0, count), sendbuf)

    # collect from children, smallest subtree first (mirror of scatter)
    submask = 1
    while submask < (mask if relrank else size):
        child_rel = relrank + submask
        if child_rel < size:
            child_blocks = min(submask, size - child_rel)
            src = group.rank_at((child_rel + root_index) % size)
            yield from ctx.recv(
                src, staging.view(submask * count, child_blocks * count), tag=tag
            )
        submask <<= 1

    if relrank != 0:
        parent = group.rank_at((relrank - mask + root_index) % size)
        yield from ctx.send(parent, staging, tag=tag)
        return

    # root: staging holds blocks in relative order; rotate into recvbuf
    assert recvbuf is not None
    if root_index == 0:
        yield from ctx.copy(recvbuf, staging)
    else:
        head = size - root_index
        yield from ctx.copy(
            recvbuf.view(root_index * count, head * count),
            staging.view(0, head * count),
        )
        yield from ctx.copy(
            recvbuf.view(0, root_index * count),
            staging.view(head * count, root_index * count),
        )

"""Vector (v-) collectives: per-rank counts and displacements.

MPI's scatterv/gatherv default to *linear* algorithms in production
libraries (the irregular counts defeat tree packing); allgatherv uses the
ring with per-rank block sizes.  Zero counts are legal (a rank may
contribute or receive nothing).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["scatterv_linear", "gatherv_linear", "allgatherv_ring"]


def _check_layout(counts: Sequence[int], displs: Sequence[int], size: int) -> None:
    if len(counts) != size or len(displs) != size:
        raise ValueError(
            f"counts/displs must have one entry per rank "
            f"({len(counts)}/{len(displs)} given for {size} ranks)"
        )
    if any(c < 0 for c in counts):
        raise ValueError(f"negative count in {counts}")


def scatterv_linear(
    ctx: RankCtx,
    group: Group,
    sendbuf: Optional[Buffer],
    counts: Sequence[int],
    displs: Sequence[int],
    recvbuf: Buffer,
    root_index: int = 0,
) -> ProcGen:
    """Linear scatterv: the root sends each rank its
    ``counts[i]``-element slice at ``displs[i]`` (element offsets)."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    _check_layout(counts, displs, size)
    if recvbuf.count != counts[me]:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, my count is {counts[me]}"
        )

    if me == root_index:
        assert sendbuf is not None, "root must supply a send buffer"
        reqs = []
        for i in range(size):
            view = sendbuf.view(displs[i], counts[i])
            if i == root_index:
                yield from ctx.copy(recvbuf, view)
            elif counts[i] > 0:
                req = yield from ctx.isend(group.rank_at(i), view, tag=tag)
                reqs.append(req)
        yield from ctx.waitall(reqs)
    elif counts[me] > 0:
        yield from ctx.recv(group.rank_at(root_index), recvbuf, tag=tag)


def gatherv_linear(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    counts: Sequence[int],
    displs: Sequence[int],
    recvbuf: Optional[Buffer],
    root_index: int = 0,
) -> ProcGen:
    """Linear gatherv: rank ``i``'s ``counts[i]`` elements land at
    ``displs[i]`` of the root's ``recvbuf``."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    _check_layout(counts, displs, size)
    if sendbuf.count != counts[me]:
        raise ValueError(
            f"sendbuf has {sendbuf.count} elements, my count is {counts[me]}"
        )

    if me == root_index:
        assert recvbuf is not None, "root must supply a receive buffer"
        reqs = []
        for i in range(size):
            view = recvbuf.view(displs[i], counts[i])
            if i == root_index:
                yield from ctx.copy(view, sendbuf)
            elif counts[i] > 0:
                reqs.append(ctx.irecv(group.rank_at(i), view, tag=tag))
        yield from ctx.waitall(reqs)
    elif counts[me] > 0:
        yield from ctx.send(group.rank_at(root_index), sendbuf, tag=tag)


def allgatherv_ring(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    counts: Sequence[int],
    displs: Sequence[int],
    recvbuf: Buffer,
) -> ProcGen:
    """Ring allgatherv: ``size - 1`` neighbour rounds with per-rank block
    sizes (zero-count blocks still take a round slot, as in MPICH)."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    _check_layout(counts, displs, size)
    if sendbuf.count != counts[me]:
        raise ValueError(
            f"sendbuf has {sendbuf.count} elements, my count is {counts[me]}"
        )
    needed = max(
        (d + c for d, c in zip(displs, counts)), default=0
    )
    if recvbuf.count < needed:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, layout needs {needed}"
        )

    yield from ctx.copy(recvbuf.view(displs[me], counts[me]), sendbuf)
    if size == 1:
        return

    right = group.rank_at((me + 1) % size)
    left = group.rank_at((me - 1) % size)
    for step in range(size - 1):
        send_block = (me - step) % size
        recv_block = (me - step - 1) % size
        rreq = ctx.irecv(
            left, recvbuf.view(displs[recv_block], counts[recv_block]), tag=tag
        )
        sreq = yield from ctx.isend(
            right, recvbuf.view(displs[send_block], counts[send_block]), tag=tag
        )
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)

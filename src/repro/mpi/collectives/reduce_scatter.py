"""Reduce-scatter algorithms (block variant: equal counts per rank).

Recursive halving is the classical small/medium-message choice for
commutative operations (power-of-two group sizes; general sizes fold to it
inside :func:`~repro.mpi.collectives.allreduce.allreduce_rabenseifner`);
pairwise exchange handles any size with bandwidth-optimal traffic and is
MPICH's large-message commutative default.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen
from repro.util.intmath import is_power_of

__all__ = ["reduce_scatter_halving", "reduce_scatter_pairwise"]


def reduce_scatter_halving(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    recvbuf: Buffer,
    op: ReduceOp,
) -> ProcGen:
    """Recursive-halving reduce-scatter (power-of-two group sizes).

    ``sendbuf`` holds ``size * count`` elements; rank ``i`` ends with
    block ``i`` reduced across all ranks in its ``count``-element
    ``recvbuf``.  ``log2(size)`` rounds, halving the active range each
    time — latency-efficient with exact per-block alignment.
    """
    size = group.size
    if not is_power_of(2, size):
        raise ValueError(
            f"recursive halving needs a power-of-two group size, got {size}"
            " (use reduce_scatter_pairwise for general sizes)"
        )
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = recvbuf.count
    _validate(sendbuf, size, count)

    if size == 1:
        yield from ctx.copy(recvbuf, sendbuf)
        return

    acc = ctx.alloc(sendbuf.dtype, size * count)
    yield from ctx.copy(acc, sendbuf)
    tmp = ctx.alloc(sendbuf.dtype, size * count)

    lo, hi = 0, size
    while hi - lo > 1:
        half = (hi - lo) // 2
        mid = lo + half
        partner = group.rank_at(me ^ half)
        if me < mid:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        else:
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        s_off, s_cnt = send_lo * count, (send_hi - send_lo) * count
        k_off, k_cnt = keep_lo * count, (keep_hi - keep_lo) * count
        rreq = ctx.irecv(partner, tmp.view(k_off, k_cnt), tag=tag)
        sreq = yield from ctx.isend(partner, acc.view(s_off, s_cnt), tag=tag)
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)
        yield from ctx.reduce_into(
            acc.view(k_off, k_cnt), tmp.view(k_off, k_cnt), op
        )
        lo, hi = keep_lo, keep_hi

    assert (lo, hi) == (me, me + 1)
    yield from ctx.copy(recvbuf, acc.view(me * count, count))


def reduce_scatter_pairwise(
    ctx: RankCtx,
    group: Group,
    sendbuf: Buffer,
    recvbuf: Buffer,
    op: ReduceOp,
) -> ProcGen:
    """Pairwise reduce-scatter: ``size - 1`` rounds, any group size.

    Each round sends block ``(me+step)`` directly to its final owner and
    folds the arriving contribution into my own block — every element
    crosses the wire exactly once.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = recvbuf.count
    _validate(sendbuf, size, count)

    yield from ctx.copy(recvbuf, sendbuf.view(me * count, count))
    if size == 1:
        return
    tmp = ctx.alloc(sendbuf.dtype, count)
    for step in range(1, size):
        dst_index = (me + step) % size
        src_index = (me - step) % size
        dst = group.rank_at(dst_index)
        src = group.rank_at(src_index)
        rreq = ctx.irecv(src, tmp, tag=tag)
        sreq = yield from ctx.isend(
            dst, sendbuf.view(dst_index * count, count), tag=tag
        )
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)
        yield from ctx.reduce_into(recvbuf, tmp, op)


def _validate(sendbuf: Buffer, size: int, count: int) -> None:
    if sendbuf.count != size * count:
        raise ValueError(
            f"sendbuf has {sendbuf.count} elements, need {size * count}"
        )

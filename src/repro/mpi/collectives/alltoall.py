"""Alltoall algorithms: Bruck (small messages) and pairwise exchange.

Not part of the paper's evaluated trio, but required as a baseline for the
multi-object alltoall extension (:mod:`repro.core.alltoall`) and a standard
member of any collectives suite.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["alltoall_bruck", "alltoall_pairwise"]


def alltoall_bruck(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Bruck alltoall: ``ceil(log2 size)`` rounds of packed exchanges.

    Invariant: after processing bit ``k``, the block in slot ``j`` still
    has to travel ``j``'s remaining (un-processed) hop distance; at the
    end slot ``j`` holds the data that arrived from ``(me - j) % size``.
    Latency-optimal for small blocks at the price of ``log2``-fold extra
    volume and pack/unpack copies.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count // size
    _validate(sendbuf, recvbuf, size, count)

    if size == 1:
        yield from ctx.copy(recvbuf, sendbuf)
        return

    # phase 1: local rotation — slot j carries data for (me + j) % size
    tmp = ctx.alloc(sendbuf.dtype, size * count)
    head = size - me
    yield from ctx.copy(
        tmp.view(0, head * count), sendbuf.view(me * count, head * count)
    )
    if me:
        yield from ctx.copy(
            tmp.view(head * count, me * count), sendbuf.view(0, me * count)
        )

    # phase 2: bit rounds — blocks whose slot index has bit k set jump 2^k
    pack = ctx.alloc(sendbuf.dtype, ((size + 1) // 2) * count)
    pof = 1
    while pof < size:
        slots = [j for j in range(size) if j & pof]
        nblk = len(slots)
        for i, j in enumerate(slots):
            yield from ctx.copy(
                pack.view(i * count, count), tmp.view(j * count, count)
            )
        dst = group.rank_at((me + pof) % size)
        src = group.rank_at((me - pof) % size)
        rbuf = ctx.alloc(sendbuf.dtype, nblk * count)
        rreq = ctx.irecv(src, rbuf, tag=tag)
        sreq = yield from ctx.isend(dst, pack.view(0, nblk * count), tag=tag)
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)
        for i, j in enumerate(slots):
            yield from ctx.copy(
                tmp.view(j * count, count), rbuf.view(i * count, count)
            )
        pof <<= 1

    # phase 3: slot j arrived from (me - j) % size
    for j in range(size):
        src_index = (me - j) % size
        yield from ctx.copy(
            recvbuf.view(src_index * count, count), tmp.view(j * count, count)
        )


def alltoall_pairwise(
    ctx: RankCtx, group: Group, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Pairwise-exchange alltoall: ``size - 1`` direct rounds, no packing.

    Bandwidth-optimal (each block crosses the wire once, straight into its
    final position) — the classical large-message choice.
    """
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    count = sendbuf.count // size
    _validate(sendbuf, recvbuf, size, count)

    yield from ctx.copy(
        recvbuf.view(me * count, count), sendbuf.view(me * count, count)
    )
    for step in range(1, size):
        dst_index = (me + step) % size
        src_index = (me - step) % size
        dst = group.rank_at(dst_index)
        src = group.rank_at(src_index)
        rreq = ctx.irecv(src, recvbuf.view(src_index * count, count), tag=tag)
        sreq = yield from ctx.isend(
            dst, sendbuf.view(dst_index * count, count), tag=tag
        )
        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)


def _validate(sendbuf: Buffer, recvbuf: Buffer, size: int, count: int) -> None:
    if sendbuf.count != size * count or sendbuf.count % size:
        raise ValueError(
            f"sendbuf must hold one equal block per rank: "
            f"{sendbuf.count} elements across {size} ranks"
        )
    if recvbuf.count != sendbuf.count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {sendbuf.count}"
        )

"""Dissemination barrier (MPICH default)."""

from __future__ import annotations

from repro.mpi.collectives.group import Group
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["barrier_dissemination"]


def barrier_dissemination(ctx: RankCtx, group: Group) -> ProcGen:
    """``ceil(log2 size)`` rounds of zero-byte token exchanges."""
    size = group.size
    me = group.index_of(ctx.rank)
    tag = ctx.collective_tag(group)
    if size == 1:
        return

    token = ctx.alloc_bytes(0)
    mask = 1
    while mask < size:
        dst = group.rank_at((me + mask) % size)
        src = group.rank_at((me - mask) % size)
        yield from ctx.sendrecv(dst, token, src, token, tag=tag)
        mask <<= 1

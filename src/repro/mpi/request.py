"""Nonblocking communication requests."""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional

from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.buffer import Buffer

__all__ = ["Request"]


class Request:
    """Handle for an in-flight send or receive.

    * ``kind == "send"``: ``match_event`` fires at local completion (the
      send buffer is reusable).  Waiting costs nothing beyond the event.
    * ``kind == "recv"``: ``match_event`` fires at *match* with the
      :class:`~repro.mpi.transport.Message`; the receiver-side work (fixed
      costs, copies, data movement) runs inside the waiting process — MPI's
      "progress happens on wait" behaviour.
    """

    __slots__ = ("kind", "match_event", "buf", "src", "dst", "tag", "completed")

    def __init__(
        self,
        kind: str,
        match_event: Event,
        buf: Optional["Buffer"] = None,
        src: int = -1,
        dst: int = -1,
        tag: Hashable = 0,
    ):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad request kind: {kind!r}")
        self.kind = kind
        self.match_event = match_event
        self.buf = buf
        self.src = src
        self.dst = dst
        self.tag = tag
        self.completed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} {self.src}->{self.dst} tag={self.tag} {state}>"

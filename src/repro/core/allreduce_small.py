"""PiP-MColl small-message MPI_Allreduce (§III-A3).

Structure follows the paper: intranode binomial reduce into the local
root's buffer, then radix-``P+1`` multi-object Bruck rounds — every round,
all P processes of a node send the node's accumulated partial to P distinct
nodes, receive P partials, and fold them in with a chunk-parallel intranode
reduction — then a final intranode broadcast.

Remainder handling (documented deviation): the paper's §III-A3 steps 5–6
describe per-round remainder buffers ``A_r`` but under-specify the
recurrence.  We implement the *digit-decomposition* scheme those remainder
buffers enable, which is exactly reconstructible and provably correct for
any ``N``:

* run the ``k = floor(log_{P+1} N)`` full rounds; after round ``j`` the
  node's accumulator covers a window of ``(P+1)^(j+1)`` consecutive nodes;
* whenever the base-``(P+1)`` digit ``d_j`` of ``R = N - (P+1)^k`` is
  non-zero, snapshot the accumulator after round ``j`` (the paper's
  remainder buffer);
* finish with one extra phase that tiles the remaining ``R`` nodes with
  ``sum(d_j) <= P * (k+1)`` window-snapshot exchanges, spread round-robin
  over the P processes (multi-object, like everything else).

For power-of-``(P+1)`` node counts this is exactly the paper's algorithm;
otherwise it costs one extra communication phase, the same order the
paper's remainder stage pays.

The per-round intranode synchronisation this algorithm needs is the
"multi-object synchronisation" overhead §IV-B3 discusses — it is charged
faithfully through the PiP counter costs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen
from repro.util.intmath import ilog

from repro.core.intranode import intra_barrier, intra_reduce_binomial

__all__ = ["mcoll_allreduce_small"]


def _digits(value: int, base: int, ndigits: int) -> List[int]:
    """Base-``base`` digits of ``value``, least significant first."""
    out = []
    for _ in range(ndigits):
        value, d = divmod(value, base)
        out.append(d)
    return out


def mcoll_allreduce_small(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, op: ReduceOp
) -> ProcGen:
    """Allreduce ``sendbuf`` into every rank's ``recvbuf`` (both ``count``
    elements)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != C:
        raise ValueError(f"recvbuf has {recvbuf.count} elements, need {C}")
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board
    B = P + 1

    # -- 1. intranode binomial reduce into the local root's recvbuf --------
    yield from intra_reduce_binomial(
        ctx, sendbuf, recvbuf if ctx.local_rank == 0 else None, op
    )
    if ctx.local_rank == 0:
        acc = recvbuf
        yield from board.post((ns, "acc"), acc)
    else:
        acc = yield from board.lookup((ns, "acc"))

    if N > 1:
        k = ilog(B, N)
        W = B**k
        R = N - W
        digits = _digits(R, B, k + 1)

        # persistent per-process receive temp, posted once (the real
        # implementation exchanges these addresses at communicator setup)
        temp = ctx.alloc(sendbuf.dtype, C)
        yield from board.post((ns, "tmp", ctx.local_rank), temp)
        peer_temps: List[Buffer] = []
        for l in range(P):
            if l == ctx.local_rank:
                peer_temps.append(temp)
            else:
                t = yield from board.lookup((ns, "tmp", l))
                peer_temps.append(t)

        my_off, my_cnt = _my_chunk(ctx, C)

        # snapshot buffers for non-zero remainder digits (paper's A_r);
        # snapshot j holds acc when its window is (P+1)^j nodes wide.
        # j == k needs no buffer: that window is acc after the full rounds.
        snaps: Dict[int, Buffer] = {}
        for j in range(k):
            if digits[j]:
                if ctx.local_rank == 0:
                    s = ctx.alloc(sendbuf.dtype, C)
                    yield from board.post((ns, "snap", j), s)
                else:
                    s = yield from board.lookup((ns, "snap", j))
                snaps[j] = s

        # window-1 snapshot: acc before any internode round touches it
        if 0 in snaps:
            if my_cnt:
                yield from ctx.copy(
                    snaps[0].view(my_off, my_cnt), acc.view(my_off, my_cnt)
                )
            yield from intra_barrier(ctx, (ns, "snap-bar", 0))

        # -- 2. full multi-object Bruck rounds ------------------------------
        for j in range(k):
            S = B**j
            offset = (ctx.local_rank + 1) * S
            dst = ctx.rank_of((ctx.node - offset) % N, ctx.local_rank)
            src = ctx.rank_of((ctx.node + offset) % N, ctx.local_rank)
            rreq = ctx.irecv(src, temp, tag=tag)
            sreq = yield from ctx.isend(dst, acc, tag=tag)
            yield from ctx.wait(rreq)
            yield from ctx.wait(sreq)
            yield from intra_barrier(ctx, (ns, "recvd", j))
            # chunk-parallel fold of all P received partials into acc
            if my_cnt:
                for t in peer_temps:
                    yield from ctx.reduce_into(
                        acc.view(my_off, my_cnt), t.view(my_off, my_cnt), op
                    )
            yield from intra_barrier(ctx, (ns, "folded", j))
            if (j + 1) in snaps:
                # window B^(j+1) snapshot, chunk-parallel copy
                if my_cnt:
                    yield from ctx.copy(
                        snaps[j + 1].view(my_off, my_cnt), acc.view(my_off, my_cnt)
                    )
                yield from intra_barrier(ctx, (ns, "snap-bar", j + 1))

        # -- 3. remainder phase (digit decomposition) ------------------------
        if R:
            pairs: List[Tuple[int, int]] = []  # (node offset, window round j)
            O = W
            for j in range(k, -1, -1):
                for _ in range(digits[j]):
                    pairs.append((O, j))
                    O += B**j
            assert O == N
            mine = pairs[ctx.local_rank :: P]
            rtemps = []
            reqs = []
            for idx, (offset, j) in enumerate(mine):
                src = ctx.rank_of((ctx.node + offset) % N, ctx.local_rank)
                dst = ctx.rank_of((ctx.node - offset) % N, ctx.local_rank)
                rt = ctx.alloc(sendbuf.dtype, C)
                yield from board.post((ns, "rtmp", ctx.local_rank, idx), rt)
                rtemps.append(rt)
                payload = acc if j == k else snaps[j]
                reqs.append(ctx.irecv(src, rt, tag=tag + 1 + idx))
                sreq = yield from ctx.isend(dst, payload, tag=tag + 1 + idx)
                reqs.append(sreq)
            yield from ctx.waitall(reqs)
            yield from intra_barrier(ctx, (ns, "rem-recvd"))
            # chunk-parallel fold of every remainder temp into acc
            if my_cnt:
                for l in range(P):
                    n_l = len(pairs[l::P])
                    for idx in range(n_l):
                        if l == ctx.local_rank:
                            rt = rtemps[idx]
                        else:
                            rt = yield from board.lookup((ns, "rtmp", l, idx))
                        yield from ctx.reduce_into(
                            acc.view(my_off, my_cnt), rt.view(my_off, my_cnt), op
                        )
            yield from intra_barrier(ctx, (ns, "rem-folded"))

    # -- 4. intranode broadcast of the final result -------------------------
    if ctx.local_rank != 0:
        yield from ctx.copy(recvbuf, acc)


def _my_chunk(ctx: RankCtx, count: int) -> Tuple[int, int]:
    """This process's chunk of a ``count``-element node buffer."""
    counts, displs = block_partition(count, ctx.ppn)
    return displs[ctx.local_rank], counts[ctx.local_rank]

"""PiP-MColl small-message MPI_Allreduce (§III-A3).

Structure follows the paper: intranode binomial reduce into the local
root's buffer, then radix-``P+1`` multi-object Bruck rounds — every round,
all P processes of a node send the node's accumulated partial to P distinct
nodes, receive P partials, and fold them in with a chunk-parallel intranode
reduction — then a final intranode broadcast.

Remainder handling (documented deviation): the paper's §III-A3 steps 5–6
describe per-round remainder buffers ``A_r`` but under-specify the
recurrence.  We implement the *digit-decomposition* scheme those remainder
buffers enable, which is exactly reconstructible and provably correct for
any ``N``:

* run the ``k = floor(log_{P+1} N)`` full rounds; after round ``j`` the
  node's accumulator covers a window of ``(P+1)^(j+1)`` consecutive nodes;
* whenever the base-``(P+1)`` digit ``d_j`` of ``R = N - (P+1)^k`` is
  non-zero, snapshot the accumulator after round ``j`` (the paper's
  remainder buffer);
* finish with one extra phase that tiles the remaining ``R`` nodes with
  ``sum(d_j) <= P * (k+1)`` window-snapshot exchanges, spread round-robin
  over the P processes (multi-object, like everything else).

For power-of-``(P+1)`` node counts this is exactly the paper's algorithm;
otherwise it costs one extra communication phase, the same order the
paper's remainder stage pays.

The per-round intranode synchronisation this algorithm needs is the
"multi-object synchronisation" overhead §IV-B3 discusses — it is charged
faithfully through the PiP counter costs.

Compiled by :func:`repro.sched.plans.mcoll.plan_allreduce_small` and
replayed by the :class:`~repro.sched.executor.ScheduleExecutor`.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.mcoll import plan_allreduce_small
from repro.sim.engine import ProcGen

__all__ = ["mcoll_allreduce_small"]


def mcoll_allreduce_small(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, op: ReduceOp
) -> ProcGen:
    """Allreduce ``sendbuf`` into every rank's ``recvbuf`` (both ``count``
    elements)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != C:
        raise ValueError(f"recvbuf has {recvbuf.count} elements, need {C}")
    schedule = plan_allreduce_small(N, P, C)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}, op=op
    )

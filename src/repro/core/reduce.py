"""Multi-object MPI_Reduce (extension).

Rabenseifner's insight (reduce-scatter, then collect) composed from the
paper's multi-object pieces:

1. intranode chunk-parallel reduce per node (Fig. 5) into the local
   root's accumulator;
2. the internode multi-object reduce-scatter of §III-B2 — node ``n`` ends
   owning chunk ``n`` of the global reduction;
3. chunk collection: the process owning node ``n``'s chunk ships it to the
   same-lane process on the root node, which stores it **directly into the
   root's receive buffer** (posted on the board) — the root node's P
   processes again form P concurrent receive lanes.

Bandwidth-optimal (``~2 * C * (N-1)/N`` internode bytes per node) versus
the binomial tree's ``C * log2(N*P)``.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

from repro.core.intranode import intra_barrier, intra_reduce_chunked

__all__ = ["mcoll_reduce"]


def mcoll_reduce(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer | None, op: ReduceOp,
    root: int = 0,
) -> ProcGen:
    """Reduce every rank's ``sendbuf`` into ``root``'s ``recvbuf``
    (both ``count`` elements)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board
    root_node = ctx.node_of(root)

    if ctx.rank == root:
        assert recvbuf is not None, "root must supply a receive buffer"
        if recvbuf.count != C:
            raise ValueError(f"recvbuf has {recvbuf.count} elements, need {C}")
        yield from board.post((ns, "dst"), recvbuf)

    # -- 1. intranode chunk-parallel reduce --------------------------------
    if ctx.local_rank == 0:
        A = ctx.alloc(sendbuf.dtype, C)
        yield from board.post((ns, "A"), A)
    else:
        A = yield from board.lookup((ns, "A"))
    yield from intra_reduce_chunked(
        ctx, sendbuf, A if ctx.local_rank == 0 else None, op, all_wait=True
    )

    chunk_counts, chunk_displs = block_partition(C, N)
    node_counts, node_displs = block_partition(N, P)

    def owner_of(node: int) -> int:
        for lr, (cnt, off) in enumerate(zip(node_counts, node_displs)):
            if off <= node < off + cnt:
                return lr
        raise AssertionError(f"node {node} uncovered")

    if N > 1:
        # -- 2. internode multi-object reduce-scatter (as §III-B2) ----------
        my_nodes = range(
            node_displs[ctx.local_rank],
            node_displs[ctx.local_rank] + node_counts[ctx.local_rank],
        )
        owner_local = owner_of(ctx.node)
        reqs = []
        rtemps = []
        if ctx.local_rank == owner_local and chunk_counts[ctx.node]:
            for n in range(N):
                if n == ctx.node:
                    continue
                rt = ctx.alloc(sendbuf.dtype, chunk_counts[ctx.node])
                rtemps.append(rt)
                reqs.append(ctx.irecv(ctx.rank_of(n, owner_local), rt, tag=tag))
        for n in my_nodes:
            if n == ctx.node or chunk_counts[n] == 0:
                continue
            sreq = yield from ctx.isend(
                ctx.rank_of(n, owner_of(n)),
                A.view(chunk_displs[n], chunk_counts[n]),
                tag=tag,
            )
            reqs.append(sreq)
        yield from ctx.waitall(reqs)
        for rt in rtemps:
            yield from ctx.reduce_into(
                A.view(chunk_displs[ctx.node], chunk_counts[ctx.node]), rt, op
            )
        yield from intra_barrier(ctx, (ns, "rs-done"))

    # -- 3. collect chunks at the root --------------------------------------
    done = ctx.pip.counter((ns, "collected")) if ctx.node == root_node else None
    if ctx.node == root_node:
        dst = yield from board.lookup((ns, "dst"))
        # receive the chunks my lane owns from their (remote) owner nodes
        reqs = []
        for n in range(N):
            if n == root_node or chunk_counts[n] == 0:
                continue
            if owner_of(n) != ctx.local_rank:
                continue
            src = ctx.rank_of(n, owner_of(n))
            reqs.append(
                ctx.irecv(
                    src, dst.view(chunk_displs[n], chunk_counts[n]),
                    tag=(tag, "col"),
                )
            )
        # the root node's own chunk is stored locally by its owner lane
        if owner_of(root_node) == ctx.local_rank and chunk_counts[root_node]:
            yield from ctx.copy(
                dst.view(chunk_displs[root_node], chunk_counts[root_node]),
                A.view(chunk_displs[root_node], chunk_counts[root_node]),
            )
        yield from ctx.waitall(reqs)
        yield from done.add(1)
        if ctx.rank == root:
            yield from done.wait_at_least(P)
    else:
        # ship my node's chunk to the root node's same-lane process
        if ctx.local_rank == owner_of(ctx.node) and chunk_counts[ctx.node]:
            yield from ctx.send(
                ctx.rank_of(root_node, ctx.local_rank),
                A.view(chunk_displs[ctx.node], chunk_counts[ctx.node]),
                tag=(tag, "col"),
            )

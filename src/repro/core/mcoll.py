"""The PiP-MColl library facade.

Bundles the multi-object collective algorithms behind the common
:class:`~repro.baselines.base.MpiLibrary` interface, with the paper's
size-based algorithm switching (§IV-D) and the PiP intranode transport for
any point-to-point traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import MpiLibrary
from repro.core.allgather_large import mcoll_allgather_large
from repro.core.allgather_small import mcoll_allgather_small
from repro.core.allreduce_large import mcoll_allreduce_large
from repro.core.allreduce_small import mcoll_allreduce_small
from repro.core.alltoall import mcoll_alltoall
from repro.core.barrier import mcoll_barrier
from repro.core.bcast import mcoll_bcast
from repro.core.gather import mcoll_gather
from repro.core.reduce import mcoll_reduce
from repro.core.intranode import (
    intra_bcast,
    intra_gather,
    intra_reduce_binomial,
    intra_reduce_chunked,
)
from repro.core.scatter import mcoll_scatter
from repro.core.tuning import Thresholds
from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.shmem.mechanisms import PipShmem
from repro.sim.engine import ProcGen

__all__ = ["PiPMColl"]


class PiPMColl(MpiLibrary):
    """Process-in-Process-based multi-object MPI collectives."""

    name = "PiP-MColl"

    def __init__(self, thresholds: Thresholds | None = None):
        self.thresholds = thresholds or Thresholds()

    def make_mechanism(self) -> PipShmem:
        return PipShmem()

    # -- primary collectives (§III-A, §III-B) -------------------------------

    def scatter(
        self, ctx: RankCtx, sendbuf: Optional[Buffer], recvbuf: Buffer,
        root: int = 0,
    ) -> ProcGen:
        """Multi-object scatter; one algorithm across all sizes (§III-A1)."""
        yield from self._enter(ctx)
        yield from mcoll_scatter(ctx, sendbuf, recvbuf, root)

    def allgather(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        """Multi-object allgather with the 64 kB algorithm switch."""
        yield from self._enter(ctx)
        if sendbuf.nbytes < self.thresholds.allgather_large_bytes:
            yield from mcoll_allgather_small(ctx, sendbuf, recvbuf)
        else:
            yield from mcoll_allgather_large(ctx, sendbuf, recvbuf)

    def allreduce(
        self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, op: ReduceOp
    ) -> ProcGen:
        """Multi-object allreduce with the 8 k-double (64 kB) switch."""
        yield from self._enter(ctx)
        if sendbuf.nbytes < self.thresholds.allreduce_large_bytes:
            yield from mcoll_allreduce_small(ctx, sendbuf, recvbuf, op)
        else:
            yield from mcoll_allreduce_large(ctx, sendbuf, recvbuf, op)

    # -- extension collectives (multi-object beyond the paper's three) ------

    def alltoall(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        """Multi-object pairwise alltoall (extension; see core.alltoall)."""
        yield from self._enter(ctx)
        yield from mcoll_alltoall(ctx, sendbuf, recvbuf)

    def bcast(self, ctx: RankCtx, buf: Buffer, root: int = 0) -> ProcGen:
        """Multi-object internode broadcast (extension; see core.bcast)."""
        yield from self._enter(ctx)
        yield from mcoll_bcast(ctx, buf, root)

    def barrier(self, ctx: RankCtx) -> ProcGen:
        """Multi-object dissemination barrier (extension; see core.barrier)."""
        yield from self._enter(ctx)
        yield from mcoll_barrier(ctx)

    def gather(self, ctx: RankCtx, sendbuf: Buffer,
               recvbuf: Optional[Buffer], root: int = 0) -> ProcGen:
        """Multi-object gather (extension; see core.gather)."""
        yield from self._enter(ctx)
        yield from mcoll_gather(ctx, sendbuf, recvbuf, root)

    def reduce(self, ctx: RankCtx, sendbuf: Buffer,
               recvbuf: Optional[Buffer], op: ReduceOp,
               root: int = 0) -> ProcGen:
        """Multi-object reduce (extension; see core.reduce).

        Below the allreduce switch point the reduce-scatter structure
        cannot amortise its per-chunk traffic, so small payloads take a
        latency-oriented path: PiP intranode binomial reduce, then a
        binomial tree over the node leaders."""
        yield from self._enter(ctx)
        if sendbuf.nbytes < self.thresholds.allreduce_large_bytes:
            yield from self._reduce_small(ctx, sendbuf, recvbuf, op, root)
        else:
            yield from mcoll_reduce(ctx, sendbuf, recvbuf, op, root)

    @staticmethod
    def _reduce_small(ctx: RankCtx, sendbuf: Buffer,
                      recvbuf: Optional[Buffer], op: ReduceOp,
                      root: int) -> ProcGen:
        from repro.mpi.collectives import Group, reduce_binomial

        root_node = ctx.node_of(root)
        root_leader = ctx.rank_of(root_node, 0)
        tag = ("mred", root)
        # PiP intranode reduce into the local root (zero copies, no p2p)
        partial = ctx.alloc(sendbuf.dtype, sendbuf.count)
        yield from intra_reduce_binomial(
            ctx, sendbuf, partial if ctx.local_rank == 0 else None, op
        )
        if ctx.nodes == 1:
            if ctx.local_rank == 0:
                if ctx.rank == root:
                    yield from ctx.copy(recvbuf, partial)
                else:
                    yield from ctx.send(root, partial, tag=tag)
            if ctx.rank == root and ctx.local_rank != 0:
                yield from ctx.recv(ctx.local_root_rank(), recvbuf, tag=tag)
            return
        leaders = Group([ctx.rank_of(n, 0) for n in range(ctx.nodes)])
        if ctx.local_rank == 0:
            if ctx.rank == root:
                result = recvbuf
            elif ctx.rank == root_leader:
                result = ctx.alloc(sendbuf.dtype, sendbuf.count)
            else:
                result = None
            yield from reduce_binomial(
                ctx, leaders, partial, result, op,
                leaders.index_of(root_leader),
            )
            if ctx.rank == root_leader and ctx.rank != root:
                yield from ctx.send(root, result, tag=tag)
        if ctx.rank == root and ctx.rank != root_leader:
            assert recvbuf is not None
            yield from ctx.recv(root_leader, recvbuf, tag=tag)

    # -- auxiliary intranode collectives (§III-C), exposed for completeness --

    @staticmethod
    def intra_bcast(ctx: RankCtx, buf: Buffer, root_local: int = 0,
                    large: bool = False) -> ProcGen:
        yield from intra_bcast(ctx, buf, root_local, large)

    @staticmethod
    def intra_gather(ctx: RankCtx, sendbuf: Buffer, recvbuf: Optional[Buffer],
                     root_local: int = 0) -> ProcGen:
        yield from intra_gather(ctx, sendbuf, recvbuf, root_local)

    @staticmethod
    def intra_reduce(ctx: RankCtx, sendbuf: Buffer, recvbuf: Optional[Buffer],
                     op: ReduceOp, root_local: int = 0,
                     large: bool = False) -> ProcGen:
        if large:
            yield from intra_reduce_chunked(ctx, sendbuf, recvbuf, op, root_local)
        else:
            yield from intra_reduce_binomial(ctx, sendbuf, recvbuf, op, root_local)

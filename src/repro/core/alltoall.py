"""Multi-object PiP MPI_Alltoall (extension).

Alltoall is the heaviest classical collective; the paper's ingredients
compose into a natural multi-object design:

* every local rank posts its send buffer on the node's address board —
  thanks to the PiP shared address space there is **no intranode gather
  copy at all**;
* nodes exchange pairwise (``N - 1`` steps) with **P independent lanes**:
  in step ``s``, process ``R_l`` packs, straight out of its peers' posted
  buffers, the ``P`` blocks destined to rank ``(node+s, R_l)`` and sends
  them as one message — and receives node ``(node-s)``'s aggregate for
  itself **directly into its receive buffer** (the P source blocks of one
  node are contiguous in global-rank order, so no unpack copy either);
* the intranode exchange (own node's blocks) is a straight P-way parallel
  copy out of the posted buffers, overlapped with the first wire step.

Per node per step the P lanes move ``P^2 * C`` bytes — each block crosses
the wire exactly once (pairwise-optimal volume) with P concurrent
senders/receivers per node and a single pack copy as the only staging.
"""

from __future__ import annotations

from typing import List

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

from repro.core.intranode import intra_barrier

__all__ = ["mcoll_alltoall"]


def mcoll_alltoall(ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
    """Alltoall: block ``r`` of my ``sendbuf`` lands in block ``me`` of
    rank ``r``'s ``recvbuf`` (equal blocks of ``count`` elements)."""
    N, P = ctx.nodes, ctx.ppn
    size = ctx.world_size
    if sendbuf.count % size:
        raise ValueError(
            f"sendbuf must hold one equal block per rank: "
            f"{sendbuf.count} elements across {size} ranks"
        )
    C = sendbuf.count // size
    if recvbuf.count != sendbuf.count:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {sendbuf.count}"
        )
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board

    # post my send buffer; resolve every local peer's
    yield from board.post((ns, "src", ctx.local_rank), sendbuf)
    peers: List[Buffer] = []
    for l in range(P):
        if l == ctx.local_rank:
            peers.append(sendbuf)
        else:
            buf = yield from board.lookup((ns, "src", l))
            peers.append(buf)

    me = ctx.rank

    def pack_for(dst_node: int, dst_local: int, dest: Buffer) -> ProcGen:
        """Copy the P local blocks destined to (dst_node, dst_local) into
        ``dest`` ordered by source local rank."""
        target = ctx.rank_of(dst_node, dst_local)
        for l in range(P):
            yield from ctx.copy(
                dest.view(l * C, C), peers[l].view(target * C, C)
            )

    if N > 1:
        lane = ctx.alloc(sendbuf.dtype, P * C)
        first = True
        for step in range(1, N):
            dst_node = (ctx.node + step) % N
            src_node = (ctx.node - step) % N
            # node src_node's P source blocks for me are contiguous at
            # global-rank offset src_node * P
            rreq = ctx.irecv(
                ctx.rank_of(src_node, ctx.local_rank),
                recvbuf.view(src_node * P * C, P * C),
                tag=tag,
            )
            yield from pack_for(dst_node, ctx.local_rank, lane)
            sreq = yield from ctx.isend(
                ctx.rank_of(dst_node, ctx.local_rank), lane, tag=tag
            )
            if first:
                # overlapped intranode exchange of my own node's blocks
                yield from pack_for(
                    ctx.node, ctx.local_rank,
                    recvbuf.view(ctx.node * P * C, P * C),
                )
                first = False
            yield from ctx.wait(rreq)
            yield from ctx.wait(sreq)
            # the lane buffer is reused next step: the send has locally
            # completed (wait returned), so it is safe to repack
    else:
        yield from pack_for(ctx.node, ctx.local_rank,
                            recvbuf.view(ctx.node * P * C, P * C))

    # all local sends read the posted buffers; keep them valid until the
    # node is completely done
    yield from intra_barrier(ctx, (ns, "done"))

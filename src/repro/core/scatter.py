"""PiP-MColl multi-object MPI_Scatter (§III-A1, Fig. 2).

The conventional binomial scatter moves data between *one* sender/receiver
pair per node per round.  PiP-MColl instead uses every process on a data-
holding node as a sender: the node group splits into ``P + 1`` sub-groups
per round — the root node keeps one, and local process ``R_l`` ships the
data for sub-group ``R_l + 1`` to that sub-group's root node, **directly
out of the local root's buffer** (possible only because PiP lets any local
process read it without copies or syscalls).  The intranode scatter — each
process copying its own ``C_b`` elements into its receive buffer — is
overlapped with the in-flight internode sends.

Generalisations over the paper's presentation (which assumes ``N`` is a
power of ``P+1``): node groups split into ``min(P+1, n)`` near-equal
consecutive chunks, so any ``(N, P)`` works; arbitrary roots are handled
with one virtual-node rotation copy at the root, exactly as MPICH pays for
non-zero roots.

Cost model (§III-A1): ``T = max(T_intrascatter, T_interscatter)`` with
``T_intrascatter = a_r + P*C_b*b_r`` and
``T_interscatter = a_e*ceil(log_{P+1} N) + C_b*(N-1)*P*b_e``.

The algorithm is compiled to a per-rank schedule by
:func:`repro.sched.plans.mcoll.plan_scatter` and replayed here by the
:class:`~repro.sched.executor.ScheduleExecutor` — bit-identical in
simulated time to the generator it replaced.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.mcoll import plan_scatter
from repro.sim.engine import ProcGen

__all__ = ["mcoll_scatter"]


def mcoll_scatter(
    ctx: RankCtx, sendbuf: Buffer | None, recvbuf: Buffer, root: int = 0,
    overlap: bool = True,
) -> ProcGen:
    """Scatter ``root``'s ``sendbuf`` (``world_size * count`` elements,
    global-rank order) into every rank's ``recvbuf`` (``count`` elements).

    ``overlap=False`` disables the overlapped intranode scatter (the own-
    block copy then happens only after the internode sends complete) — an
    ablation knob for the design choice §III-A1 calls out.
    """
    if ctx.rank == root:
        assert sendbuf is not None, "root must supply a send buffer"
    schedule = plan_scatter(ctx.nodes, ctx.ppn, recvbuf.count, root, overlap)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}
    )

"""PiP-MColl multi-object MPI_Scatter (§III-A1, Fig. 2).

The conventional binomial scatter moves data between *one* sender/receiver
pair per node per round.  PiP-MColl instead uses every process on a data-
holding node as a sender: the node group splits into ``P + 1`` sub-groups
per round — the root node keeps one, and local process ``R_l`` ships the
data for sub-group ``R_l + 1`` to that sub-group's root node, **directly
out of the local root's buffer** (possible only because PiP lets any local
process read it without copies or syscalls).  The intranode scatter — each
process copying its own ``C_b`` elements into its receive buffer — is
overlapped with the in-flight internode sends.

Generalisations over the paper's presentation (which assumes ``N`` is a
power of ``P+1``): node groups split into ``min(P+1, n)`` near-equal
consecutive chunks, so any ``(N, P)`` works; arbitrary roots are handled
with one virtual-node rotation copy at the root, exactly as MPICH pays for
non-zero roots.

Cost model (§III-A1): ``T = max(T_intrascatter, T_interscatter)`` with
``T_intrascatter = a_r + P*C_b*b_r`` and
``T_interscatter = a_e*ceil(log_{P+1} N) + C_b*(N-1)*P*b_e``.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["mcoll_scatter"]


def mcoll_scatter(
    ctx: RankCtx, sendbuf: Buffer | None, recvbuf: Buffer, root: int = 0,
    overlap: bool = True,
) -> ProcGen:
    """Scatter ``root``'s ``sendbuf`` (``world_size * count`` elements,
    global-rank order) into every rank's ``recvbuf`` (``count`` elements).

    ``overlap=False`` disables the overlapped intranode scatter (the own-
    block copy then happens only after the internode sends complete) — an
    ablation knob for the design choice §III-A1 calls out.
    """
    N, P, C = ctx.nodes, ctx.ppn, recvbuf.count
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board
    root_node = ctx.node_of(root)
    root_local = root - root_node * P
    vnode = (ctx.node - root_node) % N  # virtual node id, root node first

    # ---- root: stage data in virtual-node order and post it --------------
    if ctx.rank == root:
        assert sendbuf is not None, "root must supply a send buffer"
        block = P * C
        if root_node == 0 or N == 1:
            staging = sendbuf
        else:
            # one rotation copy so virtual node v's block sits at v * block
            staging = ctx.alloc(sendbuf.dtype, N * block)
            head = (N - root_node) * block
            yield from ctx.copy(staging.view(0, head), sendbuf.view(root_node * block, head))
            yield from ctx.copy(staging.view(head, N * block - head), sendbuf.view(0, N * block - head))
        yield from board.post((ns, "stage"), (staging, 0))

    # ---- internode (P+1)-ary tree rounds ---------------------------------
    staging = None
    sbase = 0  # virtual node id of staging block 0
    copied_own = False
    lo, hi = 0, N
    while hi - lo > 1:
        n = hi - lo
        parts = min(P + 1, n)
        counts, displs = block_partition(n, parts)
        if vnode == lo:
            # I am on the group-root node: multi-object send phase
            if staging is None:
                staging, sbase = yield from board.lookup((ns, "stage"))
            chunk = ctx.local_rank + 1
            req = None
            if chunk < parts and counts[chunk] > 0:
                dst_v = lo + displs[chunk]
                dst_rank = ctx.rank_of((root_node + dst_v) % N, 0)
                off = (dst_v - sbase) * P * C
                req = yield from ctx.isend(
                    dst_rank, staging.view(off, counts[chunk] * P * C), tag=tag
                )
            if overlap and not copied_own:
                # overlapped intranode scatter of my own C elements
                off = (vnode - sbase) * P * C + ctx.local_rank * C
                yield from ctx.copy(recvbuf, staging.view(off, C))
                copied_own = True
            if req is not None:
                yield from ctx.wait(req)
            hi = lo + counts[0]
        else:
            # find my chunk and narrow
            rel = vnode - lo
            chunk = 0
            while not (displs[chunk] <= rel < displs[chunk] + counts[chunk]):
                chunk += 1
            new_lo = lo + displs[chunk]
            if vnode == new_lo and ctx.local_rank == 0:
                # my node receives its sub-tree's data this round
                stg = ctx.alloc(recvbuf.dtype, counts[chunk] * P * C)
                src_rank = ctx.rank_of((root_node + lo) % N, chunk - 1)
                yield from ctx.recv(src_rank, stg, tag=tag)
                yield from board.post((ns, "stage"), (stg, new_lo))
            lo, hi = new_lo, new_lo + counts[chunk]

    # ---- final intranode scatter for ranks that never sent ---------------
    if not copied_own:
        if staging is None:
            staging, sbase = yield from board.lookup((ns, "stage"))
        off = (vnode - sbase) * P * C + ctx.local_rank * C
        yield from ctx.copy(recvbuf, staging.view(off, C))

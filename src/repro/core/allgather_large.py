"""PiP-MColl medium/large-message MPI_Allgather (§III-B1, Fig. 4).

Intranode gather into the local root's staging buffer (absolute node-block
order), then the multi-object ring of :mod:`repro.core.ring`: ``N - 1``
steps, P independent ring lanes per node (process ``R_l`` rings slice
``R_l`` of every node block), with the intranode broadcast of completed
blocks overlapped with the in-flight ring transfers.

Linear in ``C_b`` (vs. the small-message algorithm's quadratic growth) and
bandwidth-optimal in total internode traffic — the paper switches to this
algorithm at 64 kB.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

from repro.core.intranode import intra_barrier
from repro.core.ring import ring_allgather_blocks

__all__ = ["mcoll_allgather_large"]


def mcoll_allgather_large(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, overlap: bool = True
) -> ProcGen:
    """Allgather ``sendbuf`` (``count`` elements per rank) into every rank's
    ``recvbuf`` (``world_size * count``, global-rank order).

    ``overlap=False`` defers the intranode broadcast until after the ring —
    the ablation knob for §III-B1's overlap design choice."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != N * P * C:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {N * P * C}"
        )
    ns = ctx.next_op_seq()
    board = ctx.pip.board
    block = P * C

    # -- 1. intranode gather into the local root's staging (absolute order)
    if ctx.local_rank == 0:
        A = ctx.alloc(sendbuf.dtype, N * block)
        yield from board.post((ns, "A"), A)
    else:
        A = yield from board.lookup((ns, "A"))
    yield from ctx.copy(
        A.view(ctx.node * block + ctx.local_rank * C, C), sendbuf
    )
    yield from intra_barrier(ctx, (ns, "gathered"))

    # -- 2+3. multi-object ring with overlapped intranode broadcast ---------
    node_counts = [block] * N
    node_displs = [b * block for b in range(N)]
    yield from ring_allgather_blocks(
        ctx, (ns, "ring"), A, node_counts, node_displs, recvbuf,
        overlap=overlap,
    )

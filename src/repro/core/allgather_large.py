"""PiP-MColl medium/large-message MPI_Allgather (§III-B1, Fig. 4).

Intranode gather into the local root's staging buffer (absolute node-block
order), then the multi-object ring of :mod:`repro.sched.plans.ring`:
``N - 1`` steps, P independent ring lanes per node (process ``R_l`` rings
slice ``R_l`` of every node block), with the intranode broadcast of
completed blocks overlapped with the in-flight ring transfers.

Linear in ``C_b`` (vs. the small-message algorithm's quadratic growth) and
bandwidth-optimal in total internode traffic — the paper switches to this
algorithm at 64 kB.

Compiled by :func:`repro.sched.plans.mcoll.plan_allgather_large` and
replayed by the :class:`~repro.sched.executor.ScheduleExecutor`.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.mcoll import plan_allgather_large
from repro.sim.engine import ProcGen

__all__ = ["mcoll_allgather_large"]


def mcoll_allgather_large(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, overlap: bool = True
) -> ProcGen:
    """Allgather ``sendbuf`` (``count`` elements per rank) into every rank's
    ``recvbuf`` (``world_size * count``, global-rank order).

    ``overlap=False`` defers the intranode broadcast until after the ring —
    the ablation knob for §III-B1's overlap design choice."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != N * P * C:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {N * P * C}"
        )
    schedule = plan_allgather_large(N, P, C, overlap)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}
    )

"""Multi-object internode MPI_Bcast (extension).

The paper designs intranode auxiliary collectives (§III-C) and the three
primary internode collectives; a full internode broadcast is the natural
next routine and composes from the same ingredients, so we provide it as
an extension: the (P+1)-ary node-group tree of the multi-object scatter
(§III-A1), except every transfer carries the *whole* payload, and the
intranode broadcast (each local rank copying out of the shared staging) is
overlapped with the in-flight internode sends.

Cost: ``ceil(log_{P+1} N)`` internode rounds of ``C_b`` bytes from each of
up to P senders per data-holding node — versus the binomial tree's
``ceil(log_2(N*P))`` rounds.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["mcoll_bcast"]


def mcoll_bcast(ctx: RankCtx, buf: Buffer, root: int = 0) -> ProcGen:
    """Broadcast ``root``'s ``buf`` into every rank's ``buf``."""
    N, P, C = ctx.nodes, ctx.ppn, buf.count
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board
    root_node = ctx.node_of(root)
    vnode = (ctx.node - root_node) % N

    if ctx.rank == root:
        # local peers (and this node's senders) read the source directly
        yield from board.post((ns, "data"), buf)

    data = None
    copied = ctx.rank == root
    lo, hi = 0, N
    while hi - lo > 1:
        n = hi - lo
        parts = min(P + 1, n)
        counts, displs = block_partition(n, parts)
        if vnode == lo:
            if data is None:
                data = yield from board.lookup((ns, "data"))
            chunk = ctx.local_rank + 1
            req = None
            if chunk < parts:
                dst_v = lo + displs[chunk]
                dst_rank = ctx.rank_of((root_node + dst_v) % N, 0)
                req = yield from ctx.isend(dst_rank, data, tag=tag)
            if not copied:
                # overlapped intranode broadcast
                yield from ctx.copy(buf, data)
                copied = True
            if req is not None:
                yield from ctx.wait(req)
            hi = lo + counts[0]
        else:
            rel = vnode - lo
            chunk = 0
            while not (displs[chunk] <= rel < displs[chunk] + counts[chunk]):
                chunk += 1
            new_lo = lo + displs[chunk]
            if vnode == new_lo and ctx.local_rank == 0:
                staging = ctx.alloc(buf.dtype, C)
                src_rank = ctx.rank_of((root_node + lo) % N, chunk - 1)
                yield from ctx.recv(src_rank, staging, tag=tag)
                yield from board.post((ns, "data"), staging)
            lo, hi = new_lo, new_lo + counts[chunk]

    if not copied:
        if data is None:
            data = yield from board.lookup((ns, "data"))
        yield from ctx.copy(buf, data)

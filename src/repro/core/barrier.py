"""Multi-object internode barrier (extension).

A dissemination barrier with radix ``P + 1``: after an intranode arrival
counter, the node's P processes signal nodes at distances
``(R_l+1) * S_p`` in parallel (zero-byte messages), multiplying the set of
transitively-arrived nodes by ``P + 1`` per round — ``ceil(log_{P+1} N)``
internode rounds versus the classical dissemination barrier's
``ceil(log_2(N*P))``.
"""

from __future__ import annotations

from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

from repro.core.intranode import intra_barrier

__all__ = ["mcoll_barrier"]


def mcoll_barrier(ctx: RankCtx) -> ProcGen:
    """Block until every rank of the world has entered the barrier."""
    N, P = ctx.nodes, ctx.ppn
    ns = ctx.next_op_seq()
    tag = ns

    # local arrival
    yield from intra_barrier(ctx, (ns, "arrive"))
    if N == 1:
        return

    token = ctx.alloc_bytes(0)
    rnd = 0
    S = 1
    while S < N:
        offset = (ctx.local_rank + 1) * S
        # full rounds use all P offsets; the final partial round only the
        # multiples that still land inside the ring
        if offset < min(S * (P + 1), N):
            dst = ctx.rank_of((ctx.node + offset) % N, ctx.local_rank)
            src = ctx.rank_of((ctx.node - offset) % N, ctx.local_rank)
            yield from ctx.sendrecv(dst, token, src, token, tag=tag)
        yield from intra_barrier(ctx, (ns, "round", rnd))
        S *= P + 1
        rnd += 1

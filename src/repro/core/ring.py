"""Multi-object internode ring with overlapped intranode broadcast.

This is the communication core shared by the large-message allgather
(§III-B1, Fig. 4) and the allgather stage of the large-message allreduce
(§III-B2): ``N - 1`` ring steps over nodes, where each node block is split
into ``P`` slices and local process ``R_l`` rings slice ``R_l`` — P
concurrent, fully independent ring lanes per node, all reading/writing the
local root's staging buffer directly (PiP).

Overlap: while the step-``s`` transfers are in flight, each process copies
the block completed at step ``s-1`` from the staging buffer into its own
receive buffer — the "overlapped intranode broadcast" of Fig. 4.  A block
is complete once all ``P`` lane counters for it have arrived.

Blocks may have heterogeneous sizes (``node_counts``/``node_displs`` in
elements): uniform ``P*C`` blocks for the plain allgather, ``C/N``-ish
chunks for the allreduce's gather stage.

Compiled by :func:`repro.sched.plans.ring.plan_ring_allgather_blocks`; the
caller-supplied namespace binds symbolically at execution time.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.ring import plan_ring_allgather_blocks
from repro.sim.engine import ProcGen

__all__ = ["ring_allgather_blocks"]


def ring_allgather_blocks(
    ctx: RankCtx,
    ns,
    staging: Buffer,
    node_counts: Sequence[int],
    node_displs: Sequence[int],
    recvbuf: Buffer,
    overlap: bool = True,
) -> ProcGen:
    """Ring-allgather node blocks through ``staging`` into ``recvbuf``.

    Preconditions: every local rank holds a reference to the node's shared
    ``staging`` (local root's buffer, absolute node-block order) whose own
    node block is already complete, and all local ranks have synchronised
    on that fact.  ``recvbuf`` is this rank's private full-size buffer.
    """
    schedule = plan_ring_allgather_blocks(
        ctx.nodes, ctx.ppn, tuple(node_counts), tuple(node_displs), overlap
    )
    yield from ScheduleExecutor(schedule).run(
        ctx,
        {"staging": staging, "recv": recvbuf},
        symbols={"ns": ns},
    )

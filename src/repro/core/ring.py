"""Multi-object internode ring with overlapped intranode broadcast.

This is the communication core shared by the large-message allgather
(§III-B1, Fig. 4) and the allgather stage of the large-message allreduce
(§III-B2): ``N - 1`` ring steps over nodes, where each node block is split
into ``P`` slices and local process ``R_l`` rings slice ``R_l`` — P
concurrent, fully independent ring lanes per node, all reading/writing the
local root's staging buffer directly (PiP).

Overlap: while the step-``s`` transfers are in flight, each process copies
the block completed at step ``s-1`` from the staging buffer into its own
receive buffer — the "overlapped intranode broadcast" of Fig. 4.  A block
is complete once all ``P`` lane counters for it have arrived.

Blocks may have heterogeneous sizes (``node_counts``/``node_displs`` in
elements): uniform ``P*C`` blocks for the plain allgather, ``C/N``-ish
chunks for the allreduce's gather stage.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["ring_allgather_blocks"]


def ring_allgather_blocks(
    ctx: RankCtx,
    ns,
    staging: Buffer,
    node_counts: Sequence[int],
    node_displs: Sequence[int],
    recvbuf: Buffer,
    overlap: bool = True,
) -> ProcGen:
    """Ring-allgather node blocks through ``staging`` into ``recvbuf``.

    Preconditions: every local rank holds a reference to the node's shared
    ``staging`` (local root's buffer, absolute node-block order) whose own
    node block is already complete, and all local ranks have synchronised
    on that fact.  ``recvbuf`` is this rank's private full-size buffer.
    """
    N, P = ctx.nodes, ctx.ppn
    node = ctx.node
    lr = ctx.local_rank
    tag = ns if isinstance(ns, int) else hash(ns) & 0x7FFFFFFF

    def lane(b: int):
        """(element offset, count) of my lane's slice of block ``b``."""
        counts, displs = block_partition(node_counts[b], P)
        return node_displs[b] + displs[lr], counts[lr]

    def block_done(b: int):
        return ctx.pip.counter((ns, "blk", b))

    # own block is complete by precondition
    own = node
    yield from ctx.copy(
        recvbuf.view(node_displs[own], node_counts[own]),
        staging.view(node_displs[own], node_counts[own]),
    )
    if N == 1:
        return

    right = ctx.rank_of((node + 1) % N, lr)
    left = ctx.rank_of((node - 1) % N, lr)

    for step in range(N - 1):
        send_block = (node - step) % N
        recv_block = (node - step - 1) % N
        s_off, s_cnt = lane(send_block)
        r_off, r_cnt = lane(recv_block)
        rreq = ctx.irecv(left, staging.view(r_off, r_cnt), tag=tag)
        sreq = yield from ctx.isend(right, staging.view(s_off, s_cnt), tag=tag)

        if overlap and step > 0:
            # overlapped intranode broadcast of the block completed last step
            done_block = (node - step) % N
            yield from block_done(done_block).wait_at_least(P)
            yield from ctx.copy(
                recvbuf.view(node_displs[done_block], node_counts[done_block]),
                staging.view(node_displs[done_block], node_counts[done_block]),
            )

        yield from ctx.wait(rreq)
        yield from ctx.wait(sreq)
        yield from block_done(recv_block).add(1)

    # drain: everything not yet broadcast intranode (just the final step's
    # block with overlap on; all N-1 foreign blocks with it off)
    pending = (
        [(node + 1) % N]
        if overlap
        else [b for b in range(N) if b != node]
    )
    for b in pending:
        yield from block_done(b).wait_at_least(P)
        yield from ctx.copy(
            recvbuf.view(node_displs[b], node_counts[b]),
            staging.view(node_displs[b], node_counts[b]),
        )

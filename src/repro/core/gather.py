"""Multi-object MPI_Gather (extension).

The mirror image of the multi-object scatter's motivation: a gather's
bottleneck is the root *receiving*.  Here the root node's P processes act
as P concurrent receive lanes — rank ``(n, l)`` sends its block straight
to process ``(root_node, l)``, which lands it **directly in the root's
receive buffer** (posted on the root node's address board; PiP lets any
local process write it).  No intranode staging at all on the leaf side,
and the incast is spread over P NIC receive pipelines.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["mcoll_gather"]


def mcoll_gather(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer | None, root: int = 0
) -> ProcGen:
    """Gather every rank's ``sendbuf`` (``count`` elements) into ``root``'s
    ``recvbuf`` (``world_size * count``, global-rank order)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board
    root_node = ctx.node_of(root)

    if ctx.rank == root:
        assert recvbuf is not None, "root must supply a receive buffer"
        if recvbuf.count != N * P * C:
            raise ValueError(
                f"recvbuf has {recvbuf.count} elements, need {N * P * C}"
            )
        yield from board.post((ns, "dst"), recvbuf)

    if ctx.node == root_node:
        dst = yield from board.lookup((ns, "dst"))
        done = ctx.pip.counter((ns, "done"))
        # my own contribution goes straight in (PiP direct store)
        yield from ctx.copy(dst.view(ctx.rank * C, C), sendbuf)
        # lane ctx.local_rank receives from every other node's same-lane rank
        reqs = []
        for n in range(N):
            if n == root_node:
                continue
            src = ctx.rank_of(n, ctx.local_rank)
            block = dst.view((n * P + ctx.local_rank) * C, C)
            reqs.append(ctx.irecv(src, block, tag=tag))
        yield from ctx.waitall(reqs)
        yield from done.add(1)
        if ctx.rank == root:
            yield from done.wait_at_least(P)
    else:
        # leaf: one message, straight from my send buffer
        yield from ctx.send(ctx.rank_of(root_node, ctx.local_rank), sendbuf, tag=tag)

"""Algorithm-selection thresholds for PiP-MColl (§IV-D).

The paper switches the allgather to its large-message algorithm at 64 kB
per-process message size (Fig. 13) and the allreduce at 8 k double counts,
i.e. 64 kB (Fig. 14).  The scatter uses one algorithm across all sizes
(§III-A1 / Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.util.units import KB

__all__ = ["Thresholds"]


@dataclass(frozen=True)
class Thresholds:
    """Size switch-points, in bytes of per-process message size."""

    #: a switch point no message size ever reaches: "never switch to the
    #: large-message algorithm"
    NEVER: ClassVar[int] = 1 << 62

    #: allgather: small-message Bruck below, multi-object ring at/above
    allgather_large_bytes: int = 64 * KB
    #: allreduce: Bruck-with-reduction below, reduce-scatter+ring at/above
    allreduce_large_bytes: int = 64 * KB

    def __post_init__(self) -> None:
        if self.allgather_large_bytes < 0 or self.allreduce_large_bytes < 0:
            raise ValueError("thresholds must be non-negative")

    @classmethod
    def always_small(cls) -> "Thresholds":
        """Force the small-message algorithms everywhere (the
        "PiP-MColl-small" variant of Figs. 13–14)."""
        return cls(
            allgather_large_bytes=cls.NEVER, allreduce_large_bytes=cls.NEVER
        )

    @classmethod
    def always_large(cls) -> "Thresholds":
        """Force the large-message algorithms everywhere (ablations)."""
        return cls(allgather_large_bytes=0, allreduce_large_bytes=0)

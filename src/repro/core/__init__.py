"""PiP-MColl: the paper's primary contribution.

Multi-object interprocess MPI collectives built on PiP shared-address-space
primitives: every process on a node acts as an internode sender/receiver,
reading from and writing into the local root's buffers directly.
"""

from repro.core.allgather_large import mcoll_allgather_large
from repro.core.allgather_small import mcoll_allgather_small
from repro.core.allreduce_large import mcoll_allreduce_large
from repro.core.allreduce_small import mcoll_allreduce_small
from repro.core.alltoall import mcoll_alltoall
from repro.core.barrier import mcoll_barrier
from repro.core.bcast import mcoll_bcast
from repro.core.gather import mcoll_gather
from repro.core.reduce import mcoll_reduce
from repro.core.intranode import (
    intra_barrier,
    intra_bcast,
    intra_gather,
    intra_reduce_binomial,
    intra_reduce_chunked,
)
from repro.core.mcoll import PiPMColl
from repro.core.ring import ring_allgather_blocks
from repro.core.scatter import mcoll_scatter
from repro.core.tuning import Thresholds

__all__ = [
    "mcoll_allgather_large",
    "mcoll_allgather_small",
    "mcoll_allreduce_large",
    "mcoll_allreduce_small",
    "mcoll_alltoall",
    "mcoll_barrier",
    "mcoll_bcast",
    "mcoll_gather",
    "mcoll_reduce",
    "intra_barrier",
    "intra_bcast",
    "intra_gather",
    "intra_reduce_binomial",
    "intra_reduce_chunked",
    "PiPMColl",
    "ring_allgather_blocks",
    "mcoll_scatter",
    "Thresholds",
]

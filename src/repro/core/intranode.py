"""PiP-MColl auxiliary intranode collectives (§III-C, Fig. 5).

These are the userspace building blocks the primary collectives compose:
broadcast, gather, and reduce *within one node*, built purely from PiP
primitives — address posting, flag counters, and direct loads/stores into
peer buffers.  No messages, no syscalls, no double copies.

All functions must be called by **every rank of one node** (they
synchronise through the node's address board and counters, namespaced by
the per-rank collective sequence number, which is identical across ranks
because collectives are invoked in the same order everywhere).

Cost behaviour matches §III-C:

* small broadcast — root copies to a staging buffer, posts its address,
  peers copy out in parallel; the root does *not* wait.
* large broadcast — root posts its source buffer directly (zero staging
  copy) but must wait until every peer has copied out.
* gather — root posts its destination buffer; every process copies its
  block in, in parallel.
* small reduce — binomial tree of direct-access reductions.
* large reduce — every buffer is chunked P ways and process *i* reduces
  chunk *i* of every source into the destination (Fig. 5): P-way parallel
  reduction bandwidth.

Each operation is compiled to a per-local-rank schedule by the planners in
:mod:`repro.sched.plans.intranode` and replayed here by the
:class:`~repro.sched.executor.ScheduleExecutor`; ``intra_barrier`` stays a
plain generator (it is keyed by the caller and too small to plan).
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.intranode import (
    plan_intra_bcast,
    plan_intra_gather,
    plan_intra_reduce_binomial,
    plan_intra_reduce_chunked,
)
from repro.sim.engine import ProcGen

__all__ = [
    "intra_barrier",
    "intra_bcast",
    "intra_gather",
    "intra_reduce_binomial",
    "intra_reduce_chunked",
]


def intra_barrier(ctx: RankCtx, key) -> ProcGen:
    """Counter barrier among the node's ranks."""
    counter = ctx.pip.counter(key)
    yield from counter.add(1)
    yield from counter.wait_at_least(ctx.ppn)


def intra_bcast(
    ctx: RankCtx, buf: Buffer, root_local: int = 0, large: bool = False
) -> ProcGen:
    """Intranode broadcast of the root's ``buf`` into every rank's ``buf``."""
    schedule = plan_intra_bcast(ctx.ppn, buf.count, root_local, large)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"buf": buf}, program_index=ctx.local_rank
    )


def intra_gather(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    root_local: int = 0,
) -> ProcGen:
    """Intranode gather: rank ``l``'s block lands at offset ``l * count``
    of the root's ``recvbuf``.  Every process copies its own block in —
    P-way parallel, the inverse of Fig. 5's layout."""
    if ctx.local_rank == root_local:
        assert recvbuf is not None, "root must supply a receive buffer"
    schedule = plan_intra_gather(ctx.ppn, sendbuf.count, root_local)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}, program_index=ctx.local_rank
    )


def intra_reduce_binomial(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    op: ReduceOp,
    root_local: int = 0,
) -> ProcGen:
    """Small-message intranode reduce: binomial tree of direct accesses.

    Each tree parent reads its child's accumulator straight out of the
    child's memory (PiP) — ``ceil(log2 P)`` rounds, no staging copies.
    """
    if (ctx.local_rank - root_local) % ctx.ppn == 0:
        assert recvbuf is not None, "root must supply a receive buffer"
    schedule = plan_intra_reduce_binomial(ctx.ppn, sendbuf.count, root_local)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}, op=op,
        program_index=ctx.local_rank,
    )


def intra_reduce_chunked(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    op: ReduceOp,
    root_local: int = 0,
    all_wait: bool = False,
) -> ProcGen:
    """Large-message intranode reduce (Fig. 5): chunk-parallel.

    Every process posts its source buffer; process ``i`` then reduces the
    ``i``-th chunk of *every* source buffer into the ``i``-th chunk of the
    root's destination — P processes reducing in parallel.

    With ``all_wait`` every rank blocks until the whole destination is
    reduced (needed when all ranks immediately read it, as in the
    large-message allreduce); otherwise only the root waits.
    """
    if ctx.local_rank == root_local or ctx.ppn == 1:
        assert recvbuf is not None, "root must supply a receive buffer"
    schedule = plan_intra_reduce_chunked(
        ctx.ppn, sendbuf.count, root_local, all_wait
    )
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}, op=op,
        program_index=ctx.local_rank,
    )

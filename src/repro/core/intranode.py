"""PiP-MColl auxiliary intranode collectives (§III-C, Fig. 5).

These are the userspace building blocks the primary collectives compose:
broadcast, gather, and reduce *within one node*, built purely from PiP
primitives — address posting, flag counters, and direct loads/stores into
peer buffers.  No messages, no syscalls, no double copies.

All functions must be called by **every rank of one node** (they
synchronise through the node's address board and counters, namespaced by
the per-rank collective sequence number, which is identical across ranks
because collectives are invoked in the same order everywhere).

Cost behaviour matches §III-C:

* small broadcast — root copies to a staging buffer, posts its address,
  peers copy out in parallel; the root does *not* wait.
* large broadcast — root posts its source buffer directly (zero staging
  copy) but must wait until every peer has copied out.
* gather — root posts its destination buffer; every process copies its
  block in, in parallel.
* small reduce — binomial tree of direct-access reductions.
* large reduce — every buffer is chunked P ways and process *i* reduces
  chunk *i* of every source into the destination (Fig. 5): P-way parallel
  reduction bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = [
    "intra_barrier",
    "intra_bcast",
    "intra_gather",
    "intra_reduce_binomial",
    "intra_reduce_chunked",
]


def intra_barrier(ctx: RankCtx, key) -> ProcGen:
    """Counter barrier among the node's ranks."""
    counter = ctx.pip.counter(key)
    yield from counter.add(1)
    yield from counter.wait_at_least(ctx.ppn)


def intra_bcast(
    ctx: RankCtx, buf: Buffer, root_local: int = 0, large: bool = False
) -> ProcGen:
    """Intranode broadcast of the root's ``buf`` into every rank's ``buf``."""
    ns = ("ib", ctx.next_op_seq())
    if ctx.ppn == 1:
        return
    board = ctx.pip.board
    if ctx.local_rank == root_local:
        if large:
            # post the source buffer itself; peers copy straight out of it,
            # and we must wait for them before reusing it
            yield from board.post((ns, "src"), buf)
            done = ctx.pip.counter((ns, "done"))
            yield from done.wait_at_least(ctx.ppn - 1)
        else:
            # copy through a staging buffer so the root can move on
            staging = ctx.alloc(buf.dtype, buf.count)
            yield from ctx.copy(staging, buf)
            yield from board.post((ns, "src"), staging)
    else:
        src = yield from board.lookup((ns, "src"))
        yield from ctx.copy(buf, src)
        if large:
            yield from ctx.pip.counter((ns, "done")).add(1)


def intra_gather(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    root_local: int = 0,
) -> ProcGen:
    """Intranode gather: rank ``l``'s block lands at offset ``l * count``
    of the root's ``recvbuf``.  Every process copies its own block in —
    P-way parallel, the inverse of Fig. 5's layout."""
    ns = ("ig", ctx.next_op_seq())
    count = sendbuf.count
    board = ctx.pip.board
    if ctx.local_rank == root_local:
        assert recvbuf is not None, "root must supply a receive buffer"
        if ctx.ppn == 1:
            yield from ctx.copy(recvbuf.view(0, count), sendbuf)
            return
        yield from board.post((ns, "dst"), recvbuf)
        dst = recvbuf
    else:
        dst = yield from board.lookup((ns, "dst"))
    yield from ctx.copy(dst.view(ctx.local_rank * count, count), sendbuf)
    done = ctx.pip.counter((ns, "done"))
    yield from done.add(1)
    if ctx.local_rank == root_local:
        yield from done.wait_at_least(ctx.ppn)


def intra_reduce_binomial(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    op: ReduceOp,
    root_local: int = 0,
) -> ProcGen:
    """Small-message intranode reduce: binomial tree of direct accesses.

    Each tree parent reads its child's accumulator straight out of the
    child's memory (PiP) — ``ceil(log2 P)`` rounds, no staging copies.
    """
    ns = ("irb", ctx.next_op_seq())
    count = sendbuf.count
    rel = (ctx.local_rank - root_local) % ctx.ppn

    if rel == 0:
        assert recvbuf is not None, "root must supply a receive buffer"
        acc = recvbuf
    else:
        acc = ctx.alloc(sendbuf.dtype, count)
    yield from ctx.copy(acc, sendbuf)
    if ctx.ppn == 1:
        return

    board = ctx.pip.board
    mask = 1
    while mask < ctx.ppn:
        if rel & mask:
            # expose my accumulator to my parent; stay alive until it reads
            yield from board.post((ns, "acc", rel), acc)
            yield from ctx.pip.counter((ns, "read", rel)).wait_at_least(1)
            return
        child = rel | mask
        if child < ctx.ppn:
            child_acc = yield from board.lookup((ns, "acc", child))
            yield from ctx.reduce_into(acc, child_acc, op)
            yield from ctx.pip.counter((ns, "read", child)).add(1)
        mask <<= 1


def intra_reduce_chunked(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    op: ReduceOp,
    root_local: int = 0,
    all_wait: bool = False,
) -> ProcGen:
    """Large-message intranode reduce (Fig. 5): chunk-parallel.

    Every process posts its source buffer; process ``i`` then reduces the
    ``i``-th chunk of *every* source buffer into the ``i``-th chunk of the
    root's destination — P processes reducing in parallel.

    With ``all_wait`` every rank blocks until the whole destination is
    reduced (needed when all ranks immediately read it, as in the
    large-message allreduce); otherwise only the root waits.
    """
    ns = ("irc", ctx.next_op_seq())
    count = sendbuf.count
    P = ctx.ppn

    if P == 1:
        assert recvbuf is not None
        yield from ctx.copy(recvbuf, sendbuf)
        return

    board = ctx.pip.board
    yield from board.post((ns, "src", ctx.local_rank), sendbuf)
    if ctx.local_rank == root_local:
        assert recvbuf is not None, "root must supply a receive buffer"
        yield from board.post((ns, "dst"), recvbuf)
        dst = recvbuf
    else:
        dst = yield from board.lookup((ns, "dst"))

    counts, displs = block_partition(count, P)
    off, cnt = displs[ctx.local_rank], counts[ctx.local_rank]
    if cnt:
        # seed my chunk with the root's contribution, then fold in peers
        root_src = yield from _lookup_src(ctx, board, ns, root_local, sendbuf)
        yield from ctx.copy(dst.view(off, cnt), root_src.view(off, cnt))
        for peer in range(P):
            if peer == root_local:
                continue
            src = yield from _lookup_src(ctx, board, ns, peer, sendbuf)
            yield from ctx.reduce_into(dst.view(off, cnt), src.view(off, cnt), op)

    done = ctx.pip.counter((ns, "done"))
    yield from done.add(1)
    if all_wait or ctx.local_rank == root_local:
        yield from done.wait_at_least(P)


def _lookup_src(ctx: RankCtx, board, ns, peer: int, own: Buffer) -> ProcGen:
    """Resolve a peer's posted source buffer (my own without a lookup)."""
    if peer == ctx.local_rank:
        return own
    buf = yield from board.lookup((ns, "src", peer))
    return buf

"""PiP-MColl medium/large-message MPI_Allreduce (§III-B2).

Three phases, all multi-object:

1. **Intranode chunk-parallel reduce** (Fig. 5) into the local root's
   accumulator — every process reduces its 1/P chunk of all P source
   buffers.
2. **Internode multi-object reduce-scatter**: the accumulator is split into
   ``N`` chunks; node ``n`` ends owning chunk ``n`` reduced across all
   nodes.  Local process ``R_l`` ships the chunks for its share of paired
   nodes (the paper's ``[N*R_l/P, N*(R_l+1)/P)`` ranges, generalised to a
   near-equal partition for arbitrary ``N, P``); the one process whose
   range contains the node's own id receives the ``N-1`` incoming copies of
   chunk ``n`` and folds them in.
3. **Internode multi-object ring allgather** of the per-node chunks with
   overlapped intranode broadcast (shared with §III-B1 via
   :mod:`repro.sched.plans.ring`).

This reduces internode volume from the small-message algorithm's
``C_b * P * ceil(log_{P+1} N)`` to ``~2 * C_b * (N-1)/N`` per node — the
paper switches to it at 8 k double counts (64 kB).

The paper assumes ``N`` divisible by ``P`` and ``C_b`` divisible by ``N``;
we use near-equal partitions (``block_partition``) instead, so any shape is
correct.

Compiled by :func:`repro.sched.plans.mcoll.plan_allreduce_large` and
replayed by the :class:`~repro.sched.executor.ScheduleExecutor`.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.mcoll import plan_allreduce_large
from repro.sim.engine import ProcGen

__all__ = ["mcoll_allreduce_large"]


def mcoll_allreduce_large(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, op: ReduceOp
) -> ProcGen:
    """Allreduce ``sendbuf`` into every rank's ``recvbuf`` (both ``count``
    elements)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != C:
        raise ValueError(f"recvbuf has {recvbuf.count} elements, need {C}")
    schedule = plan_allreduce_large(N, P, C)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}, op=op
    )

"""PiP-MColl medium/large-message MPI_Allreduce (§III-B2).

Three phases, all multi-object:

1. **Intranode chunk-parallel reduce** (Fig. 5) into the local root's
   accumulator — every process reduces its 1/P chunk of all P source
   buffers.
2. **Internode multi-object reduce-scatter**: the accumulator is split into
   ``N`` chunks; node ``n`` ends owning chunk ``n`` reduced across all
   nodes.  Local process ``R_l`` ships the chunks for its share of paired
   nodes (the paper's ``[N*R_l/P, N*(R_l+1)/P)`` ranges, generalised to a
   near-equal partition for arbitrary ``N, P``); the one process whose
   range contains the node's own id receives the ``N-1`` incoming copies of
   chunk ``n`` and folds them in.
3. **Internode multi-object ring allgather** of the per-node chunks with
   overlapped intranode broadcast (shared with §III-B1 via
   :mod:`repro.core.ring`).

This reduces internode volume from the small-message algorithm's
``C_b * P * ceil(log_{P+1} N)`` to ``~2 * C_b * (N-1)/N`` per node — the
paper switches to it at 8 k double counts (64 kB).

The paper assumes ``N`` divisible by ``P`` and ``C_b`` divisible by ``N``;
we use near-equal partitions (``block_partition``) instead, so any shape is
correct.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import block_partition
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

from repro.core.intranode import intra_barrier, intra_reduce_chunked
from repro.core.ring import ring_allgather_blocks

__all__ = ["mcoll_allreduce_large"]


def mcoll_allreduce_large(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, op: ReduceOp
) -> ProcGen:
    """Allreduce ``sendbuf`` into every rank's ``recvbuf`` (both ``count``
    elements)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != C:
        raise ValueError(f"recvbuf has {recvbuf.count} elements, need {C}")
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board

    # -- 1. intranode chunk-parallel reduce into the local root's staging --
    if ctx.local_rank == 0:
        A = ctx.alloc(sendbuf.dtype, C)
        yield from board.post((ns, "A"), A)
    else:
        A = yield from board.lookup((ns, "A"))
    yield from intra_reduce_chunked(
        ctx, sendbuf, A if ctx.local_rank == 0 else None, op, all_wait=True
    )

    if N > 1:
        # -- 2. internode multi-object reduce-scatter -----------------------
        chunk_counts, chunk_displs = block_partition(C, N)
        node_counts, node_displs = block_partition(N, P)  # paired-node ranges
        my_nodes = range(
            node_displs[ctx.local_rank],
            node_displs[ctx.local_rank] + node_counts[ctx.local_rank],
        )
        owner_local = _owner_of(ctx.node, node_counts, node_displs)

        reqs = []
        rtemps = []
        if ctx.local_rank == owner_local and chunk_counts[ctx.node]:
            # I fold the N-1 incoming copies of my node's chunk
            for n in range(N):
                if n == ctx.node:
                    continue
                rt = ctx.alloc(sendbuf.dtype, chunk_counts[ctx.node])
                rtemps.append((n, rt))
                reqs.append(
                    ctx.irecv(ctx.rank_of(n, owner_local), rt, tag=tag)
                )
        for n in my_nodes:
            if n == ctx.node or chunk_counts[n] == 0:
                continue
            dst_owner = _owner_of(n, node_counts, node_displs)
            sreq = yield from ctx.isend(
                ctx.rank_of(n, dst_owner),
                A.view(chunk_displs[n], chunk_counts[n]),
                tag=tag,
            )
            reqs.append(sreq)
        yield from ctx.waitall(reqs)
        for _n, rt in rtemps:
            yield from ctx.reduce_into(
                A.view(chunk_displs[ctx.node], chunk_counts[ctx.node]), rt, op
            )
        # everyone must see the node's finished chunk before the ring
        yield from intra_barrier(ctx, (ns, "rs-done"))

        # -- 3. multi-object ring allgather of the chunks -------------------
        yield from ring_allgather_blocks(
            ctx, (ns, "ring"), A, chunk_counts, chunk_displs, recvbuf
        )
    else:
        # single node: A already holds the global result (all_wait above
        # synchronised every rank on its completion)
        yield from ctx.copy(recvbuf, A)


def _owner_of(node: int, node_counts, node_displs) -> int:
    """Local rank whose paired-node range contains ``node``."""
    for lr, (cnt, off) in enumerate(zip(node_counts, node_displs)):
        if off <= node < off + cnt:
            return lr
    raise AssertionError(f"node {node} not covered by any paired range")

"""PiP-MColl small-message MPI_Allgather (§III-A2, Fig. 3).

Multi-object Bruck with radix ``P + 1``: after an intranode gather into the
local root's buffer ``A``, every round has **all P processes of a node**
send the node's accumulated prefix to P distinct nodes (at distances
``(R_l+1) * S_p``) and receive P distinct extensions — all reading from and
writing into the local root's buffer directly (PiP).  One round multiplies
the number of gathered node blocks by ``P + 1``, giving
``ceil(log_{P+1} N)`` internode rounds instead of Bruck's ``log_2 N``.

Generalisation: the paper treats the non-power remainder as a separate
final stage; here every round uses
``cnt = clamp(N - S_p - R_l*S_p, 0, S_p)`` blocks per process, which makes
the final partial round just a truncated regular round (equivalent
communication, any ``N``).

Blocks accumulate in node-relative order; the paper finishes with the local
root shifting into absolute order and broadcasting.  We fuse the two: every
process copies all blocks from ``A`` into its own receive buffer with the
rotation applied — same bytes moved, one less staging pass.

Cost model (§III-A2): ``T = T_intra_gather + a_e*ceil(log_{P+1} N) + ...``;
internode volume grows quadratically in ``C_b``, which is why §III-B1
switches to the ring algorithm for large messages.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

from repro.core.intranode import intra_barrier

__all__ = ["mcoll_allgather_small"]


def mcoll_allgather_small(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Allgather ``sendbuf`` (``count`` elements per rank) into every rank's
    ``recvbuf`` (``world_size * count``, global-rank order)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != N * P * C:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {N * P * C}"
        )
    ns = ctx.next_op_seq()
    tag = ns
    board = ctx.pip.board
    block = P * C  # one node block

    # -- 1. intranode gather into the local root's staging buffer A --------
    # A block j will hold node (my_node + j) % N's data (relative order)
    if ctx.local_rank == 0:
        A = ctx.alloc(sendbuf.dtype, N * block)
        yield from board.post((ns, "A"), A)
    else:
        A = yield from board.lookup((ns, "A"))
    yield from ctx.copy(A.view(ctx.local_rank * C, C), sendbuf)
    yield from intra_barrier(ctx, (ns, "gathered"))

    # -- 2. multi-object Bruck rounds ---------------------------------------
    rnd = 0
    S = 1
    while S < N:
        offset = (ctx.local_rank + 1) * S
        cnt = max(0, min(S, N - S - ctx.local_rank * S))
        if cnt > 0:
            dst = ctx.rank_of((ctx.node - offset) % N, ctx.local_rank)
            src = ctx.rank_of((ctx.node + offset) % N, ctx.local_rank)
            rreq = ctx.irecv(src, A.view(offset * block, cnt * block), tag=tag)
            sreq = yield from ctx.isend(dst, A.view(0, cnt * block), tag=tag)
            yield from ctx.wait(rreq)
            yield from ctx.wait(sreq)
        # next round's sends read blocks my peers received: synchronise
        yield from intra_barrier(ctx, (ns, "round", rnd))
        S *= P + 1
        rnd += 1

    # -- 3. rotate into absolute order, straight into my receive buffer ----
    head = (N - ctx.node) * block
    yield from ctx.copy(recvbuf.view(ctx.node * block, head), A.view(0, head))
    if ctx.node:
        yield from ctx.copy(
            recvbuf.view(0, ctx.node * block), A.view(head, N * block - head)
        )

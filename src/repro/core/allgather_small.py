"""PiP-MColl small-message MPI_Allgather (§III-A2, Fig. 3).

Multi-object Bruck with radix ``P + 1``: after an intranode gather into the
local root's buffer ``A``, every round has **all P processes of a node**
send the node's accumulated prefix to P distinct nodes (at distances
``(R_l+1) * S_p``) and receive P distinct extensions — all reading from and
writing into the local root's buffer directly (PiP).  One round multiplies
the number of gathered node blocks by ``P + 1``, giving
``ceil(log_{P+1} N)`` internode rounds instead of Bruck's ``log_2 N``.

Generalisation: the paper treats the non-power remainder as a separate
final stage; here every round uses
``cnt = clamp(N - S_p - R_l*S_p, 0, S_p)`` blocks per process, which makes
the final partial round just a truncated regular round (equivalent
communication, any ``N``).

Blocks accumulate in node-relative order; the paper finishes with the local
root shifting into absolute order and broadcasting.  We fuse the two: every
process copies all blocks from ``A`` into its own receive buffer with the
rotation applied — same bytes moved, one less staging pass.

Cost model (§III-A2): ``T = T_intra_gather + a_e*ceil(log_{P+1} N) + ...``;
internode volume grows quadratically in ``C_b``, which is why §III-B1
switches to the ring algorithm for large messages.

Compiled by :func:`repro.sched.plans.mcoll.plan_allgather_small` and
replayed by the :class:`~repro.sched.executor.ScheduleExecutor`.
"""

from __future__ import annotations

from repro.mpi.buffer import Buffer
from repro.mpi.runtime import RankCtx
from repro.sched.executor import ScheduleExecutor
from repro.sched.plans.mcoll import plan_allgather_small
from repro.sim.engine import ProcGen

__all__ = ["mcoll_allgather_small"]


def mcoll_allgather_small(
    ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer
) -> ProcGen:
    """Allgather ``sendbuf`` (``count`` elements per rank) into every rank's
    ``recvbuf`` (``world_size * count``, global-rank order)."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    if recvbuf.count != N * P * C:
        raise ValueError(
            f"recvbuf has {recvbuf.count} elements, need {N * P * C}"
        )
    schedule = plan_allgather_small(N, P, C)
    yield from ScheduleExecutor(schedule).run(
        ctx, {"send": sendbuf, "recv": recvbuf}
    )

"""Intranode transfer mechanism interface.

A mechanism answers three questions about an intranode point-to-point
message (the transport charges everything else):

1. what work does the *sender* do before the message is visible to the
   receiver, and does the send then complete eagerly (double-copy POSIX) or
   only once the receiver has copied (single-copy kernel/PiP mechanisms)?
2. what *fixed* costs hit at match time (size-sync handshakes, syscalls,
   attach operations, page faults)?
3. how many bytes does the *receiver* copy?

These are exactly the axes along which §II distinguishes POSIX-SHMEM,
CMA/KNEM/LiMiC, XPMEM, and PiP.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.engine import Delay, ProcGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.memory import MemoryModel

__all__ = ["ShmemMechanism", "MsgInfo"]


@dataclass(slots=True)
class MsgInfo:
    """What a mechanism needs to know about one intranode message.

    A plain slots dataclass (not frozen): one is built per intranode
    message on the simulation hot path, and frozen-dataclass field
    assignment via ``object.__setattr__`` costs several times a normal
    ``__init__``.  Mechanisms treat it as read-only by convention.
    """

    src_rank: int
    dst_rank: int
    nbytes: int
    #: identity of the sender-side allocation (page-fault / attach warm key)
    src_buffer_id: int


class ShmemMechanism(abc.ABC):
    """One intranode data-movement mechanism."""

    #: mechanism name for reports
    name: str = "abstract"
    #: True if the sender completes without receiver participation
    eager: bool = False
    #: True if the mechanism keeps per-buffer warm state (page-fault
    #: regions, XPMEM expose/attach caches).  The batch engine only
    #: records buffer-identity conflict resources when this is set; the
    #: conservative default covers unknown subclasses.
    warm_state: bool = True

    def sender_occupy(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        """Seconds the sender is blocked before the message is posted.

        The shared cost closure behind :meth:`sender_work`: called at the
        moment the sender starts its work, it performs any resource
        reservations / warm-state mutations and returns the blocked time.
        Mechanisms override *this*, not :meth:`sender_work`; the default
        costs nothing (descriptor-post mechanisms).
        """
        return 0.0

    def sender_work(self, mem: "MemoryModel", msg: MsgInfo) -> ProcGen:
        """Blocking work at the sender before the message is posted.

        One ``Delay`` of :meth:`sender_occupy`'s duration — the event-loop
        rendering of the cost closure (a zero cost still suspends once,
        exactly like the historical no-op generator did).
        """
        yield Delay(self.sender_occupy(mem, msg))

    @abc.abstractmethod
    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        """Fixed receiver-side cost at match time (syscall/attach/sync)."""

    def receiver_copy_bytes(self, nbytes: int) -> int:
        """Bytes the receiver copies out (default: the whole message)."""
        return nbytes

    def eager_for(self, nbytes: int) -> bool:
        """Whether a message of ``nbytes`` completes eagerly at the sender."""
        return self.eager

    def __str__(self) -> str:
        return self.name

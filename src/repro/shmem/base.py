"""Intranode transfer mechanism interface.

A mechanism answers three questions about an intranode point-to-point
message (the transport charges everything else):

1. what work does the *sender* do before the message is visible to the
   receiver, and does the send then complete eagerly (double-copy POSIX) or
   only once the receiver has copied (single-copy kernel/PiP mechanisms)?
2. what *fixed* costs hit at match time (size-sync handshakes, syscalls,
   attach operations, page faults)?
3. how many bytes does the *receiver* copy?

These are exactly the axes along which §II distinguishes POSIX-SHMEM,
CMA/KNEM/LiMiC, XPMEM, and PiP.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.engine import Delay, ProcGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.memory import MemoryModel

__all__ = ["ShmemMechanism", "MsgInfo"]


@dataclass(frozen=True)
class MsgInfo:
    """What a mechanism needs to know about one intranode message."""

    src_rank: int
    dst_rank: int
    nbytes: int
    #: identity of the sender-side allocation (page-fault / attach warm key)
    src_buffer_id: int


class ShmemMechanism(abc.ABC):
    """One intranode data-movement mechanism."""

    #: mechanism name for reports
    name: str = "abstract"
    #: True if the sender completes without receiver participation
    eager: bool = False

    @abc.abstractmethod
    def sender_work(self, mem: "MemoryModel", msg: MsgInfo) -> ProcGen:
        """Blocking work at the sender before the message is posted."""

    @abc.abstractmethod
    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        """Fixed receiver-side cost at match time (syscall/attach/sync)."""

    def receiver_copy_bytes(self, nbytes: int) -> int:
        """Bytes the receiver copies out (default: the whole message)."""
        return nbytes

    def eager_for(self, nbytes: int) -> bool:
        """Whether a message of ``nbytes`` completes eagerly at the sender."""
        return self.eager

    @staticmethod
    def _noop() -> ProcGen:
        """A sender_work that costs nothing."""
        yield Delay(0.0)

    def __str__(self) -> str:
        return self.name

"""Intranode shared-memory mechanism models and the PiP node environment."""

from repro.shmem.base import MsgInfo, ShmemMechanism
from repro.shmem.mechanisms import (
    HybridMechanism,
    KernelCopy,
    PipShmem,
    PosixShmem,
    Xpmem,
)
from repro.shmem.pip_env import AddressBoard, PipNode, SharedCounter

__all__ = [
    "MsgInfo",
    "ShmemMechanism",
    "HybridMechanism",
    "KernelCopy",
    "PipShmem",
    "PosixShmem",
    "Xpmem",
    "AddressBoard",
    "PipNode",
    "SharedCounter",
]

"""Concrete intranode mechanisms: POSIX-SHMEM, CMA/KNEM/LiMiC, XPMEM, PiP.

Cost structure per §II of the paper:

=============  =======  =======================  ==========================
mechanism      copies   per-message fixed cost   notes
=============  =======  =======================  ==========================
POSIX-SHMEM    2        ~0 (no syscall)          eager: sender fire-&-forget
CMA/KNEM/LiMiC 1        syscall (+cold faults)   receiver-side kernel copy
XPMEM          1        attach syscall, cached   data *sharing*, not exchange
PiP            1        size-sync handshake      pure userspace
=============  =======  =======================  ==========================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set, Tuple

from numpy import ndarray

from repro.shmem.base import MsgInfo, ShmemMechanism
from repro.sim.batchline import BatchDivergence

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.memory import MemoryModel

__all__ = [
    "PosixShmem",
    "KernelCopy",
    "Xpmem",
    "PipShmem",
    "HybridMechanism",
]


class PosixShmem(ShmemMechanism):
    """Double-copy through a preallocated shared-memory slab.

    The sender copies into the slab and completes immediately (no receiver
    participation, no syscalls — the slab is mapped once at init).  The
    receiver later copies out.  Fast for small messages, double-copy-bound
    for large ones.
    """

    name = "posix-shmem"
    eager = True
    warm_state = False  # the slab is mapped at init; nothing to warm

    def sender_occupy(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        # copy-in to the shared slab
        return mem.copy_occupy(mem.engine.now, msg.nbytes)

    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        return 0.0


class KernelCopy(ShmemMechanism):
    """Single kernel-assisted copy (CMA / KNEM / LiMiC).

    The sender only posts a descriptor; the receiver performs one syscall
    per transfer (``process_vm_readv`` / ioctl) that copies directly from
    the sender's pages, faulting them on first touch.
    """

    name = "kernel-copy"
    eager = False

    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        fault = mem.fault_cost((msg.dst_rank, msg.src_buffer_id), msg.nbytes)
        return mem.params.syscall_time + fault


class Xpmem(ShmemMechanism):
    """Data sharing via XPMEM segment expose/attach.

    Expose is paid once per sender allocation; attach once per (receiver,
    allocation) pair and then served from the attach cache; first touch of
    an attachment faults its pages.  After that, a single userspace copy.
    """

    name = "xpmem"
    eager = False

    def __init__(self) -> None:
        self._exposed: Set[Tuple[int, int]] = set()
        self._attached: Set[Tuple[int, int]] = set()

    def sender_occupy(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        key = (msg.src_rank, msg.src_buffer_id)
        extra = 0.0
        if key not in self._exposed:
            self._exposed.add(key)
            extra = mem.params.xpmem_expose_time
        return mem.copy_occupy(mem.engine.now, 0, extra_fixed=extra)

    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        key = (msg.dst_rank, msg.src_buffer_id)
        if key not in self._attached:
            self._attached.add(key)
            fault = mem.fault_cost(key, msg.nbytes)
            return mem.params.xpmem_attach_time + fault
        return mem.params.xpmem_reattach_time


class PipShmem(ShmemMechanism):
    """Process-in-Process: direct userspace load/store, single copy.

    No syscalls, no page faults (one address space).  The cost PiP *does*
    pay — and the one the paper's baseline PiP-MPICH suffers from on every
    message — is the size-synchronisation handshake before any transfer
    (§II-B).
    """

    name = "pip"
    eager = False
    warm_state = False  # one address space: no faults, no attach cache

    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        return mem.params.pip_sizesync_time


class HybridMechanism(ShmemMechanism):
    """Size-based dispatch, as production MPI libraries configure it.

    E.g. MVAPICH2 uses the POSIX slab for small messages and LiMiC/CMA
    kernel copies above a threshold; Open MPI pairs its shared-memory BTL
    with CMA the same way.
    """

    eager = False  # resolved per message; see below

    def __init__(
        self, small: ShmemMechanism, large: ShmemMechanism, threshold: int
    ):
        if threshold < 0:
            raise ValueError(f"negative threshold: {threshold}")
        self.small = small
        self.large = large
        self.threshold = threshold
        self.warm_state = small.warm_state or large.warm_state
        self.name = f"hybrid({small.name}<{threshold}B<={large.name})"

    def pick(self, nbytes) -> ShmemMechanism:
        """The mechanism serving a ``nbytes`` message.

        Under the batch engine ``nbytes`` is an array over the message-size
        axis; the pick must then be uniform across the partition — a mixed
        mask is a structural divergence (different mechanisms mean
        different cost closures and warm state), reported via
        :class:`~repro.sim.batchline.BatchDivergence` so the engine can
        split the size axis at this threshold.
        """
        if isinstance(nbytes, ndarray):
            small = nbytes < self.threshold
            if small[0]:
                if small.all():
                    return self.small
            elif not small.any():
                return self.large
            raise BatchDivergence(small)
        return self.small if nbytes < self.threshold else self.large

    def eager_for(self, nbytes: int) -> bool:
        return self.pick(nbytes).eager

    def sender_occupy(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        return self.pick(msg.nbytes).sender_occupy(mem, msg)

    def match_fixed(self, mem: "MemoryModel", msg: MsgInfo) -> float:
        return self.pick(msg.nbytes).match_fixed(mem, msg)

    def receiver_copy_bytes(self, nbytes: int) -> int:
        return self.pick(nbytes).receiver_copy_bytes(nbytes)

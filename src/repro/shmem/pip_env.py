"""PiP node environment: the shared-address-space primitives.

In real PiP, all MPI processes on a node live in one virtual address space:
a process can publish a pointer and any other local process can dereference
it directly.  PiP-MColl builds its collectives from exactly three userspace
primitives, which we model here with their costs:

* the **address board** — a per-node key/value space where a process posts a
  buffer address (cost: ``pip_post_time``) and others look it up (cost:
  ``pip_flag_time``, the flag poll);
* **shared counters** — userspace atomics used for arrival/completion
  synchronisation (post: ``pip_flag_time``; satisfied waits also charge one
  flag read);
* **direct copies/reductions** between any two local buffers through the
  node memory model — no syscalls, no page faults, single copy.

Because our simulated ranks are coroutines in one Python process, a "posted
address" is simply a reference to the peer's :class:`~repro.mpi.buffer.Buffer`
— the same functional capability PiP provides, with costs charged by the
model.

Keys are namespaced per collective invocation (``fresh_namespace``) so that
back-to-back collectives never observe each other's stale postings — the
simulation analogue of PiP-MColl's per-operation sequence numbers.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Tuple

from repro.hw.params import MachineParams
from repro.sim.engine import Delay, Engine, Event, ProcGen, WaitEvent

__all__ = ["AddressBoard", "SharedCounter", "PipNode"]


class AddressBoard:
    """Per-node key → value publication space (PiP address posting)."""

    def __init__(self, engine: Engine, params: MachineParams, node: int):
        self.engine = engine
        self.params = params
        self.node = node
        self._slots: Dict[Hashable, Event] = {}

    def _slot(self, key: Hashable) -> Event:
        ev = self._slots.get(key)
        if ev is None:
            ev = self.engine.event(f"board[{self.node}]:{key}")
            self._slots[key] = ev
        return ev

    def post(self, key: Hashable, value: Any) -> ProcGen:
        """Publish ``value`` under ``key``; blocks for the post cost."""
        yield Delay(self.params.pip_post_time)
        self._slot(key).trigger(value)

    def lookup(self, key: Hashable) -> ProcGen:
        """Wait until ``key`` is posted; returns the value."""
        value = yield WaitEvent(self._slot(key))
        yield Delay(self.params.pip_flag_time)
        return value

    def clear(self) -> None:
        self._slots.clear()


class SharedCounter:
    """A userspace counter local processes can bump and wait on."""

    def __init__(self, engine: Engine, params: MachineParams, name: str = ""):
        self.engine = engine
        self.params = params
        self.name = name
        self.value = 0
        self._waiters: List[Tuple[int, Event]] = []

    def add(self, n: int = 1) -> ProcGen:
        """Atomically add ``n`` (charges one flag write)."""
        yield Delay(self.params.pip_flag_time)
        self.value += n
        if self._waiters:
            still_waiting = []
            for threshold, ev in self._waiters:
                if self.value >= threshold:
                    ev.trigger(self.value)
                else:
                    still_waiting.append((threshold, ev))
            self._waiters = still_waiting

    def wait_at_least(self, threshold: int) -> ProcGen:
        """Block until the counter reaches ``threshold``."""
        if self.value >= threshold:
            yield Delay(self.params.pip_flag_time)
            return self.value
        ev = self.engine.event(f"counter[{self.name}]>={threshold}")
        self._waiters.append((threshold, ev))
        value = yield WaitEvent(ev)
        yield Delay(self.params.pip_flag_time)
        return value


class PipNode:
    """The PiP environment of one node: board + counter factory."""

    def __init__(self, engine: Engine, params: MachineParams, node: int):
        self.engine = engine
        self.params = params
        self.node = node
        self.board = AddressBoard(engine, params, node)
        self._counters: Dict[Hashable, SharedCounter] = {}
        self._namespace_seq = itertools.count(1)

    def counter(self, key: Hashable) -> SharedCounter:
        """Get-or-create the shared counter named ``key``."""
        c = self._counters.get(key)
        if c is None:
            c = SharedCounter(self.engine, self.params, name=f"{self.node}:{key}")
            self._counters[key] = c
        return c

    def fresh_namespace(self) -> int:
        """A node-unique integer to namespace one collective invocation.

        Callers must agree on who draws it (the local root does) and share
        it via algorithm structure, not via the board (that would be a
        bootstrap paradox); in practice every PiP-MColl collective has all
        local ranks derive the namespace from a per-communicator operation
        sequence number, which is what
        :meth:`repro.mpi.runtime.RankCtx.collective_seq` provides.
        """
        return next(self._namespace_seq)

    def clear(self) -> None:
        self.board.clear()
        self._counters.clear()

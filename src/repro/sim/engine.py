"""Deterministic discrete-event simulation engine.

The engine drives *simulated processes*: plain Python generators that yield
:class:`Command` objects (``Delay``, ``WaitEvent``, ...) and are resumed by
the event loop when the command completes.  All state lives in simulated
time; wall-clock time never enters the model.

Determinism: the event heap is keyed by ``(time, seq)`` where ``seq`` is a
monotonically increasing counter, so simultaneous events are processed in
scheduling order and every run of the same program produces the same trace.

Hot path
--------
A paper-scale sweep pushes tens of millions of events through this loop, so
the dominant operations are closure-free:

* heap entries are plain ``(time, seq, proc, value, fn)`` tuples — resuming
  a process never allocates a lambda;
* ``Delay``, by far the most common command, is recognised with an exact
  type check in :meth:`Engine._step` and scheduled by pushing the tuple
  directly (no ``call_after`` indirection);
* a process waiting on an :class:`Event` is stored *itself* in the event's
  callback list; :meth:`Event.trigger` moves waiting processes straight
  onto the engine's ready deque.

All of this is behaviour-preserving: scheduling order, ``seq`` consumption
and therefore every simulated timestamp are identical to the layered
implementation (the golden-trace tests in ``tests/bench`` pin this).

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, dt):
...     yield Delay(dt)
...     log.append((eng.now, name))
>>> _ = eng.spawn(worker("a", 2.0))
>>> _ = eng.spawn(worker("b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Command",
    "Delay",
    "WaitEvent",
    "WaitAll",
    "Event",
    "Process",
    "Engine",
    "SimulationError",
    "DeadlockError",
    "ProcGen",
]

#: Type alias for the generator type simulated processes are written as.
ProcGen = Generator["Command", Any, Any]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when :meth:`Engine.run` exhausts events with live processes.

    This means at least one process is blocked on an :class:`Event` that can
    never be triggered — the simulated program has deadlocked.
    """


class Command:
    """Base class for objects a simulated process may ``yield``."""

    __slots__ = ()


class Delay(Command):
    """Suspend the yielding process for ``dt`` simulated seconds.

    ``dt`` must be non-negative; a zero delay reschedules the process at the
    current time (after already-queued events at the same timestamp).
    """

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:
        return f"Delay(dt={self.dt!r})"

    def __eq__(self, other: object) -> bool:
        return other.__class__ is Delay and other.dt == self.dt  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((Delay, self.dt))


class WaitEvent(Command):
    """Suspend the yielding process until ``event`` is triggered.

    The value passed to :meth:`Event.trigger` becomes the result of the
    ``yield`` expression.  Waiting on an already-triggered event resumes the
    process immediately (at the current timestamp) with the stored value.
    """

    __slots__ = ("event",)

    def __init__(self, event: "Event"):
        self.event = event

    def __repr__(self) -> str:
        return f"WaitEvent(event={self.event!r})"

    def __eq__(self, other: object) -> bool:
        return other.__class__ is WaitEvent and other.event is self.event  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((WaitEvent, id(self.event)))


class WaitAll(Command):
    """Suspend until *all* of ``events`` have been triggered.

    The ``yield`` result is the list of event values in argument order.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable["Event"]):
        self.events = tuple(events)

    def __repr__(self) -> str:
        return f"WaitAll(events={self.events!r})"

    def __eq__(self, other: object) -> bool:
        return other.__class__ is WaitAll and other.events == self.events  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((WaitAll, self.events))


class Event:
    """A one-shot occurrence processes can wait on.

    An event is triggered at most once, carrying an optional value.  Any
    number of processes (and plain callbacks) may wait on it; they are all
    resumed/invoked at the trigger time, in registration order.

    Internally the waiter list may hold :class:`Process` objects directly
    (a process suspended on this event) interleaved with plain callables;
    registration order is preserved across both kinds so trigger-time
    semantics do not depend on how a waiter subscribed.
    """

    __slots__ = ("engine", "name", "_triggered", "_value", "_callbacks")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._callbacks: list = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} read before trigger")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event at the engine's current time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            ready = self.engine._ready
            for cb in callbacks:
                if cb.__class__ is Process:
                    ready.append((cb, value))
                else:
                    cb(value)

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when triggered (immediately if already)."""
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


@dataclass(eq=False)
class Process:
    """Handle for a spawned simulated process.

    ``done`` is an :class:`Event` triggered with the generator's return value
    when it finishes; exceptions raised inside a process propagate out of
    :meth:`Engine.run` (the simulation is deterministic, so a failure is a
    bug, not a condition to be handled in simulated code).
    """

    name: str
    gen: ProcGen
    done: Event
    engine: "Engine" = field(repr=False)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def result(self) -> Any:
        return self.done.value


class Engine:
    """The discrete-event loop.

    Typical use::

        eng = Engine()
        eng.spawn(my_process())
        eng.run()
        print(eng.now)
    """

    __slots__ = ("now", "_heap", "_ready", "_seq", "_live_processes", "_spawned")

    def __init__(self) -> None:
        self.now: float = 0.0
        # entries: (time, seq, proc, send_value, fn) — exactly one of
        # proc/fn is set; tuples never compare past seq (unique)
        self._heap: list = []
        # processes ready to resume at the current timestamp, FIFO — a fast
        # path that avoids one heap round-trip per event-triggered resume
        self._ready: deque = deque()
        self._seq = 0
        self._live_processes = 0
        self._spawned = 0

    # -- scheduling ------------------------------------------------------

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, None, None, fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self.now + delay, fn)

    def event(self, name: str = "") -> Event:
        """Create a fresh (untriggered) event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that self-triggers after ``delay`` seconds."""
        ev = self.event(name or f"timeout({delay})")
        self.call_after(delay, lambda: ev.trigger(value))
        return ev

    # -- processes -------------------------------------------------------

    def spawn(self, gen: ProcGen, name: str = "") -> Process:
        """Start a simulated process; it first runs at the current time."""
        self._spawned += 1
        proc = Process(
            name=name or f"proc-{self._spawned}",
            gen=gen,
            done=Event(self, f"done:{name or self._spawned}"),
            engine=self,
        )
        self._live_processes += 1
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, proc, None, None))
        return proc

    def _step(self, proc: Process, send_value: Any) -> None:
        """Advance ``proc`` by one yield, handling the command it emits."""
        try:
            cmd = proc.gen.send(send_value)
        except StopIteration as stop:
            self._live_processes -= 1
            proc.done.trigger(stop.value)
            return
        # Exact-type fast paths for the two dominant commands; anything
        # else (WaitAll, bare events, subclasses) takes the general route.
        cls = cmd.__class__
        if cls is Delay:
            self._seq += 1
            heapq.heappush(
                self._heap, (self.now + cmd.dt, self._seq, proc, None, None)
            )
        elif cls is WaitEvent:
            ev = cmd.event
            if ev._triggered:
                self._ready.append((proc, ev._value))
            else:
                ev._callbacks.append(proc)
        else:
            self._dispatch(proc, cmd)

    def _dispatch(self, proc: Process, cmd: Command) -> None:
        if isinstance(cmd, Delay):
            self._seq += 1
            heapq.heappush(
                self._heap, (self.now + cmd.dt, self._seq, proc, None, None)
            )
        elif isinstance(cmd, WaitEvent):
            self._wait_event(proc, cmd.event)
        elif isinstance(cmd, WaitAll):
            self._wait_all(proc, cmd.events)
        elif isinstance(cmd, Event):
            # Allow yielding a bare Event as shorthand for WaitEvent.
            self._wait_event(proc, cmd)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command {cmd!r}"
            )

    def _wait_event(self, proc: Process, ev: Event) -> None:
        if ev._triggered:
            self._ready.append((proc, ev._value))
        else:
            ev._callbacks.append(proc)

    def _resume(self, proc: Process, value: Any) -> None:
        # Queue the resume so that all callbacks registered at this
        # timestamp observe the trigger before any process continues; the
        # ready deque preserves trigger order and is drained by the run
        # loop before simulated time advances.
        self._ready.append((proc, value))

    def _wait_all(self, proc: Process, events: tuple[Event, ...]) -> None:
        if not events:
            self._resume(proc, [])
            return
        remaining = [len(events)]
        results: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                results[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._resume(proc, results)

            return cb

        for i, ev in enumerate(events):
            ev.on_trigger(make_cb(i))

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains (or simulated ``until``).

        Returns the final simulated time.  Raises :class:`DeadlockError` if
        the heap drains while spawned processes are still blocked.

        ``until`` semantics (pinned by ``tests/sim/test_engine.py``):

        * ready-queue entries at the cutoff timestamp are drained before
          the horizon check, and heap events at exactly ``until`` still run;
        * if the heap drains before ``until``, the clock advances to
          ``until`` (idle time passes);
        * ``now`` never moves backwards — ``run(until=t)`` with ``t < now``
          is a no-op on the clock.
        """
        ready = self._ready
        heap = self._heap
        pop = heapq.heappop
        step = self._step
        while heap or ready:
            while ready:
                proc, value = ready.popleft()
                step(proc, value)
            if not heap:
                break
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                if until > self.now:
                    self.now = until
                return self.now
            pop(heap)
            self.now = time
            proc = entry[2]
            if proc is not None:
                step(proc, entry[3])
            else:
                entry[4]()
        if until is None and self._live_processes > 0:
            raise DeadlockError(
                f"{self._live_processes} process(es) blocked with no pending "
                f"events at t={self.now} — simulated program deadlocked"
            )
        if until is not None and until > self.now:
            self.now = until
        return self.now

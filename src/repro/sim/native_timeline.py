"""Nopython twin of the timeline replay loop for the native engine.

This module holds the *kernel* of ``engine="native"``: a single replay
function (plus small cost helpers) written against plain numpy arrays and
scalars only — no dicts, no strings, no Python objects — so that it
compiles under ``numba.njit`` unchanged.  :func:`build_kernels` takes a
decorator (``numba.njit`` when numba imports, the identity function when
it doesn't) and returns the compiled/interpreted kernel set; the same
source therefore runs in three modes:

* **jit** — numba available: LLVM-compiled machine code (the point of the
  engine);
* **interp** — numba absent or ``PIPMCOLL_NO_NATIVE=1``: the identical
  functions run under CPython.  This is what the numba-free CI lane and
  the bit-identity tests exercise, so the kernel *logic* is pinned even
  where numba is not installed;
* callers that want zero native involvement fall back to the DAG engine
  (see :mod:`repro.sched.native` / :mod:`repro.bench.microbench`).

Float-for-float identity argument
---------------------------------

The acceptance contract is that ``engine="native"`` produces bit-identical
float64 samples to ``engine="dag"`` (and hence to the event loop).  That
holds because:

1. **Same arithmetic, same operation order.**  Every float produced here
   is a transcription of the corresponding shared cost closure —
   :meth:`repro.hw.nic.NodeNic.transfer`, :meth:`repro.hw.memory.
   MemoryModel.copy_occupy` / ``reduce_occupy``, ``fault_cost``, and the
   mechanism ``sender_occupy`` / ``match_fixed`` closures — operand for
   operand, with the same ``max`` placements and the same precomputed
   constants (``1.0 / proc_msg_rate``, ``1.0 / nic_msg_rate`` are divided
   once, exactly like ``RateLimiter._interval``).  IEEE-754 double
   operations are deterministic, so equal inputs in equal order give equal
   bits.
2. **No fastmath, no contraction.**  The kernels are compiled with
   numba's defaults: ``fastmath=False``, which forbids reassociation,
   and no FMA contraction of separate multiply/add expressions — each
   written operation maps to one IEEE double operation, as in CPython.
3. **Same event order.**  The heap here stores ``(time, seq)`` pairs with
   exactly the tuple comparison ``heapq`` uses (``seq`` is unique, so the
   ``fn``/``value`` fields of the Python tuples are never compared); any
   correct binary heap pops a totally ordered set in the same order.  The
   ready ring is drained fully before each heap pop, mirroring
   :meth:`repro.sim.timeline.Timeline.run`, and every ``seq`` increment
   of the fast path (one per ``heappush``/``tl.call``) has a counterpart
   here, so all ties break identically.
4. **Lane pool as argmin.**  The memory lane heap is replaced by
   argmin-over-array: ``heappop`` returns the minimum *value*, and
   replacing one minimal entry with the new end time evolves the same
   multiset of lane-free times, so start/end values are bit-identical
   (the same argument :class:`repro.hw.memory.BatchMemory` documents).

``tests/sched/test_native.py`` pins the contract across the registry grid
and randomized shapes.
"""

from __future__ import annotations

import os

__all__ = [
    "build_kernels",
    "get_kernels",
    "jit_available",
    "kernel_mode",
    "build_count",
]

# -- opcode values (must mirror repro.sched.fastpath's _OP_* order) --------
(
    OP_SEND_INTRA,
    OP_SEND_INTER,
    OP_RECV,
    OP_WAIT,
    OP_COPY,
    OP_REDUCE,
    OP_POST,
    OP_LOOKUP,
    OP_ADD,
    OP_CWAIT,
    OP_ALLOC,
    OP_PHASE,
    OP_COMPUTE,
) = range(13)

# -- continuation codes (heap/ready entries: which callback fires) ---------
(
    K_RUN,
    K_SEND_INTRA,
    K_SEND_INTER,
    K_NEXT_WAIT,
    K_RECV_WORK,
    K_RECV_DONE,
    K_POST,
    K_LOOKUP,
    K_LOOKUP_BIND,
    K_ADD,
    K_CWAIT,
    K_DELIVER,
    K_COMPLETE_SEND,
) = range(13)

# -- float parameter vector indices ----------------------------------------
(
    P_PROC_BW,
    P_PROC_DMA_BW,
    P_RATE_FLOOR,      # 1.0 / proc_msg_rate, divided once
    P_NIC_BW,
    P_NIC_INTERVAL,    # 1.0 / nic_msg_rate, divided once
    P_FABRIC_BW,
    P_WIRE_LAT,
    P_SEND_OVH,
    P_RECV_OVH,
    P_PIP_POST,
    P_PIP_FLAG,
    P_COPY_LAT,
    P_CORE_BW,
    P_REDUCE_BW,
    P_PAGE_FAULT,
    P_SYSCALL,
    P_SIZESYNC,
    P_XP_EXPOSE,
    P_XP_ATTACH,
    P_XP_REATTACH,
    P_SW_OVH,
) = range(21)
P_LEN = 21

# -- int config vector indices ---------------------------------------------
(
    C_NODES,
    C_PPN,
    C_NTASKS,
    C_HAS_FABRIC,
    C_MECH_SMALL,
    C_MECH_LARGE,
    C_MECH_THRESH,
    C_EAGER_THRESH,
    C_PAGE_SIZE,
    C_RTS_BYTES,
    C_NQUEUES,
    C_ACCT,
) = range(12)
C_LEN = 12

# -- mechanism codes -------------------------------------------------------
MECH_POSIX = 0       # eager double-copy: sender pays copy_occupy(nbytes)
MECH_KERNEL = 1      # CMA/KNEM: syscall + cold faults at match
MECH_XPMEM = 2       # expose/attach caches + faults
MECH_PIP = 3         # size-sync handshake at match

# -- scratch (SCR) columns per task ----------------------------------------
(
    S_PC,
    S_DST,
    S_NODE,
    S_BID,
    S_CNT,
    S_QID,
    S_REQ,
    S_KEY,
    S_VAL,
    S_BIND,
    S_WOFF,
    S_WLEN,
    S_WIDX,
    S_PHASE,
) = range(14)
S_LEN = 14

# -- kernel exit statuses --------------------------------------------------
ST_OK = 0
ST_DEADLOCK = 1      # programs blocked with both queues drained
ST_LEFTOVER = 2      # match queues not drained at iteration end (bail)
ST_OVERFLOW = 3      # heap/ready capacity exceeded (bail; cannot happen
#                      for schedules within the lowered capacity bounds)

#: times build_kernels actually ran (the warm-cache tests pin that repeat
#: calls to get_kernels hit the cache instead of rebuilding)
build_count = 0

_ENV_NO_NATIVE = "PIPMCOLL_NO_NATIVE"


def jit_available() -> bool:
    """Whether the numba JIT can be used (installed and not disabled)."""
    if os.environ.get(_ENV_NO_NATIVE, "") not in ("", "0"):
        return False
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def kernel_mode() -> str:
    """``"jit"`` or ``"interp"`` — how :func:`get_kernels` will build."""
    return "jit" if jit_available() else "interp"


def build_kernels(jit):
    """Build the kernel set under decorator ``jit`` (njit or identity).

    Returns ``{"replay": fn}``.  Helpers are closure-bound so that under
    numba each call site binds to the compiled Dispatcher.
    """

    @jit
    def _lane_occupy(lane_free, node, tnow, nbytes, extra, bw, copy_lat):
        # MemoryModel.copy_occupy/reduce_occupy, lane heap as argmin:
        # heappop returns the minimum value; replacing one minimal entry
        # with the new end time evolves the same multiset of lane times.
        blocked = copy_lat + extra
        if nbytes > 0:
            service = nbytes / bw
            row = lane_free[node]
            j = 0
            m = row[0]
            for k in range(1, row.shape[0]):
                if row[k] < m:
                    m = row[k]
                    j = k
            start = m if m > tnow else tnow
            end = start + service
            row[j] = end
            blocked += end - tnow
        return blocked

    @jit
    def _fault_cost(P, C, warm, dst_rank, bid, nbytes):
        # MemoryModel.fault_cost; warm[0] is the per-node _warmed set
        # (dst_rank determines the node, so one global table suffices)
        if nbytes == 0 or warm[0, dst_rank, bid] != 0:
            return 0.0
        warm[0, dst_rank, bid] = 1
        pages = -(-nbytes // C[C_PAGE_SIZE])
        return pages * P[P_PAGE_FAULT]

    @jit
    def _sender_occupy(P, C, warm, lane_free, node, src_rank, nbytes, bid,
                       tnow):
        # mechanism sender_occupy, dispatched on the hybrid pick
        mech = (C[C_MECH_SMALL] if nbytes < C[C_MECH_THRESH]
                else C[C_MECH_LARGE])
        if mech == MECH_POSIX:
            # copy-in to the shared slab
            return _lane_occupy(lane_free, node, tnow, nbytes, 0.0,
                                P[P_CORE_BW], P[P_COPY_LAT])
        if mech == MECH_XPMEM:
            extra = 0.0
            if warm[1, src_rank, bid] == 0:  # expose cache
                warm[1, src_rank, bid] = 1
                extra = P[P_XP_EXPOSE]
            return _lane_occupy(lane_free, node, tnow, 0, extra,
                                P[P_CORE_BW], P[P_COPY_LAT])
        # kernel-copy / pip: descriptor post, costs nothing at the sender
        return 0.0

    @jit
    def _match_fixed(P, C, warm, dst_rank, nbytes, bid):
        # mechanism match_fixed, dispatched on the hybrid pick
        mech = (C[C_MECH_SMALL] if nbytes < C[C_MECH_THRESH]
                else C[C_MECH_LARGE])
        if mech == MECH_POSIX:
            return 0.0
        if mech == MECH_PIP:
            return P[P_SIZESYNC]
        if mech == MECH_KERNEL:
            return P[P_SYSCALL] + _fault_cost(P, C, warm, dst_rank, bid,
                                              nbytes)
        # xpmem: attach once per (receiver, allocation), then reattach
        if warm[2, dst_rank, bid] == 0:
            warm[2, dst_rank, bid] = 1
            return P[P_XP_ATTACH] + _fault_cost(P, C, warm, dst_rank, bid,
                                                nbytes)
        return P[P_XP_REATTACH]

    @jit
    def _nic_transfer(P, C, inj_free, nic_state, fabric_free, msgs_sent,
                      tnow, src_node, src_local, dst_node, nbytes, dma):
        # NodeNic.transfer, operand for operand.  nic_state columns:
        # 0 tx_rate next slot, 1 rx_rate next slot, 2 tx_bw next free,
        # 3 rx_bw next free.
        msgs_sent[src_node] += 1
        # 1. per-process injection
        service = nbytes / (P[P_PROC_DMA_BW] if dma else P[P_PROC_BW])
        rate_floor = P[P_RATE_FLOOR]
        if service < rate_floor:
            service = rate_floor
        inj_start = inj_free[src_node, src_local]
        if tnow > inj_start:
            inj_start = tnow
        inj_done = inj_start + service
        inj_free[src_node, src_local] = inj_done
        # 2. node transmit side: rate ceiling then bandwidth
        tx_admit = nic_state[src_node, 0]
        if inj_start > tx_admit:
            tx_admit = inj_start
        nic_state[src_node, 0] = tx_admit + P[P_NIC_INTERVAL]
        wire_service = nbytes / P[P_NIC_BW]
        tx_start = nic_state[src_node, 2]
        if tx_admit > tx_start:
            tx_start = tx_admit
        tx_end = tx_start + wire_service
        nic_state[src_node, 2] = tx_end
        if inj_done > tx_end:
            tx_end = inj_done
        # 2b. oversubscribed core fabric (optional)
        if C[C_HAS_FABRIC] != 0:
            fab_start = fabric_free[0]
            if tx_start > fab_start:
                fab_start = tx_start
            fab_end = fab_start + nbytes / P[P_FABRIC_BW]
            fabric_free[0] = fab_end
            if tx_end > fab_end:
                fab_end = tx_end
            head_start = fab_start
            tail_end = fab_end
        else:
            head_start = tx_start
            tail_end = tx_end
        # 3+4. wire + receive side
        head_arrival = head_start + P[P_WIRE_LAT]
        rx_admit = nic_state[dst_node, 1]
        if head_arrival > rx_admit:
            rx_admit = head_arrival
        nic_state[dst_node, 1] = rx_admit + P[P_NIC_INTERVAL]
        rx_service = nbytes / P[P_NIC_BW]
        rx_start = nic_state[dst_node, 3]
        if rx_admit > rx_start:
            rx_start = rx_admit
        rx_end = rx_start + rx_service
        nic_state[dst_node, 3] = rx_end
        arrival = tail_end + P[P_WIRE_LAT]
        if rx_end > arrival:
            arrival = rx_end
        return inj_done, arrival

    @jit
    def _hpush(ht, hs, hk, hta, hx, n, t, s, k, ta, x):
        # heapq.heappush on parallel arrays, comparing (time, seq)
        i = n
        ht[i] = t
        hs[i] = s
        hk[i] = k
        hta[i] = ta
        hx[i] = x
        while i > 0:
            p = (i - 1) >> 1
            if ht[p] > ht[i] or (ht[p] == ht[i] and hs[p] > hs[i]):
                ht[p], ht[i] = ht[i], ht[p]
                hs[p], hs[i] = hs[i], hs[p]
                hk[p], hk[i] = hk[i], hk[p]
                hta[p], hta[i] = hta[i], hta[p]
                hx[p], hx[i] = hx[i], hx[p]
                i = p
            else:
                break
        return n + 1

    @jit
    def _hpop(ht, hs, hk, hta, hx, n):
        # heapq.heappop: (time, seq) is a total order (seq unique), so any
        # correct binary heap pops entries in the identical order
        t = ht[0]
        s = hs[0]
        k = hk[0]
        ta = hta[0]
        x = hx[0]
        n -= 1
        if n > 0:
            ht[0] = ht[n]
            hs[0] = hs[n]
            hk[0] = hk[n]
            hta[0] = hta[n]
            hx[0] = hx[n]
            i = 0
            while True:
                left = 2 * i + 1
                if left >= n:
                    break
                small = left
                right = left + 1
                if right < n and (
                    ht[right] < ht[left]
                    or (ht[right] == ht[left] and hs[right] < hs[left])
                ):
                    small = right
                if ht[small] < ht[i] or (
                    ht[small] == ht[i] and hs[small] < hs[i]
                ):
                    ht[small], ht[i] = ht[i], ht[small]
                    hs[small], hs[i] = hs[i], hs[small]
                    hk[small], hk[i] = hk[i], hk[small]
                    hta[small], hta[i] = hta[i], hta[small]
                    hx[small], hx[i] = hx[i], hx[small]
                    i = small
                else:
                    break
        return t, s, k, ta, x, n

    @jit
    def replay(
        P, C, OPS, FCONST, WLISTS, OPSTART, TNODE, TLR,
        OPQ, OPB, OPCID,
        ENVB, ENVC, HANDLE, SCR,
        inj_free, nic_state, fabric_free, msgs_sent, lane_free, warm,
        btrig, bval, bw_off, bw_task, bw_tail,
        cval, cw_off, cw_thr, cw_task, cw_act, cw_tail,
        aq_off, aq_store, aq_head, aq_tail,
        pq_off, pq_store, pq_head, pq_tail,
        m_src, m_nbytes, m_bid, m_qid, m_flags, m_lr, m_sreq,
        q_kind, q_done, q_val, q_wait,
        ht, hs, hk, hta, hx,
        r_kind, r_task, r_aux,
        end_times, acct, acct_touch,
        io_i, io_f,
    ):
        """One schedule iteration: FastWorld.run_schedule + Timeline.run.

        Mutates the persistent world arrays in place; returns status via
        ``io_i[3]`` and the elapsed time via ``io_f[1]``.
        """
        now = io_f[0]
        seq = io_i[0]
        buf_seq = io_i[1]
        unexpected = io_i[2]
        ntasks = C[C_NTASKS]
        ppn = C[C_PPN]
        acct_on = C[C_ACCT] != 0
        start = now
        body_start = start + P[P_SW_OVH]
        live = ntasks
        for i in range(ntasks):
            end_times[i] = start
            SCR[i, S_PC] = OPSTART[i]
        nh = 0
        msg_n = 0
        req_n = 0
        rhead = 0
        rtail = 0
        rcap = r_kind.shape[0]
        hcap = ht.shape[0]
        # run_schedule seeds each task's first slice at start + overhead,
        # in rank order (one seq per push)
        for i in range(ntasks):
            seq += 1
            nh = _hpush(ht, hs, hk, hta, hx, nh, body_start, seq, K_RUN,
                        i, -1)
        status = ST_OK

        # Timeline.run: drain the ready ring fully before each heap pop
        while True:
            if nh + 4 >= hcap or rtail - rhead + 4 >= rcap:
                status = ST_OVERFLOW
                break
            if rhead != rtail:
                ri = rhead % rcap
                kind = r_kind[ri]
                task = r_task[ri]
                aux = r_aux[ri]
                rhead += 1
            elif nh > 0:
                t, s, kind, task, aux, nh = _hpop(ht, hs, hk, hta, hx, nh)
                now = t
            else:
                break

            do_nw = False
            do_run = False

            if kind == K_RUN:
                do_run = True
            elif kind == K_DELIVER or kind == K_SEND_INTRA:
                if kind == K_SEND_INTRA:
                    # _Task._send_intra: build the message, deliver it,
                    # complete eagerly when the mechanism allows, resume
                    cnt = SCR[task, S_CNT]
                    req = SCR[task, S_REQ]
                    mech = (C[C_MECH_SMALL] if cnt < C[C_MECH_THRESH]
                            else C[C_MECH_LARGE])
                    eager = mech == MECH_POSIX
                    m = msg_n
                    msg_n += 1
                    m_src[m] = task
                    m_nbytes[m] = cnt
                    m_bid[m] = SCR[task, S_BID]
                    m_qid[m] = SCR[task, S_QID]
                    m_flags[m] = 1  # intranode
                    m_lr[m] = TLR[task]
                    m_sreq[m] = -1 if eager else req
                    do_run = True
                else:
                    m = aux
                    eager = False
                    req = -1
                # FastWorld._deliver
                qq = m_qid[m]
                if pq_tail[qq] > pq_head[qq]:
                    r = pq_store[pq_off[qq] + pq_head[qq]]
                    pq_head[qq] += 1
                    wt = q_wait[r]
                    if wt >= 0:
                        q_wait[r] = -1
                        ri2 = rtail % rcap
                        r_kind[ri2] = K_RECV_WORK
                        r_task[ri2] = wt
                        r_aux[ri2] = m
                        rtail += 1
                    else:
                        q_done[r] = 1
                        q_val[r] = m
                else:
                    m_flags[m] = m_flags[m] | 4  # unexpected
                    unexpected += 1
                    aq_store[aq_off[qq] + aq_tail[qq]] = m
                    aq_tail[qq] += 1
                if eager:
                    # FastWorld._complete_send
                    wt = q_wait[req]
                    if wt >= 0:
                        q_wait[req] = -1
                        ri2 = rtail % rcap
                        r_kind[ri2] = K_NEXT_WAIT
                        r_task[ri2] = wt
                        r_aux[ri2] = -1
                        rtail += 1
                    else:
                        q_done[req] = 1
            elif kind == K_COMPLETE_SEND:
                r = aux
                wt = q_wait[r]
                if wt >= 0:
                    q_wait[r] = -1
                    ri2 = rtail % rcap
                    r_kind[ri2] = K_NEXT_WAIT
                    r_task[ri2] = wt
                    r_aux[ri2] = -1
                    rtail += 1
                else:
                    q_done[r] = 1
            elif kind == K_SEND_INTER:
                # _Task._send_inter
                cnt = SCR[task, S_CNT]
                req = SCR[task, S_REQ]
                dst_node = SCR[task, S_NODE]
                src_node = TNODE[task]
                lr = TLR[task]
                if cnt <= C[C_EAGER_THRESH]:
                    inj_done, arrival = _nic_transfer(
                        P, C, inj_free, nic_state, fabric_free, msgs_sent,
                        now, src_node, lr, dst_node, cnt, False,
                    )
                    m = msg_n
                    msg_n += 1
                    m_src[m] = task
                    m_nbytes[m] = cnt
                    m_bid[m] = SCR[task, S_BID]
                    m_qid[m] = SCR[task, S_QID]
                    m_flags[m] = 0
                    m_lr[m] = lr
                    m_sreq[m] = -1
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, nh, arrival, seq,
                                K_DELIVER, -1, m)
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, nh, inj_done, seq,
                                K_COMPLETE_SEND, -1, req)
                else:
                    inj_done, rts_arrival = _nic_transfer(
                        P, C, inj_free, nic_state, fabric_free, msgs_sent,
                        now, src_node, lr, dst_node, C[C_RTS_BYTES], False,
                    )
                    m = msg_n
                    msg_n += 1
                    m_src[m] = task
                    m_nbytes[m] = cnt
                    m_bid[m] = SCR[task, S_BID]
                    m_qid[m] = SCR[task, S_QID]
                    m_flags[m] = 2  # rendezvous
                    m_lr[m] = lr
                    m_sreq[m] = req
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, nh, rts_arrival, seq,
                                K_DELIVER, -1, m)
                do_run = True
            elif kind == K_NEXT_WAIT:
                do_nw = True
            elif kind == K_RECV_WORK:
                # _Task._recv_work
                m = aux
                flags = m_flags[m]
                node = TNODE[task]
                if flags & 1:  # intranode: match_fixed then copy in
                    fixed = _match_fixed(P, C, warm, task, m_nbytes[m],
                                         m_bid[m])
                    d = _lane_occupy(lane_free, node, now, m_nbytes[m],
                                     fixed, P[P_CORE_BW], P[P_COPY_LAT])
                elif flags & 2:  # rendezvous: CTS back, then DMA pull
                    data_start = now + P[P_SEND_OVH] + P[P_WIRE_LAT]
                    src_node = m_src[m] // ppn
                    inj_done, arrival = _nic_transfer(
                        P, C, inj_free, nic_state, fabric_free, msgs_sent,
                        data_start, src_node, m_lr[m], node, m_nbytes[m],
                        True,
                    )
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, nh, inj_done, seq,
                                K_COMPLETE_SEND, -1, m_sreq[m])
                    d = arrival - now + P[P_RECV_OVH]
                elif flags & 4:  # unexpected: copy out of the bounce slot
                    d = _lane_occupy(lane_free, node, now, m_nbytes[m],
                                     P[P_RECV_OVH], P[P_CORE_BW],
                                     P[P_COPY_LAT])
                else:
                    d = P[P_RECV_OVH]
                seq += 1
                nh = _hpush(ht, hs, hk, hta, hx, nh, now + d, seq,
                            K_RECV_DONE, task, m)
            elif kind == K_RECV_DONE:
                m = aux
                if m_flags[m] & 1:
                    sr = m_sreq[m]
                    if sr >= 0:
                        wt = q_wait[sr]
                        if wt >= 0:
                            q_wait[sr] = -1
                            ri2 = rtail % rcap
                            r_kind[ri2] = K_NEXT_WAIT
                            r_task[ri2] = wt
                            r_aux[ri2] = -1
                            rtail += 1
                        else:
                            q_done[sr] = 1
                do_nw = True
            elif kind == K_POST:
                # _Task._post: trigger the board event, drain its waiters
                b = SCR[task, S_KEY]
                v = SCR[task, S_VAL]
                btrig[b] = 1
                bval[b] = v
                base = bw_off[b]
                for j in range(base, base + bw_tail[b]):
                    ri2 = rtail % rcap
                    r_kind[ri2] = K_LOOKUP
                    r_task[ri2] = bw_task[j]
                    r_aux[ri2] = v
                    rtail += 1
                bw_tail[b] = 0
                do_run = True
            elif kind == K_LOOKUP:
                seq += 1
                nh = _hpush(ht, hs, hk, hta, hx, nh, now + P[P_PIP_FLAG],
                            seq, K_LOOKUP_BIND, task, aux)
            elif kind == K_LOOKUP_BIND:
                bind = SCR[task, S_BIND]
                if bind >= 0:
                    ENVB[task, bind] = aux >> 32
                    ENVC[task, bind] = aux & 0xFFFFFFFF
                do_run = True
            elif kind == K_ADD:
                # _Task._add: bump the counter, trigger satisfied waiters
                # in registration order
                c = SCR[task, S_KEY]
                cval[c] += SCR[task, S_VAL]
                v = cval[c]
                base = cw_off[c]
                for j in range(base, base + cw_tail[c]):
                    if cw_act[j] != 0 and v >= cw_thr[j]:
                        cw_act[j] = 0
                        ri2 = rtail % rcap
                        r_kind[ri2] = K_CWAIT
                        r_task[ri2] = cw_task[j]
                        r_aux[ri2] = v
                        rtail += 1
                do_run = True
            elif kind == K_CWAIT:
                seq += 1
                nh = _hpush(ht, hs, hk, hta, hx, nh, now + P[P_PIP_FLAG],
                            seq, K_RUN, task, -1)

            # _Task._next_wait
            if do_nw:
                i2 = SCR[task, S_WIDX] + 1
                if i2 < SCR[task, S_WLEN]:
                    SCR[task, S_WIDX] = i2
                    h = WLISTS[SCR[task, S_WOFF] + i2]
                    r = HANDLE[task, h]
                    if q_done[r] != 0:
                        fk = K_NEXT_WAIT if q_kind[r] == 0 else K_RECV_WORK
                        ri2 = rtail % rcap
                        r_kind[ri2] = fk
                        r_task[ri2] = task
                        r_aux[ri2] = q_val[r]
                        rtail += 1
                    else:
                        q_wait[r] = task
                else:
                    do_run = True

            # _Task._run: interpret opcodes until the next suspension
            if do_run:
                pc = SCR[task, S_PC]
                pe = OPSTART[task + 1]
                node = TNODE[task]
                finished = True
                while pc < pe:
                    gi = pc
                    code = OPS[gi, 0]
                    pc += 1
                    if code == OP_LOOKUP:
                        SCR[task, S_PC] = pc
                        SCR[task, S_BIND] = OPS[gi, 1]
                        b = OPB[gi]
                        if btrig[b] != 0:
                            ri2 = rtail % rcap
                            r_kind[ri2] = K_LOOKUP
                            r_task[ri2] = task
                            r_aux[ri2] = bval[b]
                            rtail += 1
                        else:
                            j = bw_off[b] + bw_tail[b]
                            bw_task[j] = task
                            bw_tail[b] += 1
                        finished = False
                        break
                    if code == OP_SEND_INTRA:
                        dst = OPS[gi, 1]
                        nm = OPS[gi, 2]
                        off = OPS[gi, 3]
                        cnt = OPS[gi, 4]
                        hd = OPS[gi, 5]
                        bid = ENVB[task, nm]
                        if cnt < 0:
                            cnt = ENVC[task, nm] - off
                        r = req_n
                        req_n += 1
                        q_kind[r] = 0
                        q_done[r] = 0
                        q_val[r] = -1
                        q_wait[r] = -1
                        HANDLE[task, hd] = r
                        if acct_on:
                            ph = SCR[task, S_PHASE]
                            acct[task, ph, 2] += 1
                            acct[task, ph, 3] += cnt
                            acct_touch[task, ph] = 1
                        SCR[task, S_PC] = pc
                        SCR[task, S_DST] = dst
                        SCR[task, S_BID] = bid
                        SCR[task, S_CNT] = cnt
                        SCR[task, S_QID] = OPQ[gi]
                        SCR[task, S_REQ] = r
                        d = _sender_occupy(P, C, warm, lane_free, node,
                                           task, cnt, bid, now)
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, nh, now + d, seq,
                                    K_SEND_INTRA, task, -1)
                        finished = False
                        break
                    if code == OP_SEND_INTER:
                        dst = OPS[gi, 1]
                        dst_node = OPS[gi, 2]
                        nm = OPS[gi, 3]
                        off = OPS[gi, 4]
                        cnt = OPS[gi, 5]
                        hd = OPS[gi, 6]
                        bid = ENVB[task, nm]
                        if cnt < 0:
                            cnt = ENVC[task, nm] - off
                        r = req_n
                        req_n += 1
                        q_kind[r] = 0
                        q_done[r] = 0
                        q_val[r] = -1
                        q_wait[r] = -1
                        HANDLE[task, hd] = r
                        if acct_on:
                            ph = SCR[task, S_PHASE]
                            acct[task, ph, 0] += 1
                            acct[task, ph, 1] += cnt
                            acct_touch[task, ph] = 1
                        SCR[task, S_PC] = pc
                        SCR[task, S_DST] = dst
                        SCR[task, S_NODE] = dst_node
                        SCR[task, S_BID] = bid
                        SCR[task, S_CNT] = cnt
                        SCR[task, S_QID] = OPQ[gi]
                        SCR[task, S_REQ] = r
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, nh,
                                    now + P[P_SEND_OVH], seq,
                                    K_SEND_INTER, task, -1)
                        finished = False
                        break
                    if code == OP_RECV:
                        hd = OPS[gi, 1]
                        qq = OPQ[gi]
                        r = req_n
                        req_n += 1
                        q_kind[r] = 1
                        q_done[r] = 0
                        q_val[r] = -1
                        q_wait[r] = -1
                        HANDLE[task, hd] = r
                        if aq_tail[qq] > aq_head[qq]:
                            m = aq_store[aq_off[qq] + aq_head[qq]]
                            aq_head[qq] += 1
                            q_done[r] = 1
                            q_val[r] = m
                        else:
                            pq_store[pq_off[qq] + pq_tail[qq]] = r
                            pq_tail[qq] += 1
                        continue
                    if code == OP_WAIT:
                        woff = OPS[gi, 1]
                        SCR[task, S_PC] = pc
                        SCR[task, S_WOFF] = woff
                        SCR[task, S_WLEN] = OPS[gi, 2]
                        SCR[task, S_WIDX] = 0
                        r = HANDLE[task, WLISTS[woff]]
                        fk = K_NEXT_WAIT if q_kind[r] == 0 else K_RECV_WORK
                        if q_done[r] != 0:
                            ri2 = rtail % rcap
                            r_kind[ri2] = fk
                            r_task[ri2] = task
                            r_aux[ri2] = q_val[r]
                            rtail += 1
                        else:
                            q_wait[r] = task
                        finished = False
                        break
                    if code == OP_COPY or code == OP_REDUCE:
                        nm = OPS[gi, 1]
                        off = OPS[gi, 2]
                        cnt = OPS[gi, 3]
                        if cnt < 0:
                            cnt = ENVC[task, nm] - off
                        if acct_on:
                            ph = SCR[task, S_PHASE]
                            col = 4 if code == OP_COPY else 5
                            acct[task, ph, col] += cnt
                            acct_touch[task, ph] = 1
                        SCR[task, S_PC] = pc
                        bw = (P[P_CORE_BW] if code == OP_COPY
                              else P[P_REDUCE_BW])
                        d = _lane_occupy(lane_free, node, now, cnt, 0.0,
                                         bw, P[P_COPY_LAT])
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, nh, now + d, seq,
                                    K_RUN, task, -1)
                        finished = False
                        break
                    if code == OP_POST:
                        nm = OPS[gi, 1]
                        off = OPS[gi, 2]
                        cnt = OPS[gi, 3]
                        bid = ENVB[task, nm]
                        if cnt < 0:
                            cnt = ENVC[task, nm] - off
                        SCR[task, S_PC] = pc
                        SCR[task, S_KEY] = OPB[gi]
                        SCR[task, S_VAL] = (bid << 32) | cnt
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, nh,
                                    now + P[P_PIP_POST], seq, K_POST,
                                    task, -1)
                        finished = False
                        break
                    if code == OP_ADD:
                        SCR[task, S_PC] = pc
                        SCR[task, S_KEY] = OPCID[gi]
                        SCR[task, S_VAL] = OPS[gi, 1]
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, nh,
                                    now + P[P_PIP_FLAG], seq, K_ADD,
                                    task, -1)
                        finished = False
                        break
                    if code == OP_CWAIT:
                        th = OPS[gi, 1]
                        c = OPCID[gi]
                        SCR[task, S_PC] = pc
                        if cval[c] >= th:
                            seq += 1
                            nh = _hpush(ht, hs, hk, hta, hx, nh,
                                        now + P[P_PIP_FLAG], seq, K_RUN,
                                        task, -1)
                        else:
                            j = cw_off[c] + cw_tail[c]
                            cw_thr[j] = th
                            cw_task[j] = task
                            cw_act[j] = 1
                            cw_tail[c] += 1
                        finished = False
                        break
                    if code == OP_ALLOC:
                        buf_seq += 1
                        ENVB[task, OPS[gi, 1]] = buf_seq
                        ENVC[task, OPS[gi, 1]] = OPS[gi, 2]
                        continue
                    if code == OP_PHASE:
                        SCR[task, S_PHASE] = OPS[gi, 1]
                        continue
                    # OP_COMPUTE
                    SCR[task, S_PC] = pc
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, nh,
                                now + FCONST[OPS[gi, 1]], seq, K_RUN,
                                task, -1)
                    finished = False
                    break
                if finished:
                    end_times[task] = now
                    live -= 1

        if status == ST_OK and live > 0:
            status = ST_DEADLOCK
        if status == ST_OK:
            for qq in range(C[C_NQUEUES]):
                if aq_tail[qq] != aq_head[qq] or pq_tail[qq] != pq_head[qq]:
                    status = ST_LEFTOVER
                    break
        elapsed = 0.0
        if status == ST_OK:
            mx = end_times[0]
            for i in range(1, ntasks):
                if end_times[i] > mx:
                    mx = end_times[i]
            elapsed = mx - start
        io_i[0] = seq
        io_i[1] = buf_seq
        io_i[2] = unexpected
        io_i[3] = status
        io_i[4] = live
        io_f[0] = now
        io_f[1] = elapsed
        return status

    return {"replay": replay}


_KERNEL_CACHE: dict = {}


def get_kernels(force_interp: bool = False):
    """Kernel set for the current mode, built once and cached.

    ``force_interp=True`` returns the pure-Python (undecorated) build even
    when numba is importable — the bit-identity tests use it so the exact
    kernel logic is exercised on numba-free installs too.
    """
    global build_count
    mode = "interp" if force_interp else kernel_mode()
    cached = _KERNEL_CACHE.get(mode)
    if cached is not None:
        return cached
    if mode == "jit":  # pragma: no cover - needs numba installed
        from numba import njit

        try:
            kernels = build_kernels(njit(cache=True))
        except Exception:
            kernels = build_kernels(njit)
    else:
        kernels = build_kernels(lambda fn: fn)
    kernels = dict(kernels, mode=mode)
    _KERNEL_CACHE[mode] = kernels
    build_count += 1
    return kernels

"""A coroutine-free replica of the event engine's scheduling core.

:class:`Timeline` reproduces :class:`repro.sim.engine.Engine`'s execution
order *exactly* — same heap keyed by ``(time, seq)``, same ready deque
drained fully before each heap pop, same FIFO trigger semantics — but
drives plain callbacks instead of generator processes.  The DAG fast-path
evaluator (:mod:`repro.sched.fastpath`) lowers each rank's compiled
schedule into a small state machine whose ``advance`` method is scheduled
through a timeline; because every suspension point of the generator-based
runtime maps to exactly one timeline callback scheduled in the same
relative order, all ``(time, seq)`` tie-breaks resolve identically and the
evaluated completion times are bit-identical to event-loop replay
(``tests/sched/test_fastpath.py`` pins this across the registry grid).

What makes this fast is what it *doesn't* do: no generator frames, no
``Command`` objects allocated per step, no ``Process``/``Event`` dataclass
machinery, no send/throw protocol — just tuples on a heap.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable

__all__ = ["Timeline", "TimelineEvent"]


class Timeline:
    """Minimal deterministic scheduler: heap + ready deque + seq counter.

    Entries are ``(time, seq, fn, value)`` tuples; ``fn(value)`` runs when
    the entry is popped.  Ties at equal ``time`` resolve by ``seq`` —
    scheduling order — exactly like the engine's heap.
    """

    __slots__ = ("now", "_heap", "_ready", "_seq")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._ready: deque = deque()
        self._seq = 0

    def call(self, time: float, fn: Callable[[Any], None], value: Any = None) -> None:
        """Schedule ``fn(value)`` at absolute simulated ``time``."""
        self._seq += 1
        heappush(self._heap, (time, self._seq, fn, value))

    def defer(self, fn: Callable[[Any], None], value: Any = None) -> None:
        """Run ``fn(value)`` at the current time, after already-ready work.

        The analogue of the engine's ready-deque hop (resuming a process
        that waited on an already-triggered event).
        """
        self._ready.append((fn, value))

    def run(self) -> float:
        """Dispatch until both queues drain; returns the final time.

        Mirrors ``Engine.run``: the ready deque is drained completely
        before each single heap pop, so callbacks scheduled "now" always
        run before simulated time can advance.
        """
        heap = self._heap
        ready = self._ready
        pop = heappop
        while heap or ready:
            while ready:
                fn, value = ready.popleft()
                fn(value)
            if not heap:
                break
            entry = pop(heap)
            self.now = entry[0]
            entry[2](entry[3])
        return self.now


class TimelineEvent:
    """One-shot event with the engine's trigger ordering.

    Waiters are callbacks (a rank task's ``advance`` method); they are
    appended to the timeline's ready deque in registration order at
    trigger time — byte-for-byte the ordering :class:`~repro.sim.engine.Event`
    gives suspended processes.  Waiting on an already-triggered event
    defers the callback with the stored value (the engine's ready hop).
    """

    __slots__ = ("_tl", "triggered", "value", "_waiters")

    def __init__(self, tl: Timeline):
        self._tl = tl
        self.triggered = False
        self.value: Any = None
        self._waiters: list = []

    def wait(self, fn: Callable[[Any], None]) -> None:
        if self.triggered:
            self._tl._ready.append((fn, self.value))
        else:
            self._waiters.append(fn)

    def trigger(self, value: Any = None) -> None:
        self.triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            ready = self._tl._ready
            for fn in waiters:
                ready.append((fn, value))
            self._waiters = []

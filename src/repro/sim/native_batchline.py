"""Nopython twin of the batch (vector-clock) replay for ``native-batch``.

This module holds the *kernel* of ``engine="native-batch"``: one replay
function (plus cost helpers) written against plain numpy arrays and
scalars only — no dicts, no strings, no Python objects — so that it
compiles under ``numba.njit`` unchanged.  It is the batch-engine
counterpart of :mod:`repro.sim.native_timeline`: where that kernel
advances one scalar clock, this one advances a ``float64[S]`` vector
clock over a whole message-size partition, mirroring
:class:`repro.sim.batchline.BatchTimeline` /
:class:`repro.sched.batch.BatchWorld` event for event.

:func:`build_kernels` takes a decorator (``numba.njit`` when numba
imports, the identity function when it doesn't) and returns the
compiled/interpreted kernel set; the same source runs in ``jit`` and
``interp`` modes exactly as documented in
:mod:`repro.sim.native_timeline`, and the kill switch is the same
``PIPMCOLL_NO_NATIVE`` gate.

Vector-for-vector identity argument
-----------------------------------

The acceptance contract is that ``engine="native-batch"`` produces
bit-identical float64 samples to ``engine="batch"`` for every (point,
size) — including which sizes are flagged order-divergent.  That holds
because:

1. **Same arithmetic, same operation order, per column.**  Every
   ``(S,)`` time vector the pure-Python batch engine builds is an
   elementwise numpy expression; the kernel computes each column of the
   same expression with the same scalar IEEE-754 operations in the same
   order (``np.maximum`` becomes a compare-and-pick per column — equal
   operands, equal bits).  Time vectors live as immutable rows of one
   ``(T, S)`` pool; every ``tl.call(now + d, ...)`` of the pure engine
   allocates a fresh row here, exactly like the fresh arrays the cost
   closures build.
2. **Same event order.**  The heap stores ``(pivot_time, seq)`` with
   heapq's tuple comparison; every ``tl.call`` seq increment has a
   counterpart here, the ready ring is drained fully before each heap
   pop, and ready entries carry their exact max-resume override rows —
   so the pivot-ordered dispatch sequence is identical to
   :meth:`BatchTimeline.run`.
3. **Same adjudication inputs.**  The kernel records the pop log
   (time row, seq, epoch, push parent) and the raw resource-touch log
   (resource id, pop, kind, ok-mask row); after the run the sched layer
   replays that log through a *real* :class:`BatchTimeline` — same
   collapse rules, same conflict matrix, same tie reconstruction, same
   counter-crossing re-checks — so ``order_divergence()`` and the
   divergence-signature labels are computed by the very code the pure
   engine uses.
4. **Same splits.**  Every size-dependent branch (eager/rendezvous,
   hybrid mechanism picks, ``nbytes > 0``, cold-fault masks) performs
   the pivot-first uniformity test of the pure engine and, on a mixed
   mask, aborts with ``ST_DIVERGENT`` and the identical mask — the
   sched layer re-raises :class:`BatchDivergence` so the partition
   splits at the same boundary.

``tests/sched/test_native_batch.py`` pins the contract across the
registry grid, threshold-straddling axes and a forced-divergence pass.
"""

from __future__ import annotations

import os

__all__ = [
    "build_kernels",
    "get_kernels",
    "jit_available",
    "kernel_mode",
    "build_count",
    "REPLAY_ARGS",
]

# -- opcode values (must mirror repro.sched.fastpath's _OP_* order) --------
(
    OP_SEND_INTRA,
    OP_SEND_INTER,
    OP_RECV,
    OP_WAIT,
    OP_COPY,
    OP_REDUCE,
    OP_POST,
    OP_LOOKUP,
    OP_ADD,
    OP_CWAIT,
    OP_ALLOC,
    OP_PHASE,
    OP_COMPUTE,
) = range(13)

# -- continuation codes (heap/ready entries: which callback fires) ---------
(
    K_RUN,
    K_SEND_INTRA,
    K_SEND_INTER,
    K_NEXT_WAIT,
    K_RECV_WORK,
    K_RECV_DONE,
    K_POST,
    K_LOOKUP,
    K_LOOKUP_BIND,
    K_ADD,
    K_CWAIT,
    K_DELIVER,
    K_COMPLETE_SEND,
) = range(13)

# -- float parameter vector indices (same layout as native_timeline) -------
(
    P_PROC_BW,
    P_PROC_DMA_BW,
    P_RATE_FLOOR,      # 1.0 / proc_msg_rate, divided once
    P_NIC_BW,
    P_NIC_INTERVAL,    # 1.0 / nic_msg_rate, divided once
    P_FABRIC_BW,
    P_WIRE_LAT,
    P_SEND_OVH,
    P_RECV_OVH,
    P_PIP_POST,
    P_PIP_FLAG,
    P_COPY_LAT,
    P_CORE_BW,
    P_REDUCE_BW,
    P_PAGE_FAULT,
    P_SYSCALL,
    P_SIZESYNC,
    P_XP_EXPOSE,
    P_XP_ATTACH,
    P_XP_REATTACH,
    P_SW_OVH,
) = range(21)
P_LEN = 21

# -- int config vector indices ---------------------------------------------
(
    C_NODES,
    C_PPN,
    C_NTASKS,
    C_HAS_FABRIC,
    C_MECH_SMALL,
    C_MECH_LARGE,
    C_MECH_THRESH,
    C_EAGER_THRESH,
    C_PAGE_SIZE,
    C_RTS_ROW,         # NB row holding the broadcast RTS header bytes
    C_NQUEUES,
    C_TRACK_MB,        # mechanism has warm state: record ("mb", bid)
    C_MB_BASE,         # first buffer-identity resource id
    C_QRES_BASE,       # first match-queue resource id
) = range(14)
C_LEN = 14

# -- mechanism codes -------------------------------------------------------
MECH_POSIX = 0
MECH_KERNEL = 1
MECH_XPMEM = 2
MECH_PIP = 3

# -- scratch (SCR) columns per task ----------------------------------------
(
    S_PC,
    S_DST,
    S_NODE,
    S_BID,
    S_CNT,     # NB row of the pending byte-count vector
    S_QID,
    S_REQ,
    S_KEY,     # pending board / counter id
    S_VAL,     # pending post: buffer id; pending add: n
    S_VAL2,    # pending post: NB count row
    S_BIND,    # pending lookup: binding name id (-1 = none)
    S_WOFF,
    S_WLEN,
    S_WIDX,
) = range(14)
S_LEN = 14

# -- work/state vector (int64) indices -------------------------------------
(
    W_SEQ,      # timeline push sequence (persists across iterations)
    W_TPN,      # time-row pool fill
    W_NBN,      # count-row pool fill
    W_MPN,      # mask-row pool fill
    W_POPN,     # pop-log fill
    W_TRN,      # touch-log fill
    W_MN,       # message-pool fill
    W_RN,       # request-pool fill
    W_CAN,      # counter-add-log fill
    W_CKN,      # counter-check-log fill
    W_NOWROW,   # timeline clock row (epoch-end colwise max)
    W_STATUS,
    W_DIVROW,   # MP row of the divergence mask when ST_DIVERGENT
    W_BCONF,    # a board key was posted twice
    W_LIVE,
    W_EPOCH,
    W_ELAPSED,  # TP row of this iteration's elapsed vector
    W_MSGS,     # internode messages sent (all iterations)
    W_BUFSEQ,   # AllocStep buffer-id sequence
    W_START,    # TP row of this iteration's start vector
) = range(20)
W_LEN = 20

# -- kernel exit statuses --------------------------------------------------
ST_OK = 0
ST_DEADLOCK = 1      # programs blocked with both queues drained
ST_LEFTOVER = 2      # match queues not drained at iteration end (bail)
ST_OVERFLOW = 3      # a pool/log capacity was exceeded (retry larger)
ST_DIVERGENT = 4     # a size-dependent branch was not uniform (split)

#: times build_kernels actually ran (warm-cache tests pin that repeat
#: calls to get_kernels hit the cache instead of rebuilding)
build_count = 0

_ENV_NO_NATIVE = "PIPMCOLL_NO_NATIVE"


def jit_available() -> bool:
    """Whether the numba JIT can be used (installed and not disabled).

    The same uniform kill switch as :mod:`repro.sim.native_timeline`:
    ``PIPMCOLL_NO_NATIVE=1`` disables every JIT tier at once.
    """
    if os.environ.get(_ENV_NO_NATIVE, "") not in ("", "0"):
        return False
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def kernel_mode() -> str:
    """``"jit"`` or ``"interp"`` — how :func:`get_kernels` will build."""
    return "jit" if jit_available() else "interp"


def build_kernels(jit):
    """Build the kernel set under decorator ``jit`` (njit or identity).

    Returns ``{"replay": fn}``.  Helpers are closure-bound so that under
    numba each call site binds to the compiled Dispatcher.
    """

    @jit
    def _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh, t0, seq, kind, task,
               aux, row, par):
        # binary min-heap on (pivot time, seq); identical total order to
        # heapq's tuple comparison (seq is unique)
        i = nh
        ht[i] = t0
        hs[i] = seq
        hk[i] = kind
        hta[i] = task
        hx[i] = aux
        hrow[i] = row
        hpar[i] = par
        while i > 0:
            p = (i - 1) >> 1
            if ht[i] < ht[p] or (ht[i] == ht[p] and hs[i] < hs[p]):
                ht[i], ht[p] = ht[p], ht[i]
                hs[i], hs[p] = hs[p], hs[i]
                hk[i], hk[p] = hk[p], hk[i]
                hta[i], hta[p] = hta[p], hta[i]
                hx[i], hx[p] = hx[p], hx[i]
                hrow[i], hrow[p] = hrow[p], hrow[i]
                hpar[i], hpar[p] = hpar[p], hpar[i]
                i = p
            else:
                break
        return nh + 1

    @jit
    def _hpop(ht, hs, hk, hta, hx, hrow, hpar, nh):
        # root is the minimum; caller reads hk/hta/hx/hrow/hpar[nh - 1]
        # after the call (the popped entry is parked past the new end)
        last = nh - 1
        rt, rs = ht[0], hs[0]
        rk_, rta, rx_ = hk[0], hta[0], hx[0]
        rrow, rpar = hrow[0], hpar[0]
        ht[0], hs[0] = ht[last], hs[last]
        hk[0], hta[0], hx[0] = hk[last], hta[last], hx[last]
        hrow[0], hpar[0] = hrow[last], hpar[last]
        i = 0
        while True:
            l = 2 * i + 1
            if l >= last:
                break
            r = l + 1
            c = l
            if r < last and (ht[r] < ht[l]
                             or (ht[r] == ht[l] and hs[r] < hs[l])):
                c = r
            if ht[c] < ht[i] or (ht[c] == ht[i] and hs[c] < hs[i]):
                ht[i], ht[c] = ht[c], ht[i]
                hs[i], hs[c] = hs[c], hs[i]
                hk[i], hk[c] = hk[c], hk[i]
                hta[i], hta[c] = hta[c], hta[i]
                hx[i], hx[c] = hx[c], hx[i]
                hrow[i], hrow[c] = hrow[c], hrow[i]
                hpar[i], hpar[c] = hpar[c], hpar[i]
                i = c
            else:
                break
        ht[last], hs[last] = rt, rs
        hk[last], hta[last], hx[last] = rk_, rta, rx_
        hrow[last], hpar[last] = rrow, rpar
        return last

    @jit
    def _addc(TP, W, a, c):
        # fresh row: TP[a] + c  (tl.call(now + const, ...))
        S = TP.shape[1]
        r = W[W_TPN]
        for j in range(S):
            TP[r, j] = TP[a, j] + c
        W[W_TPN] = r + 1
        return r

    @jit
    def _addrow(TP, W, a, b):
        # fresh row: TP[a] + TP[b]
        S = TP.shape[1]
        r = W[W_TPN]
        for j in range(S):
            TP[r, j] = TP[a, j] + TP[b, j]
        W[W_TPN] = r + 1
        return r

    @jit
    def _maxrow(TP, W, a, b):
        # fresh row: np.maximum(TP[a], TP[b])
        S = TP.shape[1]
        r = W[W_TPN]
        for j in range(S):
            x = TP[a, j]
            y = TP[b, j]
            TP[r, j] = x if x > y else y
        W[W_TPN] = r + 1
        return r

    @jit
    def _touch(tr_res, tr_cur, tr_kind, tr_mrow, W, res, cur):
        # raw log entry; the sched layer replays it through the real
        # BatchTimeline.touch (collapse rules live there)
        i = W[W_TRN]
        tr_res[i] = res
        tr_cur[i] = cur
        tr_kind[i] = 0
        tr_mrow[i] = -1
        W[W_TRN] = i + 1

    @jit
    def _touch_ok(tr_res, tr_cur, tr_kind, tr_mrow, W, res, cur, mrow):
        # mrow: -1 = scalar True, -2 = scalar False, >= 0 = MP mask row
        i = W[W_TRN]
        tr_res[i] = res
        tr_cur[i] = cur
        tr_kind[i] = 1
        tr_mrow[i] = mrow
        W[W_TRN] = i + 1

    @jit
    def _fault(P, C, W, TP, NB, MP, warm, dst_rank, bid, cntrow):
        # BatchMemory.fault_cost for an (S,) count row.  Returns
        # (row, const): row >= 0 is a fresh TP row, row == -1 means the
        # scalar ``const``; on a mixed zero-mask sets ST_DIVERGENT with
        # the ~zero mask and returns (-1, 0.0).
        S = NB.shape[1]
        allz = True
        anyz = False
        for j in range(S):
            if NB[cntrow, j] == 0:
                anyz = True
            else:
                allz = False
        if allz:
            return -1, 0.0
        if warm[0, dst_rank, bid] != 0:
            return -1, 0.0
        if anyz:
            m = W[W_MPN]
            for j in range(S):
                MP[m, j] = NB[cntrow, j] != 0
            W[W_MPN] = m + 1
            W[W_DIVROW] = m
            W[W_STATUS] = ST_DIVERGENT
            return -1, 0.0
        warm[0, dst_rank, bid] = 1
        r = W[W_TPN]
        for j in range(S):
            pages = -((-NB[cntrow, j]) // C[C_PAGE_SIZE])
            TP[r, j] = pages * P[P_PAGE_FAULT]
        W[W_TPN] = r + 1
        return r, 0.0

    @jit
    def _occupy(P, W, TP, NB, MP, tr_res, tr_cur, tr_kind, tr_mrow,
                lane_free, node, nowrow, cntrow, frow, fconst, bw,
                mm_res, cur):
        # BatchMemory._occupy: blocked = copy_latency + extra, plus the
        # lane reservation when any count is positive.  The extra (fixed
        # match cost) arrives as row + const: ``TP[frow] + fconst`` when
        # ``frow >= 0``, else the scalar ``fconst`` (IEEE addition is
        # commutative, so fault-row/const regrouping keeps bits).
        # Returns (row, const) like _fault; a mixed nbytes>0 mask sets
        # ST_DIVERGENT.
        S = NB.shape[1]
        pos0 = NB[cntrow, 0] > 0
        mixed = False
        anyp = False
        for j in range(S):
            p = NB[cntrow, j] > 0
            if p:
                anyp = True
            if p != pos0:
                mixed = True
        if mixed:
            m = W[W_MPN]
            for j in range(S):
                MP[m, j] = NB[cntrow, j] > 0
            W[W_MPN] = m + 1
            W[W_DIVROW] = m
            W[W_STATUS] = ST_DIVERGENT
            return -1, 0.0
        if not anyp:
            if frow >= 0:
                r = W[W_TPN]
                for j in range(S):
                    TP[r, j] = P[P_COPY_LAT] + (TP[frow, j] + fconst)
                W[W_TPN] = r + 1
                return r, 0.0
            return -1, P[P_COPY_LAT] + fconst
        nlanes = lane_free.shape[1]
        r = W[W_TPN]
        W[W_TPN] = r + 1
        m = W[W_MPN]
        allok = True
        for j in range(S):
            lane = 0
            mn = lane_free[node, 0, j]
            for k in range(1, nlanes):
                if lane_free[node, k, j] < mn:
                    mn = lane_free[node, k, j]
                    lane = k
            prev = lane_free[node, lane, j]
            service = NB[cntrow, j] / bw
            tnow = TP[nowrow, j]
            start = prev if prev > tnow else tnow
            end = start + service
            lane_free[node, lane, j] = end
            ok = prev <= tnow
            MP[m, j] = ok
            if not ok:
                allok = False
            extra = (TP[frow, j] + fconst) if frow >= 0 else fconst
            TP[r, j] = (P[P_COPY_LAT] + extra) + (end - tnow)
        if allok:
            _touch_ok(tr_res, tr_cur, tr_kind, tr_mrow, W, mm_res, cur, -1)
        else:
            W[W_MPN] = m + 1
            _touch_ok(tr_res, tr_cur, tr_kind, tr_mrow, W, mm_res, cur, m)
        return r, 0.0

    @jit
    def _transfer(P, C, W, TP, NB, tr_res, tr_cur, tr_kind, tr_mrow,
                  inj_free, nic_state, fabric_free, nowrow, src_node,
                  src_local, dst_node, cntrow, dma, cur):
        # BatchNic.transfer, operand for operand per column.  nic_state
        # rows per node: 0 tx_rate, 1 rx_rate, 2 tx_bw, 3 rx_bw next.
        # Returns (inj_done_row, arrival_row) as two fresh TP rows.
        S = TP.shape[1]
        size = C[C_NODES] * C[C_PPN]
        W[W_MSGS] += 1
        _touch(tr_res, tr_cur, tr_kind, tr_mrow, W,
               src_node * C[C_PPN] + src_local, cur)
        _touch(tr_res, tr_cur, tr_kind, tr_mrow, W, size + src_node, cur)
        _touch(tr_res, tr_cur, tr_kind, tr_mrow, W,
               size + C[C_NODES] + dst_node, cur)
        if C[C_HAS_FABRIC] != 0:
            _touch(tr_res, tr_cur, tr_kind, tr_mrow, W,
                   size + 2 * C[C_NODES], cur)
        ri = W[W_TPN]
        ra = ri + 1
        W[W_TPN] = ri + 2
        pbw = P[P_PROC_DMA_BW] if dma != 0 else P[P_PROC_BW]
        for j in range(S):
            nb = NB[cntrow, j]
            tnow = TP[nowrow, j]
            service = nb / pbw
            if service < P[P_RATE_FLOOR]:
                service = P[P_RATE_FLOOR]
            inj_start = tnow
            if inj_free[src_node, src_local, j] > inj_start:
                inj_start = inj_free[src_node, src_local, j]
            inj_done = inj_start + service
            inj_free[src_node, src_local, j] = inj_done
            tx_admit = nic_state[src_node, 0, j]
            if inj_start > tx_admit:
                tx_admit = inj_start
            nic_state[src_node, 0, j] = tx_admit + P[P_NIC_INTERVAL]
            wire_service = nb / P[P_NIC_BW]
            tx_start = nic_state[src_node, 2, j]
            if tx_admit > tx_start:
                tx_start = tx_admit
            tx_end = tx_start + wire_service
            # the scalar path stores the pre-pipelining end before
            # maxing with inj_done; replicate that exactly
            nic_state[src_node, 2, j] = tx_end
            if inj_done > tx_end:
                tx_end = inj_done
            if C[C_HAS_FABRIC] != 0:
                fab_start = tx_start
                if fabric_free[0, j] > fab_start:
                    fab_start = fabric_free[0, j]
                fab_end = fab_start + nb / P[P_FABRIC_BW]
                fabric_free[0, j] = fab_end
                if tx_end > fab_end:
                    fab_end = tx_end
                head_start = fab_start
                tail_end = fab_end
            else:
                head_start = tx_start
                tail_end = tx_end
            head_arrival = head_start + P[P_WIRE_LAT]
            rx_admit = nic_state[dst_node, 1, j]
            if head_arrival > rx_admit:
                rx_admit = head_arrival
            nic_state[dst_node, 1, j] = rx_admit + P[P_NIC_INTERVAL]
            rx_service = nb / P[P_NIC_BW]
            rx_start = nic_state[dst_node, 3, j]
            if rx_admit > rx_start:
                rx_start = rx_admit
            rx_end = rx_start + rx_service
            nic_state[dst_node, 3, j] = rx_end
            arrival = tail_end + P[P_WIRE_LAT]
            if rx_end > arrival:
                arrival = rx_end
            TP[ri, j] = inj_done
            TP[ra, j] = arrival
        return ri, ra

    @jit
    def _pick(C, W, NB, MP, cntrow):
        # HybridMechanism.pick with the pivot-first uniformity test; a
        # mixed mask sets ST_DIVERGENT (mask = nbytes < threshold) and
        # returns -1.  Non-hybrid mechanisms never split here.
        if C[C_MECH_SMALL] == C[C_MECH_LARGE]:
            return C[C_MECH_SMALL]
        S = NB.shape[1]
        thr = C[C_MECH_THRESH]
        s0 = NB[cntrow, 0] < thr
        uniform = True
        for j in range(1, S):
            if (NB[cntrow, j] < thr) != s0:
                uniform = False
                break
        if uniform:
            return C[C_MECH_SMALL] if s0 else C[C_MECH_LARGE]
        m = W[W_MPN]
        for j in range(S):
            MP[m, j] = NB[cntrow, j] < thr
        W[W_MPN] = m + 1
        W[W_DIVROW] = m
        W[W_STATUS] = ST_DIVERGENT
        return -1

    @jit
    def _sender_occupy(P, C, W, TP, NB, MP, tr_res, tr_cur, tr_kind,
                       tr_mrow, warm, lane_free, node, src_rank, bid,
                       cntrow, nowrow, mech, mm_res, cur):
        # mechanism sender_occupy for the resolved mech code; (row,
        # const) result like _occupy
        if mech == MECH_POSIX:
            return _occupy(P, W, TP, NB, MP, tr_res, tr_cur, tr_kind,
                           tr_mrow, lane_free, node, nowrow, cntrow,
                           -1, 0.0, P[P_CORE_BW], mm_res, cur)
        if mech == MECH_XPMEM:
            extra = 0.0
            if warm[1, src_rank, bid] == 0:
                warm[1, src_rank, bid] = 1
                extra = P[P_XP_EXPOSE]
            # copy_occupy(now, 0, extra): the scalar zero-byte path
            return -1, P[P_COPY_LAT] + extra
        return -1, 0.0

    @jit
    def _match_fixed(P, C, W, TP, NB, MP, warm, dst_rank, bid, cntrow,
                     mech):
        # mechanism match_fixed; (row, const) with effective fixed =
        # TP[row] + const when row >= 0
        if mech == MECH_POSIX:
            return -1, 0.0
        if mech == MECH_PIP:
            return -1, P[P_SIZESYNC]
        if mech == MECH_KERNEL:
            fr, fc = _fault(P, C, W, TP, NB, MP, warm, dst_rank, bid,
                            cntrow)
            return fr, P[P_SYSCALL] + fc
        if warm[2, dst_rank, bid] == 0:
            warm[2, dst_rank, bid] = 1
            fr, fc = _fault(P, C, W, TP, NB, MP, warm, dst_rank, bid,
                            cntrow)
            return fr, P[P_XP_ATTACH] + fc
        return -1, P[P_XP_REATTACH]

    @jit
    def _crossing(TP, W, ca_row, ca_nv, ca_next, ca_head, csort, CS,
                  cid, thr):
        # repro.sched.batch._counter_crossing over the counter's add
        # chain; returns a TP row (an add's own row, or a fresh
        # order-statistic row from the per-column stable sort)
        k = 0
        i = ca_head[cid]
        while i >= 0:
            CS[0, k] = ca_row[i]
            CS[1, k] = ca_nv[i]
            k += 1
            i = ca_next[i]
        if k == 1:
            return CS[0, 0]
        if csort[cid] != 0:
            total = 0
            for q in range(k):
                total += CS[1, q]
                if total >= thr:
                    return CS[0, q]
        S = TP.shape[1]
        r = W[W_TPN]
        W[W_TPN] = r + 1
        for j in range(S):
            # stable insertion sort of the k add indices by time at j
            for q in range(k):
                pos = q
                while pos > 0 and (TP[CS[0, CS[2, pos - 1]], j]
                                   > TP[CS[0, q], j]):
                    CS[2, pos] = CS[2, pos - 1]
                    pos -= 1
                CS[2, pos] = q
            cum = 0
            first = 0
            for q in range(k):
                cum += CS[1, CS[2, q]]
                if cum >= thr:
                    first = q
                    break
            TP[r, j] = TP[CS[0, CS[2, first]], j]
        return r

    @jit
    def _deliver(C, W, TP, tr_res, tr_cur, tr_kind, tr_mrow,
                 m_dst, m_flags, m_trow, m_qid,
                 q_done, q_msg, q_trow, q_wait, q_wrow,
                 AQ, AQB, aq_head, aq_tail, PQ, PQB, pq_head, pq_tail,
                 rk, rt, ra, rov, rtail, m, nowrow, cur):
        # BatchWorld._deliver: match against a posted recv or enqueue
        # as an arrived (unexpected) message.  Returns the new ready
        # ring tail.
        qid = m_qid[m]
        res = C[C_QRES_BASE] + qid
        cls_ok = (m_flags[m] & 3) != 0
        rcap = rk.shape[0]
        plen = pq_tail[qid] - pq_head[qid]
        if plen > 0:
            ok = -1 if (cls_ok and plen == 1) else -2
            _touch_ok(tr_res, tr_cur, tr_kind, tr_mrow, W, res, cur, ok)
            r = PQ[PQB[qid] + pq_head[qid]]
            pq_head[qid] += 1
            wt = q_wait[r]
            if wt >= 0:
                q_wait[r] = -1
                i = rtail % rcap
                rk[i] = K_RECV_WORK
                rt[i] = wt
                ra[i] = m
                rov[i] = _maxrow(TP, W, nowrow, q_wrow[r])
                rtail += 1
            else:
                q_done[r] = 1
                q_msg[r] = m
                q_trow[r] = nowrow
        else:
            m_flags[m] |= 4
            m_trow[m] = nowrow
            AQ[AQB[qid] + aq_tail[qid]] = m
            aq_tail[qid] += 1
            alen = aq_tail[qid] - aq_head[qid]
            ok = -1 if (cls_ok and alen == 1) else -2
            _touch_ok(tr_res, tr_cur, tr_kind, tr_mrow, W, res, cur, ok)
        return rtail

    @jit
    def _complete_send(TP, W, q_done, q_trow, q_wait, q_wrow,
                       rk, rt, ra, rov, rtail, r, nowrow):
        # BatchWorld._complete_send: wake the send-side waiter or mark
        # the request done.  Returns the new ready ring tail.
        rcap = rk.shape[0]
        wt = q_wait[r]
        if wt >= 0:
            q_wait[r] = -1
            i = rtail % rcap
            rk[i] = K_NEXT_WAIT
            rt[i] = wt
            ra[i] = -1
            rov[i] = _maxrow(TP, W, nowrow, q_wrow[r])
            rtail += 1
        else:
            q_done[r] = 1
            q_trow[r] = nowrow
        return rtail

    @jit
    def replay(P, C, W, OPS, OPSTART, WLISTS, FPR, TNODE, TLR,
               OPQ, OPB, OPCID, ENVB, ENVCR, SCR, HND,
               TP, NB, MP,
               ht, hs, hk, hta, hx, hrow, hpar,
               rk, rt, ra, rov,
               pop_row, pop_seq, pop_epoch, pop_par,
               tr_res, tr_cur, tr_kind, tr_mrow,
               m_src, m_dst, m_cnt, m_bid, m_flags, m_lr, m_sreq,
               m_trow, m_qid,
               q_kind, q_done, q_msg, q_trow, q_wait, q_wrow,
               AQ, AQB, aq_head, aq_tail, PQ, PQB, pq_head, pq_tail,
               btrig, bvbid, bvrow, btrow,
               bw_task, bw_rrow, bw_base, bw_tail,
               cval, csort, ctmax, ca_row, ca_nv, ca_next, ca_head,
               ca_tail,
               cw_thr, cw_task, cw_rrow, cw_act, cw_base, cw_tail,
               ck_cid, ck_thr, ck_reach, ck_used,
               warm, lane_free, inj_free, nic_state, fabric_free,
               end_row, CS):
        """Replay one schedule iteration on the array world state.

        Mirrors ``BatchWorld.run_schedule`` + ``BatchTimeline.run``
        exactly: root pushes, a ready-ring drain / heap-pop event loop
        dispatching on continuation kinds, and the epoch-end colwise
        clock advance.  All timeline pops and resource touches are
        logged raw; the Python side reconstructs a ``BatchTimeline``
        from the logs for conflict adjudication.
        """
        ntasks = C[C_NTASKS]
        ppn = C[C_PPN]
        nodes = C[C_NODES]
        S = TP.shape[1]
        hcap = ht.shape[0]
        rcap = rk.shape[0]
        tcap = TP.shape[0]
        ncap = NB.shape[0]
        mcap = MP.shape[0]
        popcap = pop_row.shape[0]
        trcap = tr_res.shape[0]
        msgcap = m_src.shape[0]
        reqcap = q_kind.shape[0]
        cacap = ca_row.shape[0]
        ckcap = ck_cid.shape[0]

        W[W_STATUS] = ST_OK
        start = W[W_START]
        seq = W[W_SEQ]
        nh = 0
        rhead = 0
        rtail = 0
        epoch = W[W_EPOCH]
        epop = W[W_POPN]
        cur = -1
        tvec = start
        nowrow = W[W_NOWROW]

        if W[W_TPN] + 2 + ntasks >= tcap:
            W[W_STATUS] = ST_OVERFLOW
            W[W_SEQ] = seq
            return
        body = _addc(TP, W, start, P[P_SW_OVH])
        for t in range(ntasks):
            SCR[t, S_PC] = OPSTART[t]
            for h in range(HND.shape[1]):
                HND[t, h] = -1
            end_row[t] = start
            seq += 1
            nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                        TP[body, 0], seq, K_RUN, t, -1, body, -1)
        W[W_LIVE] = ntasks

        while True:
            if (nh + 4 >= hcap or rtail - rhead + 4 + ntasks >= rcap
                    or W[W_TPN] + 16 >= tcap or W[W_NBN] + 4 >= ncap
                    or W[W_MPN] + 4 >= mcap or W[W_POPN] + 2 >= popcap
                    or W[W_TRN] + 8 >= trcap or W[W_MN] + 2 >= msgcap
                    or W[W_RN] + 2 >= reqcap or W[W_CAN] + 2 >= cacap
                    or W[W_CKN] + 2 + ntasks >= ckcap):
                W[W_STATUS] = ST_OVERFLOW
                break
            from_ready = False
            if rhead < rtail:
                i = rhead % rcap
                kind = rk[i]
                task = rt[i]
                aux = ra[i]
                nowrow = rov[i]
                rhead += 1
                from_ready = True
            elif nh > 0:
                nh = _hpop(ht, hs, hk, hta, hx, hrow, hpar, nh)
                kind = hk[nh]
                task = hta[nh]
                aux = hx[nh]
                tvec = hrow[nh]
                nowrow = tvec
                cur = W[W_POPN]
                pop_row[cur] = tvec
                pop_seq[cur] = hs[nh]
                pop_epoch[cur] = epoch
                pop_par[cur] = hpar[nh]
                W[W_POPN] = cur + 1
            else:
                break

            do_run = False
            do_nw = False

            if kind == K_RUN:
                do_run = True
            elif kind == K_SEND_INTRA:
                # _BatchTask._send_intra
                cntrow = SCR[task, S_CNT]
                mech = _pick(C, W, NB, MP, cntrow)
                if mech < 0:
                    break
                eager = mech == MECH_POSIX
                m = W[W_MN]
                W[W_MN] = m + 1
                m_src[m] = task
                m_dst[m] = SCR[task, S_DST]
                m_cnt[m] = cntrow
                m_bid[m] = SCR[task, S_BID]
                m_flags[m] = 1
                m_lr[m] = TLR[task]
                m_sreq[m] = -1 if eager else SCR[task, S_REQ]
                m_qid[m] = SCR[task, S_QID]
                rtail = _deliver(C, W, TP, tr_res, tr_cur, tr_kind,
                                 tr_mrow, m_dst, m_flags, m_trow,
                                 m_qid, q_done, q_msg, q_trow, q_wait,
                                 q_wrow, AQ, AQB, aq_head, aq_tail,
                                 PQ, PQB, pq_head, pq_tail,
                                 rk, rt, ra, rov, rtail, m, nowrow,
                                 cur)
                if eager:
                    rtail = _complete_send(TP, W, q_done, q_trow,
                                           q_wait, q_wrow, rk, rt, ra,
                                           rov, rtail,
                                           SCR[task, S_REQ], nowrow)
                do_run = True
            elif kind == K_SEND_INTER:
                # _BatchTask._send_inter
                cntrow = SCR[task, S_CNT]
                dnode = SCR[task, S_NODE]
                req = SCR[task, S_REQ]
                e0 = NB[cntrow, 0] <= C[C_EAGER_THRESH]
                uniform = True
                for j in range(1, S):
                    if (NB[cntrow, j] <= C[C_EAGER_THRESH]) != e0:
                        uniform = False
                        break
                if not uniform:
                    mrow = W[W_MPN]
                    W[W_MPN] = mrow + 1
                    for j in range(S):
                        MP[mrow, j] = NB[cntrow, j] <= C[C_EAGER_THRESH]
                    W[W_DIVROW] = mrow
                    W[W_STATUS] = ST_DIVERGENT
                    break
                m = W[W_MN]
                W[W_MN] = m + 1
                m_src[m] = task
                m_dst[m] = SCR[task, S_DST]
                m_bid[m] = SCR[task, S_BID]
                m_lr[m] = TLR[task]
                m_qid[m] = SCR[task, S_QID]
                if e0:
                    ri, rar = _transfer(P, C, W, TP, NB, tr_res,
                                        tr_cur, tr_kind, tr_mrow,
                                        inj_free, nic_state,
                                        fabric_free, nowrow,
                                        TNODE[task], TLR[task], dnode,
                                        cntrow, 0, cur)
                    m_cnt[m] = cntrow
                    m_flags[m] = 0
                    m_sreq[m] = -1
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[rar, 0], seq, K_DELIVER, task, m,
                                rar, cur)
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[ri, 0], seq, K_COMPLETE_SEND, task,
                                req, ri, cur)
                else:
                    ri, rar = _transfer(P, C, W, TP, NB, tr_res,
                                        tr_cur, tr_kind, tr_mrow,
                                        inj_free, nic_state,
                                        fabric_free, nowrow,
                                        TNODE[task], TLR[task], dnode,
                                        C[C_RTS_ROW], 0, cur)
                    m_cnt[m] = cntrow
                    m_flags[m] = 2
                    m_sreq[m] = req
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[rar, 0], seq, K_DELIVER, task, m,
                                rar, cur)
                do_run = True
            elif kind == K_RECV_WORK:
                # _BatchTask._recv_work
                m = aux
                if m_flags[m] & 1:
                    cntrow = m_cnt[m]
                    mech = _pick(C, W, NB, MP, cntrow)
                    if mech < 0:
                        break
                    if C[C_TRACK_MB] != 0:
                        _touch(tr_res, tr_cur, tr_kind, tr_mrow, W,
                               C[C_MB_BASE] + m_bid[m], cur)
                    fr, fc = _match_fixed(P, C, W, TP, NB, MP, warm,
                                          task, m_bid[m], cntrow, mech)
                    if W[W_STATUS] != ST_OK:
                        break
                    node = TNODE[task]
                    mm_res = (ntasks + 2 * nodes + 1 + node)
                    dr, dc = _occupy(P, W, TP, NB, MP, tr_res, tr_cur,
                                     tr_kind, tr_mrow, lane_free, node,
                                     nowrow, cntrow, fr, fc,
                                     P[P_CORE_BW], mm_res, cur)
                    if W[W_STATUS] != ST_OK:
                        break
                    if dr >= 0:
                        fire = _addrow(TP, W, nowrow, dr)
                    else:
                        fire = _addc(TP, W, nowrow, dc)
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[fire, 0], seq, K_RECV_DONE, task, m,
                                fire, cur)
                elif m_flags[m] & 2:
                    ds1 = _addc(TP, W, nowrow, P[P_SEND_OVH])
                    ds = _addc(TP, W, ds1, P[P_WIRE_LAT])
                    src_node = m_src[m] // ppn
                    ri, rar = _transfer(P, C, W, TP, NB, tr_res,
                                        tr_cur, tr_kind, tr_mrow,
                                        inj_free, nic_state,
                                        fabric_free, ds, src_node,
                                        m_lr[m], TNODE[task], m_cnt[m],
                                        1, cur)
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[ri, 0], seq, K_COMPLETE_SEND, task,
                                m_sreq[m], ri, cur)
                    fire = W[W_TPN]
                    W[W_TPN] = fire + 1
                    for j in range(S):
                        TP[fire, j] = TP[nowrow, j] + (
                            (TP[rar, j] - TP[nowrow, j])
                            + P[P_RECV_OVH])
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[fire, 0], seq, K_RECV_DONE, task, m,
                                fire, cur)
                else:
                    if m_flags[m] & 4:
                        node = TNODE[task]
                        mm_res = (ntasks + 2 * nodes + 1 + node)
                        dr, dc = _occupy(P, W, TP, NB, MP, tr_res,
                                         tr_cur, tr_kind, tr_mrow,
                                         lane_free, node, nowrow,
                                         m_cnt[m], -1, P[P_RECV_OVH],
                                         P[P_CORE_BW], mm_res, cur)
                        if W[W_STATUS] != ST_OK:
                            break
                        if dr >= 0:
                            fire = _addrow(TP, W, nowrow, dr)
                        else:
                            fire = _addc(TP, W, nowrow, dc)
                    else:
                        fire = _addc(TP, W, nowrow, P[P_RECV_OVH])
                    seq += 1
                    nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                                TP[fire, 0], seq, K_RECV_DONE, task, m,
                                fire, cur)
            elif kind == K_RECV_DONE:
                m = aux
                if (m_flags[m] & 1) and m_sreq[m] >= 0:
                    rtail = _complete_send(TP, W, q_done, q_trow,
                                           q_wait, q_wrow, rk, rt, ra,
                                           rov, rtail, m_sreq[m],
                                           nowrow)
                do_nw = True
            elif kind == K_NEXT_WAIT:
                do_nw = True
            elif kind == K_POST:
                # _BatchTask._post
                b = SCR[task, S_KEY]
                if btrig[b] != 0:
                    W[W_BCONF] = 1
                btrig[b] = 1
                bvbid[b] = SCR[task, S_VAL]
                bvrow[b] = SCR[task, S_VAL2]
                btrow[b] = nowrow
                base = bw_base[b]
                overflow = False
                for q in range(bw_tail[b]):
                    if rtail - rhead + 1 >= rcap:
                        overflow = True
                        break
                    i = rtail % rcap
                    rk[i] = K_LOOKUP
                    rt[i] = bw_task[base + q]
                    ra[i] = b
                    rov[i] = _maxrow(TP, W, bw_rrow[base + q], nowrow)
                    rtail += 1
                if overflow:
                    W[W_STATUS] = ST_OVERFLOW
                    break
                bw_tail[b] = 0
                do_run = True
            elif kind == K_LOOKUP:
                # _BatchTask._lookup: schedule the bind pip_flag later
                fire = _addc(TP, W, nowrow, P[P_PIP_FLAG])
                seq += 1
                nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                            TP[fire, 0], seq, K_LOOKUP_BIND, task, aux,
                            fire, cur)
            elif kind == K_LOOKUP_BIND:
                b = aux
                bind = SCR[task, S_BIND]
                if bind >= 0:
                    ENVB[task, bind] = bvbid[b]
                    ENVCR[task, bind] = bvrow[b]
                do_run = True
            elif kind == K_ADD:
                # _BatchTask._add
                c = SCR[task, S_KEY]
                n = SCR[task, S_VAL]
                cval[c] += n
                i = W[W_CAN]
                W[W_CAN] = i + 1
                ca_row[i] = nowrow
                ca_nv[i] = n
                ca_next[i] = -1
                if ca_head[c] < 0:
                    ca_head[c] = i
                else:
                    ca_next[ca_tail[c]] = i
                ca_tail[c] = i
                tm = ctmax[c]
                if tm < 0:
                    ctmax[c] = nowrow
                else:
                    ge = True
                    for j in range(S):
                        if TP[nowrow, j] < TP[tm, j]:
                            ge = False
                            break
                    if ge:
                        ctmax[c] = nowrow
                    else:
                        csort[c] = 0
                base = cw_base[c]
                overflow = False
                for q in range(cw_tail[c]):
                    if cw_act[base + q] == 0:
                        continue
                    if cval[c] >= cw_thr[base + q]:
                        if (rtail - rhead + 1 >= rcap
                                or W[W_CKN] + 1 >= ckcap
                                or W[W_TPN] + 4 >= tcap):
                            overflow = True
                            break
                        cw_act[base + q] = 0
                        crs = _crossing(TP, W, ca_row, ca_nv, ca_next,
                                        ca_head, csort, CS, c,
                                        cw_thr[base + q])
                        used = _maxrow(TP, W, cw_rrow[base + q], crs)
                        k = W[W_CKN]
                        W[W_CKN] = k + 1
                        ck_cid[k] = c
                        ck_thr[k] = cw_thr[base + q]
                        ck_reach[k] = cw_rrow[base + q]
                        ck_used[k] = used
                        i = rtail % rcap
                        rk[i] = K_CWAIT
                        rt[i] = cw_task[base + q]
                        ra[i] = -1
                        rov[i] = used
                        rtail += 1
                if overflow:
                    W[W_STATUS] = ST_OVERFLOW
                    break
                do_run = True
            elif kind == K_CWAIT:
                fire = _addc(TP, W, nowrow, P[P_PIP_FLAG])
                seq += 1
                nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar, nh,
                            TP[fire, 0], seq, K_RUN, task, -1, fire,
                            cur)
            elif kind == K_DELIVER:
                rtail = _deliver(C, W, TP, tr_res, tr_cur, tr_kind,
                                 tr_mrow, m_dst, m_flags, m_trow,
                                 m_qid, q_done, q_msg, q_trow, q_wait,
                                 q_wrow, AQ, AQB, aq_head, aq_tail,
                                 PQ, PQB, pq_head, pq_tail,
                                 rk, rt, ra, rov, rtail, aux, nowrow,
                                 cur)
            else:  # K_COMPLETE_SEND
                rtail = _complete_send(TP, W, q_done, q_trow, q_wait,
                                       q_wrow, rk, rt, ra, rov, rtail,
                                       aux, nowrow)

            if do_nw:
                # _BatchTask._next_wait: advance the wait list
                i2 = SCR[task, S_WIDX] + 1
                if i2 < SCR[task, S_WLEN]:
                    SCR[task, S_WIDX] = i2
                    h = WLISTS[SCR[task, S_WOFF] + i2]
                    r = HND[task, h]
                    fk = K_NEXT_WAIT if q_kind[r] == 0 else K_RECV_WORK
                    if q_done[r] != 0:
                        i = rtail % rcap
                        rk[i] = fk
                        rt[i] = task
                        ra[i] = q_msg[r]
                        rov[i] = _maxrow(TP, W, nowrow, q_trow[r])
                        rtail += 1
                    else:
                        q_wait[r] = task
                        q_wrow[r] = nowrow
                else:
                    do_run = True

            if do_run:
                # the fastpath-step interpreter (_BatchTask._run)
                pc = SCR[task, S_PC]
                pe = OPSTART[task + 1]
                suspended = False
                while pc < pe:
                    code = OPS[pc, 0]
                    if code == OP_LOOKUP:
                        SCR[task, S_PC] = pc + 1
                        SCR[task, S_BIND] = OPS[pc, 1]
                        b = OPB[pc]
                        if btrig[b] != 0:
                            i = rtail % rcap
                            rk[i] = K_LOOKUP
                            rt[i] = task
                            ra[i] = b
                            rov[i] = _maxrow(TP, W, nowrow, btrow[b])
                            rtail += 1
                        else:
                            slot = bw_base[b] + bw_tail[b]
                            bw_task[slot] = task
                            bw_rrow[slot] = nowrow
                            bw_tail[b] += 1
                        suspended = True
                        break
                    elif code == OP_SEND_INTRA:
                        nameid = OPS[pc, 2]
                        cntrow = OPS[pc, 4]
                        bid = ENVB[task, nameid]
                        if cntrow < 0:
                            crow = ENVCR[task, nameid]
                            offrow = OPS[pc, 3]
                            nr = W[W_NBN]
                            W[W_NBN] = nr + 1
                            for j in range(S):
                                NB[nr, j] = (NB[crow, j]
                                             - NB[offrow, j])
                            cntrow = nr
                        r = W[W_RN]
                        W[W_RN] = r + 1
                        q_kind[r] = 0
                        q_done[r] = 0
                        q_msg[r] = -1
                        q_wait[r] = -1
                        HND[task, OPS[pc, 5]] = r
                        SCR[task, S_PC] = pc + 1
                        SCR[task, S_DST] = OPS[pc, 1]
                        SCR[task, S_BID] = bid
                        SCR[task, S_CNT] = cntrow
                        SCR[task, S_QID] = OPQ[pc]
                        SCR[task, S_REQ] = r
                        if C[C_TRACK_MB] != 0:
                            _touch(tr_res, tr_cur, tr_kind, tr_mrow,
                                   W, C[C_MB_BASE] + bid, cur)
                        mech = _pick(C, W, NB, MP, cntrow)
                        if mech < 0:
                            break
                        node = TNODE[task]
                        mm_res = (ntasks + 2 * nodes + 1 + node)
                        dr, dc = _sender_occupy(P, C, W, TP, NB, MP,
                                                tr_res, tr_cur,
                                                tr_kind, tr_mrow,
                                                warm, lane_free, node,
                                                task, bid, cntrow,
                                                nowrow, mech, mm_res,
                                                cur)
                        if W[W_STATUS] != ST_OK:
                            break
                        if dr >= 0:
                            fire = _addrow(TP, W, nowrow, dr)
                        else:
                            fire = _addc(TP, W, nowrow, dc)
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar,
                                    nh, TP[fire, 0], seq,
                                    K_SEND_INTRA, task, -1, fire, cur)
                        suspended = True
                        break
                    elif code == OP_SEND_INTER:
                        nameid = OPS[pc, 3]
                        cntrow = OPS[pc, 5]
                        bid = ENVB[task, nameid]
                        if cntrow < 0:
                            crow = ENVCR[task, nameid]
                            offrow = OPS[pc, 4]
                            nr = W[W_NBN]
                            W[W_NBN] = nr + 1
                            for j in range(S):
                                NB[nr, j] = (NB[crow, j]
                                             - NB[offrow, j])
                            cntrow = nr
                        r = W[W_RN]
                        W[W_RN] = r + 1
                        q_kind[r] = 0
                        q_done[r] = 0
                        q_msg[r] = -1
                        q_wait[r] = -1
                        HND[task, OPS[pc, 6]] = r
                        SCR[task, S_PC] = pc + 1
                        SCR[task, S_DST] = OPS[pc, 1]
                        SCR[task, S_NODE] = OPS[pc, 2]
                        SCR[task, S_BID] = bid
                        SCR[task, S_CNT] = cntrow
                        SCR[task, S_QID] = OPQ[pc]
                        SCR[task, S_REQ] = r
                        fire = _addc(TP, W, nowrow, P[P_SEND_OVH])
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar,
                                    nh, TP[fire, 0], seq,
                                    K_SEND_INTER, task, -1, fire, cur)
                        suspended = True
                        break
                    elif code == OP_RECV:
                        qid = OPQ[pc]
                        r = W[W_RN]
                        W[W_RN] = r + 1
                        q_kind[r] = 1
                        q_done[r] = 0
                        q_msg[r] = -1
                        q_wait[r] = -1
                        HND[task, OPS[pc, 1]] = r
                        res = C[C_QRES_BASE] + qid
                        alen = aq_tail[qid] - aq_head[qid]
                        if alen > 0:
                            ok = -1 if alen == 1 else -2
                            _touch_ok(tr_res, tr_cur, tr_kind,
                                      tr_mrow, W, res, cur, ok)
                            m = AQ[AQB[qid] + aq_head[qid]]
                            aq_head[qid] += 1
                            q_done[r] = 1
                            q_msg[r] = m
                            q_trow[r] = m_trow[m]
                        else:
                            PQ[PQB[qid] + pq_tail[qid]] = r
                            pq_tail[qid] += 1
                            plen = pq_tail[qid] - pq_head[qid]
                            ok = -1 if plen == 1 else -2
                            _touch_ok(tr_res, tr_cur, tr_kind,
                                      tr_mrow, W, res, cur, ok)
                        pc += 1
                    elif code == OP_WAIT:
                        woff = OPS[pc, 1]
                        SCR[task, S_PC] = pc + 1
                        SCR[task, S_WOFF] = woff
                        SCR[task, S_WLEN] = OPS[pc, 2]
                        SCR[task, S_WIDX] = 0
                        r = HND[task, WLISTS[woff]]
                        fk = (K_NEXT_WAIT if q_kind[r] == 0
                              else K_RECV_WORK)
                        if q_done[r] != 0:
                            i = rtail % rcap
                            rk[i] = fk
                            rt[i] = task
                            ra[i] = q_msg[r]
                            rov[i] = _maxrow(TP, W, nowrow, q_trow[r])
                            rtail += 1
                        else:
                            q_wait[r] = task
                            q_wrow[r] = nowrow
                        suspended = True
                        break
                    elif code == OP_COPY or code == OP_REDUCE:
                        nameid = OPS[pc, 1]
                        cntrow = OPS[pc, 3]
                        if cntrow < 0:
                            crow = ENVCR[task, nameid]
                            offrow = OPS[pc, 2]
                            nr = W[W_NBN]
                            W[W_NBN] = nr + 1
                            for j in range(S):
                                NB[nr, j] = (NB[crow, j]
                                             - NB[offrow, j])
                            cntrow = nr
                        bw = (P[P_CORE_BW] if code == OP_COPY
                              else P[P_REDUCE_BW])
                        node = TNODE[task]
                        mm_res = (ntasks + 2 * nodes + 1 + node)
                        dr, dc = _occupy(P, W, TP, NB, MP, tr_res,
                                         tr_cur, tr_kind, tr_mrow,
                                         lane_free, node, nowrow,
                                         cntrow, -1, 0.0, bw, mm_res,
                                         cur)
                        if W[W_STATUS] != ST_OK:
                            break
                        if dr >= 0:
                            fire = _addrow(TP, W, nowrow, dr)
                        else:
                            fire = _addc(TP, W, nowrow, dc)
                        SCR[task, S_PC] = pc + 1
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar,
                                    nh, TP[fire, 0], seq, K_RUN, task,
                                    -1, fire, cur)
                        suspended = True
                        break
                    elif code == OP_POST:
                        nameid = OPS[pc, 1]
                        cntrow = OPS[pc, 3]
                        if cntrow < 0:
                            crow = ENVCR[task, nameid]
                            offrow = OPS[pc, 2]
                            nr = W[W_NBN]
                            W[W_NBN] = nr + 1
                            for j in range(S):
                                NB[nr, j] = (NB[crow, j]
                                             - NB[offrow, j])
                            cntrow = nr
                        SCR[task, S_PC] = pc + 1
                        SCR[task, S_KEY] = OPB[pc]
                        SCR[task, S_VAL] = ENVB[task, nameid]
                        SCR[task, S_VAL2] = cntrow
                        fire = _addc(TP, W, nowrow, P[P_PIP_POST])
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar,
                                    nh, TP[fire, 0], seq, K_POST,
                                    task, -1, fire, cur)
                        suspended = True
                        break
                    elif code == OP_ADD:
                        SCR[task, S_PC] = pc + 1
                        SCR[task, S_KEY] = OPCID[pc]
                        SCR[task, S_VAL] = OPS[pc, 1]
                        fire = _addc(TP, W, nowrow, P[P_PIP_FLAG])
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar,
                                    nh, TP[fire, 0], seq, K_ADD, task,
                                    -1, fire, cur)
                        suspended = True
                        break
                    elif code == OP_CWAIT:
                        thr = OPS[pc, 1]
                        c = OPCID[pc]
                        SCR[task, S_PC] = pc + 1
                        if cval[c] >= thr:
                            if ca_head[c] < 0:
                                crs = nowrow
                            else:
                                crs = _crossing(TP, W, ca_row, ca_nv,
                                                ca_next, ca_head,
                                                csort, CS, c, thr)
                            used = _maxrow(TP, W, nowrow, crs)
                            k = W[W_CKN]
                            W[W_CKN] = k + 1
                            ck_cid[k] = c
                            ck_thr[k] = thr
                            ck_reach[k] = nowrow
                            ck_used[k] = used
                            fire = _addc(TP, W, used, P[P_PIP_FLAG])
                            seq += 1
                            nh = _hpush(ht, hs, hk, hta, hx, hrow,
                                        hpar, nh, TP[fire, 0], seq,
                                        K_RUN, task, -1, fire, cur)
                        else:
                            slot = cw_base[c] + cw_tail[c]
                            cw_thr[slot] = thr
                            cw_task[slot] = task
                            cw_rrow[slot] = nowrow
                            cw_act[slot] = 1
                            cw_tail[c] += 1
                        suspended = True
                        break
                    elif code == OP_ALLOC:
                        W[W_BUFSEQ] += 1
                        ENVB[task, OPS[pc, 1]] = W[W_BUFSEQ]
                        ENVCR[task, OPS[pc, 1]] = OPS[pc, 2]
                        pc += 1
                    elif code == OP_COMPUTE:
                        frow = OPS[pc, 1]
                        fire = W[W_TPN]
                        W[W_TPN] = fire + 1
                        for j in range(S):
                            TP[fire, j] = TP[nowrow, j] + FPR[frow, j]
                        SCR[task, S_PC] = pc + 1
                        seq += 1
                        nh = _hpush(ht, hs, hk, hta, hx, hrow, hpar,
                                    nh, TP[fire, 0], seq, K_RUN, task,
                                    -1, fire, cur)
                        suspended = True
                        break
                    else:  # OP_PHASE (a no-op marker)
                        pc += 1
                if W[W_STATUS] != ST_OK:
                    break
                if not suspended:
                    SCR[task, S_PC] = pc
                    end_row[task] = nowrow
                    W[W_LIVE] -= 1

            if from_ready:
                nowrow = tvec
            if W[W_STATUS] != ST_OK:
                break

        W[W_SEQ] = seq
        if W[W_STATUS] != ST_OK:
            return
        npop = W[W_POPN]
        if npop > epop:
            nr = W[W_TPN]
            W[W_TPN] = nr + 1
            for j in range(S):
                TP[nr, j] = TP[pop_row[epop], j]
            for q in range(epop + 1, npop):
                for j in range(S):
                    if TP[pop_row[q], j] > TP[nr, j]:
                        TP[nr, j] = TP[pop_row[q], j]
            W[W_NOWROW] = nr
        if W[W_LIVE] > 0:
            W[W_STATUS] = ST_DEADLOCK
            return
        for qid in range(C[C_NQUEUES]):
            if (aq_tail[qid] != aq_head[qid]
                    or pq_tail[qid] != pq_head[qid]):
                W[W_STATUS] = ST_LEFTOVER
                return
        er = W[W_TPN]
        W[W_TPN] = er + 2
        el = er + 1
        for j in range(S):
            TP[er, j] = TP[end_row[0], j]
        for t in range(1, ntasks):
            for j in range(S):
                if TP[end_row[t], j] > TP[er, j]:
                    TP[er, j] = TP[end_row[t], j]
        for j in range(S):
            TP[el, j] = TP[er, j] - TP[start, j]
        W[W_ELAPSED] = el

    return {
        "replay": replay,
    }


_KERNEL_CACHE: dict = {}

#: ordered argument names for the replay kernel — the scheduler binds
#: its world arrays to the kernel call in exactly this order
REPLAY_ARGS = (
    "P", "C", "W", "OPS", "OPSTART", "WLISTS", "FPR", "TNODE", "TLR",
    "OPQ", "OPB", "OPCID", "ENVB", "ENVCR", "SCR", "HND",
    "TP", "NB", "MP",
    "ht", "hs", "hk", "hta", "hx", "hrow", "hpar",
    "rk", "rt", "ra", "rov",
    "pop_row", "pop_seq", "pop_epoch", "pop_par",
    "tr_res", "tr_cur", "tr_kind", "tr_mrow",
    "m_src", "m_dst", "m_cnt", "m_bid", "m_flags", "m_lr", "m_sreq",
    "m_trow", "m_qid",
    "q_kind", "q_done", "q_msg", "q_trow", "q_wait", "q_wrow",
    "AQ", "AQB", "aq_head", "aq_tail", "PQ", "PQB", "pq_head",
    "pq_tail",
    "btrig", "bvbid", "bvrow", "btrow",
    "bw_task", "bw_rrow", "bw_base", "bw_tail",
    "cval", "csort", "ctmax", "ca_row", "ca_nv", "ca_next", "ca_head",
    "ca_tail",
    "cw_thr", "cw_task", "cw_rrow", "cw_act", "cw_base", "cw_tail",
    "ck_cid", "ck_thr", "ck_reach", "ck_used",
    "warm", "lane_free", "inj_free", "nic_state", "fabric_free",
    "end_row", "CS",
)


def get_kernels(force_interp: bool = False) -> dict:
    """Build (or fetch the cached) replay kernel set.

    Mirrors :func:`repro.sim.native_timeline.get_kernels`: under numba
    the kernel is compiled ``nopython`` with on-disk caching; without
    numba (or with ``PIPMCOLL_NO_NATIVE`` set, or ``force_interp``)
    the identical Python source runs interpreted so results never
    depend on which tier executed.
    """
    global build_count
    use_jit = jit_available() and not force_interp
    key = "jit" if use_jit else "interp"
    cached = _KERNEL_CACHE.get(key)
    if cached is not None:
        return cached
    if use_jit:  # pragma: no cover - exercised only with numba
        from numba import njit

        try:
            jit = njit(cache=True)
            kernels = build_kernels(jit)
        except Exception:
            jit = njit
            kernels = build_kernels(jit)
    else:
        def jit(fn):
            return fn

        kernels = build_kernels(jit)
    build_count += 1
    kernels = dict(kernels, mode=key)
    _KERNEL_CACHE[key] = kernels
    return kernels

"""Execution tracing: per-rank timelines of simulated activity.

A :class:`Tracer` attached to a :class:`~repro.mpi.runtime.World` records a
span for every timed rank activity (local copies/reductions, compute,
request waits, sender-side p2p work).  Traces export to the Chrome
``about:tracing`` / Perfetto JSON format (one process per node, one thread
per rank) or to a compact per-kind summary — handy for seeing the overlap
behaviour of the PiP-MColl algorithms with your own eyes.

Tracing is off unless a tracer is attached; the hot paths pay a single
``is None`` check.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One span of simulated activity on one rank."""

    rank: int
    node: int
    kind: str
    t0: float
    t1: float
    detail: str = ""
    #: algorithm phase the span belongs to ("" when untagged) — set by the
    #: schedule executor's phase markers (see repro.sched)
    phase: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Collects :class:`TraceEvent` spans."""

    def __init__(self, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(
        self, rank: int, node: int, kind: str, t0: float, t1: float,
        detail: str = "", phase: str = "",
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(rank, node, kind, t0, t1, detail, phase))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- analysis -----------------------------------------------------------

    def by_kind(self) -> Dict[str, List[TraceEvent]]:
        out: Dict[str, List[TraceEvent]] = defaultdict(list)
        for ev in self.events:
            out[ev.kind].append(ev)
        return dict(out)

    def by_phase(self) -> Dict[str, List[TraceEvent]]:
        """Spans grouped by algorithm phase ("" = untagged activity)."""
        out: Dict[str, List[TraceEvent]] = defaultdict(list)
        for ev in self.events:
            out[ev.phase].append(ev)
        return dict(out)

    def busy_time(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Total span seconds per kind (optionally for one rank)."""
        out: Dict[str, float] = defaultdict(float)
        for ev in self.events:
            if rank is None or ev.rank == rank:
                out[ev.kind] += ev.duration
        return dict(out)

    def rank_span(self, rank: int) -> Tuple[float, float]:
        """(first start, last end) of a rank's recorded activity."""
        spans = [ev for ev in self.events if ev.rank == rank]
        if not spans:
            raise ValueError(f"no events recorded for rank {rank}")
        return min(ev.t0 for ev in spans), max(ev.t1 for ev in spans)

    # -- export ---------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome/Perfetto ``traceEvents`` JSON object (times in us).

        Phase-tagged spans carry the phase both as a category (so Perfetto
        can filter "ring-allgather" spans) and in ``args`` (visible in the
        span detail pane).
        """
        events = []
        for ev in self.events:
            entry = {
                "name": ev.kind if not ev.detail else f"{ev.kind}:{ev.detail}",
                "ph": "X",
                "ts": ev.t0 * 1e6,
                "dur": ev.duration * 1e6,
                "pid": ev.node,
                "tid": ev.rank,
                "cat": ev.kind if not ev.phase else f"{ev.kind},{ev.phase}",
            }
            if ev.phase:
                entry["args"] = {"phase": ev.phase}
            events.append(entry)
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def dump_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def summary(self) -> str:
        """Compact per-kind report (count, total time)."""
        lines = ["== trace summary =="]
        for kind, events in sorted(self.by_kind().items()):
            total = sum(ev.duration for ev in events)
            lines.append(
                f"{kind:12s} {len(events):8d} spans  {total * 1e6:12.2f}us total"
            )
        if self.dropped:
            lines.append(f"(dropped {self.dropped} events past the cap)")
        return "\n".join(lines)

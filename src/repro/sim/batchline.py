"""A vector-valued timeline for batched (whole-size-axis) evaluation.

:class:`BatchTimeline` is :class:`repro.sim.timeline.Timeline` with the
clock widened from one float to a numpy vector over the message-size axis:
every scheduled callback carries an ``(S,)`` array of fire times, one per
size in the current partition, and the queues are ordered by the *pivot*
size (index 0).  One dispatch of the batch engine therefore advances all
``S`` simulations at once — the per-event Python dispatch that caps the
scalar DAG engine (see DESIGN.md section 2) is paid once per event instead
of once per (event, size).

Correctness rests on a conflict-equivalence argument, not on per-size
replay.  The pivot size is simulated *exactly* (its component of every
time vector is the scalar arithmetic of the DAG engine, and the queues are
ordered by it).  For every other size ``s`` the dispatch order is the
pivot's; that is harmless as long as it is **conflict-equivalent** to the
order size ``s``'s own scalar run would use:

* every mutable piece of simulation state is owned by exactly one
  *resource* — a process's NIC injection lane, a node's transmit or
  receive pipeline, a node's memory-lane pool, one ``(dst, src, tag)``
  match queue, one request object, a board or counter key, a buffer's
  warm-fault state.  Dispatches record which resources they touch via
  :meth:`BatchTimeline.touch`;
* a dispatch's outputs depend only on its inputs and on the access order
  of the resources it touches.  Two executions that perform the same
  per-resource access sequences therefore compute identical values — the
  standard conflict-serializability argument, applied to a deterministic
  simulator;
* after the run, :meth:`BatchTimeline.order_divergence` checks, for every
  resource and every adjacent pair of accesses from *different* pops, that
  the two pops are ordered the same way size ``s``'s scalar run would
  order them (by fire time; ties by the scalar engine's push sequence,
  reconstructed from the recorded push parents — see below).  Sizes with
  any conflicting inversion are flagged *divergent* and re-evaluated on
  the scalar DAG engine.  No result computed under a non-equivalent order
  is ever reported.

Tie adjudication.  The scalar engines break equal-time heap entries by
push sequence number, and push order is itself execution-order dependent,
so the batch run cannot just reuse its own seq numbers for other sizes.
It can, however, *reconstruct* the scalar order: each heap entry records
the pop during whose dispatch segment it was pushed (its *parent*; -1 for
the per-iteration root pushes).  In the scalar run at ``s``, entry ``a``
was pushed before entry ``b`` iff ``a``'s parent pop dispatched before
``b``'s (recursively, by fire time at ``s``, then parents), with fixed
push order inside one segment and roots pushed first.  The comparison
recurses through strictly earlier pops, is memoised, and is capped: if a
pathological run exceeds the work bound, the affected ties are simply
declared divergent (conservative, never unsound).

Two deliberate non-resources.  Buffer ids (the ``_OP_ALLOC`` sequence)
are opaque keys: a run that interleaves allocations differently assigns
ids by a *bijective renaming*, and renamed keys index the same warm-state
sets, so alloc-order inversions cannot change any computed time and the
id sequence is not tracked.  Data handed from one dispatch to another
(e.g. message fields written before a queue append and read after the
pop) is ordered *transitively*: each scalar order is a total order, so
verifying every directly-shared resource pairwise already pins every
mediated write-before-read.

Branches on message size (eager/rendezvous protocol choice, hybrid
intranode mechanisms, warm/cold fault state) cannot be captured by an
order check because they change *which* callbacks run.  Cost closures and
the batch interpreter therefore verify that every size-dependent predicate
is uniform across the partition and raise :class:`BatchDivergence` with
the offending mask otherwise; the batch engine splits the partition at
that boundary and retries.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List

import numpy as np

__all__ = ["BatchDivergence", "BatchTimeline", "BatchEvent"]


class BatchDivergence(Exception):
    """A size-dependent branch split the current partition.

    ``mask`` is a boolean ``(S,)`` array over the partition's size axis,
    marking the sizes that took the branch the pivot did not (or, for
    symmetric predicates, one side of the split — the batch engine only
    needs the two subsets).  Raised only for genuinely mixed masks.
    """

    def __init__(self, mask: np.ndarray):
        super().__init__("size-dependent branch is not uniform")
        self.mask = mask


class BatchTimeline:
    """A :class:`~repro.sim.timeline.Timeline` over a vector clock.

    Heap entries are ``(pivot_time, seq, fn, value, time_vec, parent)``;
    ``now`` is the ``(S,)`` fire-time vector of the entry being
    dispatched.  Ties at equal pivot time resolve by ``seq`` exactly like
    the scalar engines.  Every pop is recorded, and resource accesses are
    logged against the current pop, for the end-of-run conflict check.
    """

    __slots__ = ("width", "now", "_heap", "_ready", "_seq",
                 "_pop_times", "_pop_seqs", "_pop_epochs", "_pop_pars",
                 "_res", "_cur", "_epoch", "_epoch_start")

    def __init__(self, width: int):
        self.width = width
        self.now: np.ndarray = np.zeros(width)
        self._heap: list = []
        self._ready: deque = deque()
        self._seq = 0
        self._pop_times: list = []
        self._pop_seqs: list = []
        self._pop_epochs: list = []
        #: per pop: index of the pop during whose segment it was pushed
        self._pop_pars: list = []
        #: resource key -> ordered list of accessing pop indices
        self._res: Dict[Any, List[int]] = {}
        #: pop whose dispatch segment is currently executing (-1 = root)
        self._cur = -1
        self._epoch = 0
        self._epoch_start = 0

    def new_epoch(self) -> None:
        """Mark an iteration boundary (a full drain separates epochs)."""
        self._epoch += 1
        self._cur = -1
        self._epoch_start = len(self._pop_times)

    def call(self, time: np.ndarray, fn: Callable[[Any], None],
             value: Any = None) -> None:
        """Schedule ``fn(value)`` at the absolute time vector ``time``.

        ``time`` must be an ``(S,)`` array and must not be mutated after
        scheduling (the cost closures always build fresh arrays).
        """
        self._seq += 1
        heappush(self._heap, (time[0], self._seq, fn, value, time,
                              self._cur))

    def defer(self, fn: Callable[[Any], None], value: Any = None) -> None:
        """Run ``fn(value)`` at the current time, after already-ready work."""
        self._ready.append((fn, value))

    def touch(self, key) -> None:
        """Record that the current dispatch segment accessed resource
        ``key``; consecutive touches by the same segment collapse."""
        res = self._res
        lst = res.get(key)
        if lst is None:
            res[key] = [self._cur]
        elif lst[-1] != self._cur:
            lst.append(self._cur)

    def run(self) -> np.ndarray:
        """Dispatch until both queues drain; returns the final time vector.

        Mirrors ``Timeline.run``: the ready deque is drained completely
        before each single heap pop.  Ready callbacks execute inside the
        segment of the pop that (transitively) appended them, so their
        resource touches anchor to that pop.
        """
        heap = self._heap
        ready = self._ready
        pop = heappop
        pop_times = self._pop_times
        pop_seqs = self._pop_seqs
        pop_epochs = self._pop_epochs
        pop_pars = self._pop_pars
        epoch = self._epoch
        while heap or ready:
            while ready:
                fn, value = ready.popleft()
                fn(value)
            if not heap:
                break
            entry = pop(heap)
            tvec = entry[4]
            self.now = tvec
            self._cur = len(pop_times)
            pop_times.append(tvec)
            pop_seqs.append(entry[1])
            pop_epochs.append(epoch)
            pop_pars.append(entry[5])
            entry[2](entry[3])
        # a scalar run ends at its own latest pop time, and which pop is
        # latest varies with size; the epoch's final clock must therefore
        # be the elementwise max over the epoch's pops, not the pivot-order
        # last pop's vector — it seeds the next iteration's start and any
        # per-size skew there leaks into carried resource state
        seg = pop_times[self._epoch_start:]
        if seg:
            self.now = np.max(np.asarray(seg), axis=0)
        return self.now

    def order_divergence(self) -> np.ndarray:
        """Per-size conflict-divergence mask over everything dispatched.

        ``divergent[s]`` is True when some resource was accessed by two
        pops in an order different from the one size ``s``'s own scalar
        run would have used — i.e. the batch dispatch order is *not*
        conflict-equivalent to ``s``'s scalar order, so ``s``'s results
        must be recomputed on the scalar engine.  The pivot (index 0) is
        never divergent: the queues are ordered by it.
        """
        npops = len(self._pop_times)
        div = np.zeros(self.width, dtype=bool)
        if npops < 2 or not self._res:
            return div
        times = self._pop_times
        seqs = self._pop_seqs
        epochs = self._pop_epochs
        pars = self._pop_pars
        # collect the distinct in-epoch conflict pairs (batch ran i, then j)
        pairs = set()
        add = pairs.add
        for accesses in self._res.values():
            i = accesses[0]
            for j in accesses[1:]:
                if (
                    j != i and j != -1 and i != -1
                    and epochs[i] == epochs[j]
                ):
                    add((i, j))
                i = j
        if not pairs:
            return div
        # bulk pass: a pair where j fires strictly before i at size s is an
        # inversion; ties need the push-order tie-break and are rare enough
        # to adjudicate pair by pair
        n = len(pairs)
        idx = np.fromiter(
            (k for ij in pairs for k in ij), np.int64, 2 * n
        ).reshape(n, 2)
        tmat = np.asarray(times)
        ti = tmat[idx[:, 0]]
        tj = tmat[idx[:, 1]]
        np.logical_or.reduce(tj < ti, axis=0, out=div)
        ties = ti == tj
        tie_rows = np.nonzero(ties.any(axis=1))[0]
        if not len(tie_rows):
            return div
        # memoised "pop i dispatches before pop j at size s" masks; the
        # budget caps pathological tie chains (excess ties are simply
        # declared divergent, which is conservative, never unsound)
        memo: Dict = {}
        budget = max(4096, 8 * npops)

        def precedes(i: int, j: int) -> np.ndarray:
            """(S,) mask: pop ``i`` dispatches before pop ``j`` in the
            scalar run — by fire time, ties by reconstructed push order."""
            got = memo.get((i, j))
            if got is not None:
                return got
            ti, tj = times[i], times[j]
            out = ti < tj
            tie = ti == tj
            if tie.any() and len(memo) < budget:
                out = out | (tie & _push_order(i, j))
            memo[(i, j)] = out
            return out

        def _push_order(i: int, j: int) -> bool | np.ndarray:
            """Whether pop ``i``'s entry was pushed before pop ``j``'s in
            the scalar run (the seq tie-break, reconstructed)."""
            pi, pj = pars[i], pars[j]
            if pi == pj:
                # same segment: push order is code order, same in both
                return seqs[i] < seqs[j]
            if pi == j:
                return False  # i was pushed during j's segment
            if pj == i:
                return True
            if pi == -1:
                return True  # roots are pushed before any segment runs
            if pj == -1:
                return False
            return precedes(pi, pj)

        for r in tie_rows:
            i = int(idx[r, 0])
            j = int(idx[r, 1])
            tie = ties[r]
            order_ok = tie & _push_order(i, j)
            div |= tie & ~order_ok
        return div


class BatchEvent:
    """One-shot event with the engine's trigger ordering (vector clock).

    Identical to :class:`~repro.sim.timeline.TimelineEvent` — waiters are
    appended to the ready deque in registration order at trigger time, and
    waiting on an already-triggered event defers the callback — because
    trigger semantics carry no times at all.
    """

    __slots__ = ("_tl", "triggered", "value", "_waiters")

    def __init__(self, tl: BatchTimeline):
        self._tl = tl
        self.triggered = False
        self.value: Any = None
        self._waiters: list = []

    def wait(self, fn: Callable[[Any], None]) -> None:
        if self.triggered:
            self._tl._ready.append((fn, self.value))
        else:
            self._waiters.append(fn)

    def trigger(self, value: Any = None) -> None:
        self.triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            ready = self._tl._ready
            for fn in waiters:
                ready.append((fn, value))
            self._waiters = []

"""A vector-valued timeline for batched (whole-size-axis) evaluation.

:class:`BatchTimeline` is :class:`repro.sim.timeline.Timeline` with the
clock widened from one float to a numpy vector over the message-size axis:
every scheduled callback carries an ``(S,)`` array of fire times, one per
size in the current partition, and the queues are ordered by the *pivot*
size (index 0).  One dispatch of the batch engine therefore advances all
``S`` simulations at once — the per-event Python dispatch that caps the
scalar DAG engine (see DESIGN.md section 2) is paid once per event instead
of once per (event, size).

Correctness rests on a conflict-equivalence argument, not on per-size
replay.  The pivot size is simulated *exactly* (its component of every
time vector is the scalar arithmetic of the DAG engine, and the queues are
ordered by it).  For every other size ``s`` the dispatch order is the
pivot's; that is harmless as long as it is **conflict-equivalent** to the
order size ``s``'s own scalar run would use:

* every mutable piece of simulation state is owned by exactly one
  *resource* — a process's NIC injection lane, a node's transmit or
  receive pipeline, a node's memory-lane pool, one ``(dst, src, tag)``
  match queue, a buffer's warm-fault state.  Dispatches record which
  resources they touch via :meth:`BatchTimeline.touch`;
* a dispatch's outputs depend only on its inputs and on the access order
  of the resources it touches.  Two executions that perform the same
  per-resource access sequences therefore compute identical values — the
  standard conflict-serializability argument, applied to a deterministic
  simulator;
* after the run, :meth:`BatchTimeline.order_divergence` checks, for every
  resource and every adjacent pair of accesses from *different* pops, that
  the two pops are ordered the same way size ``s``'s scalar run would
  order them (by fire time; ties by the scalar engine's push sequence,
  reconstructed from the recorded push parents — see below).  Sizes with
  any conflicting inversion are flagged *divergent* and re-evaluated on
  the scalar DAG engine.  No result computed under a non-equivalent order
  is ever reported.

Max-resume semantics.  Synchronization resources — send/recv requests,
board posts, counter thresholds — are *not* order-sensitive at all once
the waiter's resume time is computed as the elementwise maximum of the
waiter's arrival time and the trigger's fire time: in every scalar run
the continuation runs at exactly ``max(reach, trigger)``, whichever side
arrived first.  Ready-queue entries therefore carry an optional ``now``
override vector (pivot component always equal to the dispatching pop's
time, so pivot arithmetic and dispatch order are untouched), and those
resources need no conflict tracking: the batch run computes every size's
exact scalar resume time directly.  Counter waits additionally need the
exact per-size *crossing* time (which add pushed the counter over the
threshold differs per size); the batch engine computes it as an
order statistic over the recorded add times and validates it post hoc
(see :mod:`repro.sched.batch`).

Commuting accesses.  Some genuinely order-sensitive resources are
order-insensitive for *particular* access pairs: two memory-lane-pool
reservations that both started without waiting remove the same two
smallest lane-free times and add the same two end times in either order
(the pool is an indistinguishable-server multiset), and a match-queue
deliver/post pair whose message class makes both match orders cost the
same (intranode, or internode rendezvous, where the unexpected flag does
not enter the cost path) commutes when the queue never holds more than
one entry.  Such accesses are recorded via :meth:`BatchTimeline.touch_ok`
with a per-size ``ok`` mask; an inverted adjacent pair is divergent only
at sizes where either side was *not* ok — the classical commuting-movers
refinement of conflict equivalence.

Tie adjudication.  The scalar engines break equal-time heap entries by
push sequence number, and push order is itself execution-order dependent,
so the batch run cannot just reuse its own seq numbers for other sizes.
It can, however, *reconstruct* the scalar order: each heap entry records
the pop during whose dispatch segment it was pushed (its *parent*; -1 for
the per-iteration root pushes).  In the scalar run at ``s``, entry ``a``
was pushed before entry ``b`` iff ``a``'s parent pop dispatched before
``b``'s (recursively, by fire time at ``s``, then parents), with fixed
push order inside one segment and roots pushed first.  The comparison
walks the two parent chains in lock-step — and since parents are strictly
earlier pops, the chains are finite.  All tie pairs are resolved in one
bulk pass: the chains of every pair advance together as index arrays, the
``t[pa] < t[pb]`` contributions accumulate under the running equal-time
gate, and pairs drop out as their chain hits a structurally-decided case
(same segment, parent-of-the-other, root).  A defensive level cap keeps
the loop bounded even if the parent invariant were violated; capped ties
are simply declared divergent (conservative, never unsound).

Divergence signatures.  :meth:`BatchTimeline.divergence_labels` exposes
*which* conflict pairs are inverted per size: two divergent sizes with the
same inversion signature disagree with the pivot's dispatch order in
exactly the same places, which makes them strong candidates to agree with
*each other* — the batch engine re-batches each signature cluster under
its own pivot instead of falling back per size (see
:mod:`repro.sched.batch`).

Two deliberate non-resources.  Buffer ids (the ``_OP_ALLOC`` sequence)
are opaque keys: a run that interleaves allocations differently assigns
ids by a *bijective renaming*, and renamed keys index the same warm-state
sets, so alloc-order inversions cannot change any computed time and the
id sequence is not tracked.  Data handed from one dispatch to another
(e.g. message fields written before a queue append and read after the
pop) is ordered *transitively*: each scalar order is a total order, so
verifying every directly-shared resource pairwise already pins every
mediated write-before-read.

Branches on message size (eager/rendezvous protocol choice, hybrid
intranode mechanisms, warm/cold fault state) cannot be captured by an
order check because they change *which* callbacks run.  Cost closures and
the batch interpreter therefore verify that every size-dependent predicate
is uniform across the partition and raise :class:`BatchDivergence` with
the offending mask otherwise; the batch engine splits the partition at
that boundary and retries.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List

import numpy as np

__all__ = ["BatchDivergence", "BatchTimeline", "BatchEvent"]


class BatchDivergence(Exception):
    """A size-dependent branch split the current partition.

    ``mask`` is a boolean ``(S,)`` array over the partition's size axis,
    marking the sizes that took the branch the pivot did not (or, for
    symmetric predicates, one side of the split — the batch engine only
    needs the two subsets).  Raised only for genuinely mixed masks.
    """

    def __init__(self, mask: np.ndarray):
        super().__init__("size-dependent branch is not uniform")
        self.mask = mask


class BatchTimeline:
    """A :class:`~repro.sim.timeline.Timeline` over a vector clock.

    Heap entries are ``(pivot_time, seq, fn, value, time_vec, parent)``;
    ``now`` is the ``(S,)`` fire-time vector of the entry being
    dispatched.  Ties at equal pivot time resolve by ``seq`` exactly like
    the scalar engines.  Every pop is recorded, and resource accesses are
    logged against the current pop, for the end-of-run conflict check.
    """

    __slots__ = ("width", "now", "_heap", "_ready", "_seq",
                 "_pop_times", "_pop_seqs", "_pop_epochs", "_pop_pars",
                 "_res", "_res_ok", "_cur", "_epoch", "_epoch_start",
                 "_wrong_cache")

    def __init__(self, width: int):
        self.width = width
        self.now: np.ndarray = np.zeros(width)
        self._heap: list = []
        self._ready: deque = deque()
        self._seq = 0
        self._pop_times: list = []
        self._pop_seqs: list = []
        self._pop_epochs: list = []
        #: per pop: index of the pop during whose segment it was pushed
        self._pop_pars: list = []
        #: resource key -> ordered list of accessing pop indices
        self._res: Dict[Any, List[int]] = {}
        #: resource key -> (pop indices, per-access ok masks) for
        #: conditionally-commuting resources (see touch_ok)
        self._res_ok: Dict[Any, tuple] = {}
        #: pop whose dispatch segment is currently executing (-1 = root)
        self._cur = -1
        self._epoch = 0
        self._epoch_start = 0
        #: memoised (pair index, wrong-order matrix) from the last check
        self._wrong_cache = None

    def new_epoch(self) -> None:
        """Mark an iteration boundary (a full drain separates epochs)."""
        self._epoch += 1
        self._cur = -1
        self._epoch_start = len(self._pop_times)

    def call(self, time: np.ndarray, fn: Callable[[Any], None],
             value: Any = None) -> None:
        """Schedule ``fn(value)`` at the absolute time vector ``time``.

        ``time`` must be an ``(S,)`` array and must not be mutated after
        scheduling (the cost closures always build fresh arrays).
        """
        self._seq += 1
        heappush(self._heap, (time[0], self._seq, fn, value, time,
                              self._cur))

    def defer(self, fn: Callable[[Any], None], value: Any = None) -> None:
        """Run ``fn(value)`` at the current time, after already-ready work."""
        self._ready.append((fn, value, None))

    def touch(self, key) -> None:
        """Record that the current dispatch segment accessed resource
        ``key``; consecutive touches by the same segment collapse."""
        res = self._res
        lst = res.get(key)
        if lst is None:
            res[key] = [self._cur]
        elif lst[-1] != self._cur:
            lst.append(self._cur)

    def touch_ok(self, key, ok) -> None:
        """Like :meth:`touch`, with a commutation mask.

        ``ok`` is True / a boolean ``(S,)`` array marking sizes at which
        this access commutes with an adjacent inverted neighbour *that is
        also ok* (zero-wait lane reservations, class-uniform singleton
        match-queue operations).  An inverted pair is counted divergent
        only where either side is not ok.  Collapsed same-segment touches
        AND their masks.
        """
        res = self._res_ok
        rec = res.get(key)
        if rec is None:
            res[key] = ([self._cur], [ok])
        elif rec[0][-1] != self._cur:
            rec[0].append(self._cur)
            rec[1].append(ok)
        else:
            rec[1][-1] = rec[1][-1] & ok

    def run(self) -> np.ndarray:
        """Dispatch until both queues drain; returns the final time vector.

        Mirrors ``Timeline.run``: the ready deque is drained completely
        before each single heap pop.  Ready callbacks execute inside the
        segment of the pop that (transitively) appended them, so their
        resource touches anchor to that pop; entries carrying a ``now``
        override (max-resume continuations) see their exact per-size
        resume vector, and the segment's own clock is restored afterwards.
        """
        heap = self._heap
        ready = self._ready
        pop = heappop
        pop_times = self._pop_times
        pop_seqs = self._pop_seqs
        pop_epochs = self._pop_epochs
        pop_pars = self._pop_pars
        epoch = self._epoch
        tvec = self.now
        while heap or ready:
            while ready:
                fn, value, over = ready.popleft()
                if over is None:
                    fn(value)
                else:
                    self.now = over
                    fn(value)
                    self.now = tvec
            if not heap:
                break
            entry = pop(heap)
            tvec = entry[4]
            self.now = tvec
            self._cur = len(pop_times)
            pop_times.append(tvec)
            pop_seqs.append(entry[1])
            pop_epochs.append(epoch)
            pop_pars.append(entry[5])
            entry[2](entry[3])
        # a scalar run ends at its own latest pop time, and which pop is
        # latest varies with size; the epoch's final clock must therefore
        # be the elementwise max over the epoch's pops, not the pivot-order
        # last pop's vector — it seeds the next iteration's start and any
        # per-size skew there leaks into carried resource state
        seg = pop_times[self._epoch_start:]
        if seg:
            self.now = np.max(np.asarray(seg), axis=0)
        return self.now

    def _conflict_matrix(self):
        """``(idx, wrong)`` over every distinct in-epoch conflict pair.

        ``idx`` is an ``(n, 2)`` int64 array of pop pairs the batch ran as
        ``i`` then ``j``; ``wrong[r, s]`` is True when size ``s``'s own
        scalar run would have dispatched pair ``r`` the *other* way — by
        fire time, equal-time ties broken by the reconstructed push order.
        Returns None when nothing conflicts.  Memoised (the batch engine
        reads it once for the divergence mask and once for the signature
        labels).
        """
        cached = self._wrong_cache
        if cached is not None:
            return cached or None
        npops = len(self._pop_times)
        if npops < 2 or not (self._res or self._res_ok):
            self._wrong_cache = False
            return None
        epochs = self._pop_epochs
        # collect the distinct in-epoch conflict pairs (batch ran i, then
        # j), each with its commutation mask: None = strict, else an ok
        # mask under which an inversion is harmless.  A pair reached
        # through several resources must be harmless under every one.
        pairs: Dict[tuple, Any] = {}
        for accesses in self._res.values():
            i = accesses[0]
            for j in accesses[1:]:
                if (
                    j != i and j != -1 and i != -1
                    and epochs[i] == epochs[j]
                ):
                    pairs[(i, j)] = None
                i = j
        for pops, oks in self._res_ok.values():
            i = pops[0]
            oki = oks[0]
            for j, okj in zip(pops[1:], oks[1:]):
                if (
                    j != i and j != -1 and i != -1
                    and epochs[i] == epochs[j]
                ):
                    p = (i, j)
                    both = oki & okj
                    if p not in pairs:
                        pairs[p] = both
                    else:
                        cur = pairs[p]
                        if cur is not None:
                            pairs[p] = cur & both
                i = j
                oki = okj
        # pairs that commute at every size can never flag anything
        kept = [
            (ij, relax) for ij, relax in pairs.items()
            if not (relax is True
                    or (isinstance(relax, np.ndarray) and relax.all()))
        ]
        if not kept:
            self._wrong_cache = False
            return None
        n = len(kept)
        idx = np.fromiter(
            (k for ij, _ in kept for k in ij), np.int64, 2 * n
        ).reshape(n, 2)
        tmat = np.asarray(self._pop_times)
        ti = tmat[idx[:, 0]]
        tj = tmat[idx[:, 1]]
        # bulk fire-time pass: j strictly before i at size s is an
        # inversion; equal-time pairs fall through to the tie pass
        wrong = tj < ti
        ties = ti == tj
        tie_rows = np.nonzero(ties.any(axis=1))[0]
        if len(tie_rows):
            order_ok = self._push_order_bulk(idx[tie_rows], tmat)
            wrong[tie_rows] |= ties[tie_rows] & ~order_ok
        for r, (_, relax) in enumerate(kept):
            # scalar-False masks are fully strict: nothing to clear
            if isinstance(relax, np.ndarray):
                wrong[r] &= ~relax
        self._wrong_cache = (idx, wrong)
        return self._wrong_cache

    def _push_order_bulk(self, pairs: np.ndarray,
                         tmat: np.ndarray) -> np.ndarray:
        """Bulk push-order reconstruction for equal-time tie pairs.

        Returns an ``(n, S)`` mask: at size ``s``, pair ``r``'s first pop
        was pushed before its second in ``s``'s scalar run.  All pairs'
        parent chains advance together; per level, the structurally
        decided cases (same segment, pushed-during-the-other, root) peel
        off as resolved rows, and for the rest the comparison becomes
        ``precedes(parent_a, parent_b)``: earlier fire time wins where the
        running equal-time gate is still open, and still-tied positions
        carry to the next level.
        """
        pars = np.asarray(self._pop_pars, dtype=np.int64)
        seqs = np.asarray(self._pop_seqs, dtype=np.int64)
        n = len(pairs)
        out = np.zeros((n, self.width), dtype=bool)
        rows = np.arange(n, dtype=np.int64)
        a = pairs[:, 0].copy()
        b = pairs[:, 1].copy()
        #: lt-contributions accumulated along the chain, gated by all ties
        acc = np.zeros((n, self.width), dtype=bool)
        gate = np.ones((n, self.width), dtype=bool)
        # parents are strictly earlier pops, so every chain shortens each
        # level; the cap is purely defensive — capped ties resolve to
        # "not before", i.e. divergent (conservative, never unsound)
        for _ in range(len(pars) + 2):
            if not len(rows):
                break
            pa = pars[a]
            pb = pars[b]
            m_same = pa == pb
            m_in_b = pa == b   # a pushed during b's segment: after b
            m_in_a = pb == a   # b pushed during a's segment: after a
            m_root_a = pa == -1  # roots are pushed before any segment
            m_root_b = pb == -1
            resolved = m_same | m_in_b | m_in_a | m_root_a | m_root_b
            if resolved.any():
                # same-segment push order is code order (the recorded
                # seqs); the cross cases are mutually exclusive with it
                val = np.where(
                    m_same, seqs[a] < seqs[b],
                    m_in_a | (m_root_a & ~m_in_b),
                )
                out[rows[resolved]] = (
                    acc[resolved] | (gate[resolved] & val[resolved, None])
                )
                keep = ~resolved
                rows = rows[keep]
                a = pa[keep]
                b = pb[keep]
                acc = acc[keep]
                gate = gate[keep]
                if not len(rows):
                    break
            else:
                a = pa
                b = pb
            ta = tmat[a]
            tb = tmat[b]
            acc |= gate & (ta < tb)
            gate &= ta == tb
            alive = gate.any(axis=1)
            if not alive.all():
                out[rows[~alive]] = acc[~alive]
                rows = rows[alive]
                a = a[alive]
                b = b[alive]
                acc = acc[alive]
                gate = gate[alive]
        return out

    def order_divergence(self) -> np.ndarray:
        """Per-size conflict-divergence mask over everything dispatched.

        ``divergent[s]`` is True when some resource was accessed by two
        pops in an order different from the one size ``s``'s own scalar
        run would have used — i.e. the batch dispatch order is *not*
        conflict-equivalent to ``s``'s scalar order, so ``s``'s results
        must be recomputed on the scalar engine.  The pivot (index 0) is
        never divergent: the queues are ordered by it.
        """
        mat = self._conflict_matrix()
        if mat is None:
            return np.zeros(self.width, dtype=bool)
        return mat[1].any(axis=0)

    def divergence_labels(self, divergent: np.ndarray) -> np.ndarray:
        """Cluster the flagged sizes by inversion signature.

        ``divergent`` is a boolean ``(S,)`` mask (normally the
        :meth:`order_divergence` result, but callers may widen it).
        Returns an int64 ``(S,)`` array: unflagged sizes get ``-1``, and
        two flagged sizes share a label iff exactly the same conflict
        pairs are inverted for them — the same resources serviced in the
        same "wrong" order, hence the same candidate dispatch order when
        re-batched together.
        """
        labels = np.full(self.width, -1, dtype=np.int64)
        cols = np.nonzero(divergent)[0]
        if not len(cols):
            return labels
        mat = self._conflict_matrix()
        if mat is None:
            labels[cols] = 0
            return labels
        sub = mat[1][:, cols]
        active = sub.any(axis=1)
        if not active.any():
            # flagged from outside with no recorded inversion: one cluster
            labels[cols] = 0
            return labels
        sig = np.packbits(sub[active], axis=0)
        _, inverse = np.unique(sig, axis=1, return_inverse=True)
        labels[cols] = inverse.reshape(-1)
        return labels


class BatchEvent:
    """One-shot event with the engine's trigger ordering (vector clock).

    Dispatch positions match :class:`~repro.sim.timeline.TimelineEvent` —
    waiters are appended to the ready deque in registration order at
    trigger time, and waiting on an already-triggered event defers the
    callback — but every resume carries the elementwise
    ``max(reach, trigger)`` of the waiter's arrival and the trigger time
    as its ``now`` override: exactly the time each size's own scalar run
    would resume at, whichever side arrived first there.  The pivot
    component equals the dispatching pop's time, so pivot arithmetic is
    untouched.
    """

    __slots__ = ("_tl", "triggered", "value", "t", "_waiters")

    def __init__(self, tl: BatchTimeline):
        self._tl = tl
        self.triggered = False
        self.value: Any = None
        #: trigger-time vector (valid once triggered)
        self.t: Any = None
        #: (callback, reach-time vector) pairs
        self._waiters: list = []

    def wait(self, fn: Callable[[Any], None]) -> None:
        tl = self._tl
        if self.triggered:
            tl._ready.append((fn, self.value, np.maximum(tl.now, self.t)))
        else:
            self._waiters.append((fn, tl.now))

    def trigger(self, value: Any = None) -> None:
        self.trigger_at(value, self._tl.now)

    def trigger_at(self, value: Any, t: np.ndarray) -> None:
        """Trigger with an explicit fire-time vector ``t``.

        ``t``'s pivot component must equal the current pivot time (the
        caller is the dispatch that logically fires the event); non-pivot
        components may be earlier — e.g. a counter's exact per-size
        crossing time.
        """
        self.triggered = True
        self.value = value
        self.t = t
        waiters = self._waiters
        if waiters:
            ready = self._tl._ready
            for fn, reach in waiters:
                ready.append((fn, value, np.maximum(reach, t)))
            self._waiters = []

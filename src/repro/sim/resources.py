"""Queueing resources for the discrete-event engine.

All resources here use *eager reservation*: a request made at simulated time
``t`` for ``service`` seconds is immediately assigned a ``(start, end)``
window, FIFO within the resource.  This is exact for work-conserving FIFO
servers as long as reservations are never cancelled — which holds everywhere
in this codebase — and avoids one event per queue transition, keeping large
sweeps (2304 ranks × log-depth algorithms) fast.

Three flavours:

* :class:`Server` — a single FIFO server (e.g. one NIC injection pipeline).
* :class:`MultiServer` — ``c`` identical servers with a shared FIFO queue
  (e.g. node memory modelled as ``node_bw / core_bw`` concurrent copy lanes).
* :class:`RateLimiter` — admits discrete items at a maximum sustained rate
  (e.g. a NIC's message-rate ceiling).
"""

from __future__ import annotations

import heapq
from typing import Tuple

__all__ = ["Server", "MultiServer", "RateLimiter"]


class Server:
    """A single work-conserving FIFO server.

    :meth:`reserve` returns the ``(start, end)`` service window for a request
    arriving ``now`` that needs ``service`` seconds.  Requests are served in
    reservation order.
    """

    __slots__ = ("name", "_next_free", "busy_time", "served")

    def __init__(self, name: str = ""):
        self.name = name
        self._next_free = 0.0
        #: total seconds of service delivered (for utilisation accounting)
        self.busy_time = 0.0
        #: number of reservations made
        self.served = 0

    def reserve(self, now: float, service: float) -> Tuple[float, float]:
        if service < 0:
            raise ValueError(f"negative service time: {service}")
        start = max(now, self._next_free)
        end = start + service
        self._next_free = end
        self.busy_time += service
        self.served += 1
        return start, end

    def next_free(self) -> float:
        return self._next_free

    def reset(self) -> None:
        self._next_free = 0.0
        self.busy_time = 0.0
        self.served = 0


class MultiServer:
    """``c`` identical FIFO servers fed from one queue.

    Used to approximate fluid bandwidth sharing: a node memory system with
    aggregate bandwidth ``B`` and per-stream bandwidth ``b`` behaves, to
    first order, like ``c = B/b`` parallel copy lanes.
    """

    __slots__ = ("name", "servers", "_free_heap", "busy_time", "served")

    def __init__(self, c: int, name: str = ""):
        if c < 1:
            raise ValueError(f"need at least one server, got {c}")
        self.name = name
        self.servers = c
        # heap of next-free times, one per server
        self._free_heap = [0.0] * c
        heapq.heapify(self._free_heap)
        self.busy_time = 0.0
        self.served = 0

    def reserve(self, now: float, service: float) -> Tuple[float, float]:
        if service < 0:
            raise ValueError(f"negative service time: {service}")
        earliest = heapq.heappop(self._free_heap)
        start = max(now, earliest)
        end = start + service
        heapq.heappush(self._free_heap, end)
        self.busy_time += service
        self.served += 1
        return start, end

    def next_free(self) -> float:
        return self._free_heap[0]

    def reset(self) -> None:
        c = self.servers
        self._free_heap = [0.0] * c
        heapq.heapify(self._free_heap)
        self.busy_time = 0.0
        self.served = 0


class RateLimiter:
    """Admits discrete items at a maximum sustained rate.

    Each :meth:`admit` call returns the earliest time the item may pass,
    spacing consecutive admissions at least ``1/rate`` apart.  This models a
    hardware message-rate ceiling (e.g. Omni-Path's 97 M msg/s) that is
    shared by all processes on a node.
    """

    __slots__ = ("name", "rate", "_interval", "_next_slot", "admitted")

    def __init__(self, rate: float, name: str = ""):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.name = name
        self.rate = rate
        # precomputed once: admit() sits on the per-message hot path
        self._interval = 1.0 / rate
        self._next_slot = 0.0
        self.admitted = 0

    @property
    def interval(self) -> float:
        return self._interval

    def admit(self, now: float) -> float:
        """Return the admission time for an item arriving at ``now``."""
        next_slot = self._next_slot
        t = now if now > next_slot else next_slot
        self._next_slot = t + self._interval
        self.admitted += 1
        return t

    def reset(self) -> None:
        self._next_slot = 0.0
        self.admitted = 0

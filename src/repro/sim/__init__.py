"""Deterministic discrete-event simulation substrate.

This package is a purpose-built, dependency-free simulation kernel (in the
spirit of SimPy, but deterministic and specialised for eager FIFO resource
reservation) on which the simulated cluster, network, and MPI runtime are
built.
"""

from repro.sim.engine import (
    Command,
    DeadlockError,
    Delay,
    Engine,
    Event,
    ProcGen,
    Process,
    SimulationError,
    WaitAll,
    WaitEvent,
)
from repro.sim.resources import MultiServer, RateLimiter, Server
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Command",
    "DeadlockError",
    "Delay",
    "Engine",
    "Event",
    "ProcGen",
    "Process",
    "SimulationError",
    "WaitAll",
    "WaitEvent",
    "MultiServer",
    "RateLimiter",
    "Server",
    "TraceEvent",
    "Tracer",
]

"""Measure the analytic tier's error against the exact engines.

``python -m repro.models.calibrate`` sweeps the registry grid (every
planner-backed (library, collective) pair over representative node shapes
and message sizes), evaluates each point on both the DAG fast path (exact
— bit-identical to the event loop) and the analytic closed forms, and
writes the relative-error distribution to ``results/analytic_error.json``.

The JSON is the provenance for the analytic tier's accuracy contract: the
documented bound is :data:`repro.sched.analytic.ERROR_BOUND`, and
``tests/sched/test_analytic.py`` asserts the measured maximum stays below
it.  The process exits nonzero if the bound is violated, so CI can run
this module directly as the error-bound suite.

Usage::

    python -m repro.models.calibrate                   # full grid
    python -m repro.models.calibrate --quick           # CI-sized subset
    python -m repro.models.calibrate --out path.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["calibration_grid", "measure_errors", "write_error_report", "main"]

#: node shapes of the calibration sweep (nodes, ppn)
SHAPES = ((2, 4), (4, 8), (2, 16))

#: per-process message sizes, spanning eager/rendezvous and every
#: algorithm-switch regime of the registry
SIZES = (512, 4096, 16384, 65536, 262144)

QUICK_SHAPES = ((2, 4), (2, 8))
QUICK_SIZES = (512, 16384, 262144)


def calibration_grid(
    quick: bool = False,
) -> List[Tuple[str, str, int, int, int]]:
    """The (library, collective, nodes, ppn, msg_bytes) calibration grid."""
    from repro.sched.registry import registry_combinations

    shapes = QUICK_SHAPES if quick else SHAPES
    sizes = QUICK_SIZES if quick else SIZES
    return [
        (lib, coll, nodes, ppn, nbytes)
        for lib, coll in registry_combinations()
        for nodes, ppn in shapes
        for nbytes in sizes
    ]


def measure_errors(
    grid: Optional[Sequence[Tuple[str, str, int, int, int]]] = None,
    quick: bool = False,
) -> Dict:
    """Relative error of the analytic tier vs the DAG engine, per pair.

    Returns the JSON-able report document (see module docstring).
    """
    from repro.sched.analytic import ERROR_BOUND
    from repro.sched.analytic import evaluate_point as analytic_point
    from repro.sched.fastpath import evaluate_point as dag_point

    if grid is None:
        grid = calibration_grid(quick=quick)
    per_pair: Dict[str, List[Dict]] = {}
    for lib, coll, nodes, ppn, nbytes in grid:
        exact = dag_point(lib, coll, nodes, ppn, nbytes)
        t_exact = exact.samples[-1]
        est = analytic_point(lib, coll, nodes, ppn, nbytes)
        rel = abs(est.time / t_exact - 1.0)
        per_pair.setdefault(f"{lib}/{coll}", []).append({
            "nodes": nodes,
            "ppn": ppn,
            "msg_bytes": nbytes,
            "exact_s": t_exact,
            "analytic_s": est.time,
            "rel_err": rel,
        })
    pairs = {}
    all_errs: List[float] = []
    for key, rows in sorted(per_pair.items()):
        errs = [r["rel_err"] for r in rows]
        all_errs.extend(errs)
        pairs[key] = {
            "points": len(rows),
            "max_rel_err": max(errs),
            "median_rel_err": statistics.median(errs),
            "rows": rows,
        }
    return {
        "report": "analytic-tier-error-vs-dag-engine",
        "bound": ERROR_BOUND,
        "grid_points": len(all_errs),
        "overall": {
            "max_rel_err": max(all_errs),
            "median_rel_err": statistics.median(all_errs),
        },
        "within_bound": max(all_errs) < ERROR_BOUND,
        "pairs": pairs,
    }


def write_error_report(
    out: Optional[Path] = None, quick: bool = False
) -> Dict:
    """Measure, persist to ``results/analytic_error.json``, return doc."""
    doc = measure_errors(quick=quick)
    if out is None:
        out = Path("results") / "analytic_error.json"
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def format_summary(doc: Dict) -> str:
    lines = [
        f"analytic-tier error vs dag over {doc['grid_points']} grid points "
        f"(documented bound {doc['bound']:.0%}):"
    ]
    for key, pair in doc["pairs"].items():
        lines.append(
            f"  {key:<28} max {pair['max_rel_err']:6.1%}  "
            f"median {pair['median_rel_err']:6.1%}  "
            f"({pair['points']} pts)"
        )
    o = doc["overall"]
    lines.append(
        f"  overall: max {o['max_rel_err']:.1%}, "
        f"median {o['median_rel_err']:.1%} -> "
        + ("WITHIN BOUND" if doc["within_bound"] else "BOUND VIOLATED")
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.models.calibrate", description=__doc__
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: results/analytic_error.json)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid for CI (fewer shapes/sizes, same pairs)",
    )
    args = parser.parse_args(argv)
    doc = write_error_report(
        out=Path(args.out) if args.out else None, quick=args.quick
    )
    print(format_summary(doc))
    out = args.out or "results/analytic_error.json"
    print(f"wrote {out}")
    return 0 if doc["within_bound"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

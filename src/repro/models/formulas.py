"""Closed-form runtime models of the PiP-MColl algorithms (§III).

Each function transcribes a runtime equation from the paper, taking the
:class:`~repro.models.hockney.HockneyParams` scalars plus the workload
shape: ``cb`` = per-process message bytes, ``n`` = nodes, ``p`` = processes
per node.

These are *models*, not simulations: they ignore queueing and contention.
The test suite cross-validates the simulator against them on the properties
the paper derives — linearity in ``C_b``, logarithmic/linear behaviour in
``N``, and the quadratic blow-up that motivates the large-message
algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hw.params import MachineParams
from repro.models.hockney import HockneyParams

__all__ = [
    "scatter_time",
    "allgather_small_time",
    "allgather_large_time",
    "allreduce_small_time",
    "allreduce_large_time",
    "AnalyticParams",
    "scatter_refined",
    "allgather_refined",
    "allreduce_small_refined",
    "allreduce_large_refined",
    "flat_allgather_refined",
    "MPICH_RING_TOTAL_BYTES",
]


def _log_ceil(base: int, n: int) -> int:
    if n <= 1:
        return 0
    return math.ceil(math.log(n) / math.log(base))


def scatter_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-A1: ``T = max(T_intrascatter, T_interscatter)``."""
    t_intra = h.a_r + p * cb * h.b_r
    t_inter = h.a_e * _log_ceil(p + 1, n) + cb * (n - 1) * p * h.b_e
    return max(t_intra, t_inter)


def allgather_small_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-A2: intranode gather plus multi-object Bruck; note the
    quadratic ``C_b`` term in the internode part (the paper's motivation
    for a separate large-message algorithm).

    The paper's printed internode byte term is ``(C_b*P - 1) * C_b * P``;
    dimensional analysis (bytes x bytes) shows the first factor is the
    block *count* ``N - 1``, so we use ``(N - 1) * C_b * P`` for the bytes
    on the wire per node and keep the quadratic behaviour via the
    per-round growth in transmitted prefix size.
    """
    t_intra = h.a_r + (1 + n * p * (p - 1)) * cb * h.b_r / p
    rounds = _log_ceil(p + 1, n)
    # per round r the node ships ~ (P+1)^r * P * C_b bytes; summed this is
    # ~ (N - 1) * C_b * P total per node
    t_inter = h.a_e * rounds + (n - 1) * cb * p * h.b_e
    return t_intra + t_inter


def allgather_large_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-B1: gather + max(overlapped intranode bcast, internode ring)."""
    t_gather = h.a_r + (p - 1) * cb * h.b_r
    t_bcast = h.a_r * (n - 1) + (p - 1) * n * p * cb * h.b_r / p
    t_ring = h.a_e * (n - 1) + p * cb * (n - 1) * h.b_e
    return t_gather + max(t_bcast, t_ring)


def allreduce_small_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-A3: intranode binomial reduce + multi-object Bruck with
    per-round reductions."""
    lg_p = math.ceil(math.log2(p)) if p > 1 else 0
    t_intra = h.a_r * lg_p + cb * lg_p * h.b_r + cb * lg_p * h.gamma
    rounds = _log_ceil(p + 1, n)
    t_inter = (
        h.a_e * rounds + cb * p * rounds * h.b_e + cb * rounds * h.gamma
    )
    return t_intra + t_inter


def allreduce_large_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-B2: chunked intranode reduce + reduce-scatter +
    max(intranode bcast, internode allgather of chunks)."""
    t_intra_reduce = h.a_r * (p - 1) + cb * p * h.gamma / p
    t_rscatter = (
        h.a_e * (p - 1)
        + (n - 1) * cb / n * h.b_e
        + cb / n * (n - 1) * h.gamma
    )
    t_bcast = h.a_r * (n - 1) + (n - 1) * cb / n * h.b_r
    t_ring = h.a_e * (n - 1) + cb / n * (n - 1) * h.b_e
    return t_intra_reduce + t_rscatter + max(t_bcast, t_ring)


# ---------------------------------------------------------------------------
# Refined closed forms for the ``engine="analytic"`` tier.
#
# The paper transcriptions above deliberately ignore queueing; the analytic
# engine needs expressions that track the *simulator* (its ground truth)
# closely enough for an error-bounded contract.  The refinements add exactly
# the first-order contention effects the simulator models:
#
# * eager vs rendezvous wire streams — a single sender is bounded by its
#   injection copy (``proc_bandwidth``) below the eager threshold and by the
#   NIC DMA pull (``proc_dma_bandwidth``) above it, while many concurrent
#   senders are bounded by the shared NIC line rate;
# * memory-lane contention — ``p`` concurrent intranode copies on
#   ``derived_copy_lanes()`` lanes serialize by ``ceil(p/lanes)``;
# * per-process fixed costs — one PiP flag check per participant plus one
#   address post per operation.
#
# Every function is a numpy ufunc over ``cb`` (scalar in, scalar out; array
# in, array out) so the analytic engine can evaluate a whole size axis in
# one vectorized pass.  MPICH's flat-allgather selection constant lives here
# so the analytic tier and the registry agree on the switch point.
# ---------------------------------------------------------------------------

#: MPICH flat allgather switches to ring at this *total* receive size
#: (must match repro.sched.registry._MPICH_ALLGATHER_RING_TOTAL)
MPICH_RING_TOTAL_BYTES = 80 * 1024


@dataclass(frozen=True)
class AnalyticParams:
    """Everything the refined closed forms need, derived from one machine.

    Bundles the paper's five Hockney scalars with the handful of extra
    machine constants the refinements use.  Frozen and hashable so it can
    ride in lru caches keyed by machine.
    """

    h: HockneyParams
    #: per-byte eager injection cost (sender CPU copy), s/B
    b_proc: float
    #: per-byte rendezvous DMA cost (NIC pull, single stream), s/B
    b_dma: float
    #: concurrent full-speed memory copy lanes per node
    lanes: int
    #: one userspace flag check
    flag: float
    #: one address-board post
    post: float
    #: eager/rendezvous protocol switch, bytes
    eager: int

    @classmethod
    def from_machine(cls, p: MachineParams) -> "AnalyticParams":
        return cls(
            h=HockneyParams.from_machine(p),
            b_proc=1.0 / p.proc_bandwidth,
            b_dma=1.0 / p.proc_dma_bandwidth,
            lanes=p.derived_copy_lanes(),
            flag=p.pip_flag_time,
            post=p.pip_post_time,
            eager=p.eager_threshold,
        )

    def stream_beta(self, nbytes):
        """Single-stream per-byte wire cost: eager copy below the
        protocol switch, rendezvous DMA above it (vectorized)."""
        return np.where(
            np.asarray(nbytes) <= self.eager, self.b_proc, self.b_dma
        )


def _bruck_rounds(n: int, p: int) -> int:
    """Rounds of the (p+1)-ary multi-object Bruck exchange over ``n`` nodes."""
    if n <= 1:
        return 0
    return max(1, math.ceil(math.log(n) / math.log(p + 1)))


def scatter_refined(ap: AnalyticParams, cb, n: int, p: int):
    """PiP-MColl scatter: root ships ``p*cb`` per remote node, then every
    local process pulls its own block concurrently."""
    h = ap.h
    cb = np.asarray(cb, dtype=float)
    msg = p * cb
    if n > 1:
        rounds = _bruck_rounds(n, p)
        # (n-1) back-to-back node messages pipeline at the NIC line rate;
        # a lone message is stream-bound (eager copy or rendezvous DMA)
        wire = np.maximum((n - 1) * msg * h.b_e, msg * ap.stream_beta(msg))
    else:
        rounds = 0
        wire = np.zeros_like(cb)
    intra = cb * h.b_r * math.ceil(p / ap.lanes)
    return h.a_e * rounds + wire + h.a_r + p * ap.flag + ap.post + intra


def allgather_refined(ap: AnalyticParams, cb, n: int, p: int):
    """PiP-MColl allgather (both algorithm variants): the dominant cost is
    every process copying the ``R-1`` foreign blocks out of the shared
    heap; the wire term only differs between Bruck and ring in fixed
    per-round latency, which is negligible next to the copies."""
    h = ap.h
    cb = np.asarray(cb, dtype=float)
    R = n * p
    copies = (R - 1) * cb * h.b_r * math.ceil(p / ap.lanes)
    if n > 1:
        rounds = _bruck_rounds(n, p)
        wire = np.maximum(
            (n - 1) * p * cb * h.b_e, cb * ap.stream_beta(cb)
        )
    else:
        rounds = 0
        wire = np.zeros_like(cb)
    return h.a_r + copies + h.a_e * rounds + wire + p * ap.flag + ap.post


def allreduce_small_refined(ap: AnalyticParams, cb, n: int, p: int):
    """PiP-MColl small allreduce: binomial intranode reduce, leader
    exchange with per-round reduction, intranode broadcast."""
    h = ap.h
    cb = np.asarray(cb, dtype=float)
    lg = math.ceil(math.log2(p)) if p > 1 else 0
    cont = max(1.0, p / ap.lanes)
    intra = lg * (h.a_r + cb * h.gamma)
    if n > 1:
        rounds = _bruck_rounds(n, p)
        b_w = np.maximum(h.b_e, ap.stream_beta(cb))
        # leaders exchange and reduce the full block with each peer node;
        # the 2x alpha counts the send+receive handshake on both sides
        wire = (n - 1) * cb * b_w + (n - 1) * cb * h.gamma
        alpha = 2 * h.a_e * rounds
    else:
        wire = np.zeros_like(cb)
        alpha = 0.0
    bcast = h.a_r + cb * h.b_r * cont
    return intra + alpha + wire + bcast + p * ap.flag + ap.post


def allreduce_large_refined(ap: AnalyticParams, cb, n: int, p: int):
    """PiP-MColl large allreduce: chunked intranode reduce, internode
    reduce-scatter + allgather over ``cb/n`` chunks, broadcast."""
    h = ap.h
    cb = np.asarray(cb, dtype=float)
    cont = max(1.0, p / ap.lanes)
    intra = h.a_r * (math.ceil(math.log2(p)) if p > 1 else 0)
    intra = intra + cb * h.gamma * cont
    if n > 1:
        chunk = cb / n
        b_w = np.maximum(h.b_e, ap.stream_beta(chunk))
        rs = h.a_e * (n - 1) + (n - 1) * chunk * (b_w + h.gamma)
        ag = h.a_e * (n - 1) + (n - 1) * chunk * b_w
    else:
        rs = ag = np.zeros_like(cb)
    bcast = h.a_r + cb * h.b_r * cont
    return intra + rs + ag + bcast + p * ap.flag + ap.post


def flat_allgather_refined(ap: AnalyticParams, cb, n: int, p: int):
    """Flat (PiP-MPICH / OpenMPI) allgather under MPICH's selection:
    recursive doubling (power-of-two world) or Bruck below the ring-total
    switch, ring above it.

    Log-phase rounds at distance ``d`` are intranode while ``d < p``
    (block rank layout) and internode above, where every one of the ``p``
    per-node senders shares the node NIC.  The ring term models the
    pipelined steady state: per round the boundary message costs half an
    internode alpha (send/receive overlap with the previous round) plus
    the single-stream injection of ``cb``.
    """
    h = ap.h
    cb = np.asarray(cb, dtype=float)
    R = n * p
    b_inj = max(h.b_e, ap.b_proc)
    # -- log-phase (recursive doubling / Bruck share the volume profile) --
    log_t = np.zeros_like(cb)
    rounds = math.ceil(math.log2(R)) if R > 1 else 0
    for r in range(rounds):
        d = 2 ** r
        vol = min(d, R - d) * cb
        if d < p:
            cont = max(1.0, p / ap.lanes)
            log_t = log_t + h.a_r + vol * h.b_r * cont
        else:
            log_t = log_t + h.a_e + vol * b_inj + (p - 1) * vol * h.b_e
    # -- ring phase ------------------------------------------------------
    ring_t = (R - 1) * (h.a_e / 2 + cb * b_inj)
    total = R * cb
    return np.where(total < MPICH_RING_TOTAL_BYTES, log_t, ring_t)

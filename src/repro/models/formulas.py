"""Closed-form runtime models of the PiP-MColl algorithms (§III).

Each function transcribes a runtime equation from the paper, taking the
:class:`~repro.models.hockney.HockneyParams` scalars plus the workload
shape: ``cb`` = per-process message bytes, ``n`` = nodes, ``p`` = processes
per node.

These are *models*, not simulations: they ignore queueing and contention.
The test suite cross-validates the simulator against them on the properties
the paper derives — linearity in ``C_b``, logarithmic/linear behaviour in
``N``, and the quadratic blow-up that motivates the large-message
algorithms.
"""

from __future__ import annotations

import math

from repro.models.hockney import HockneyParams

__all__ = [
    "scatter_time",
    "allgather_small_time",
    "allgather_large_time",
    "allreduce_small_time",
    "allreduce_large_time",
]


def _log_ceil(base: int, n: int) -> int:
    if n <= 1:
        return 0
    return math.ceil(math.log(n) / math.log(base))


def scatter_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-A1: ``T = max(T_intrascatter, T_interscatter)``."""
    t_intra = h.a_r + p * cb * h.b_r
    t_inter = h.a_e * _log_ceil(p + 1, n) + cb * (n - 1) * p * h.b_e
    return max(t_intra, t_inter)


def allgather_small_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-A2: intranode gather plus multi-object Bruck; note the
    quadratic ``C_b`` term in the internode part (the paper's motivation
    for a separate large-message algorithm).

    The paper's printed internode byte term is ``(C_b*P - 1) * C_b * P``;
    dimensional analysis (bytes x bytes) shows the first factor is the
    block *count* ``N - 1``, so we use ``(N - 1) * C_b * P`` for the bytes
    on the wire per node and keep the quadratic behaviour via the
    per-round growth in transmitted prefix size.
    """
    t_intra = h.a_r + (1 + n * p * (p - 1)) * cb * h.b_r / p
    rounds = _log_ceil(p + 1, n)
    # per round r the node ships ~ (P+1)^r * P * C_b bytes; summed this is
    # ~ (N - 1) * C_b * P total per node
    t_inter = h.a_e * rounds + (n - 1) * cb * p * h.b_e
    return t_intra + t_inter


def allgather_large_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-B1: gather + max(overlapped intranode bcast, internode ring)."""
    t_gather = h.a_r + (p - 1) * cb * h.b_r
    t_bcast = h.a_r * (n - 1) + (p - 1) * n * p * cb * h.b_r / p
    t_ring = h.a_e * (n - 1) + p * cb * (n - 1) * h.b_e
    return t_gather + max(t_bcast, t_ring)


def allreduce_small_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-A3: intranode binomial reduce + multi-object Bruck with
    per-round reductions."""
    lg_p = math.ceil(math.log2(p)) if p > 1 else 0
    t_intra = h.a_r * lg_p + cb * lg_p * h.b_r + cb * lg_p * h.gamma
    rounds = _log_ceil(p + 1, n)
    t_inter = (
        h.a_e * rounds + cb * p * rounds * h.b_e + cb * rounds * h.gamma
    )
    return t_intra + t_inter


def allreduce_large_time(h: HockneyParams, cb: int, n: int, p: int) -> float:
    """§III-B2: chunked intranode reduce + reduce-scatter +
    max(intranode bcast, internode allgather of chunks)."""
    t_intra_reduce = h.a_r * (p - 1) + cb * p * h.gamma / p
    t_rscatter = (
        h.a_e * (p - 1)
        + (n - 1) * cb / n * h.b_e
        + cb / n * (n - 1) * h.gamma
    )
    t_bcast = h.a_r * (n - 1) + (n - 1) * cb / n * h.b_r
    t_ring = h.a_e * (n - 1) + cb / n * (n - 1) * h.b_e
    return t_intra_reduce + t_rscatter + max(t_bcast, t_ring)

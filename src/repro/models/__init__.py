"""Analytic cost models from §III (extended Hockney)."""

from repro.models.formulas import (
    allgather_large_time,
    allgather_small_time,
    allreduce_large_time,
    allreduce_small_time,
    scatter_time,
)
from repro.models.fitting import FittedLine, fit_p2p, measure_p2p_times
from repro.models.hockney import HockneyParams

__all__ = [
    "allgather_large_time",
    "allgather_small_time",
    "allreduce_large_time",
    "allreduce_small_time",
    "scatter_time",
    "HockneyParams",
    "FittedLine",
    "fit_p2p",
    "measure_p2p_times",
]

"""Fit Hockney parameters from simulated measurements.

The classic way to parameterise ``a + M*b`` is a ping sweep and a linear
fit; doing the same against the *simulator* closes the validation loop:
the fitted latency/bandwidth must come back as the machine constants the
model was built from.  Exposed both as a library (used by the test suite)
and for notebook-style exploration of parameter changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.hw.params import MachineParams, bebop_broadwell
from repro.hw.topology import Topology
from repro.mpi.buffer import Buffer
from repro.mpi.runtime import World
from repro.shmem.mechanisms import PipShmem
from repro.util.units import KB

__all__ = ["FittedLine", "measure_p2p_times", "fit_p2p"]

#: default sizes for the eager-path fit: large enough that the per-message
#: injection gap is amortised (the pipelined transfer is bandwidth-paced),
#: small enough to stay below the rendezvous switch
DEFAULT_SIZES = tuple(1 << k for k in range(12, 16))  # 4 kB .. 32 kB


@dataclass(frozen=True)
class FittedLine:
    """Least-squares fit of ``t = alpha + beta * nbytes``."""

    alpha: float
    beta: float
    #: coefficient of determination of the fit
    r_squared: float

    @property
    def bandwidth(self) -> float:
        """Fitted stream bandwidth, bytes/s."""
        return 1.0 / self.beta


def measure_p2p_times(
    params: Optional[MachineParams] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> list[tuple[int, float]]:
    """One-way internode transfer time per size (fresh world per point)."""
    params = params or bebop_broadwell()
    out = []
    for nbytes in sizes:
        world = World(
            Topology(2, 1), params, mechanism=PipShmem(), phantom=True
        )
        send = Buffer.phantom(nbytes)
        recv = Buffer.phantom(nbytes)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, send, tag=0)
            else:
                yield from ctx.recv(0, recv, tag=0)

        out.append((nbytes, world.run(body).elapsed))
    return out


def fit_p2p(
    params: Optional[MachineParams] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> FittedLine:
    """Fit the Hockney line to simulated internode pings.

    The default sizes sit in the bandwidth-paced regime, so the intercept
    is the fixed software + wire overhead (send/recv overheads plus wire
    latency) and the slope is the slowest pipeline stage's inverse
    bandwidth — the eager path's per-process copy bandwidth."""
    points = measure_p2p_times(params, sizes)
    x = np.array([n for n, _ in points], dtype=float)
    y = np.array([t for _, t in points], dtype=float)
    beta, alpha = np.polyfit(x, y, 1)
    pred = alpha + beta * x
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return FittedLine(alpha=float(alpha), beta=float(beta), r_squared=r2)

"""Extended Hockney model parameters (§III).

The paper analyses every algorithm with an extension of the Hockney model
``a + M*b``:

=========  =============================================  =================
symbol     meaning                                        derived here from
=========  =============================================  =================
``a_r``    intranode start-up latency per operation       ``copy_latency`` + one PiP flag
``a_e``    internode start-up latency per message         send/recv overhead + injection gap + wire latency
``b_r``    intranode transmission time per byte           ``1 / core_copy_bw``
``b_e``    internode transmission time per byte           ``1 / nic_bandwidth``
``gamma``  reduction time per byte                        ``1 / reduce_bw``
=========  =============================================  =================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import MachineParams

__all__ = ["HockneyParams"]


@dataclass(frozen=True)
class HockneyParams:
    """The five scalars of the paper's cost model."""

    a_r: float
    a_e: float
    b_r: float
    b_e: float
    gamma: float

    @classmethod
    def from_machine(cls, p: MachineParams) -> "HockneyParams":
        return cls(
            a_r=p.copy_latency + p.pip_flag_time,
            a_e=p.send_overhead
            + 1.0 / p.proc_msg_rate
            + p.wire_latency
            + p.recv_overhead,
            b_r=1.0 / p.core_copy_bw,
            b_e=1.0 / p.nic_bandwidth,
            gamma=1.0 / p.reduce_bw,
        )

    def p2p_time(self, nbytes: int) -> float:
        """Plain Hockney point-to-point estimate."""
        return self.a_e + nbytes * self.b_e

"""The schedule IR subsystem: collectives compiled to per-rank step plans.

Layers:

* :mod:`repro.sched.ir` — the typed step IR and symbolic values;
* :mod:`repro.sched.emit` — the step-stream builder planners use;
* :mod:`repro.sched.plans` — per-algorithm planners (core, ring,
  intranode, baseline);
* :mod:`repro.sched.executor` — replays any schedule on the live runtime
  with bit-identical simulated timing;
* :mod:`repro.sched.check` — the static checker (matched sends, acyclic
  waits, buffer bounds, volume accounting), also a CLI:
  ``python -m repro.sched.check --library pip-mcoll --collective allreduce
  --np 8x16 --nbytes 64K``.
"""

from repro.sched.emit import Emitter
from repro.sched.executor import ScheduleExecutor
from repro.sched.ir import (
    AllocStep,
    BufRef,
    ComputeStep,
    CopyStep,
    HashTag,
    IntraOpStep,
    Ns,
    PhaseStep,
    RankProgram,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    Step,
    Sym,
    TagOffset,
    WaitStep,
    resolve_key,
)

__all__ = [
    "Emitter",
    "ScheduleExecutor",
    "AllocStep",
    "BufRef",
    "ComputeStep",
    "CopyStep",
    "HashTag",
    "IntraOpStep",
    "Ns",
    "PhaseStep",
    "RankProgram",
    "RecvStep",
    "ReduceStep",
    "Schedule",
    "SendStep",
    "Step",
    "Sym",
    "TagOffset",
    "WaitStep",
    "resolve_key",
]

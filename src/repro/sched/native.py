"""Native replay engine: lowers fastpath opcode programs to array form.

``engine="native"`` is the fourth exact tier: the DAG fast path's flat
opcode programs (:mod:`repro.sched.fastpath`) are lowered one step further
— buffer names interned to integers, operands packed into int64 tables,
tag expressions resolved to dense queue/board/counter ids — and replayed
by the nopython kernel in :mod:`repro.sim.native_timeline`, which runs
numba-JIT-compiled when numba is installed and as plain Python otherwise.

Division of labour per iteration:

* **Python prologue** (this module): evaluate the per-iteration dynamic
  tag builders (the same closures :class:`~repro.sched.fastpath._Task`
  uses), map each tag value to a dense integer id — send/recv tags to
  match-queue ids (fresh per iteration; queues provably drain), board and
  counter keys to *persistent* slots (their state survives iterations,
  exactly like ``FastWorld.boards``/``counters``) — and size the CSR
  scratch arrays.
* **Kernel** (:func:`repro.sim.native_timeline.build_kernels`): the whole
  event loop — heap, ready ring, matching, cost closures — over those
  arrays.  See that module's docstring for the float-for-float identity
  argument.

Anything the array form cannot represent exactly makes the kernel return
a non-OK status and this module raises :class:`NativeBailout`;
:func:`repro.bench.microbench.run_point` then falls back to the DAG
engine, so ``engine="native"`` never returns approximate numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.params import MachineParams, bebop_broadwell
from repro.mpi.transport import RTS_HEADER_BYTES
from repro.sched.fastpath import (
    FastpathResult,
    _DISPLAY_NAMES,
    _OP_ADD,
    _OP_ALLOC,
    _OP_COMPUTE,
    _OP_COPY,
    _OP_CWAIT,
    _OP_LOOKUP,
    _OP_PHASE,
    _OP_POST,
    _OP_RECV,
    _OP_REDUCE,
    _OP_SEND_INTER,
    _OP_SEND_INTRA,
    _OP_WAIT,
    _compiled_for,
    fastpath_supported,
)
from repro.sched.registry import plan_for
from repro.shmem.mechanisms import (
    HybridMechanism,
    KernelCopy,
    PipShmem,
    PosixShmem,
    Xpmem,
)
from repro.sim.engine import DeadlockError
from repro.sim import native_timeline as nt

__all__ = [
    "NativeBailout",
    "native_supported",
    "native_available",
    "evaluate_point",
    "evaluate_tables",
    "warm_kernels",
    "NativeWorld",
]


class NativeBailout(RuntimeError):
    """The lowered form cannot replay this point exactly; use the DAG
    engine instead (callers treat this as a graceful, exact fallback)."""


#: coverage is identical to the DAG engine: the planner-backed registry
native_supported = fastpath_supported


def native_available() -> bool:
    """True when the JIT tier is usable (numba importable, not disabled
    via ``PIPMCOLL_NO_NATIVE``).  Without it, ``engine="native"`` runs
    the DAG engine instead — same bits, pure Python."""
    return nt.jit_available()


_MECH_CODES = {
    PosixShmem: nt.MECH_POSIX,
    KernelCopy: nt.MECH_KERNEL,
    Xpmem: nt.MECH_XPMEM,
    PipShmem: nt.MECH_PIP,
}

#: tag-op kinds for the per-iteration id-resolution scan
_T_SEND, _T_RECV, _T_POST, _T_LOOKUP, _T_ADD, _T_CWAIT = range(6)

_NO_THRESHOLD = 1 << 60


def _mechanism_codes(mech) -> Tuple[int, int, int]:
    """(small_code, large_code, threshold) for the kernel dispatch."""
    if isinstance(mech, HybridMechanism):
        small = _MECH_CODES.get(type(mech.small))
        large = _MECH_CODES.get(type(mech.large))
        if small is None or large is None:
            raise NativeBailout(
                f"mechanism {mech.name!r} has no native lowering"
            )
        return small, large, mech.threshold
    code = _MECH_CODES.get(type(mech))
    if code is None:
        raise NativeBailout(f"mechanism {mech!r} has no native lowering")
    return code, code, _NO_THRESHOLD


class NativeWorld:
    """One sweep point's lowered schedule + persistent hardware state.

    The analogue of :class:`~repro.sched.fastpath.FastWorld`: all state
    persists across iterations (the warm-up protocol), but it lives in
    flat numpy arrays the kernel mutates in place.
    """

    def __init__(self, params: MachineParams, nodes: int, ppn: int,
                 mechanism, software_overhead: float, schedule,
                 bindings, flat: bool, iters: int,
                 force_interp: bool = False):
        params.validate()
        self.params = params
        self.nodes = nodes
        self.ppn = ppn
        self.size = nodes * ppn
        self.schedule = schedule
        self.flat = flat
        self.tag_key = hash(tuple(range(self.size))) if flat else None
        self._group_seqs: Dict = {}
        self._op_seq = 0
        self._buf_seq = 0
        self.kernels = nt.get_kernels(force_interp=force_interp)

        small, large, thresh = _mechanism_codes(mechanism)

        compiled = _compiled_for(schedule, ppn)
        ntasks = len(compiled)
        if ntasks != self.size:
            raise NativeBailout("schedule size != nodes * ppn")

        # -- name / phase interning ------------------------------------
        names: Dict[str, int] = {}

        def name_id(n: str) -> int:
            i = names.get(n)
            if i is None:
                i = names[n] = len(names)
            return i

        phases: Dict[str, int] = {"": 0}

        def phase_id(n: str) -> int:
            i = phases.get(n)
            if i is None:
                i = phases[n] = len(phases)
            return i

        # -- opcode lowering -------------------------------------------
        rows: List[List[int]] = []
        fconst: List[float] = []
        wlists: List[int] = []
        opstart = [0]
        # per-task: (global op idx, kind, partner, tag slot)
        self.tag_ops: List[List[Tuple[int, int, int, int]]] = []
        self.tags: List[list] = []
        self.dyn_tags = []
        n_sends = 0
        n_recvs = 0
        n_allocs = 0
        max_handles = 1
        for index, comp in enumerate(compiled):
            node = index // ppn
            t_ops: List[Tuple[int, int, int, int]] = []
            max_handles = max(max_handles, comp.num_handles)
            for op in comp.ops:
                gi = len(rows)
                code = op[0]
                if code == _OP_SEND_INTRA:
                    _, dst, name, off, cnt, slot, handle = op
                    rows.append([code, dst, name_id(name), off,
                                 -1 if cnt is None else cnt, handle, 0])
                    t_ops.append((gi, _T_SEND, dst, slot))
                    n_sends += 1
                elif code == _OP_SEND_INTER:
                    _, dst, dst_node, name, off, cnt, slot, handle = op
                    rows.append([code, dst, dst_node, name_id(name), off,
                                 -1 if cnt is None else cnt, handle])
                    t_ops.append((gi, _T_SEND, dst, slot))
                    n_sends += 1
                elif code == _OP_RECV:
                    _, src, slot, handle = op
                    rows.append([code, handle, 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_RECV, src, slot))
                    n_recvs += 1
                elif code == _OP_WAIT:
                    _, handles, ln = op
                    rows.append([code, len(wlists), ln, 0, 0, 0, 0])
                    wlists.extend(handles)
                elif code in (_OP_COPY, _OP_REDUCE):
                    _, name, off, cnt = op
                    rows.append([code, name_id(name), off,
                                 -1 if cnt is None else cnt, 0, 0, 0])
                elif code == _OP_POST:
                    _, slot, name, off, cnt = op
                    rows.append([code, name_id(name), off,
                                 -1 if cnt is None else cnt, 0, 0, 0])
                    t_ops.append((gi, _T_POST, node, slot))
                elif code == _OP_LOOKUP:
                    _, slot, bind = op
                    rows.append([code, -1 if bind is None else name_id(bind),
                                 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_LOOKUP, node, slot))
                elif code == _OP_ADD:
                    _, slot, n = op
                    rows.append([code, n, 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_ADD, node, slot))
                elif code == _OP_CWAIT:
                    _, slot, n = op
                    rows.append([code, n, 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_CWAIT, node, slot))
                elif code == _OP_ALLOC:
                    _, name, count = op
                    rows.append([code, name_id(name), count, 0, 0, 0, 0])
                    n_allocs += 1
                elif code == _OP_PHASE:
                    rows.append([code, phase_id(op[1]), 0, 0, 0, 0, 0])
                else:  # _OP_COMPUTE
                    rows.append([code, len(fconst), 0, 0, 0, 0, 0])
                    fconst.append(op[1])
            opstart.append(len(rows))
            self.tag_ops.append(t_ops)
            self.tags.append(list(comp.const_tags))
            self.dyn_tags.append(comp.dyn_tags)

        i64 = np.int64
        self.OPS = np.array(rows, dtype=i64).reshape(len(rows), 7)
        self.FCONST = np.array(fconst or [0.0], dtype=np.float64)
        self.WLISTS = np.array(wlists or [0], dtype=i64)
        self.OPSTART = np.array(opstart, dtype=i64)
        self.TNODE = np.array([i // ppn for i in range(ntasks)], dtype=i64)
        self.TLR = np.array([i % ppn for i in range(ntasks)], dtype=i64)
        nops = len(rows)
        self.OPQ = np.full(nops, -1, dtype=i64)
        self.OPB = np.full(nops, -1, dtype=i64)
        self.OPCID = np.full(nops, -1, dtype=i64)
        self.ntasks = ntasks
        self.n_names = max(1, len(names))
        self.names = names
        self.phase_names = [p for p, _ in sorted(phases.items(),
                                                 key=lambda kv: kv[1])]
        self.n_sends = n_sends
        self.n_reqs = max(1, n_sends + n_recvs)

        # base environments (name -> (buffer_id, count)); fresh buffer ids
        # in the exact order FastWorld._prepare assigns them
        self.env0_bid = np.full((ntasks, self.n_names), -1, dtype=i64)
        self.env0_cnt = np.full((ntasks, self.n_names), -1, dtype=i64)
        for index, binding in enumerate(bindings):
            for bname, cnt in binding.items():
                self._buf_seq += 1
                ni = name_id(bname)
                if ni >= self.n_names:  # binding-only name
                    grow = ni + 1 - self.env0_bid.shape[1]
                    pad = np.full((ntasks, grow), -1, dtype=i64)
                    self.env0_bid = np.concatenate(
                        [self.env0_bid, pad], axis=1)
                    self.env0_cnt = np.concatenate(
                        [self.env0_cnt, pad.copy()], axis=1)
                    self.n_names = ni + 1
                self.env0_bid[index, ni] = self._buf_seq
                self.env0_cnt[index, ni] = cnt
        self.ENVB = np.empty_like(self.env0_bid)
        self.ENVC = np.empty_like(self.env0_cnt)
        self.HANDLE = np.zeros((ntasks, max_handles), dtype=i64)
        self.SCR = np.zeros((ntasks, nt.S_LEN), dtype=i64)

        # -- parameter vectors -----------------------------------------
        P = np.zeros(nt.P_LEN, dtype=np.float64)
        P[nt.P_PROC_BW] = params.proc_bandwidth
        P[nt.P_PROC_DMA_BW] = params.proc_dma_bandwidth
        P[nt.P_RATE_FLOOR] = 1.0 / params.proc_msg_rate
        P[nt.P_NIC_BW] = params.nic_bandwidth
        P[nt.P_NIC_INTERVAL] = 1.0 / params.nic_msg_rate
        P[nt.P_FABRIC_BW] = params.fabric_bandwidth or 0.0
        P[nt.P_WIRE_LAT] = params.wire_latency
        P[nt.P_SEND_OVH] = params.send_overhead
        P[nt.P_RECV_OVH] = params.recv_overhead
        P[nt.P_PIP_POST] = params.pip_post_time
        P[nt.P_PIP_FLAG] = params.pip_flag_time
        P[nt.P_COPY_LAT] = params.copy_latency
        P[nt.P_CORE_BW] = params.core_copy_bw
        P[nt.P_REDUCE_BW] = params.reduce_bw
        P[nt.P_PAGE_FAULT] = params.page_fault_time
        P[nt.P_SYSCALL] = params.syscall_time
        P[nt.P_SIZESYNC] = params.pip_sizesync_time
        P[nt.P_XP_EXPOSE] = params.xpmem_expose_time
        P[nt.P_XP_ATTACH] = params.xpmem_attach_time
        P[nt.P_XP_REATTACH] = params.xpmem_reattach_time
        P[nt.P_SW_OVH] = software_overhead
        self.P = P
        C = np.zeros(nt.C_LEN, dtype=i64)
        C[nt.C_NODES] = nodes
        C[nt.C_PPN] = ppn
        C[nt.C_NTASKS] = ntasks
        C[nt.C_HAS_FABRIC] = 1 if params.fabric_bandwidth else 0
        C[nt.C_MECH_SMALL] = small
        C[nt.C_MECH_LARGE] = large
        C[nt.C_MECH_THRESH] = thresh
        C[nt.C_EAGER_THRESH] = params.eager_threshold
        C[nt.C_PAGE_SIZE] = params.page_size
        C[nt.C_RTS_BYTES] = RTS_HEADER_BYTES
        self.C = C

        # -- persistent hardware state ---------------------------------
        f64 = np.float64
        self.inj_free = np.zeros((nodes, ppn), dtype=f64)
        self.nic_state = np.zeros((nodes, 4), dtype=f64)
        self.fabric_free = np.zeros(1, dtype=f64)
        self.msgs_sent = np.zeros(nodes, dtype=i64)
        self.lane_free = np.zeros(
            (nodes, params.derived_copy_lanes()), dtype=f64)
        nbufs = self._buf_seq + iters * n_allocs + 2
        self.warm = np.zeros((3, self.size, nbufs), dtype=i64)

        # -- persistent boards / counters ------------------------------
        self._bmap: Dict = {}
        self._cmap: Dict = {}
        self.btrig = np.zeros(0, dtype=i64)
        self.bval = np.zeros(0, dtype=i64)
        self.cval = np.zeros(0, dtype=i64)

        # -- pools and queues (capacity is static per schedule) --------
        nmsgs = max(1, n_sends)
        self.m_src = np.zeros(nmsgs, dtype=i64)
        self.m_nbytes = np.zeros(nmsgs, dtype=i64)
        self.m_bid = np.zeros(nmsgs, dtype=i64)
        self.m_qid = np.zeros(nmsgs, dtype=i64)
        self.m_flags = np.zeros(nmsgs, dtype=i64)
        self.m_lr = np.zeros(nmsgs, dtype=i64)
        self.m_sreq = np.zeros(nmsgs, dtype=i64)
        self.q_kind = np.zeros(self.n_reqs, dtype=i64)
        self.q_done = np.zeros(self.n_reqs, dtype=i64)
        self.q_val = np.zeros(self.n_reqs, dtype=i64)
        self.q_wait = np.zeros(self.n_reqs, dtype=i64)
        hcap = 2 * ntasks + 2 * max(1, n_sends) + 16
        self.ht = np.zeros(hcap, dtype=f64)
        self.hs = np.zeros(hcap, dtype=i64)
        self.hk = np.zeros(hcap, dtype=i64)
        self.hta = np.zeros(hcap, dtype=i64)
        self.hx = np.zeros(hcap, dtype=i64)
        rcap = 2 * (ntasks + self.n_reqs) + 16
        self.r_kind = np.zeros(rcap, dtype=i64)
        self.r_task = np.zeros(rcap, dtype=i64)
        self.r_aux = np.zeros(rcap, dtype=i64)
        self.end_times = np.zeros(ntasks, dtype=f64)
        self.acct = np.zeros((ntasks, max(1, len(self.phase_names)), 6),
                             dtype=i64)
        self.acct_touch = np.zeros((ntasks, max(1, len(self.phase_names))),
                                   dtype=i64)
        # io cells: [seq, buf_seq, unexpected, status, live]
        self.io_i = np.zeros(6, dtype=i64)
        self.io_i[1] = self._buf_seq
        self.io_f = np.zeros(2, dtype=f64)

    # -- identity ----------------------------------------------------

    def next_group_tag(self, tag_key) -> tuple:
        seq = self._group_seqs.get(tag_key, 0) + 1
        self._group_seqs[tag_key] = seq
        return (tag_key, seq)

    def internode_messages(self) -> int:
        return int(self.msgs_sent.sum())

    # -- one iteration -------------------------------------------------

    def run_iteration(self) -> float:
        k = self.schedule.num_namespaces
        ns_values = tuple(range(self._op_seq + 1, self._op_seq + 1 + k))
        self._op_seq += k
        symbols = (
            {"tag": self.next_group_tag(self.tag_key)} if self.flat else {}
        )

        # prologue: resolve tag values to dense ids
        qmap: Dict = {}
        bmap = self._bmap
        cmap = self._cmap
        send_q: List[int] = []
        recv_q: List[int] = []
        lookup_b: List[int] = []
        cwait_c: List[int] = []
        OPQ = self.OPQ
        OPB = self.OPB
        OPCID = self.OPCID
        for index in range(self.ntasks):
            tags = self.tags[index]
            dyn = self.dyn_tags[index]
            if dyn:
                for slot, builder in dyn:
                    tags[slot] = builder(ns_values, symbols)
            for gi, kind, partner, slot in self.tag_ops[index]:
                v = tags[slot]
                if kind == _T_SEND:
                    key = (partner, index, v)
                    qid = qmap.get(key)
                    if qid is None:
                        qid = qmap[key] = len(qmap)
                    OPQ[gi] = qid
                    send_q.append(qid)
                elif kind == _T_RECV:
                    key = (index, partner, v)
                    qid = qmap.get(key)
                    if qid is None:
                        qid = qmap[key] = len(qmap)
                    OPQ[gi] = qid
                    recv_q.append(qid)
                elif kind == _T_POST or kind == _T_LOOKUP:
                    key = (partner, v)
                    b = bmap.get(key)
                    if b is None:
                        b = bmap[key] = len(bmap)
                    OPB[gi] = b
                    if kind == _T_LOOKUP:
                        lookup_b.append(b)
                else:
                    key = (partner, v)
                    c = cmap.get(key)
                    if c is None:
                        c = cmap[key] = len(cmap)
                    OPCID[gi] = c
                    if kind == _T_CWAIT:
                        cwait_c.append(c)

        i64 = np.int64
        nq = max(1, len(qmap))
        acnt = np.bincount(np.array(send_q, dtype=i64), minlength=nq) \
            if send_q else np.zeros(nq, dtype=i64)
        pcnt = np.bincount(np.array(recv_q, dtype=i64), minlength=nq) \
            if recv_q else np.zeros(nq, dtype=i64)
        aq_off = np.zeros(nq + 1, dtype=i64)
        np.cumsum(acnt, out=aq_off[1:])
        pq_off = np.zeros(nq + 1, dtype=i64)
        np.cumsum(pcnt, out=pq_off[1:])
        aq_store = np.zeros(max(1, int(aq_off[-1])), dtype=i64)
        pq_store = np.zeros(max(1, int(pq_off[-1])), dtype=i64)
        aq_head = np.zeros(nq, dtype=i64)
        aq_tail = np.zeros(nq, dtype=i64)
        pq_head = np.zeros(nq, dtype=i64)
        pq_tail = np.zeros(nq, dtype=i64)
        self.C[nt.C_NQUEUES] = len(qmap)

        nb = max(1, len(bmap))
        if len(self.btrig) < len(bmap):
            grow = len(bmap) - len(self.btrig)
            self.btrig = np.concatenate(
                [self.btrig, np.zeros(grow, dtype=i64)])
            self.bval = np.concatenate(
                [self.bval, np.zeros(grow, dtype=i64)])
        bcnt = np.bincount(np.array(lookup_b, dtype=i64), minlength=nb) \
            if lookup_b else np.zeros(nb, dtype=i64)
        bw_off = np.zeros(nb + 1, dtype=i64)
        np.cumsum(bcnt, out=bw_off[1:])
        bw_task = np.zeros(max(1, int(bw_off[-1])), dtype=i64)
        bw_tail = np.zeros(nb, dtype=i64)
        btrig = self.btrig if len(self.btrig) else np.zeros(1, dtype=i64)
        bval = self.bval if len(self.bval) else np.zeros(1, dtype=i64)

        ncs = max(1, len(cmap))
        if len(self.cval) < len(cmap):
            self.cval = np.concatenate(
                [self.cval,
                 np.zeros(len(cmap) - len(self.cval), dtype=i64)])
        ccnt = np.bincount(np.array(cwait_c, dtype=i64), minlength=ncs) \
            if cwait_c else np.zeros(ncs, dtype=i64)
        cw_off = np.zeros(ncs + 1, dtype=i64)
        np.cumsum(ccnt, out=cw_off[1:])
        ccap = max(1, int(cw_off[-1]))
        cw_thr = np.zeros(ccap, dtype=i64)
        cw_task = np.zeros(ccap, dtype=i64)
        cw_act = np.zeros(ccap, dtype=i64)
        cw_tail = np.zeros(ncs, dtype=i64)
        cval = self.cval if len(self.cval) else np.zeros(1, dtype=i64)

        np.copyto(self.ENVB, self.env0_bid)
        np.copyto(self.ENVC, self.env0_cnt)

        replay = self.kernels["replay"]
        status = replay(
            self.P, self.C, self.OPS, self.FCONST, self.WLISTS,
            self.OPSTART, self.TNODE, self.TLR,
            OPQ, OPB, OPCID,
            self.ENVB, self.ENVC, self.HANDLE, self.SCR,
            self.inj_free, self.nic_state, self.fabric_free,
            self.msgs_sent, self.lane_free, self.warm,
            btrig, bval, bw_off, bw_task, bw_tail,
            cval, cw_off, cw_thr, cw_task, cw_act, cw_tail,
            aq_off, aq_store, aq_head, aq_tail,
            pq_off, pq_store, pq_head, pq_tail,
            self.m_src, self.m_nbytes, self.m_bid, self.m_qid,
            self.m_flags, self.m_lr, self.m_sreq,
            self.q_kind, self.q_done, self.q_val, self.q_wait,
            self.ht, self.hs, self.hk, self.hta, self.hx,
            self.r_kind, self.r_task, self.r_aux,
            self.end_times, self.acct, self.acct_touch,
            self.io_i, self.io_f,
        )
        if status == nt.ST_DEADLOCK:
            raise DeadlockError(
                f"{self.io_i[4]} schedule program(s) blocked at "
                f"t={self.io_f[0]} — native evaluation deadlocked"
            )
        if status != nt.ST_OK:
            raise NativeBailout(f"native kernel bailed (status {status})")
        return float(self.io_f[1])

    def volume_tables(self) -> Dict[Tuple[int, str], List[int]]:
        """The accounting rows in the static checker's layout."""
        out: Dict[Tuple[int, str], List[int]] = {}
        for rank in range(self.ntasks):
            for p, pname in enumerate(self.phase_names):
                if self.acct_touch[rank, p]:
                    out[(rank, pname)] = [int(v) for v in
                                          self.acct[rank, p]]
        return out


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _prepare(library: str, collective: str, nodes: int, ppn: int,
             msg_bytes: int, params: Optional[MachineParams], thresholds,
             iters: int, force_interp: bool) -> NativeWorld:
    from repro.baselines.registry import make_library

    if not native_supported(library, collective):
        raise ValueError(
            f"engine='native' does not cover ({library!r}, "
            f"{collective!r}); only planner-backed pairs are supported — "
            f"use engine='event'"
        )
    canon = library.lower().replace("_", "-").replace(" ", "-")
    lib = make_library(_DISPLAY_NAMES[canon])
    if thresholds is not None and not hasattr(lib, "thresholds"):
        raise ValueError(
            f"library {library!r} has no size thresholds to override"
        )
    planned = plan_for(
        canon, collective, nodes, ppn, msg_bytes, thresholds=thresholds
    )
    flat = bool(planned.symbols)
    return NativeWorld(
        params if params is not None else bebop_broadwell(),
        nodes, ppn, lib.make_mechanism(), lib.software_overhead,
        planned.schedule, planned.bindings, flat, iters,
        force_interp=force_interp,
    )


def evaluate_point(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    thresholds=None,
    force_interp: bool = False,
) -> FastpathResult:
    """Evaluate one microbenchmark point on the native kernel.

    Same protocol and result shape as
    :func:`repro.sched.fastpath.evaluate_point`, bit-identical samples.
    ``force_interp=True`` runs the kernel un-jitted even when numba is
    installed (the identity tests use it so the kernel logic is pinned
    on numba-free installs too).
    """
    if measure < 1:
        raise ValueError("need at least one measured iteration")
    world = _prepare(
        library, collective, nodes, ppn, msg_bytes, params, thresholds,
        warmup + measure, force_interp,
    )
    samples = []
    for it in range(warmup + measure):
        elapsed = world.run_iteration()
        if it >= warmup:
            samples.append(elapsed)
    return FastpathResult(tuple(samples), world.internode_messages())


def evaluate_tables(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    thresholds=None,
    force_interp: bool = False,
) -> Dict[Tuple[int, str], List[int]]:
    """Per-(rank, phase) traffic volumes of one cold iteration (the
    static checker's 6-column layout, like fastpath's evaluate_tables)."""
    world = _prepare(
        library, collective, nodes, ppn, msg_bytes, params, thresholds,
        1, force_interp,
    )
    world.C[nt.C_ACCT] = 1
    world.run_iteration()
    return world.volume_tables()


_WARMED = False


def warm_kernels() -> str:
    """Compile (or build) the kernels once; returns the kernel mode.

    Under numba the first replay call pays LLVM compilation; sweep
    drivers call this once up front so per-point timings are steady.
    Repeat calls are no-ops (``tests/sched/test_native.py`` pins that no
    rebuild happens).
    """
    global _WARMED
    mode = nt.get_kernels()["mode"]
    if not _WARMED:
        evaluate_point("pip-mcoll", "scatter", 2, 2, 64,
                       warmup=0, measure=1)
        _WARMED = True
    return mode

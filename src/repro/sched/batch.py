"""Batched sweep engine: one vectorized pass over the message-size axis.

The paper's figures sweep message size at fixed (library, collective,
topology, ppn): dozens of points that share one schedule *structure* and
differ only in the byte counts fed to the hardware cost closures.  The
scalar DAG engine (:mod:`repro.sched.fastpath`) already removed the
coroutine machinery, but still pays Python event dispatch once per
(event, size).  This module pays it once per event:

1. **Group** the size axis by structural signature
   (:func:`schedule_signature`): the planner is consulted per size (the
   planners are ``lru_cache``'d, so this is a dict lookup in the steady
   state), and sizes whose schedules have identical step structure — same
   opcodes, sends, tags, handles; only counts/offsets differing — form a
   partition.  Algorithm-selection thresholds (the 64 kB PiP-MColl
   switches, MPICH's 80 kB-total ring switch, power-of-two dispatch) fall
   out of this automatically: different algorithms have different
   signatures.
2. **Lower once per partition** (:func:`_compile_column`): the opcode
   program is built from the pivot size's schedule with every byte
   count/offset *gathered* across the partition — a plain int where all
   sizes agree, an ``(S,)`` integer vector where they differ.  Lowered
   columns are cached process-wide (see :func:`lowering_cache_info`).
3. **Replay once** on a :class:`~repro.sim.batchline.BatchTimeline`: the
   same continuation machine as the scalar DAG engine, but every time is
   an ``(S,)`` array flowing through vectorized twins of the shared cost
   closures (:class:`~repro.hw.nic.BatchNic`,
   :class:`~repro.hw.memory.BatchMemory`) that replicate the scalar
   arithmetic operation-for-operation.
4. **Verify, then fall back where needed.**  Size-dependent *branches*
   (internode eager/rendezvous at ``eager_threshold``, hybrid intranode
   mechanism picks, cold-fault zero-size short-circuits) are pre-split
   statically where possible: :func:`_static_split_labels` walks the
   lowered program symbolically, evaluates every threshold predicate over
   the partition's byte counts, and splits the partition into uniform
   classes *before* running (cached per structure key).  Predicates the
   static walk cannot see raise
   :class:`~repro.sim.batchline.BatchDivergence` at run time with the
   offending mask, and the partition splits there as a backstop.
   Size-dependent *orderings* (a contended FIFO serviced in a different
   order at some size) are caught after the run by the timeline's
   conflict-equivalence check
   (:meth:`~repro.sim.batchline.BatchTimeline.order_divergence`): every
   dispatch records the resources it touches, and a size is divergent iff
   some resource's access order under the pivot differs from that size's
   own scalar order.  Divergent sizes are *re-adjudicated by partition*:
   the timeline's inversion matrix clusters them by divergence signature
   (:meth:`~repro.sim.batchline.BatchTimeline.divergence_labels` — which
   conflict pairs inverted), and each cluster is re-batched as its own
   sub-partition under its own pivot, recursively up to
   :data:`_REBATCH_DEPTH` levels.  Sizes that inverted the same pairs
   the same way overwhelmingly agree with *each other*, so contention-
   bound columns converge in a handful of vectorized passes instead of
   bailing to per-size DAG evaluation.  Only singleton clusters, clusters
   that stopped shrinking, and depth-bound exhaustion fall back to the
   scalar DAG engine, as do single-size partitions, where batching buys
   nothing.

The contract is the DAG engine's, inherited transitively: for every size,
``evaluate_column``'s samples and message counts are **bit-identical** to
``run_point(engine="dag")`` (``tests/sched/test_batch.py`` pins this
across the registry grid, threshold-straddling axes, and randomized
shapes).  The order-invariance argument lives in
:mod:`repro.sim.batchline` and DESIGN.md section 2.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.hw.memory import BatchMemory
from repro.hw.nic import BatchFabric, BatchNic
from repro.hw.params import MachineParams, bebop_broadwell
from repro.mpi.transport import RTS_HEADER_BYTES
from repro.sched.fastpath import (
    _OP_ADD,
    _OP_ALLOC,
    _OP_COMPUTE,
    _OP_COPY,
    _OP_CWAIT,
    _OP_LOOKUP,
    _OP_PHASE,
    _OP_POST,
    _OP_RECV,
    _OP_REDUCE,
    _OP_SEND_INTER,
    _OP_SEND_INTRA,
    _OP_WAIT,
    _Compiled,
    _Counter,
    _DISPLAY_NAMES,
    _has_markers,
    _key_builder,
    _Msg,
    _Req,
    FastpathResult,
    fastpath_supported,
)
from repro.sched.fastpath import evaluate_point as _dag_evaluate_point
from repro.sched.ir import (
    AllocStep,
    ComputeStep,
    CopyStep,
    IntraOpStep,
    PhaseStep,
    RankProgram,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    WaitStep,
    resolve_key,
)
from repro.sched.registry import plan_for
from repro.shmem.base import MsgInfo
from repro.sim.batchline import BatchDivergence, BatchEvent, BatchTimeline
from repro.sim.engine import DeadlockError

__all__ = [
    "batch_supported",
    "evaluate_column",
    "ColumnResult",
    "ColumnStats",
    "schedule_signature",
    "lowering_cache_info",
    "clear_lowering_cache",
    "BatchWorld",
]

#: the batch engine covers exactly the DAG engine's surface — it *is* the
#: DAG engine with the size axis vectorized, and falls back to it per size
batch_supported = fastpath_supported


#: re-adjudication recursion bound: a divergent signature cluster may be
#: re-batched under its own pivot at most this many levels deep before
#: its sizes drop to the scalar DAG engine
_REBATCH_DEPTH = 4


class ColumnStats(NamedTuple):
    """How one column was evaluated (diagnostics and test hooks)."""

    #: size tuples evaluated in one vectorized pass each
    partitions: Tuple[Tuple[int, ...], ...]
    #: sizes flagged order-divergent and re-evaluated on the DAG engine
    fallback_sizes: Tuple[int, ...]
    #: single-size partitions, routed straight to the DAG engine
    singleton_sizes: Tuple[int, ...]
    #: runtime partition splits taken at size-dependent branches
    splits: int
    #: order-divergent signature clusters re-batched under their own pivot
    retries: int
    #: deepest re-adjudication level reached (0 = no re-batching)
    rebatch_depth: int = 0
    #: passes skipped via the adjudication-outcome cache (the pass was
    #: known to accept at most its pivot, so its sizes went straight to
    #: the DAG engine — results are bit-identical either way)
    elided_passes: int = 0
    #: which kernel tier ran the vector passes ("" for the pure-Python
    #: batchline; "jit"/"interp" when engine="native-batch" evaluated
    #: the column)
    kernel_mode: str = ""
    #: vector passes the native kernel refused (capacity or unsupported
    #: shape) and handed back to the pure-Python batchline
    native_bailouts: int = 0


class ColumnResult(NamedTuple):
    """Output of :func:`evaluate_column`."""

    #: per-size timing results (every one bit-identical to the DAG engine)
    results: Dict[int, FastpathResult]
    stats: ColumnStats


# ---------------------------------------------------------------------------
# structural signatures: which sizes share one lowered program
# ---------------------------------------------------------------------------


def _ref_sig(ref) -> tuple:
    # offsets/counts are data (gathered at lowering); name and the
    # whole-buffer marker are structure
    return (ref.name, ref.count is None)


def _program_signature(program: RankProgram) -> tuple:
    sig: list = []
    append = sig.append
    for step in program.steps:
        cls = step.__class__
        if cls is SendStep:
            append(("s", step.dst, step.handle, step.tag,
                    _ref_sig(step.buf)))
        elif cls is RecvStep:
            append(("r", step.src, step.handle, step.tag))
        elif cls is WaitStep:
            append(("w", step.handles))
        elif cls is CopyStep:
            append(("c", _ref_sig(step.src), step.dst.name))
        elif cls is ReduceStep:
            append(("d", _ref_sig(step.src), step.dst.name))
        elif cls is IntraOpStep:
            append(("i", step.op, step.key, step.bind, step.n,
                    None if step.value is None else _ref_sig(step.value)))
        elif cls is AllocStep:
            append(("a", step.name, step.dtype_of))
        elif cls is PhaseStep:
            append(("p", step.name))
        elif cls is ComputeStep:
            append(("x",))
        else:  # pragma: no cover - the IR is closed
            raise TypeError(f"unknown step {step!r}")
    return (tuple(sig), program.num_handles)


def schedule_signature(schedule: Schedule) -> tuple:
    """The schedule's structure with all counts/offsets erased.

    Two schedules with equal signatures run the *same* opcode program —
    same step classes, peers, tags, handle slots, buffer names — and
    differ only in numeric operands, so their sizes can share one lowered
    column.  Cached on the schedule object (planner schedules are
    ``lru_cache``'d singletons), like the DAG engine's lowering cache.
    """
    sig = getattr(schedule, "_batch_signature", None)
    if sig is None:
        sig = (schedule.num_namespaces,
               tuple(_program_signature(p) for p in schedule.programs))
        # intern: equal signatures become one object, so grouping can key
        # on identity instead of re-hashing a large nested tuple per size
        sig = _SIG_INTERN.setdefault(sig, sig)
        object.__setattr__(schedule, "_batch_signature", sig)
    return sig


_SIG_INTERN: Dict[tuple, tuple] = {}


# ---------------------------------------------------------------------------
# column lowering: one opcode program, counts gathered across the axis
# ---------------------------------------------------------------------------


def _gather_i(values: List[int]):
    """A plain int where all sizes agree, else an int64 ``(S,)`` vector."""
    first = values[0]
    for v in values:
        if v != first:
            return np.array(values, dtype=np.int64)
    return first


def _gather_f(values: List[float]):
    first = values[0]
    for v in values:
        if v != first:
            return np.array(values, dtype=np.float64)
    return first


def _compile_column(progs: Sequence[RankProgram], index: int,
                    ppn: int) -> _Compiled:
    """Lower one participant's program across the partition.

    ``progs[k]`` is the participant's program at the partition's ``k``-th
    size; all share one signature.  The emitted opcode tuples use the DAG
    engine's layout (:mod:`repro.sched.fastpath`) with every count/offset
    field gathered via :func:`_gather_i`.
    """
    node = index // ppn
    ops: list = []
    slots: Dict = {}
    const_tags: list = []
    dyn_tags: list = []

    def key_slot(key) -> int:
        slot = slots.get(key)
        if slot is None:
            slot = slots[key] = len(const_tags)
            if _has_markers(key):
                const_tags.append(None)
                dyn_tags.append((slot, _key_builder(key)))
            else:
                const_tags.append(resolve_key(key, (), {}))
        return slot

    for col in zip(*(p.steps for p in progs)):
        step = col[0]
        cls = step.__class__
        if cls is SendStep:
            off = _gather_i([s.buf.offset for s in col])
            cnt = (None if step.buf.count is None
                   else _gather_i([s.buf.count for s in col]))
            if step.dst // ppn == node:
                ops.append((
                    _OP_SEND_INTRA, step.dst, step.buf.name, off, cnt,
                    key_slot(step.tag), step.handle,
                ))
            else:
                ops.append((
                    _OP_SEND_INTER, step.dst, step.dst // ppn,
                    step.buf.name, off, cnt, key_slot(step.tag),
                    step.handle,
                ))
        elif cls is RecvStep:
            ops.append((
                _OP_RECV, step.src, key_slot(step.tag), step.handle,
            ))
        elif cls is WaitStep:
            if step.handles:
                ops.append((_OP_WAIT, step.handles, len(step.handles)))
        elif cls is CopyStep:
            off = _gather_i([s.src.offset for s in col])
            cnt = (None if step.src.count is None
                   else _gather_i([s.src.count for s in col]))
            ops.append((_OP_COPY, step.src.name, off, cnt))
        elif cls is ReduceStep:
            off = _gather_i([s.src.offset for s in col])
            cnt = (None if step.src.count is None
                   else _gather_i([s.src.count for s in col]))
            ops.append((_OP_REDUCE, step.src.name, off, cnt))
        elif cls is IntraOpStep:
            kind = step.op
            if kind == "post":
                off = _gather_i([s.value.offset for s in col])
                cnt = (None if step.value.count is None
                       else _gather_i([s.value.count for s in col]))
                ops.append((
                    _OP_POST, key_slot(step.key), step.value.name, off, cnt,
                ))
            elif kind == "lookup":
                ops.append((_OP_LOOKUP, key_slot(step.key), step.bind))
            elif kind == "add":
                ops.append((_OP_ADD, key_slot(step.key), step.n))
            elif kind == "wait":
                ops.append((_OP_CWAIT, key_slot(step.key), step.n))
            else:  # pragma: no cover - planners only emit the four ops
                raise ValueError(f"unknown intra op {kind!r}")
        elif cls is AllocStep:
            ops.append((
                _OP_ALLOC, step.name, _gather_i([s.count for s in col]),
            ))
        elif cls is PhaseStep:
            ops.append((_OP_PHASE, step.name))
        elif cls is ComputeStep:
            ops.append((
                _OP_COMPUTE, _gather_f([s.seconds for s in col]),
            ))
        else:  # pragma: no cover - the IR is closed
            raise TypeError(f"unknown step {step!r}")
    return _Compiled(
        tuple(ops), tuple(const_tags), tuple(dyn_tags),
        progs[0].num_handles,
    )


class _LoweredColumn(NamedTuple):
    compiled: Tuple[_Compiled, ...]
    #: per-participant base env: name -> (buffer_id, gathered count)
    envs: Tuple[dict, ...]
    #: highest baked binding-buffer id (AllocStep ids continue from here)
    nbufs: int
    num_namespaces: int
    flat: bool


class CacheInfo(NamedTuple):
    """``functools.CacheInfo``-compatible counters for the lowering cache."""

    hits: int
    misses: int
    maxsize: Optional[int]
    currsize: int


_LOWER_CACHE: Dict[tuple, _LoweredColumn] = {}
#: static-split labels per (lowering key, thresholds) — pure function of
#: the lowered counts, cached so repeated sweeps skip the symbolic walk
_SPLIT_CACHE: Dict[tuple, Optional[np.ndarray]] = {}
#: adjudication outcomes per (lowering key, protocol, params): passes are
#: deterministic, so the divergence mask and signature labels of a
#: partition never change between runs.  A pass known to accept at most
#: its pivot is skipped on later evaluations and its sizes routed to the
#: DAG engine directly — the same steady state a repeated figure sweep
#: runs in, with bit-identical results either way.
_OUTCOME_CACHE: Dict[tuple, tuple] = {}
_lower_hits = 0
_lower_misses = 0


def lowering_cache_info() -> CacheInfo:
    """Counters of the process-wide lowered-column cache.

    Surfaced through :func:`repro.sched.registry.planner_cache_info` as
    ``"batch_lowering"``; a repeated grouped sweep must be pure hits
    (``tests/bench/test_runner.py`` pins this).
    """
    return CacheInfo(_lower_hits, _lower_misses, None, len(_LOWER_CACHE))


def clear_lowering_cache() -> None:
    """Drop lowered columns and reset the counters (test isolation)."""
    global _lower_hits, _lower_misses
    _LOWER_CACHE.clear()
    _SPLIT_CACHE.clear()
    _OUTCOME_CACHE.clear()
    _lower_hits = 0
    _lower_misses = 0


def _lower_column(canon: str, collective: str, nodes: int, ppn: int,
                  sizes: Tuple[int, ...], thresholds) -> _LoweredColumn:
    global _lower_hits, _lower_misses
    key = (canon, collective, nodes, ppn, thresholds, sizes)
    hit = _LOWER_CACHE.get(key)
    if hit is not None:
        _lower_hits += 1
        return hit
    _lower_misses += 1
    plans = [
        plan_for(canon, collective, nodes, ppn, s, thresholds=thresholds)
        for s in sizes
    ]
    schedules = [pl.schedule for pl in plans]
    nranks = len(schedules[0].programs)
    compiled = tuple(
        _compile_column([sch.programs[i] for sch in schedules], i, ppn)
        for i in range(nranks)
    )
    # binding buffers bake their ids at lowering time, in the same order
    # fastpath._prepare hands out world.new_buf_id(); AllocStep ids start
    # above them, so warm-state keys line up with the scalar engines
    nbuf = 0
    envs = []
    for i in range(nranks):
        env = {}
        for name in plans[0].bindings[i]:
            nbuf += 1
            env[name] = (
                nbuf, _gather_i([pl.bindings[i][name] for pl in plans]),
            )
        envs.append(env)
    lowered = _LoweredColumn(
        compiled, tuple(envs), nbuf, schedules[0].num_namespaces,
        bool(plans[0].symbols),
    )
    _LOWER_CACHE[key] = lowered
    return lowered


def _static_cnt(env: dict, name, off, cnt):
    """Best-effort byte count of one op: int, ``(S,)`` vector, or None."""
    if cnt is not None:
        return cnt
    base = env.get(name)
    if base is None:
        return None  # bound by a board lookup: unknown until runtime
    return base[1] - off


def _static_split_labels(lowered: _LoweredColumn, params: MachineParams,
                         mech, nsizes: int):
    """Class labels from statically-known size-dependent branches.

    Walks the lowered ops symbolically, evaluating every predicate the
    runtime will branch on — internode eager/rendezvous at
    ``eager_threshold``, hybrid mechanism picks, ``nbytes > 0``
    short-circuits — against the gathered count vectors.  Sizes whose
    predicate outcomes all agree form one class; splitting the partition
    by label *before* the run avoids starting a vectorized pass that a
    :class:`BatchDivergence` would abort halfway.  Counts bound at
    runtime (board lookups) stay invisible here; the runtime checks
    remain as the safety net.  Returns None when no split is needed.
    """
    masks: List[np.ndarray] = []
    seen = set()

    def consider(mask: np.ndarray) -> None:
        if mask[0]:
            if mask.all():
                return
        elif not mask.any():
            return
        key = mask.tobytes()
        if key not in seen:
            seen.add(key)
            masks.append(mask)

    eager = params.eager_threshold
    thr = getattr(mech, "threshold", None)
    for comp, env0 in zip(lowered.compiled, lowered.envs):
        env = dict(env0)
        for op in comp.ops:
            code = op[0]
            if code == _OP_SEND_INTRA:
                cnt = _static_cnt(env, op[2], op[3], op[4])
                if isinstance(cnt, np.ndarray):
                    if thr is not None:
                        consider(cnt < thr)
                    consider(cnt > 0)
            elif code == _OP_SEND_INTER:
                cnt = _static_cnt(env, op[3], op[4], op[5])
                if isinstance(cnt, np.ndarray):
                    consider(cnt <= eager)
                    consider(cnt > 0)
            elif code == _OP_COPY or code == _OP_REDUCE:
                cnt = _static_cnt(env, op[1], op[2], op[3])
                if isinstance(cnt, np.ndarray):
                    consider(cnt > 0)
            elif code == _OP_ALLOC:
                env[op[1]] = (0, op[2])
            elif code == _OP_LOOKUP:
                if op[2] is not None:
                    env.pop(op[2], None)  # runtime-bound: unknown
    if not masks:
        return None
    labels = np.zeros(nsizes, dtype=np.int64)
    for mask in masks:
        labels <<= 1
        labels |= mask
    return labels if len(np.unique(labels)) > 1 else None


# ---------------------------------------------------------------------------
# runtime: the vectorized world and continuation machine
# ---------------------------------------------------------------------------


class _BatchShim:
    """Duck-typed ``engine`` for :class:`BatchMemory`: vector ``.now``
    plus the timeline's conflict recorder."""

    __slots__ = ("_tl", "touch", "touch_ok")

    def __init__(self, tl: BatchTimeline):
        self._tl = tl
        self.touch = tl.touch
        self.touch_ok = tl.touch_ok

    @property
    def now(self) -> np.ndarray:
        return self._tl.now


def _counter_crossing(ctr, threshold: int) -> np.ndarray:
    """Exact per-size time at which a shared counter reaches ``threshold``.

    ``ctr.adds`` is the counter's ordered add log, ``(fire-time vector,
    n)`` per add.  At each size the adds land in that size's own time
    order, so the crossing is an order statistic: sort the add times per
    size, accumulate the counts, and take the time of the first add at
    which the running sum reaches the threshold.  Equal-time adds
    contribute a sum that is order-independent, so any stable order among
    them yields the same crossing.  Callers guarantee the logged counts
    already sum to ``threshold`` or more.

    When the log is elementwise non-decreasing (``ctr.sorted_ok``, the
    overwhelmingly common case: arrivals land in the same order at every
    size), the stable sort is the identity at every size and the crossing
    is simply the time of the first prefix-sum hit — no per-size sort.
    """
    adds = ctr.adds
    if len(adds) == 1:
        return adds[0][0]
    if ctr.sorted_ok:
        total = 0
        for t, n in adds:
            total += n
            if total >= threshold:
                return t
    times = np.stack([t for t, _ in adds])
    ns = np.array([n for _, n in adds], dtype=np.int64)
    order = np.argsort(times, axis=0, kind="stable")
    cum = np.cumsum(ns[order], axis=0)
    first = np.argmax(cum >= threshold, axis=0)
    cols = np.arange(times.shape[1])
    return times[order[first, cols], cols]


def _uniform_bool(mask) -> bool:
    """Collapse a size-axis predicate to one bool, or split.

    ``mask`` is either a plain bool (count uniform across the partition)
    or a boolean ``(S,)`` array; a mixed array raises
    :class:`BatchDivergence` so the caller's partition splits there.
    """
    if isinstance(mask, np.ndarray):
        if mask[0]:
            if mask.all():
                return True
        elif not mask.any():
            return False
        raise BatchDivergence(mask)
    return mask


class BatchWorld:
    """Hardware + matching state for one partition's vectorized pass.

    The width-``S`` twin of :class:`~repro.sched.fastpath.FastWorld`:
    identical matching/board/counter logic (none of it touches times),
    with the per-node NICs and memories replaced by their vector mirrors.
    Warm state (page faults, XPMEM expose/attach) is keyed by structural
    ids only, and every mutation happens on the single shared execution
    path, so it evolves exactly as in each size's own scalar run.
    """

    def __init__(self, params: MachineParams, nodes: int, ppn: int,
                 mechanism, software_overhead: float, width: int,
                 buf_seq_start: int):
        params.validate()
        self.params = params
        self.nodes = nodes
        self.ppn = ppn
        self.size = nodes * ppn
        self.width = width
        self.mechanism = mechanism
        self.software_overhead = software_overhead
        self.send_overhead = params.send_overhead
        self.recv_overhead = params.recv_overhead
        self.wire_latency = params.wire_latency
        self.eager_threshold = params.eager_threshold
        self.pip_post_time = params.pip_post_time
        self.pip_flag_time = params.pip_flag_time
        self.tl = BatchTimeline(width)
        shim = _BatchShim(self.tl)
        self.fabric = (
            BatchFabric(width) if params.fabric_bandwidth else None
        )
        self.nics = [
            BatchNic(params, node, ppn, width, self.tl, fabric=self.fabric)
            for node in range(nodes)
        ]
        self.mems = [
            BatchMemory(shim, params, node, width) for node in range(nodes)
        ]
        self.info = MsgInfo(
            src_rank=0, dst_rank=0, nbytes=0, src_buffer_id=0
        )
        self.boards: List[Dict] = [{} for _ in range(nodes)]
        self.counters: List[Dict] = [{} for _ in range(nodes)]
        self.arrived: List[Dict] = [{} for _ in range(self.size)]
        self.posted: List[Dict] = [{} for _ in range(self.size)]
        self._op_seq = 0
        self._group_seqs: Dict = {}
        self._buf_seq = buf_seq_start
        self.end_times: List[np.ndarray] = []
        self._live = 0
        self._tasks: Optional[List["_BatchTask"]] = None
        #: (counter, threshold, reach, resume-used) per counter-wait
        #: resume, validated post hoc against the full add log
        self._ct_checks: List[tuple] = []
        #: a board key was posted twice: values are order-ambiguous, so
        #: every size must fall back (never happens for planner schedules)
        self._board_conflict = False

    def next_group_tag(self, tag_key) -> tuple:
        seq = self._group_seqs.get(tag_key, 0) + 1
        self._group_seqs[tag_key] = seq
        return (tag_key, seq)

    def internode_messages(self) -> int:
        return sum(nic.messages_sent for nic in self.nics)

    # -- transport matching (same pairing as FastWorld; resume times are
    # -- exact per size via the max-resume overrides) ---------------------

    def _deliver(self, msg: _Msg) -> None:
        tl = self.tl
        key = (msg.src, msg.tag)
        # a deliver/post inversion is harmless when the pairing cannot
        # change (singleton queue) and the cost path does not consult the
        # posted/unexpected outcome: intranode receives cost the same
        # either way, and internode rendezvous only uses the RTS arrival
        # time, which the max-resume override reproduces exactly.  Eager
        # internode messages pay a bounce-buffer copy only when
        # unexpected, so their match order stays strict.
        cls_ok = msg.intranode or msg.rendezvous
        rank_posted = self.posted[msg.dst]
        queue = rank_posted.get(key)
        if queue:
            tl.touch_ok(("q", msg.dst, key), cls_ok and len(queue) == 1)
            req = queue.popleft()
            if not queue:
                del rank_posted[key]
            waiter = req.waiter
            if waiter is not None:
                req.waiter = None
                tl._ready.append(
                    (waiter, msg, np.maximum(tl.now, req.wt))
                )
            else:
                req.done = True
                req.value = msg
                req.t = tl.now
        else:
            msg.unexpected = True
            msg.t = tl.now
            rank_arrived = self.arrived[msg.dst]
            queue = rank_arrived.get(key)
            if queue is None:
                queue = rank_arrived[key] = deque()
            queue.append(msg)
            tl.touch_ok(("q", msg.dst, key), cls_ok and len(queue) == 1)

    def _complete_send(self, req: _Req) -> None:
        tl = self.tl
        waiter = req.waiter
        if waiter is not None:
            req.waiter = None
            tl._ready.append((waiter, None, np.maximum(tl.now, req.wt)))
        else:
            req.done = True
            req.t = tl.now

    def order_divergence(self) -> np.ndarray:
        """Per-size divergence over resource orders *and* counter checks.

        The timeline's conflict-equivalence mask, widened by the counter
        crossing validation: each counter-wait resume used the exact
        crossing computed from the adds seen at trigger time, and an add
        processed later (in pivot order) firing earlier at some size
        would make that size's true crossing earlier — re-checked here
        against the full add log.  Double-posted board keys flag every
        size (conservative; planner schedules post once).
        """
        if self._board_conflict:
            return np.ones(self.width, dtype=bool)
        divergent = self.tl.order_divergence()
        if self._ct_checks:
            divergent = divergent.copy()
            for ctr, threshold, reach, used in self._ct_checks:
                truth = np.maximum(
                    reach, _counter_crossing(ctr, threshold)
                )
                divergent |= used != truth
        return divergent

    # -- execution --------------------------------------------------------

    def run_schedule(self, compiled: Tuple[_Compiled, ...], envs,
                     symbols: dict, num_namespaces: int) -> np.ndarray:
        """One iteration over the whole partition; returns elapsed ``(S,)``."""
        tl = self.tl
        tl.new_epoch()
        start = tl.now
        k = num_namespaces
        ns_values = tuple(range(self._op_seq + 1, self._op_seq + 1 + k))
        self._op_seq += k
        tasks = self._tasks
        if tasks is None:
            tasks = [
                _BatchTask(self, i, compiled[i])
                for i in range(len(compiled))
            ]
            self._tasks = tasks
        n = len(tasks)
        self.end_times = [start] * n
        self._live = n
        body_start = start + self.software_overhead
        for i in range(n):
            task = tasks[i]
            task.reset(envs[i], ns_values, symbols)
            tl.call(body_start, task._run, None)
        tl.run()
        if self._live:
            raise DeadlockError(
                f"{self._live} schedule program(s) blocked — batch "
                f"evaluation deadlocked"
            )
        end = self.end_times[0]
        for v in self.end_times[1:]:
            end = np.maximum(end, v)
        return end - start


class _BatchTask:
    """One participant's lowered program over the vector clock.

    A line-for-line mirror of :class:`repro.sched.fastpath._Task`: every
    suspension point schedules exactly one timeline callback in the same
    relative order, so the pivot size's ``(time, seq)`` tie-breaks resolve
    identically to the scalar DAG engine, and every other size inherits
    that order subject to the end-of-run divergence check.  The only new
    logic is :func:`_uniform_bool` at the two size-dependent protocol
    branches.
    """

    __slots__ = (
        "w", "tl", "index", "rank", "node", "lr", "ops", "nops", "pc",
        "env", "handles", "num_handles", "tags", "dyn_tags", "track_mb",
        "mem", "nic", "mech", "board", "ctrs", "arr", "post_q",
        "wait_handles", "wait_len", "wait_idx",
        "_p_dst", "_p_node", "_p_bid", "_p_cnt", "_p_tag", "_p_req",
        "_p_key", "_p_val", "_p_bind",
        "_c_next_wait", "_c_recv_work", "_c_recv_done", "_c_send_inter",
        "_c_send_intra", "_c_post", "_c_lookup", "_c_lookup_bind",
        "_c_add", "_c_cwait",
    )

    def __init__(self, w: BatchWorld, index: int, compiled: _Compiled):
        self.w = w
        self.tl = w.tl
        self.index = index
        self.rank = index
        self.node, self.lr = divmod(index, w.ppn)
        self.ops = compiled.ops
        self.nops = len(compiled.ops)
        self.pc = 0
        self.env: dict = {}
        self.num_handles = compiled.num_handles
        self.handles: list = []
        self.dyn_tags = compiled.dyn_tags
        self.tags = (
            list(compiled.const_tags) if compiled.dyn_tags
            else compiled.const_tags
        )
        self.mem = w.mems[self.node]
        self.nic = w.nics[self.node]
        self.mech = w.mechanism
        # buffer-identity conflicts only exist for mechanisms with warm
        # state (page-fault regions, expose/attach caches)
        self.track_mb = getattr(w.mechanism, "warm_state", True)
        self.board = w.boards[self.node]
        self.ctrs = w.counters[self.node]
        self.arr = w.arrived[index]
        self.post_q = w.posted[index]
        self.wait_handles: tuple = ()
        self.wait_len = 0
        self.wait_idx = 0
        self._p_dst = self._p_node = self._p_bid = self._p_cnt = 0
        self._p_tag = self._p_req = self._p_key = self._p_val = None
        self._p_bind = None
        self._c_next_wait = self._next_wait
        self._c_recv_work = self._recv_work
        self._c_recv_done = self._recv_done
        self._c_send_inter = self._send_inter
        self._c_send_intra = self._send_intra
        self._c_post = self._post
        self._c_lookup = self._lookup
        self._c_lookup_bind = self._lookup_bind
        self._c_add = self._add
        self._c_cwait = self._cwait

    def reset(self, env_base: dict, ns_values: tuple, symbols: dict) -> None:
        self.pc = 0
        self.env = dict(env_base)
        self.handles = [None] * self.num_handles
        dyn = self.dyn_tags
        if dyn:
            tags = self.tags
            for slot, builder in dyn:
                tags[slot] = builder(ns_values, symbols)

    # -- the interpreter ---------------------------------------------------

    def _run(self, _value=None) -> None:
        w = self.w
        tl = self.tl
        now = tl.now
        ops = self.ops
        n = self.nops
        env = self.env
        tags = self.tags
        pc = self.pc
        while pc < n:
            op = ops[pc]
            pc += 1
            code = op[0]
            if code == _OP_LOOKUP:
                self.pc = pc
                self._p_bind = op[2]
                board = self.board
                key = tags[op[1]]
                ev = board.get(key)
                if ev is None:
                    ev = board[key] = BatchEvent(tl)
                if ev.triggered:
                    tl._ready.append((
                        self._c_lookup, ev.value,
                        np.maximum(now, ev.t),
                    ))
                else:
                    ev._waiters.append((self._c_lookup, now))
                return
            if code == _OP_SEND_INTRA:
                _, dst, name, off, cnt, slot, handle = op
                base = env[name]
                if cnt is None:
                    cnt = base[1] - off
                req = _Req("send")
                self.handles[handle] = req
                self.pc = pc
                self._p_dst = dst
                self._p_bid = base[0]
                self._p_cnt = cnt
                self._p_tag = tags[slot]
                self._p_req = req
                info = w.info
                info.src_rank = self.rank
                info.dst_rank = dst
                info.nbytes = cnt
                info.src_buffer_id = base[0]
                if self.track_mb:
                    tl.touch(("mb", base[0]))
                d = self.mech.sender_occupy(self.mem, info)
                tl.call(now + d, self._c_send_intra, None)
                return
            if code == _OP_SEND_INTER:
                _, dst, dst_node, name, off, cnt, slot, handle = op
                base = env[name]
                if cnt is None:
                    cnt = base[1] - off
                req = _Req("send")
                self.handles[handle] = req
                self.pc = pc
                self._p_dst = dst
                self._p_node = dst_node
                self._p_bid = base[0]
                self._p_cnt = cnt
                self._p_tag = tags[slot]
                self._p_req = req
                tl.call(now + w.send_overhead, self._c_send_inter, None)
                return
            if code == _OP_RECV:
                _, src, slot, handle = op
                req = _Req("recv")
                self.handles[handle] = req
                key = (src, tags[slot])
                arrived = self.arr
                queue = arrived.get(key)
                if queue:
                    # the message-class side of the commutation condition
                    # lives on the deliver access of the same pair
                    tl.touch_ok(("q", self.rank, key), len(queue) == 1)
                    msg = queue.popleft()
                    if not queue:
                        del arrived[key]
                    req.done = True
                    req.value = msg
                    req.t = msg.t
                else:
                    posted = self.post_q
                    queue = posted.get(key)
                    if queue is None:
                        queue = posted[key] = deque()
                    queue.append(req)
                    tl.touch_ok(("q", self.rank, key), len(queue) == 1)
            elif code == _OP_WAIT:
                self.pc = pc
                self.wait_handles = op[1]
                self.wait_len = op[2]
                self.wait_idx = 0
                req = self.handles[op[1][0]]
                fn = (self._c_next_wait if req.kind == "send"
                      else self._c_recv_work)
                if req.done:
                    tl._ready.append(
                        (fn, req.value, np.maximum(now, req.t))
                    )
                else:
                    req.waiter = fn
                    req.wt = now
                return
            elif code == _OP_COPY:
                _, name, off, cnt = op
                if cnt is None:
                    cnt = env[name][1] - off
                self.pc = pc
                d = self.mem.copy_occupy(now, cnt, 0.0)
                tl.call(now + d, self._run, None)
                return
            elif code == _OP_REDUCE:
                _, name, off, cnt = op
                if cnt is None:
                    cnt = env[name][1] - off
                self.pc = pc
                d = self.mem.reduce_occupy(now, cnt, 0.0)
                tl.call(now + d, self._run, None)
                return
            elif code == _OP_POST:
                _, slot, name, off, cnt = op
                base = env[name]
                if cnt is None:
                    cnt = base[1] - off
                self.pc = pc
                self._p_key = tags[slot]
                self._p_val = (base[0], cnt)
                tl.call(now + w.pip_post_time, self._c_post, None)
                return
            elif code == _OP_ADD:
                self.pc = pc
                self._p_key = tags[op[1]]
                self._p_val = op[2]
                tl.call(now + w.pip_flag_time, self._c_add, None)
                return
            elif code == _OP_CWAIT:
                _, slot, threshold = op
                self.pc = pc
                ctrs = self.ctrs
                key = tags[slot]
                c = ctrs.get(key)
                if c is None:
                    c = ctrs[key] = _Counter()
                if c.value >= threshold:
                    # already crossed at the pivot; each size resumes at
                    # its own exact crossing (or its wait arrival, if
                    # later), validated against late adds post hoc
                    used = np.maximum(
                        now, _counter_crossing(c, threshold)
                    )
                    w._ct_checks.append((c, threshold, now, used))
                    tl.call(used + w.pip_flag_time, self._run, None)
                else:
                    ev = BatchEvent(tl)
                    c.waiters.append((threshold, ev))
                    ev._waiters.append((self._c_cwait, now))
                return
            elif code == _OP_ALLOC:
                # the id sequence is deliberately not a conflict resource:
                # an alloc-order inversion renames ids bijectively, and
                # ids are opaque warm-state keys (see batchline docstring)
                w._buf_seq = bid = w._buf_seq + 1
                env[op[1]] = (bid, op[2])
            elif code == _OP_PHASE:
                pass
            else:  # _OP_COMPUTE
                self.pc = pc
                tl.call(now + op[1], self._run, None)
                return
        # program finished
        w.end_times[self.index] = now
        w._live -= 1

    # -- send continuations ------------------------------------------------

    def _send_inter(self, _value=None) -> None:
        w = self.w
        tl = self.tl
        dst = self._p_dst
        cnt = self._p_cnt
        req = self._p_req
        dst_nic = w.nics[self._p_node]
        if _uniform_bool(cnt <= w.eager_threshold):
            inject_done, arrival = self.nic.transfer(
                tl.now, self.lr, dst_nic, cnt
            )
            msg = _Msg(self.rank, dst, self._p_tag, cnt, self._p_bid,
                       False, False, self.lr, None)
            tl.call(arrival, w._deliver, msg)
            tl.call(inject_done, w._complete_send, req)
        else:
            _, rts_arrival = self.nic.transfer(
                tl.now, self.lr, dst_nic, RTS_HEADER_BYTES
            )
            msg = _Msg(self.rank, dst, self._p_tag, cnt, self._p_bid,
                       False, True, self.lr, req)
            tl.call(rts_arrival, w._deliver, msg)
        self._run()

    def _send_intra(self, _value=None) -> None:
        w = self.w
        cnt = self._p_cnt
        req = self._p_req
        if self.mech.eager_for(cnt):
            msg = _Msg(self.rank, self._p_dst, self._p_tag, cnt,
                       self._p_bid, True, False, self.lr, None)
            w._deliver(msg)
            w._complete_send(req)
        else:
            msg = _Msg(self.rank, self._p_dst, self._p_tag, cnt,
                       self._p_bid, True, False, self.lr, req)
            w._deliver(msg)
        self._run()

    # -- wait/receive continuations ----------------------------------------

    def _next_wait(self, _value=None) -> None:
        i = self.wait_idx + 1
        if i < self.wait_len:
            self.wait_idx = i
            tl = self.tl
            req = self.handles[self.wait_handles[i]]
            fn = (self._c_next_wait if req.kind == "send"
                  else self._c_recv_work)
            if req.done:
                tl._ready.append(
                    (fn, req.value, np.maximum(tl.now, req.t))
                )
            else:
                req.waiter = fn
                req.wt = tl.now
        else:
            self._run()

    def _recv_work(self, msg: _Msg) -> None:
        w = self.w
        tl = self.tl
        now = tl.now
        if msg.intranode:
            mech = self.mech
            mem = self.mem
            info = w.info
            info.src_rank = msg.src
            info.dst_rank = self.rank
            info.nbytes = msg.nbytes
            info.src_buffer_id = msg.src_buffer_id
            if self.track_mb:
                tl.touch(("mb", msg.src_buffer_id))
            fixed = mech.match_fixed(mem, info)
            d = mem.copy_occupy(
                now, mech.receiver_copy_bytes(msg.nbytes), fixed
            )
        elif msg.rendezvous:
            data_start = now + w.send_overhead + w.wire_latency
            src_nic = w.nics[msg.src // w.ppn]
            inject_done, arrival = src_nic.transfer(
                data_start, msg.src_local, self.nic, msg.nbytes, dma=True,
            )
            tl.call(inject_done, w._complete_send, msg.sreq)
            d = arrival - now + w.recv_overhead
        elif msg.unexpected:
            d = self.mem.copy_occupy(now, msg.nbytes, w.recv_overhead)
        else:
            d = w.recv_overhead
        tl.call(now + d, self._c_recv_done, msg)

    def _recv_done(self, msg: _Msg) -> None:
        if msg.intranode:
            sreq = msg.sreq
            if sreq is not None:
                self.w._complete_send(sreq)
        self._next_wait()

    # -- PiP continuations -------------------------------------------------

    def _post(self, _value=None) -> None:
        board = self.board
        key = self._p_key
        ev = board.get(key)
        if ev is None:
            ev = board[key] = BatchEvent(self.tl)
        if ev.triggered:
            # double post: the bound value depends on post order
            self.w._board_conflict = True
        ev.trigger(self._p_val)
        self._run()

    def _lookup(self, value) -> None:
        tl = self.tl
        tl.call(tl.now + self.w.pip_flag_time, self._c_lookup_bind, value)

    def _lookup_bind(self, value) -> None:
        bind = self._p_bind
        if bind is not None:
            self.env[bind] = value
        self._run()

    def _add(self, _value=None) -> None:
        w = self.w
        tl = self.tl
        ctrs = self.ctrs
        key = self._p_key
        c = ctrs.get(key)
        if c is None:
            c = ctrs[key] = _Counter()
        n = self._p_val
        c.value += n
        now = tl.now
        c.adds.append((now, n))
        # track whether the log stays elementwise non-decreasing — the
        # fast no-sort path in _counter_crossing
        tm = c.tmax
        if tm is None:
            c.tmax = now
        elif (now >= tm).all():
            c.tmax = now
        else:
            c.sorted_ok = False
        if c.waiters:
            still = []
            value = c.value
            checks = w._ct_checks
            for threshold, ev in c.waiters:
                if value >= threshold:
                    crossing = _counter_crossing(c, threshold)
                    for fn, reach in ev._waiters:
                        checks.append((
                            c, threshold, reach,
                            np.maximum(reach, crossing),
                        ))
                    ev.trigger_at(value, crossing)
                else:
                    still.append((threshold, ev))
            c.waiters = still
        self._run()

    def _cwait(self, _value=None) -> None:
        tl = self.tl
        tl.call(tl.now + self.w.pip_flag_time, self._run, None)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _evaluate_partition(
    lowered: _LoweredColumn, nodes: int, ppn: int,
    part: Tuple[int, ...], lib, params: MachineParams, warmup: int,
    measure: int,
) -> Tuple[List[FastpathResult], np.ndarray, Optional[np.ndarray]]:
    """One vectorized pass over ``part``; may raise :class:`BatchDivergence`.

    Returns per-size results (partition order), the order-divergence
    mask, and — when anything diverged — the per-size divergence
    signature labels; divergent entries' results are garbage and must be
    recomputed.
    """
    world = BatchWorld(
        params, nodes, ppn, lib.make_mechanism(), lib.software_overhead,
        len(part), lowered.nbufs,
    )
    tag_key = hash(tuple(range(nodes * ppn))) if lowered.flat else None
    samples: List[np.ndarray] = []
    for it in range(warmup + measure):
        symbols = (
            {"tag": world.next_group_tag(tag_key)} if lowered.flat else {}
        )
        elapsed = world.run_schedule(
            lowered.compiled, lowered.envs, symbols, lowered.num_namespaces
        )
        if it >= warmup:
            samples.append(elapsed)
    divergent = world.order_divergence()
    labels = (
        world.tl.divergence_labels(divergent) if divergent.any() else None
    )
    msgs = world.internode_messages()
    results = [
        FastpathResult(tuple(float(v[j]) for v in samples), msgs)
        for j in range(len(part))
    ]
    return results, divergent, labels


def evaluate_column(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    sizes: Sequence[int],
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    thresholds=None,
    partition_evaluator=None,
) -> ColumnResult:
    """Evaluate a whole message-size column in vectorized passes.

    The batch counterpart of :func:`repro.sched.fastpath.evaluate_point`:
    same microbenchmark protocol (fresh world per point, ``warmup``
    unrecorded iterations, ``measure`` recorded ones), applied to every
    size in ``sizes`` at once.  Results are bit-identical to per-size DAG
    evaluation; sizes the vector pass cannot prove order-invariant — and
    single-size partitions — are evaluated on the DAG engine directly.
    """
    from repro.baselines.registry import make_library

    if measure < 1:
        raise ValueError("need at least one measured iteration")
    if not batch_supported(library, collective):
        raise ValueError(
            f"engine='batch' does not cover ({library!r}, {collective!r}); "
            f"only planner-backed pairs are supported — use engine='event'"
        )
    canon = library.lower().replace("_", "-").replace(" ", "-")
    lib = make_library(_DISPLAY_NAMES[canon])
    if thresholds is not None and not hasattr(lib, "thresholds"):
        raise ValueError(
            f"library {library!r} has no size thresholds to override"
        )
    sizes = [int(s) for s in sizes]
    if not sizes:
        raise ValueError("empty size axis")
    if params is None:
        params = bebop_broadwell()
    uniq = sorted(set(sizes))

    # group by structural signature: sizes compiled to the same opcode
    # program share one lowered column (signatures are interned, so the
    # group key is the object id — no per-size deep-tuple hashing)
    groups: Dict[int, List[int]] = {}
    for s in uniq:
        sig = schedule_signature(
            plan_for(canon, collective, nodes, ppn, s,
                     thresholds=thresholds).schedule
        )
        groups.setdefault(id(sig), []).append(s)

    def _dag(s: int) -> FastpathResult:
        return _dag_evaluate_point(
            library, collective, nodes, ppn, s, params=params,
            warmup=warmup, measure=measure, thresholds=thresholds,
        )

    results: Dict[int, FastpathResult] = {}
    partitions: List[Tuple[int, ...]] = []
    fallback: List[int] = []
    singles: List[int] = []
    splits = 0
    retries = 0
    max_depth = 0
    elided = 0
    probe_mech = lib.make_mechanism()
    for group in groups.values():
        stack: List[Tuple[Tuple[int, ...], int]] = [(tuple(group), 0)]
        while stack:
            part, depth = stack.pop()
            if len(part) == 1:
                results[part[0]] = _dag(part[0])
                singles.append(part[0])
                continue
            lowered = _lower_column(
                canon, collective, nodes, ppn, part, thresholds
            )
            label_key = (
                canon, collective, nodes, ppn, thresholds, part,
                params.eager_threshold, getattr(probe_mech, "threshold",
                                                None),
            )
            try:
                labels = _SPLIT_CACHE[label_key]
            except KeyError:
                labels = _SPLIT_CACHE[label_key] = _static_split_labels(
                    lowered, params, probe_mech, len(part)
                )
            if labels is not None:
                # statically-known protocol thresholds partition the
                # axis; split before running instead of aborting mid-pass
                classes: Dict[int, List[int]] = {}
                for s, lab in zip(part, labels):
                    classes.setdefault(int(lab), []).append(s)
                splits += len(classes) - 1
                for sub in classes.values():
                    stack.append((tuple(sub), depth))
                continue

            def handle_divergent(part, depth, divergent, labels):
                # event order at these sizes differed from the pivot's.
                # Sizes whose runs inverted the *same* conflict pairs
                # (equal divergence signatures) overwhelmingly agree with
                # each other, so each signature cluster is re-batched
                # under its own pivot, recursively up to _REBATCH_DEPTH
                # levels.  A cluster as large as its partition cannot
                # make progress (the pass is deterministic), so it —
                # like singleton clusters and depth exhaustion — goes to
                # the DAG engine.
                nonlocal retries, max_depth
                if depth >= _REBATCH_DEPTH:
                    for s, bad in zip(part, divergent):
                        if bad:
                            fallback.append(s)
                            results[s] = _dag(s)
                    return
                clusters: Dict[int, List[int]] = {}
                for s, lab, bad in zip(part, labels, divergent):
                    if bad:
                        clusters.setdefault(int(lab), []).append(s)
                for sub in clusters.values():
                    if len(sub) == 1 or len(sub) == len(part):
                        for s in sub:
                            fallback.append(s)
                            results[s] = _dag(s)
                    else:
                        retries += 1
                        if depth + 1 > max_depth:
                            max_depth = depth + 1
                        stack.append((tuple(sub), depth + 1))

            outcome_key = (
                canon, collective, nodes, ppn, thresholds, part,
                warmup, measure, params,
            )
            cached = _OUTCOME_CACHE.get(outcome_key)
            if (cached is not None
                    and len(part) - int(cached[0].sum()) <= 1):
                # steady state: the pass is known to accept at most its
                # pivot, so running it buys nothing over evaluating that
                # one size directly (results are bit-identical)
                elided += 1
                cdiv, clabels = cached
                for s, bad in zip(part, cdiv):
                    if not bad:
                        fallback.append(s)
                        results[s] = _dag(s)
                handle_divergent(part, depth, cdiv, clabels)
                continue
            try:
                part_results, divergent, labels = (
                    partition_evaluator or _evaluate_partition
                )(
                    lowered, nodes, ppn, part, lib, params,
                    warmup, measure,
                )
            except BatchDivergence as d:
                # a size-dependent branch was not uniform: split the
                # partition at the mask and retry both halves
                splits += 1
                mask = d.mask
                a = tuple(s for s, m in zip(part, mask) if m)
                b = tuple(s for s, m in zip(part, mask) if not m)
                if not a or not b:  # pragma: no cover - raisers check this
                    raise RuntimeError(
                        "BatchDivergence with a uniform mask"
                    ) from d
                stack.append((a, depth))
                stack.append((b, depth))
                continue
            _OUTCOME_CACHE[outcome_key] = (divergent, labels)
            partitions.append(part)
            any_divergent = False
            for s, r, bad in zip(part, part_results, divergent):
                if not bad:
                    results[s] = r
                else:
                    any_divergent = True
            if any_divergent:
                handle_divergent(part, depth, divergent, labels)
    stats = ColumnStats(
        tuple(partitions), tuple(sorted(fallback)), tuple(sorted(singles)),
        splits, retries, max_depth, elided,
    )
    return ColumnResult(results, stats)

"""Replay a compiled schedule on the live runtime.

:class:`ScheduleExecutor` is the single generator that now drives every
migrated collective: it walks one rank's :class:`~repro.sched.ir.RankProgram`
and performs each step through the same :class:`~repro.mpi.runtime.RankCtx`
primitives the hand-written generators used, in the same order.  All
simulated time is charged inside those primitives, and step dispatch is
pure Python between yields, so replay is *bit-identical* in simulated time
to the generator a planner transcribed (pinned by
``tests/sched/test_equivalence.py`` and ``tests/data/golden_sched.json``).

Namespace draws happen up front: a generator interleaved
``ctx.next_op_seq()`` calls with its communication, but the counter is
per-rank pure Python, so drawing all ``num_namespaces`` values before the
first step yields the identical values — and costs nothing.

:class:`~repro.sched.ir.PhaseStep` markers set ``ctx.phase``, which the
runtime threads into every trace span recorded while the phase is active.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sched.ir import (
    AllocStep,
    BufRef,
    ComputeStep,
    CopyStep,
    IntraOpStep,
    PhaseStep,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    WaitStep,
    resolve_key,
)
from repro.sim.engine import ProcGen

__all__ = ["ScheduleExecutor"]

_NO_SYMBOLS: dict = {}


def _buf(env: Dict[str, Buffer], ref: BufRef) -> Buffer:
    """Resolve a :class:`BufRef` against the rank's environment."""
    buf = env[ref.name]
    if ref.count is None:
        if ref.offset == 0:
            return buf
        return buf.view(ref.offset, buf.count - ref.offset)
    return buf.view(ref.offset, ref.count)


class ScheduleExecutor:
    """Executes one participant's program of a :class:`Schedule`."""

    __slots__ = ("schedule",)

    def __init__(self, schedule: Schedule):
        self.schedule = schedule

    def run(
        self,
        ctx: RankCtx,
        bindings: Dict[str, Optional[Buffer]],
        op: Optional[ReduceOp] = None,
        symbols: Optional[Dict[str, Any]] = None,
        program_index: Optional[int] = None,
    ) -> ProcGen:
        """Replay program ``program_index`` (default: ``ctx.rank``).

        ``bindings`` maps the schedule's input buffer names (``"send"``,
        ``"recv"``, ...) to this rank's live buffers; ``op`` is the
        reduction operator :class:`~repro.sched.ir.ReduceStep`\\ s apply;
        ``symbols`` resolves :class:`~repro.sched.ir.Sym` markers.
        """
        sched = self.schedule
        # all ranks draw the same count in the same order — see module doc
        ns_values = tuple(
            ctx.next_op_seq() for _ in range(sched.num_namespaces)
        )
        syms = symbols if symbols is not None else _NO_SYMBOLS
        index = ctx.rank if program_index is None else program_index
        program = sched.programs[index]
        env: Dict[str, Buffer] = {
            name: buf for name, buf in bindings.items() if buf is not None
        }
        handles: list = [None] * program.num_handles
        board = ctx.pip.board
        prev_phase = ctx.phase
        for step in program.steps:
            cls = step.__class__
            if cls is SendStep:
                handles[step.handle] = yield from ctx.isend(
                    step.dst,
                    _buf(env, step.buf),
                    resolve_key(step.tag, ns_values, syms),
                )
            elif cls is RecvStep:
                handles[step.handle] = ctx.irecv(
                    step.src,
                    _buf(env, step.buf),
                    resolve_key(step.tag, ns_values, syms),
                )
            elif cls is WaitStep:
                for h in step.handles:
                    yield from ctx.wait(handles[h])
            elif cls is CopyStep:
                yield from ctx.copy(_buf(env, step.dst), _buf(env, step.src))
            elif cls is ReduceStep:
                yield from ctx.reduce_into(
                    _buf(env, step.dst), _buf(env, step.src), op
                )
            elif cls is IntraOpStep:
                key = resolve_key(step.key, ns_values, syms)
                kind = step.op
                if kind == "post":
                    yield from board.post(key, _buf(env, step.value))
                elif kind == "lookup":
                    value = yield from board.lookup(key)
                    if step.bind is not None:
                        env[step.bind] = value
                elif kind == "add":
                    yield from ctx.pip.counter(key).add(step.n)
                elif kind == "wait":
                    yield from ctx.pip.counter(key).wait_at_least(step.n)
                else:  # pragma: no cover - planners only emit the four ops
                    raise ValueError(f"unknown intra op {kind!r}")
            elif cls is AllocStep:
                env[step.name] = ctx.alloc(
                    env[step.dtype_of].dtype, step.count
                )
            elif cls is PhaseStep:
                ctx.phase = step.name
            elif cls is ComputeStep:
                yield from ctx.compute(step.seconds)
            else:  # pragma: no cover - the IR is closed
                raise TypeError(f"unknown step {step!r}")
        ctx.phase = prev_phase

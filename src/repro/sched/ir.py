"""The per-rank schedule IR: typed steps a collective compiles to.

A *schedule* is the fully static description of one collective invocation:
one :class:`RankProgram` (a tuple of steps) per participating rank.  The
steps mirror the primitive operations the simulated runtime exposes —
point-to-point sends/receives, local copies and reductions, and the PiP
address-board/counter intranode primitives — so a
:class:`~repro.sched.executor.ScheduleExecutor` can replay a program on the
existing :class:`~repro.mpi.runtime.RankCtx` machinery with *bit-identical*
simulated timing to the hand-rolled generator it replaced
(``tests/sched/test_equivalence.py`` pins this), while static tooling
(:mod:`repro.sched.check`) can prove match-completeness, deadlock-freedom
and buffer bounds without running the simulator at all.

Symbolic values
---------------
A schedule is planned once per ``(shape, size, ...)`` and replayed for many
invocations, so anything invocation-specific stays symbolic:

* buffers are :class:`BufRef` element ranges of *named* buffers — input
  bindings (``"send"``/``"recv"``), :class:`AllocStep` temporaries, or
  peers' buffers bound by an address-board lookup;
* collective namespaces are :class:`Ns` markers (the ``i``-th per-rank
  operation sequence number this collective draws); the executor resolves
  them through :meth:`RankCtx.next_op_seq` exactly like the generators did;
* externally supplied values (e.g. a communicator-scoped tag) are
  :class:`Sym` markers resolved from the executor's ``symbols`` mapping;
* :class:`HashTag` reproduces the ``int | hash(...) & 0x7FFFFFFF`` tag
  derivation the ring building block uses for tuple namespaces.

The reduction operator is deliberately *not* in the IR: every algorithm
here applies one operator per invocation, bound at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = [
    "Ns",
    "Sym",
    "HashTag",
    "TagOffset",
    "BufRef",
    "Step",
    "PhaseStep",
    "AllocStep",
    "CopyStep",
    "ReduceStep",
    "ComputeStep",
    "SendStep",
    "RecvStep",
    "WaitStep",
    "IntraOpStep",
    "RankProgram",
    "Schedule",
    "resolve_key",
]


# ---------------------------------------------------------------------------
# symbolic values
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Ns:
    """The ``index``-th collective namespace this schedule draws.

    Resolved by the executor to consecutive :meth:`RankCtx.next_op_seq`
    values — all ranks draw the same count in the same order, so the
    resolved keys agree across ranks exactly as in the generator code.
    """

    index: int


@dataclass(frozen=True, slots=True)
class Sym:
    """An externally bound symbol (e.g. ``"tag"`` for group collectives)."""

    name: str


@dataclass(frozen=True, slots=True)
class HashTag:
    """A message tag derived from a (possibly tuple) namespace key.

    Resolves to the key itself when it is an ``int``, else to
    ``hash(key) & 0x7FFFFFFF`` — the derivation ``ring_allgather_blocks``
    has always used.
    """

    key: Any


@dataclass(frozen=True, slots=True)
class TagOffset:
    """An integer tag at a constant offset from a symbolic base.

    The small-message allreduce derives its remainder-phase tags as
    ``tag + 1 + idx`` from the collective's namespace; this marker keeps
    that arithmetic exact in the IR (``base`` must resolve to an int).
    """

    base: Any
    delta: int


def resolve_key(key: Any, ns_values: Tuple[int, ...], symbols: dict) -> Any:
    """Substitute :class:`Ns`/:class:`Sym`/:class:`HashTag` markers in
    ``key`` (recursing through tuples) with their runtime values."""
    cls = key.__class__
    if cls is tuple:
        return tuple(resolve_key(k, ns_values, symbols) for k in key)
    if cls is Ns:
        return ns_values[key.index]
    if cls is Sym:
        return symbols[key.name]
    if cls is HashTag:
        inner = resolve_key(key.key, ns_values, symbols)
        return inner if isinstance(inner, int) else hash(inner) & 0x7FFFFFFF
    if cls is TagOffset:
        return resolve_key(key.base, ns_values, symbols) + key.delta
    return key


# ---------------------------------------------------------------------------
# buffer references
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class BufRef:
    """An element range ``[offset, offset + count)`` of the named buffer.

    ``count=None`` means "the whole buffer from ``offset``"; a bare
    ``BufRef(name)`` resolves to the bound buffer object itself (no view),
    preserving object identity for whole-buffer operations.
    """

    name: str
    offset: int = 0
    count: Optional[int] = None

    def view(self, offset: int, count: int) -> "BufRef":
        """A sub-range of this reference (offsets compose)."""
        return BufRef(self.name, self.offset + offset, count)


# ---------------------------------------------------------------------------
# steps
# ---------------------------------------------------------------------------

class Step:
    """Base class for schedule steps (purely for isinstance grouping)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class PhaseStep(Step):
    """Marker: subsequent steps belong to the named algorithm phase.

    Costs nothing at execution; the executor threads the name into trace
    spans and the checker groups its accounting tables by it.
    """

    name: str


@dataclass(frozen=True, slots=True)
class AllocStep(Step):
    """Bind ``name`` to a fresh scratch buffer of ``count`` elements.

    The element type is taken from the buffer bound to ``dtype_of`` (the
    planner mirrors whichever input the generator derived its dtype from).
    Allocation is free in simulated time, as it always was.
    """

    name: str
    count: int
    dtype_of: str = "send"


@dataclass(frozen=True, slots=True)
class CopyStep(Step):
    """Timed local memcpy ``src -> dst`` (:meth:`RankCtx.copy`)."""

    dst: BufRef
    src: BufRef


@dataclass(frozen=True, slots=True)
class ReduceStep(Step):
    """Timed local ``dst = op(dst, src)`` with the invocation's operator."""

    dst: BufRef
    src: BufRef


@dataclass(frozen=True, slots=True)
class ComputeStep(Step):
    """Plain computation delay (:meth:`RankCtx.compute`)."""

    seconds: float


@dataclass(frozen=True, slots=True)
class SendStep(Step):
    """Post a nonblocking send to global rank ``dst``; the request is
    stored in handle slot ``handle`` for a later :class:`WaitStep`."""

    dst: int
    buf: BufRef
    tag: Any
    handle: int


@dataclass(frozen=True, slots=True)
class RecvStep(Step):
    """Post a nonblocking receive from global rank ``src`` into ``buf``."""

    src: int
    buf: BufRef
    tag: Any
    handle: int


@dataclass(frozen=True, slots=True)
class WaitStep(Step):
    """Complete previously posted requests, in handle order."""

    handles: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class IntraOpStep(Step):
    """One PiP intranode primitive on the rank's node.

    ``op`` selects the primitive:

    * ``"post"`` — publish the buffer referenced by ``value`` under ``key``
      on the node's address board;
    * ``"lookup"`` — wait for ``key`` on the board and bind the posted
      buffer to ``bind`` in the rank's environment;
    * ``"add"`` — add ``n`` to the shared counter named ``key``;
    * ``"wait"`` — block until that counter reaches ``n``.
    """

    op: str
    key: Any
    value: Optional[BufRef] = None
    bind: Optional[str] = None
    n: int = 0


# ---------------------------------------------------------------------------
# programs and schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RankProgram:
    """The step sequence one rank executes, plus its handle-slot count."""

    steps: Tuple[Step, ...]
    num_handles: int = 0


@dataclass(frozen=True)
class Schedule:
    """One collective invocation, compiled: a program per participant.

    ``programs[i]`` is the program of participant ``i`` — a global rank for
    world collectives, a *local* rank for intranode collectives, a group
    index for group collectives; the wrapper that owns the schedule knows
    which.  ``num_namespaces`` is how many :class:`Ns` markers each program
    resolves (identical across ranks by construction).
    """

    programs: Tuple[RankProgram, ...]
    num_namespaces: int = 0
    #: free-form description, e.g. "pip-mcoll allreduce-small 4x3 64B"
    label: str = ""
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def nranks(self) -> int:
        return len(self.programs)

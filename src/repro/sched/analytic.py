"""The ``engine="analytic"`` tier: closed-form column evaluation.

The fourth evaluation engine.  Where ``dag`` and ``batch`` replay the
compiled schedule exactly (bit-identical to the event loop), the analytic
engine never executes a schedule at all: it lowers the registry's
algorithm selection to the refined closed-form LogGP/Hockney cost
expressions in :mod:`repro.models.formulas` and evaluates the whole
message-size axis as one vectorized numpy expression — O(1) work per
size, no simulation state.

Accuracy contract
-----------------
The analytic tier is **approximate by design**.  It carries no
bit-identity claim; instead it carries a measured error bound against the
exact engines: :data:`ERROR_BOUND` (relative error on per-iteration time,
currently 50%) across the registry grid.  ``python -m
repro.models.calibrate`` measures the actual error and persists it to
``results/analytic_error.json``; ``tests/sched/test_analytic.py`` asserts
the measured maximum stays below the documented bound.  Use the analytic
engine to scan large parameter spaces cheaply and the exact engines to
confirm anything that matters.

Message counts are *logical*: the static per-iteration internode message
count of the compiled schedule (:func:`repro.sched.check.check_planned`)
times the iteration count.  Rendezvous control traffic (RTS/CTS) is not
modelled, so counts can undercount the exact engines' totals for
above-threshold messages.

Coverage is the planner-backed registry surface
(:func:`repro.sched.registry.registry_combinations`), same as the DAG and
batch engines; :func:`analytic_supported` reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.tuning import Thresholds
from repro.hw.params import MachineParams, bebop_broadwell
from repro.models.formulas import (
    MPICH_RING_TOTAL_BYTES,
    AnalyticParams,
    allgather_refined,
    allreduce_large_refined,
    allreduce_small_refined,
    flat_allgather_refined,
    scatter_refined,
)

__all__ = [
    "ERROR_BOUND",
    "AnalyticEstimate",
    "AnalyticColumn",
    "analytic_supported",
    "evaluate_axis",
    "evaluate_point",
]

#: documented maximum relative error of the analytic tier vs the exact
#: engines on per-iteration times, across the registry grid (see module
#: docstring; measured headroom lives in results/analytic_error.json)
ERROR_BOUND = 0.5

_MCOLL = ("pip-mcoll", "pip-mcoll-small")
_FLAT = ("pip-mpich", "openmpi")


def _canon(name: str) -> str:
    return name.lower().replace("_", "-").replace(" ", "-")


def analytic_supported(library: str, collective: str) -> bool:
    """True when the pair has a closed-form lowering (registry surface)."""
    lib = _canon(library)
    if lib in _MCOLL:
        return collective in ("scatter", "allgather", "allreduce")
    if lib in _FLAT:
        return collective == "allgather"
    return False


@dataclass(frozen=True)
class AnalyticEstimate:
    """One point's closed-form estimate (plain primitives, like
    ``MicrobenchResult`` — crosses process boundaries)."""

    msg_bytes: int
    #: estimated seconds per iteration (identical every iteration: the
    #: closed forms model the steady state; warm-up is already absorbed)
    time: float
    #: ``measure`` copies of :attr:`time`
    samples: Tuple[float, ...]
    #: logical internode messages over all iterations (static schedule
    #: count x (warmup + measure); excludes rendezvous control traffic)
    internode_messages: int


@dataclass(frozen=True)
class AnalyticColumn:
    """A whole size axis evaluated in one vectorized pass."""

    library: str
    collective: str
    nodes: int
    ppn: int
    results: Dict[int, AnalyticEstimate]


@lru_cache(maxsize=None)
def _analytic_params(params: MachineParams) -> AnalyticParams:
    return AnalyticParams.from_machine(params)


@lru_cache(maxsize=None)
def _static_messages(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    rep_size: int,
    thresholds: Optional[Thresholds],
) -> int:
    """Static per-iteration internode message count of the compiled
    schedule, one checker pass per algorithm regime (the count depends on
    the selected algorithm, not on the byte size within a regime)."""
    from repro.sched.check import check_planned
    from repro.sched.registry import plan_for

    piece = plan_for(
        library, collective, nodes, ppn, rep_size, thresholds=thresholds
    )
    return check_planned(piece, ppn).internode_messages


def _mcoll_thresholds(
    library: str, thresholds: Optional[Thresholds]
) -> Thresholds:
    if thresholds is not None:
        return thresholds
    if library == "pip-mcoll-small":
        return Thresholds.always_small()
    return Thresholds()


def _regime_ids(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    sizes: np.ndarray,
    thresholds: Optional[Thresholds],
) -> np.ndarray:
    """Algorithm-regime id per size, mirroring ``plan_for``'s selection."""
    if library in _MCOLL:
        thr = _mcoll_thresholds(library, thresholds)
        if collective == "allgather":
            return (sizes >= thr.allgather_large_bytes).astype(int)
        if collective == "allreduce":
            return (sizes >= thr.allreduce_large_bytes).astype(int)
        return np.zeros(len(sizes), dtype=int)
    total = nodes * ppn * sizes
    ring = total >= MPICH_RING_TOTAL_BYTES
    return ring.astype(int)


def evaluate_axis(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    sizes: Sequence[int],
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    thresholds: Optional[Thresholds] = None,
) -> AnalyticColumn:
    """Closed-form estimates for a whole message-size axis.

    One vectorized numpy pass over ``sizes``; algorithm selection mirrors
    :func:`repro.sched.registry.plan_for` exactly (thresholded PiP-MColl
    variants, MPICH total-size/power-of-two switching for the flat
    baselines).  See the module docstring for the accuracy contract.
    """
    library = _canon(library)
    if not analytic_supported(library, collective):
        raise ValueError(
            f"no closed-form lowering for {library!r}/{collective!r}"
        )
    if measure < 1:
        raise ValueError("need at least one measured iteration")
    if not sizes:
        raise ValueError("empty size axis")
    if any(s < 1 for s in sizes):
        raise ValueError("message sizes must be positive")
    machine = params or bebop_broadwell()
    ap = _analytic_params(machine)
    cb = np.asarray(list(sizes), dtype=float)

    if library in _MCOLL:
        thr = _mcoll_thresholds(library, thresholds)
        if collective == "scatter":
            times = scatter_refined(ap, cb, nodes, ppn)
        elif collective == "allgather":
            times = allgather_refined(ap, cb, nodes, ppn)
        else:
            small = allreduce_small_refined(ap, cb, nodes, ppn)
            large = allreduce_large_refined(ap, cb, nodes, ppn)
            times = np.where(cb < thr.allreduce_large_bytes, small, large)
    else:
        times = flat_allgather_refined(ap, cb, nodes, ppn)
    times = np.atleast_1d(np.asarray(times, dtype=float))

    # logical message counts: one static checker pass per algorithm
    # regime, broadcast across the sizes that share it
    regimes = _regime_ids(
        library, collective, nodes, ppn,
        np.asarray(list(sizes)), thresholds,
    )
    iters = warmup + measure
    counts = np.empty(len(cb), dtype=int)
    for rid in np.unique(regimes):
        mask = regimes == rid
        rep = int(np.asarray(list(sizes))[mask][0])
        counts[mask] = _static_messages(
            library, collective, nodes, ppn, rep, thresholds
        ) * iters

    results: Dict[int, AnalyticEstimate] = {}
    for i, s in enumerate(sizes):
        t = float(times[i])
        results[int(s)] = AnalyticEstimate(
            msg_bytes=int(s),
            time=t,
            samples=(t,) * measure,
            internode_messages=int(counts[i]),
        )
    return AnalyticColumn(
        library=library,
        collective=collective,
        nodes=nodes,
        ppn=ppn,
        results=results,
    )


def evaluate_point(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    thresholds: Optional[Thresholds] = None,
) -> AnalyticEstimate:
    """Scalar convenience wrapper around :func:`evaluate_axis`."""
    col = evaluate_axis(
        library, collective, nodes, ppn, [msg_bytes],
        params=params, warmup=warmup, measure=measure,
        thresholds=thresholds,
    )
    return col.results[int(msg_bytes)]

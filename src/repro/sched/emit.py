"""Step-stream builder used by every planner.

An :class:`Emitter` accumulates one rank's steps in program order; planners
transcribe the control flow of the algorithm they compile (the same loops
the original generators ran) and call the emitter where the generator
performed a primitive.  ``isend``/``irecv`` hand out consecutive request
handle slots exactly like request variables in the generator code.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sched.ir import (
    AllocStep,
    BufRef,
    ComputeStep,
    CopyStep,
    IntraOpStep,
    PhaseStep,
    RankProgram,
    RecvStep,
    ReduceStep,
    SendStep,
    Step,
    WaitStep,
)

__all__ = ["Emitter"]


class Emitter:
    """Builds one :class:`~repro.sched.ir.RankProgram` step by step."""

    def __init__(self) -> None:
        self.steps: List[Step] = []
        self._num_handles = 0

    # -- markers / local work ----------------------------------------------

    def phase(self, name: str) -> None:
        self.steps.append(PhaseStep(name))

    def alloc(self, name: str, count: int, dtype_of: str = "send") -> BufRef:
        self.steps.append(AllocStep(name, count, dtype_of))
        return BufRef(name)

    def copy(self, dst: BufRef, src: BufRef) -> None:
        self.steps.append(CopyStep(dst, src))

    def reduce(self, dst: BufRef, src: BufRef) -> None:
        self.steps.append(ReduceStep(dst, src))

    def compute(self, seconds: float) -> None:
        self.steps.append(ComputeStep(seconds))

    # -- point-to-point ------------------------------------------------------

    def isend(self, dst: int, buf: BufRef, tag: Any) -> int:
        handle = self._num_handles
        self._num_handles += 1
        self.steps.append(SendStep(dst, buf, tag, handle))
        return handle

    def irecv(self, src: int, buf: BufRef, tag: Any) -> int:
        handle = self._num_handles
        self._num_handles += 1
        self.steps.append(RecvStep(src, buf, tag, handle))
        return handle

    def wait(self, *handles: int) -> None:
        self.steps.append(WaitStep(tuple(handles)))

    # -- PiP intranode primitives -------------------------------------------

    def post(self, key: Any, value: BufRef) -> None:
        self.steps.append(IntraOpStep("post", key, value=value))

    def lookup(self, key: Any, bind: str) -> BufRef:
        self.steps.append(IntraOpStep("lookup", key, bind=bind))
        return BufRef(bind)

    def counter_add(self, key: Any, n: int = 1) -> None:
        self.steps.append(IntraOpStep("add", key, n=n))

    def counter_wait(self, key: Any, n: int) -> None:
        self.steps.append(IntraOpStep("wait", key, n=n))

    def barrier(self, key: Any, ppn: int) -> None:
        """The ``intra_barrier`` idiom: add one, wait for all ``ppn``."""
        self.counter_add(key, 1)
        self.counter_wait(key, ppn)

    # -- finish --------------------------------------------------------------

    def build(self) -> RankProgram:
        return RankProgram(tuple(self.steps), self._num_handles)

"""DAG fast-path evaluator: analytic timing of compiled schedules.

Every planner-backed collective compiles to a static per-rank
:class:`~repro.sched.ir.Schedule`, so its simulated duration is fully
determined by the schedule's cross-rank dependency DAG (send/recv matching
by tag, board/counter joins) and the hardware cost closures — there is
nothing left for the event loop to *decide*, only to order.  This module
evaluates that DAG directly on a :class:`~repro.sim.timeline.Timeline`:
each rank's program is lowered once into a flat opcode list (buffer
references resolved to ``(name, offset, count)`` triples, tag expressions
compiled to slot builders, node-locality of every send decided statically)
and then interpreted by a small continuation machine whose suspension
points are plain timeline callbacks — no coroutines, no ``Buffer``
objects, no ``Transport``.

Bit-identity (pinned by ``tests/sched/test_fastpath.py``) rests on two
invariants:

* every float is produced by the *same shared code* as the event path —
  :meth:`NodeNic.transfer`, :meth:`MemoryModel.copy_occupy` /
  :meth:`reduce_occupy`, and the mechanisms' ``sender_occupy`` /
  ``match_fixed`` closures;
* every suspension point and scheduling call of the generator-based
  runtime maps to exactly one timeline callback scheduled in the same
  relative order, so all ``(time, seq)`` tie-breaks resolve identically.

The one deliberate event-count deviation: the event engine starts a rank
with a spawn dispatch that immediately suspends on the library's
software-overhead delay; the fast path schedules the first program slice
at ``start + overhead`` directly.  At iteration start the timeline is
empty and spawn dispatches make no observable state change, so the rank
slices still execute in rank order at the same instant.

Scope is exactly the planner-backed registry
(:func:`repro.sched.registry.plan_for`) driven with phantom data — the
microbenchmark configuration every figure sweep uses.  Tracing, validation
oracles, and real-data runs stay on the event loop, which remains the
semantic reference.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.hw.memory import MemoryModel
from repro.hw.nic import NodeNic
from repro.hw.params import MachineParams, bebop_broadwell
from repro.mpi.transport import RTS_HEADER_BYTES
from repro.sched.ir import (
    AllocStep,
    ComputeStep,
    CopyStep,
    HashTag,
    IntraOpStep,
    Ns,
    PhaseStep,
    RankProgram,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    Sym,
    TagOffset,
    WaitStep,
    resolve_key,
)
from repro.sched.registry import (
    COLLECTIVES,
    LIBRARIES,
    PlannedCollective,
    plan_for,
)
from repro.shmem.base import MsgInfo
from repro.sim.engine import DeadlockError
from repro.sim.resources import Server
from repro.sim.timeline import Timeline, TimelineEvent

__all__ = [
    "fastpath_supported",
    "evaluate_point",
    "evaluate_tables",
    "FastpathResult",
    "FastWorld",
]


class FastpathResult(NamedTuple):
    """Timing output of :func:`evaluate_point` (fields mirror run_point)."""

    samples: Tuple[float, ...]
    internode_messages: int


#: canonical registry name -> benchmark-facing library name
_DISPLAY_NAMES = {
    "pip-mcoll": "PiP-MColl",
    "pip-mcoll-small": "PiP-MColl-small",
    "pip-mpich": "PiP-MPICH",
    "openmpi": "OpenMPI",
}


def fastpath_supported(library: str, collective: str) -> bool:
    """Whether the DAG engine covers this (library, collective) pair.

    True exactly when :func:`repro.sched.registry.plan_for` would succeed:
    the PiP-MColl primary collectives and the flat baselines' allgather.
    """
    canon = library.lower().replace("_", "-").replace(" ", "-")
    if canon not in LIBRARIES or collective not in COLLECTIVES:
        return False
    if canon in ("pip-mpich", "openmpi") and collective != "allgather":
        return False
    return True


# ---------------------------------------------------------------------------
# schedule lowering: RankProgram -> flat opcode list
# ---------------------------------------------------------------------------

(
    _OP_SEND_INTRA,
    _OP_SEND_INTER,
    _OP_RECV,
    _OP_WAIT,
    _OP_COPY,
    _OP_REDUCE,
    _OP_POST,
    _OP_LOOKUP,
    _OP_ADD,
    _OP_CWAIT,
    _OP_ALLOC,
    _OP_PHASE,
    _OP_COMPUTE,
) = range(13)

_MARKERS = (Ns, Sym, HashTag, TagOffset)


def _has_markers(key) -> bool:
    cls = key.__class__
    if cls is tuple:
        return any(_has_markers(k) for k in key)
    return cls in _MARKERS


def _key_builder(key):
    """Compile one tag/key expression to ``fn(ns_values, symbols) -> value``.

    Specialised per expression structure — the dominant shape (a tuple with
    one symbolic element among constants) resolves with a single closure
    call and one tuple concatenation per iteration.
    """
    cls = key.__class__
    if cls is Ns:
        i = key.index
        return lambda ns, sy: ns[i]
    if cls is Sym:
        name = key.name
        return lambda ns, sy: sy[name]
    if cls is tuple:
        dyn = [
            (i, _key_builder(k))
            for i, k in enumerate(key) if _has_markers(k)
        ]
        if len(dyn) == 1:
            pos, build = dyn[0]
            pre = tuple(
                resolve_key(k, (), {}) for k in key[:pos]
            )
            post = tuple(
                resolve_key(k, (), {}) for k in key[pos + 1:]
            )
            if not post:
                return lambda ns, sy: pre + (build(ns, sy),)
            return lambda ns, sy: pre + (build(ns, sy),) + post
        template = [
            None if _has_markers(k) else resolve_key(k, (), {})
            for k in key
        ]
        dyn_t = tuple(dyn)

        def build_tuple(ns, sy):
            out = template.copy()
            for i, b in dyn_t:
                out[i] = b(ns, sy)
            return tuple(out)

        return build_tuple
    if cls is HashTag:
        inner = _key_builder(key.key)

        def build_hash(ns, sy):
            v = inner(ns, sy)
            return v if isinstance(v, int) else hash(v) & 0x7FFFFFFF

        return build_hash
    if cls is TagOffset:
        base = _key_builder(key.base)
        delta = key.delta
        return lambda ns, sy: base(ns, sy) + delta
    return lambda ns, sy: key


class _Compiled(NamedTuple):
    """One lowered rank program."""

    ops: Tuple[tuple, ...]
    #: tag-slot prototype; dynamic slots hold None until the prologue runs
    const_tags: Tuple
    #: (slot, builder) pairs evaluated once per iteration
    dyn_tags: Tuple[Tuple[int, object], ...]
    num_handles: int


def _compile_program(program: RankProgram, index: int, ppn: int) -> _Compiled:
    node = index // ppn
    ops: list = []
    slots: Dict = {}
    const_tags: list = []
    dyn_tags: list = []

    def key_slot(key) -> int:
        slot = slots.get(key)
        if slot is None:
            slot = slots[key] = len(const_tags)
            if _has_markers(key):
                const_tags.append(None)
                dyn_tags.append((slot, _key_builder(key)))
            else:
                const_tags.append(resolve_key(key, (), {}))
        return slot

    for step in program.steps:
        cls = step.__class__
        if cls is SendStep:
            ref = step.buf
            if step.dst // ppn == node:
                ops.append((
                    _OP_SEND_INTRA, step.dst, ref.name, ref.offset,
                    ref.count, key_slot(step.tag), step.handle,
                ))
            else:
                ops.append((
                    _OP_SEND_INTER, step.dst, step.dst // ppn,
                    ref.name, ref.offset, ref.count,
                    key_slot(step.tag), step.handle,
                ))
        elif cls is RecvStep:
            ops.append((
                _OP_RECV, step.src, key_slot(step.tag), step.handle,
            ))
        elif cls is WaitStep:
            if step.handles:
                ops.append((_OP_WAIT, step.handles, len(step.handles)))
        elif cls is CopyStep:
            ref = step.src
            ops.append((_OP_COPY, ref.name, ref.offset, ref.count))
        elif cls is ReduceStep:
            ref = step.src
            ops.append((_OP_REDUCE, ref.name, ref.offset, ref.count))
        elif cls is IntraOpStep:
            kind = step.op
            if kind == "post":
                ref = step.value
                ops.append((
                    _OP_POST, key_slot(step.key),
                    ref.name, ref.offset, ref.count,
                ))
            elif kind == "lookup":
                ops.append((_OP_LOOKUP, key_slot(step.key), step.bind))
            elif kind == "add":
                ops.append((_OP_ADD, key_slot(step.key), step.n))
            elif kind == "wait":
                ops.append((_OP_CWAIT, key_slot(step.key), step.n))
            else:  # pragma: no cover - planners only emit the four ops
                raise ValueError(f"unknown intra op {kind!r}")
        elif cls is AllocStep:
            ops.append((_OP_ALLOC, step.name, step.count))
        elif cls is PhaseStep:
            ops.append((_OP_PHASE, step.name))
        elif cls is ComputeStep:
            ops.append((_OP_COMPUTE, step.seconds))
        else:  # pragma: no cover - the IR is closed
            raise TypeError(f"unknown step {step!r}")
    return _Compiled(
        tuple(ops), tuple(const_tags), tuple(dyn_tags), program.num_handles
    )


def _compiled_for(schedule: Schedule, ppn: int) -> Tuple[_Compiled, ...]:
    """Lower ``schedule`` for node size ``ppn``, cached on the schedule.

    Planner schedules are ``lru_cache``d module-level singletons, so
    stashing the lowered form on the object (keyed by ppn, which decides
    send locality) makes compilation a once-per-process cost.
    """
    cache = getattr(schedule, "_fastpath_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(schedule, "_fastpath_cache", cache)
    compiled = cache.get(ppn)
    if compiled is None:
        compiled = tuple(
            _compile_program(prog, i, ppn)
            for i, prog in enumerate(schedule.programs)
        )
        cache[ppn] = compiled
    return compiled


# ---------------------------------------------------------------------------
# runtime objects
# ---------------------------------------------------------------------------


class _EngineShim:
    """Duck-typed ``engine`` for :class:`MemoryModel`/mechanisms: ``.now``
    tracks the timeline so the shared cost closures read the right clock."""

    __slots__ = ("_tl",)

    def __init__(self, tl: Timeline):
        self._tl = tl

    @property
    def now(self) -> float:
        return self._tl.now


class _Req:
    """A posted send/receive with an inlined single-waiter event.

    The live transport pairs each request with an ``Event``; here at most
    one callback (the owning rank's wait continuation) ever waits, so the
    event collapses to ``done``/``value``/``waiter`` fields.
    """

    __slots__ = ("kind", "done", "value", "waiter", "t", "wt")

    def __init__(self, kind: str):
        self.kind = kind
        self.done = False
        self.value = None
        self.waiter = None
        # batch-engine max-resume stamps (unused by the scalar engines):
        # completion-time vector and waiter's wait-reach-time vector
        self.t = None
        self.wt = None


class _Msg:
    """One in-flight message (the fast path's ``Message``)."""

    __slots__ = (
        "src", "dst", "tag", "nbytes", "src_buffer_id",
        "intranode", "rendezvous", "unexpected", "src_local", "sreq", "t",
    )

    def __init__(self, src, dst, tag, nbytes, src_buffer_id, intranode,
                 rendezvous, src_local, sreq):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.src_buffer_id = src_buffer_id
        self.intranode = intranode
        self.rendezvous = rendezvous
        self.unexpected = False
        self.src_local = src_local
        self.sreq = sreq
        # batch-engine arrival-time vector (unused by the scalar engines)
        self.t = None


class _Counter:
    """Shared-counter state: value + ordered ``(threshold, event)`` waiters."""

    __slots__ = ("value", "waiters", "adds", "tmax", "sorted_ok")

    def __init__(self) -> None:
        self.value = 0
        self.waiters: list = []
        # batch-engine add log: (fire-time vector, n) per add, for exact
        # per-size threshold-crossing times (unused by the scalar engines);
        # ``tmax``/``sorted_ok`` track whether the log is elementwise
        # non-decreasing, in which case crossings need no per-size sort
        self.adds: list = []
        self.tmax = None
        self.sorted_ok = True


class FastWorld:
    """Hardware + matching state for one sweep point's DAG evaluation.

    Owns the same resource objects the event path would — per-node
    :class:`NodeNic` and :class:`MemoryModel`, an optional shared fabric
    server — plus lightweight stand-ins for the transport's match tables
    and the PiP boards/counters.  Like :class:`~repro.mpi.runtime.World`,
    all state persists across iterations (the warm-up protocol).
    """

    def __init__(self, params: MachineParams, nodes: int, ppn: int,
                 mechanism, software_overhead: float):
        params.validate()
        self.params = params
        self.nodes = nodes
        self.ppn = ppn
        self.size = nodes * ppn
        self.mechanism = mechanism
        self.software_overhead = software_overhead
        # per-message hot constants, denormalised off params
        self.send_overhead = params.send_overhead
        self.recv_overhead = params.recv_overhead
        self.wire_latency = params.wire_latency
        self.eager_threshold = params.eager_threshold
        self.pip_post_time = params.pip_post_time
        self.pip_flag_time = params.pip_flag_time
        self.tl = Timeline()
        shim = _EngineShim(self.tl)
        self.fabric: Optional[Server] = (
            Server(name="fabric") if params.fabric_bandwidth else None
        )
        self.nics = [
            NodeNic(params, node, ppn, fabric=self.fabric)
            for node in range(nodes)
        ]
        self.mems = [
            MemoryModel(shim, params, node) for node in range(nodes)
        ]
        #: scratch MsgInfo handed to mechanism closures; all uses are
        #: synchronous (single dispatch), so one instance suffices
        self.info = MsgInfo(
            src_rank=0, dst_rank=0, nbytes=0, src_buffer_id=0
        )
        # PiP environment: per-node board slots and counters
        self.boards: List[Dict] = [{} for _ in range(nodes)]
        self.counters: List[Dict] = [{} for _ in range(nodes)]
        # transport match tables: per dst rank, (src, tag) -> FIFO
        self.arrived: List[Dict] = [{} for _ in range(self.size)]
        self.posted: List[Dict] = [{} for _ in range(self.size)]
        self.unexpected_count = 0
        # per-rank collective op counter (identical across ranks, so one
        # world-level counter stands in for all of them)
        self._op_seq = 0
        # per-group collective-tag counters (flat baselines)
        self._group_seqs: Dict = {}
        # fresh abstract buffer ids (AllocStep temporaries; binding buffers)
        self._buf_seq = 0
        self.end_times: List[float] = []
        self._live = 0
        # rank tasks, reused across iterations of the same schedule
        self._tasks: Optional[List["_Task"]] = None
        self._tasks_schedule: Optional[Schedule] = None
        #: optional (rank, phase) -> 6-column volume rows (check.py layout)
        self.acct: Optional[Dict[Tuple[int, str], List[int]]] = None

    # -- identity ---------------------------------------------------------

    def new_buf_id(self) -> int:
        self._buf_seq += 1
        return self._buf_seq

    def next_group_tag(self, tag_key) -> tuple:
        seq = self._group_seqs.get(tag_key, 0) + 1
        self._group_seqs[tag_key] = seq
        return (tag_key, seq)

    def internode_messages(self) -> int:
        return sum(nic.messages_sent for nic in self.nics)

    # -- transport matching (the fast path's _deliver/_complete_send) -----

    def _deliver(self, msg: _Msg) -> None:
        key = (msg.src, msg.tag)
        rank_posted = self.posted[msg.dst]
        queue = rank_posted.get(key)
        if queue:
            req = queue.popleft()
            if not queue:
                del rank_posted[key]
            waiter = req.waiter
            if waiter is not None:
                req.waiter = None
                self.tl._ready.append((waiter, msg))
            else:
                req.done = True
                req.value = msg
        else:
            msg.unexpected = True
            self.unexpected_count += 1
            rank_arrived = self.arrived[msg.dst]
            queue = rank_arrived.get(key)
            if queue is None:
                queue = rank_arrived[key] = deque()
            queue.append(msg)

    def _complete_send(self, req: _Req) -> None:
        # collapses the live path's sender_done -> on_trigger ->
        # match_event chain: _complete_send is that event's only
        # subscriber and plain callbacks run synchronously at trigger
        waiter = req.waiter
        if waiter is not None:
            req.waiter = None
            self.tl._ready.append((waiter, None))
        else:
            req.done = True

    # -- execution --------------------------------------------------------

    def run_schedule(self, schedule: Schedule, envs, symbols: dict) -> float:
        """One iteration: run every program to completion, return elapsed.

        ``envs[i]`` is participant ``i``'s base environment (name ->
        ``(buffer_id, element_count)``); it is copied per iteration exactly
        like the executor rebuilds its env from the bindings each call.
        """
        tl = self.tl
        start = tl.now
        k = schedule.num_namespaces
        ns_values = tuple(range(self._op_seq + 1, self._op_seq + 1 + k))
        self._op_seq += k
        tasks = self._tasks
        if tasks is None or self._tasks_schedule is not schedule:
            compiled = _compiled_for(schedule, self.ppn)
            tasks = [
                _Task(self, i, compiled[i]) for i in range(len(compiled))
            ]
            self._tasks = tasks
            self._tasks_schedule = schedule
        n = len(tasks)
        self.end_times = [start] * n
        self._live = n
        heap = tl._heap
        seq = tl._seq
        body_start = start + self.software_overhead
        for i in range(n):
            task = tasks[i]
            task.reset(envs[i], ns_values, symbols)
            seq += 1
            heappush(heap, (body_start, seq, task._run, None))
        tl._seq = seq
        tl.run()
        if self._live:
            raise DeadlockError(
                f"{self._live} schedule program(s) blocked at t={tl.now} — "
                f"fast-path evaluation deadlocked"
            )
        return max(self.end_times) - start


# ---------------------------------------------------------------------------
# the per-rank continuation machine
# ---------------------------------------------------------------------------


class _Task:
    """One participant's lowered program, driven by timeline callbacks.

    Each continuation method corresponds to exactly one suspension point
    of the generator runtime; :meth:`_run` is the opcode interpreter that
    executes steps until the next suspension.  A task suspends on at most
    one operation at a time, so its operands live in ``_p_*`` scratch
    slots instead of per-event argument tuples.
    """

    __slots__ = (
        "w", "tl", "index", "rank", "node", "lr", "ops", "nops", "pc",
        "env", "handles", "num_handles", "tags", "dyn_tags", "phase",
        "mem", "nic", "mech", "board", "ctrs", "arr", "post_q",
        "wait_handles", "wait_len", "wait_idx",
        "_p_dst", "_p_node", "_p_bid", "_p_cnt", "_p_tag", "_p_req",
        "_p_key", "_p_val", "_p_bind",
        "_c_next_wait", "_c_recv_work", "_c_recv_done", "_c_send_inter",
        "_c_send_intra", "_c_post", "_c_lookup", "_c_lookup_bind",
        "_c_add", "_c_cwait",
    )

    def __init__(self, w: FastWorld, index: int, compiled: _Compiled):
        self.w = w
        self.tl = w.tl
        self.index = index
        # registry schedules are world-indexed: participant i is rank i
        self.rank = index
        self.node, self.lr = divmod(index, w.ppn)
        self.ops = compiled.ops
        self.nops = len(compiled.ops)
        self.pc = 0
        self.env: dict = {}
        self.num_handles = compiled.num_handles
        self.handles: list = []
        self.dyn_tags = compiled.dyn_tags
        # dynamic slots are refilled in place by reset(); fully constant
        # tag lists are shared with the compiled form
        self.tags = (
            list(compiled.const_tags) if compiled.dyn_tags
            else compiled.const_tags
        )
        self.phase = ""
        self.mem = w.mems[self.node]
        self.nic = w.nics[self.node]
        self.mech = w.mechanism
        self.board = w.boards[self.node]
        self.ctrs = w.counters[self.node]
        self.arr = w.arrived[index]
        self.post_q = w.posted[index]
        self.wait_handles: tuple = ()
        self.wait_len = 0
        self.wait_idx = 0
        self._p_dst = self._p_node = self._p_bid = self._p_cnt = 0
        self._p_tag = self._p_req = self._p_key = self._p_val = None
        self._p_bind = None
        # continuations are scheduled by reference many times per task;
        # prebinding beats a bound-method allocation per event
        self._c_next_wait = self._next_wait
        self._c_recv_work = self._recv_work
        self._c_recv_done = self._recv_done
        self._c_send_inter = self._send_inter
        self._c_send_intra = self._send_intra
        self._c_post = self._post
        self._c_lookup = self._lookup
        self._c_lookup_bind = self._lookup_bind
        self._c_add = self._add
        self._c_cwait = self._cwait

    def reset(self, env_base: dict, ns_values: tuple, symbols: dict) -> None:
        """Rewind for the next iteration (fresh env/handles/tags)."""
        self.pc = 0
        self.env = dict(env_base)
        self.handles = [None] * self.num_handles
        dyn = self.dyn_tags
        if dyn:
            tags = self.tags
            for slot, builder in dyn:
                tags[slot] = builder(ns_values, symbols)
        self.phase = ""

    # -- the interpreter ---------------------------------------------------

    def _run(self, _value=None) -> None:
        w = self.w
        tl = self.tl
        heap = tl._heap
        now = tl.now
        ops = self.ops
        n = self.nops
        env = self.env
        tags = self.tags
        acct = w.acct
        pc = self.pc
        while pc < n:
            op = ops[pc]
            pc += 1
            code = op[0]
            if code == _OP_LOOKUP:
                self.pc = pc
                self._p_bind = op[2]
                board = self.board
                key = tags[op[1]]
                ev = board.get(key)
                if ev is None:
                    ev = board[key] = TimelineEvent(tl)
                if ev.triggered:
                    tl._ready.append((self._c_lookup, ev.value))
                else:
                    ev._waiters.append(self._c_lookup)
                return
            if code == _OP_SEND_INTRA:
                _, dst, name, off, cnt, slot, handle = op
                base = env[name]
                if cnt is None:
                    cnt = base[1] - off
                req = _Req("send")
                self.handles[handle] = req
                if acct is not None:
                    self._account(2, cnt, messages=True)
                self.pc = pc
                self._p_dst = dst
                self._p_bid = base[0]
                self._p_cnt = cnt
                self._p_tag = tags[slot]
                self._p_req = req
                # sender_occupy reserves lanes / mutates warm state now,
                # at the same instant the live sender_work would
                info = w.info
                info.src_rank = self.rank
                info.dst_rank = dst
                info.nbytes = cnt
                info.src_buffer_id = base[0]
                d = self.mech.sender_occupy(self.mem, info)
                tl._seq = seq = tl._seq + 1
                heappush(heap, (now + d, seq, self._c_send_intra, None))
                return
            if code == _OP_SEND_INTER:
                _, dst, dst_node, name, off, cnt, slot, handle = op
                base = env[name]
                if cnt is None:
                    cnt = base[1] - off
                req = _Req("send")
                self.handles[handle] = req
                if acct is not None:
                    self._account(0, cnt, messages=True)
                self.pc = pc
                self._p_dst = dst
                self._p_node = dst_node
                self._p_bid = base[0]
                self._p_cnt = cnt
                self._p_tag = tags[slot]
                self._p_req = req
                tl._seq = seq = tl._seq + 1
                heappush(heap, (
                    now + w.send_overhead, seq, self._c_send_inter, None,
                ))
                return
            if code == _OP_RECV:
                _, src, slot, handle = op
                req = _Req("recv")
                self.handles[handle] = req
                key = (src, tags[slot])
                arrived = self.arr
                queue = arrived.get(key)
                if queue:
                    msg = queue.popleft()
                    if not queue:
                        del arrived[key]
                    # the request was just created: no waiter yet
                    req.done = True
                    req.value = msg
                else:
                    posted = self.post_q
                    queue = posted.get(key)
                    if queue is None:
                        queue = posted[key] = deque()
                    queue.append(req)
            elif code == _OP_WAIT:
                self.pc = pc
                self.wait_handles = op[1]
                self.wait_len = op[2]
                self.wait_idx = 0
                req = self.handles[op[1][0]]
                fn = (self._c_next_wait if req.kind == "send"
                      else self._c_recv_work)
                if req.done:
                    tl._ready.append((fn, req.value))
                else:
                    req.waiter = fn
                return
            elif code == _OP_COPY:
                _, name, off, cnt = op
                if cnt is None:
                    cnt = env[name][1] - off
                if acct is not None:
                    self._account(4, cnt)
                self.pc = pc
                d = self.mem.copy_occupy(now, cnt, 0.0)
                tl._seq = seq = tl._seq + 1
                heappush(heap, (now + d, seq, self._run, None))
                return
            elif code == _OP_REDUCE:
                _, name, off, cnt = op
                if cnt is None:
                    cnt = env[name][1] - off
                if acct is not None:
                    self._account(5, cnt)
                self.pc = pc
                d = self.mem.reduce_occupy(now, cnt, 0.0)
                tl._seq = seq = tl._seq + 1
                heappush(heap, (now + d, seq, self._run, None))
                return
            elif code == _OP_POST:
                _, slot, name, off, cnt = op
                base = env[name]
                if cnt is None:
                    cnt = base[1] - off
                self.pc = pc
                self._p_key = tags[slot]
                self._p_val = (base[0], cnt)
                tl._seq = seq = tl._seq + 1
                heappush(heap, (
                    now + w.pip_post_time, seq, self._c_post, None,
                ))
                return
            elif code == _OP_ADD:
                self.pc = pc
                self._p_key = tags[op[1]]
                self._p_val = op[2]
                tl._seq = seq = tl._seq + 1
                heappush(heap, (
                    now + w.pip_flag_time, seq, self._c_add, None,
                ))
                return
            elif code == _OP_CWAIT:
                _, slot, threshold = op
                self.pc = pc
                ctrs = self.ctrs
                key = tags[slot]
                c = ctrs.get(key)
                if c is None:
                    c = ctrs[key] = _Counter()
                if c.value >= threshold:
                    tl._seq = seq = tl._seq + 1
                    heappush(heap, (
                        now + w.pip_flag_time, seq, self._run, None,
                    ))
                else:
                    ev = TimelineEvent(tl)
                    c.waiters.append((threshold, ev))
                    ev._waiters.append(self._c_cwait)
                return
            elif code == _OP_ALLOC:
                w._buf_seq = bid = w._buf_seq + 1
                env[op[1]] = (bid, op[2])
            elif code == _OP_PHASE:
                self.phase = op[1]
            else:  # _OP_COMPUTE
                self.pc = pc
                tl._seq = seq = tl._seq + 1
                heappush(heap, (now + op[1], seq, self._run, None))
                return
        # program finished
        w.end_times[self.index] = now
        w._live -= 1

    # -- send continuations ------------------------------------------------

    def _send_inter(self, _value=None) -> None:
        w = self.w
        tl = self.tl
        dst = self._p_dst
        cnt = self._p_cnt
        req = self._p_req
        dst_nic = w.nics[self._p_node]
        if cnt <= w.eager_threshold:
            inject_done, arrival = self.nic.transfer(
                tl.now, self.lr, dst_nic, cnt
            )
            msg = _Msg(self.rank, dst, self._p_tag, cnt, self._p_bid,
                       False, False, self.lr, None)
            tl.call(arrival, w._deliver, msg)
            tl.call(inject_done, w._complete_send, req)
        else:
            _, rts_arrival = self.nic.transfer(
                tl.now, self.lr, dst_nic, RTS_HEADER_BYTES
            )
            msg = _Msg(self.rank, dst, self._p_tag, cnt, self._p_bid,
                       False, True, self.lr, req)
            tl.call(rts_arrival, w._deliver, msg)
        self._run()

    def _send_intra(self, _value=None) -> None:
        w = self.w
        cnt = self._p_cnt
        req = self._p_req
        if self.mech.eager_for(cnt):
            msg = _Msg(self.rank, self._p_dst, self._p_tag, cnt,
                       self._p_bid, True, False, self.lr, None)
            w._deliver(msg)
            w._complete_send(req)
        else:
            msg = _Msg(self.rank, self._p_dst, self._p_tag, cnt,
                       self._p_bid, True, False, self.lr, req)
            w._deliver(msg)
        self._run()

    # -- wait/receive continuations ----------------------------------------

    def _next_wait(self, _value=None) -> None:
        i = self.wait_idx + 1
        if i < self.wait_len:
            self.wait_idx = i
            req = self.handles[self.wait_handles[i]]
            fn = (self._c_next_wait if req.kind == "send"
                  else self._c_recv_work)
            if req.done:
                self.tl._ready.append((fn, req.value))
            else:
                req.waiter = fn
        else:
            self._run()

    def _recv_work(self, msg: _Msg) -> None:
        w = self.w
        tl = self.tl
        now = tl.now
        if msg.intranode:
            mech = self.mech
            mem = self.mem
            info = w.info
            info.src_rank = msg.src
            info.dst_rank = self.rank
            info.nbytes = msg.nbytes
            info.src_buffer_id = msg.src_buffer_id
            fixed = mech.match_fixed(mem, info)
            d = mem.copy_occupy(
                now, mech.receiver_copy_bytes(msg.nbytes), fixed
            )
        elif msg.rendezvous:
            # CTS header travels back, then the data path is reserved
            data_start = now + w.send_overhead + w.wire_latency
            src_nic = w.nics[msg.src // w.ppn]
            inject_done, arrival = src_nic.transfer(
                data_start, msg.src_local, self.nic, msg.nbytes, dma=True,
            )
            tl.call(inject_done, w._complete_send, msg.sreq)
            d = arrival - now + w.recv_overhead
        elif msg.unexpected:
            d = self.mem.copy_occupy(now, msg.nbytes, w.recv_overhead)
        else:
            d = w.recv_overhead
        tl._seq = seq = tl._seq + 1
        heappush(tl._heap, (now + d, seq, self._c_recv_done, msg))

    def _recv_done(self, msg: _Msg) -> None:
        if msg.intranode:
            sreq = msg.sreq
            if sreq is not None:
                self.w._complete_send(sreq)
        self._next_wait()

    # -- PiP continuations ---------------------------------------------------

    def _post(self, _value=None) -> None:
        board = self.board
        key = self._p_key
        ev = board.get(key)
        if ev is None:
            ev = board[key] = TimelineEvent(self.tl)
        ev.trigger(self._p_val)
        self._run()

    def _lookup(self, value) -> None:
        tl = self.tl
        tl._seq = seq = tl._seq + 1
        heappush(tl._heap, (
            tl.now + self.w.pip_flag_time, seq, self._c_lookup_bind, value,
        ))

    def _lookup_bind(self, value) -> None:
        bind = self._p_bind
        if bind is not None:
            self.env[bind] = value
        self._run()

    def _add(self, _value=None) -> None:
        ctrs = self.ctrs
        key = self._p_key
        c = ctrs.get(key)
        if c is None:
            c = ctrs[key] = _Counter()
        c.value += self._p_val
        if c.waiters:
            still = []
            value = c.value
            for threshold, ev in c.waiters:
                if value >= threshold:
                    ev.trigger(value)
                else:
                    still.append((threshold, ev))
            c.waiters = still
        self._run()

    def _cwait(self, _value=None) -> None:
        tl = self.tl
        tl._seq = seq = tl._seq + 1
        heappush(tl._heap, (
            tl.now + self.w.pip_flag_time, seq, self._run, None,
        ))

    # -- accounting ----------------------------------------------------------

    def _account(self, col: int, cnt: int, messages: bool = False) -> None:
        acct = self.w.acct
        row = acct.get((self.rank, self.phase))
        if row is None:
            row = acct[(self.rank, self.phase)] = [0] * 6
        if messages:
            row[col] += 1
            row[col + 1] += cnt
        else:
            row[col] += cnt


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _prepare(library: str, collective: str, nodes: int, ppn: int,
             msg_bytes: int, params: Optional[MachineParams],
             thresholds) -> Tuple[FastWorld, PlannedCollective, list, bool]:
    """Shared setup: plan, world, per-participant base environments."""
    from repro.baselines.registry import make_library

    if not fastpath_supported(library, collective):
        raise ValueError(
            f"engine='dag' does not cover ({library!r}, {collective!r}); "
            f"only planner-backed pairs are supported — use engine='event'"
        )
    canon = library.lower().replace("_", "-").replace(" ", "-")
    lib = make_library(_DISPLAY_NAMES[canon])
    if thresholds is not None and not hasattr(lib, "thresholds"):
        raise ValueError(
            f"library {library!r} has no size thresholds to override"
        )
    planned = plan_for(
        canon, collective, nodes, ppn, msg_bytes, thresholds=thresholds
    )
    world = FastWorld(
        params if params is not None else bebop_broadwell(),
        nodes, ppn, lib.make_mechanism(), lib.software_overhead,
    )
    # binding buffers are allocated once per point (stable identities ->
    # page-fault/attach state warms across iterations), exactly like the
    # phantom buffers _make_body allocates once in run_point
    envs = [
        {name: (world.new_buf_id(), cnt) for name, cnt in binding.items()}
        for binding in planned.bindings
    ]
    flat = bool(planned.symbols)  # flat baselines carry a Sym("tag")
    return world, planned, envs, flat


def evaluate_point(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    thresholds=None,
) -> FastpathResult:
    """Evaluate one microbenchmark point on the DAG fast path.

    Mirrors :func:`repro.bench.microbench.run_point`'s protocol — warm-up
    iterations on the same world, then measured ones — and returns the
    per-iteration times plus the cumulative internode message count.
    """
    if measure < 1:
        raise ValueError("need at least one measured iteration")
    world, planned, envs, flat = _prepare(
        library, collective, nodes, ppn, msg_bytes, params, thresholds
    )
    # the flat wrappers scope tags with the world communicator's tag_key
    # plus a per-invocation sequence number
    tag_key = hash(tuple(range(nodes * ppn))) if flat else None
    samples = []
    for it in range(warmup + measure):
        symbols = (
            {"tag": world.next_group_tag(tag_key)} if flat else {}
        )
        elapsed = world.run_schedule(planned.schedule, envs, symbols)
        if it >= warmup:
            samples.append(elapsed)
    return FastpathResult(tuple(samples), world.internode_messages())


def evaluate_tables(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    thresholds=None,
) -> Dict[Tuple[int, str], List[int]]:
    """Per-(rank, phase) traffic volumes of one cold iteration.

    Rows are the static checker's 6-column layout (``[inter-msgs,
    inter-bytes, intra-msgs, intra-bytes, copy-bytes, reduce-bytes]``), so
    the result is directly comparable to
    :func:`repro.sched.check.check_planned`'s ``per_rank`` tables.
    """
    world, planned, envs, flat = _prepare(
        library, collective, nodes, ppn, msg_bytes, params, thresholds
    )
    world.acct = {}
    tag_key = hash(tuple(range(nodes * ppn))) if flat else None
    symbols = {"tag": world.next_group_tag(tag_key)} if flat else {}
    world.run_schedule(planned.schedule, envs, symbols)
    return world.acct

"""Planner-backed (library, collective) registry for static checking.

Maps the benchmark-facing library/collective names to the planner that the
live wrapper would execute for a given shape and message size — honouring
the same selection logic (:class:`~repro.core.tuning.Thresholds` for
PiP-MColl, MPICH's total-size/power-of-two selection for the flat
baselines) — and describes the buffer environment each participant starts
with, so :mod:`repro.sched.check` can verify the schedule without running
the simulator.

Coverage is exactly the planner-backed surface: the PiP-MColl primary
collectives (scatter/allgather/allreduce, plus the forced-small variant)
and the flat baselines' allgather.  The hierarchical libraries
(MVAPICH2/IntelMPI) compose algorithms that still run as hand-written
generators and are out of scope here.

Buffer sizes are in *elements*; the microbenchmarks drive every collective
with byte elements, so element counts equal byte counts throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sched.ir import Schedule
from repro.sched.plans.baseline import (
    plan_allgather_bruck,
    plan_allgather_recursive_doubling,
    plan_allgather_ring,
)
from repro.sched.plans.mcoll import (
    plan_allgather_large,
    plan_allgather_small,
    plan_allreduce_large,
    plan_allreduce_small,
    plan_scatter,
)
from repro.util.intmath import is_power_of
from repro.util.units import KB

__all__ = [
    "PlannedCollective",
    "plan_for",
    "planner_cache_info",
    "registry_combinations",
    "LIBRARIES",
    "COLLECTIVES",
]

#: checker-facing library names (canonical, lowercase)
LIBRARIES = ("pip-mcoll", "pip-mcoll-small", "pip-mpich", "openmpi")
COLLECTIVES = ("scatter", "allgather", "allreduce")

#: MPICH's flat allgather switches on *total* receive size (see
#: repro.baselines.libraries._mpich_allgather)
_MPICH_ALLGATHER_RING_TOTAL = 80 * KB


@dataclass(frozen=True)
class PlannedCollective:
    """One checkable schedule plus its execution environment.

    ``ranks[i]`` is the global rank running ``schedule.programs[i]``;
    ``bindings[i]`` maps that participant's input buffer names to element
    counts; ``symbols`` resolves the schedule's ``Sym`` markers (shared by
    all participants, as at execution time).
    """

    label: str
    schedule: Schedule
    ranks: Tuple[int, ...]
    bindings: Tuple[Dict[str, int], ...]
    symbols: dict = field(default_factory=dict)


def _norm_library(name: str) -> str:
    canon = name.lower().replace("_", "-").replace(" ", "-")
    if canon not in LIBRARIES:
        raise ValueError(
            f"no planner-backed library {name!r}; known: {list(LIBRARIES)}"
        )
    return canon


def _mcoll_thresholds(library: str, thresholds) -> "Thresholds":
    from repro.core.tuning import Thresholds

    if thresholds is not None:
        return thresholds
    if library == "pip-mcoll-small":
        return Thresholds.always_small()
    return Thresholds()


def plan_for(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    nbytes: int,
    thresholds: Optional["Thresholds"] = None,
) -> PlannedCollective:
    """The schedule the named library would execute for this point.

    ``nbytes`` is the per-process message size in bytes (byte elements),
    matching the microbenchmark convention.
    """
    library = _norm_library(library)
    if collective not in COLLECTIVES:
        raise ValueError(
            f"no planner-backed collective {collective!r}; "
            f"known: {list(COLLECTIVES)}"
        )
    if nodes < 1 or ppn < 1 or nbytes < 1:
        raise ValueError("nodes, ppn and nbytes must be positive")
    size = nodes * ppn
    world = tuple(range(size))

    if library in ("pip-mcoll", "pip-mcoll-small"):
        thr = _mcoll_thresholds(library, thresholds)
        if collective == "scatter":
            schedule = plan_scatter(nodes, ppn, nbytes, 0, True)
            bindings = tuple(
                {"send": size * nbytes, "recv": nbytes} if rank == 0
                else {"recv": nbytes}
                for rank in world
            )
        elif collective == "allgather":
            if nbytes < thr.allgather_large_bytes:
                schedule = plan_allgather_small(nodes, ppn, nbytes)
            else:
                schedule = plan_allgather_large(nodes, ppn, nbytes)
            bindings = tuple(
                {"send": nbytes, "recv": size * nbytes} for _ in world
            )
        else:  # allreduce
            if nbytes < thr.allreduce_large_bytes:
                schedule = plan_allreduce_small(nodes, ppn, nbytes)
            else:
                schedule = plan_allreduce_large(nodes, ppn, nbytes)
            bindings = tuple(
                {"send": nbytes, "recv": nbytes} for _ in world
            )
        return PlannedCollective(
            label=f"{library} {collective} {nodes}x{ppn} {nbytes}B "
                  f"[{schedule.label}]",
            schedule=schedule,
            ranks=world,
            bindings=bindings,
        )

    # flat baselines (PiP-MPICH / OpenMPI share MPICH's selection)
    if collective != "allgather":
        raise ValueError(
            f"{library} only has a planner-backed allgather; "
            f"{collective} still runs as a generator"
        )
    total = size * nbytes
    if total < _MPICH_ALLGATHER_RING_TOTAL:
        if is_power_of(2, size):
            schedule = plan_allgather_recursive_doubling(world, nbytes)
        else:
            schedule = plan_allgather_bruck(world, nbytes)
    else:
        schedule = plan_allgather_ring(world, nbytes)
    return PlannedCollective(
        label=f"{library} allgather {nodes}x{ppn} {nbytes}B "
              f"[{schedule.label}]",
        schedule=schedule,
        ranks=world,
        bindings=tuple(
            {"send": nbytes, "recv": size * nbytes} for _ in world
        ),
        symbols={"tag": ("check-tag",)},
    )


def planner_cache_info() -> Dict[str, "object"]:
    """``lru_cache`` counters of every registered planner, by name.

    Each value is the planner's ``functools.CacheInfo`` (hits, misses,
    maxsize, currsize).  Sweeps hit the same (shape, size) plan once per
    point per process; anything beyond one miss per distinct signature
    means re-planning, which ``tests/sched/test_fastpath.py`` guards
    against.
    """
    planners = (
        plan_scatter,
        plan_allgather_small,
        plan_allgather_large,
        plan_allreduce_small,
        plan_allreduce_large,
        plan_allgather_bruck,
        plan_allgather_recursive_doubling,
        plan_allgather_ring,
    )
    info = {fn.__name__: fn.cache_info() for fn in planners}
    # the batch engine's lowering cache is the same kind of animal — one
    # compiled artifact per structural signature, re-use counted — so it
    # reports through the same window (lazy import: the registry must not
    # pull in the engine stack)
    from repro.sched.batch import lowering_cache_info

    info["batch_lowering"] = lowering_cache_info()
    return info


def registry_combinations() -> List[Tuple[str, str]]:
    """Every (library, collective) pair with planner-backed coverage."""
    combos = [
        (lib, coll)
        for lib in ("pip-mcoll", "pip-mcoll-small")
        for coll in COLLECTIVES
    ]
    combos += [("pip-mpich", "allgather"), ("openmpi", "allgather")]
    return combos

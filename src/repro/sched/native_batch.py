"""Native batch engine: the vector-clock column replay, lowered to arrays.

``engine="native-batch"`` is the batch engine's native tier, exactly as
``engine="native"`` (:mod:`repro.sched.native`) is the DAG engine's: the
batch engine's structural-signature partitions are lowered one step
further — names interned, operands packed into int64 tables, the gathered
``(S,)`` byte-count vectors stacked into one count matrix — and each
vectorized pass replays inside the single kernel of
:mod:`repro.sim.native_batchline` (numba-JIT where numba imports, plain
Python otherwise; same source either way).

Division of labour per iteration, mirroring :class:`NativeWorld`:

* **Python prologue** (this module): evaluate the per-iteration dynamic
  tag builders, map tag values to dense match-queue / board / counter
  ids (queues fresh per iteration — the kernel verifies they drain and
  bails otherwise; board and counter state persists across iterations,
  exactly like ``BatchWorld.boards``/``counters``), size the CSR scratch
  arrays, and reset the per-iteration environment tables.
* **Kernel**: the whole vector-clock event loop — heap, ready ring,
  matching, the nopython twins of ``BatchNic``/``BatchFabric``/
  ``BatchMemory`` and the mechanism dispatch — over ``float64[S]`` time
  rows.  See :mod:`repro.sim.native_batchline` for the bit-identity
  argument.
* **Adjudication** (this module, after the run): the kernel records the
  raw pop and resource-touch logs; they are replayed through a *real*
  :class:`~repro.sim.batchline.BatchTimeline` so
  ``order_divergence()`` / ``divergence_labels()`` — and the counter
  crossing re-validation of :class:`~repro.sched.batch.BatchWorld` —
  run on the very code the pure engine uses.  Divergent sizes re-enter
  the existing re-batch/DAG fallback unchanged.

Anything the array form cannot replay exactly (pool overflow after the
4x retry, cross-iteration match-queue carry-over) raises
:class:`~repro.sched.native.NativeBailout`, and
:func:`evaluate_column` silently reruns that partition on the
pure-Python batchline — ``engine="native-batch"`` never returns
approximate numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.params import MachineParams
from repro.mpi.transport import RTS_HEADER_BYTES
from repro.sched import batch as _batch
from repro.sched.batch import (
    ColumnResult,
    _counter_crossing,
    _LoweredColumn,
    batch_supported,
)
from repro.sched.fastpath import (
    FastpathResult,
    _OP_ADD,
    _OP_ALLOC,
    _OP_COMPUTE,
    _OP_COPY,
    _OP_CWAIT,
    _OP_LOOKUP,
    _OP_PHASE,
    _OP_POST,
    _OP_RECV,
    _OP_REDUCE,
    _OP_SEND_INTER,
    _OP_SEND_INTRA,
    _OP_WAIT,
)
from repro.sched.native import NativeBailout, _mechanism_codes
from repro.sim import native_batchline as nbl
from repro.sim.batchline import BatchDivergence, BatchTimeline
from repro.sim.engine import DeadlockError

__all__ = [
    "NativeBailout",
    "native_batch_supported",
    "native_batch_available",
    "evaluate_column",
    "warm_kernels",
    "NativeBatchWorld",
]

#: coverage is the batch engine's: the planner-backed registry
native_batch_supported = batch_supported


def native_batch_available() -> bool:
    """True when the JIT tier is usable (numba importable, not disabled
    via ``PIPMCOLL_NO_NATIVE``).  Without it, ``engine="native-batch"``
    runs the same kernel source interpreted — same bits, pure Python —
    and ``resolve_engine`` prefers the plain batch engine instead."""
    return nbl.jit_available()


class _Overflow(Exception):
    """A pool capacity was exceeded; retry with larger pools."""


#: tag-op kinds for the per-iteration id-resolution scan
_T_SEND, _T_RECV, _T_POST, _T_LOOKUP, _T_ADD, _T_CWAIT = range(6)

_I64 = np.int64
_F64 = np.float64


class _CtrProxy:
    """Duck-typed counter for the post-hoc crossing re-validation:
    :func:`repro.sched.batch._counter_crossing` only reads ``adds`` and
    ``sorted_ok``."""

    __slots__ = ("adds", "sorted_ok")

    def __init__(self, adds, sorted_ok):
        self.adds = adds
        self.sorted_ok = sorted_ok


class NativeBatchWorld:
    """One partition's lowered column + persistent vector world state.

    The analogue of :class:`~repro.sched.batch.BatchWorld`: all state
    persists across the point's iterations (warm caches, NIC pipelines,
    board/counter values, the monotone push sequence), but it lives in
    flat numpy arrays the replay kernel mutates in place.
    """

    def __init__(self, lowered: _LoweredColumn, nodes: int, ppn: int,
                 mechanism, software_overhead: float, width: int,
                 params: MachineParams, iters: int,
                 force_interp: bool = False, scale: int = 1):
        params.validate()
        self.params = params
        self.nodes = nodes
        self.ppn = ppn
        self.size = nodes * ppn
        self.width = width
        self.num_namespaces = lowered.num_namespaces
        self.flat = lowered.flat
        self.tag_key = hash(tuple(range(self.size))) if lowered.flat else None
        self._group_seqs: Dict = {}
        self._op_seq = 0
        self.kernels = nbl.get_kernels(force_interp=force_interp)

        small, large, thresh = _mechanism_codes(mechanism)
        track_mb = getattr(mechanism, "warm_state", True)

        compiled = lowered.compiled
        ntasks = len(compiled)
        if ntasks != self.size:
            raise NativeBailout("schedule size != nodes * ppn")
        S = width

        # -- name interning --------------------------------------------
        names: Dict[str, int] = {}

        def name_id(n: str) -> int:
            i = names.get(n)
            if i is None:
                i = names[n] = len(names)
            return i

        # -- static count / compute rows (gathered ints -> NB rows) ----
        nb_rows: List[np.ndarray] = []
        nb_keys: Dict = {}

        def nb_row(v) -> int:
            if isinstance(v, np.ndarray):
                key = ("a", v.tobytes())
            else:
                key = ("i", int(v))
            r = nb_keys.get(key)
            if r is None:
                r = nb_keys[key] = len(nb_rows)
                if isinstance(v, np.ndarray):
                    nb_rows.append(np.asarray(v, dtype=_I64))
                else:
                    nb_rows.append(np.full(S, int(v), dtype=_I64))
            return r

        fp_rows: List[np.ndarray] = []

        def fp_row(v) -> int:
            r = len(fp_rows)
            if isinstance(v, np.ndarray):
                fp_rows.append(np.asarray(v, dtype=_F64))
            else:
                fp_rows.append(np.full(S, float(v), dtype=_F64))
            return r

        # -- opcode lowering (same tuple layouts as the batch _run) ----
        rows: List[List[int]] = []
        wlists: List[int] = []
        opstart = [0]
        #: per-task (global op idx, kind, partner, tag slot)
        self.tag_ops: List[List[Tuple[int, int, int, int]]] = []
        self.tags: List[list] = []
        self.dyn_tags = []
        n_sends = 0
        n_recvs = 0
        n_allocs = 0
        n_adds = 0
        n_cwaits = 0
        n_resolve = 0
        max_handles = 1
        for index, comp in enumerate(compiled):
            node = index // ppn
            t_ops: List[Tuple[int, int, int, int]] = []
            max_handles = max(max_handles, comp.num_handles)
            for op in comp.ops:
                gi = len(rows)
                code = op[0]
                if code == _OP_SEND_INTRA:
                    _, dst, name, off, cnt, slot, handle = op
                    if cnt is None:
                        n_resolve += 1
                    rows.append([nbl.OP_SEND_INTRA, dst, name_id(name),
                                 nb_row(off),
                                 -1 if cnt is None else nb_row(cnt),
                                 handle, 0])
                    t_ops.append((gi, _T_SEND, dst, slot))
                    n_sends += 1
                elif code == _OP_SEND_INTER:
                    _, dst, dst_node, name, off, cnt, slot, handle = op
                    if cnt is None:
                        n_resolve += 1
                    rows.append([nbl.OP_SEND_INTER, dst, dst_node,
                                 name_id(name), nb_row(off),
                                 -1 if cnt is None else nb_row(cnt),
                                 handle])
                    t_ops.append((gi, _T_SEND, dst, slot))
                    n_sends += 1
                elif code == _OP_RECV:
                    _, src, slot, handle = op
                    rows.append([nbl.OP_RECV, handle, 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_RECV, src, slot))
                    n_recvs += 1
                elif code == _OP_WAIT:
                    _, handles, ln = op
                    rows.append([nbl.OP_WAIT, len(wlists), ln,
                                 0, 0, 0, 0])
                    wlists.extend(handles)
                elif code in (_OP_COPY, _OP_REDUCE):
                    _, name, off, cnt = op
                    if cnt is None:
                        n_resolve += 1
                    rows.append([nbl.OP_COPY if code == _OP_COPY
                                 else nbl.OP_REDUCE,
                                 name_id(name), nb_row(off),
                                 -1 if cnt is None else nb_row(cnt),
                                 0, 0, 0])
                elif code == _OP_POST:
                    _, slot, name, off, cnt = op
                    if cnt is None:
                        n_resolve += 1
                    rows.append([nbl.OP_POST, name_id(name), nb_row(off),
                                 -1 if cnt is None else nb_row(cnt),
                                 0, 0, 0])
                    t_ops.append((gi, _T_POST, node, slot))
                elif code == _OP_LOOKUP:
                    _, slot, bind = op
                    rows.append([nbl.OP_LOOKUP,
                                 -1 if bind is None else name_id(bind),
                                 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_LOOKUP, node, slot))
                elif code == _OP_ADD:
                    _, slot, n = op
                    rows.append([nbl.OP_ADD, n, 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_ADD, node, slot))
                    n_adds += 1
                elif code == _OP_CWAIT:
                    _, slot, n = op
                    rows.append([nbl.OP_CWAIT, n, 0, 0, 0, 0, 0])
                    t_ops.append((gi, _T_CWAIT, node, slot))
                    n_cwaits += 1
                elif code == _OP_ALLOC:
                    _, name, count = op
                    rows.append([nbl.OP_ALLOC, name_id(name),
                                 nb_row(count), 0, 0, 0, 0])
                    n_allocs += 1
                elif code == _OP_PHASE:
                    rows.append([nbl.OP_PHASE, 0, 0, 0, 0, 0, 0])
                else:  # _OP_COMPUTE
                    rows.append([nbl.OP_COMPUTE, fp_row(op[1]),
                                 0, 0, 0, 0, 0])
            opstart.append(len(rows))
            self.tag_ops.append(t_ops)
            self.tags.append(list(comp.const_tags))
            self.dyn_tags.append(comp.dyn_tags)

        rts_row = nb_row(RTS_HEADER_BYTES)

        # -- base environments (baked binding-buffer ids) ---------------
        for env in lowered.envs:
            for bname in env:
                name_id(bname)
        n_names = max(1, len(names))
        env0_bid = np.full((ntasks, n_names), -1, dtype=_I64)
        env0_cnt = np.full((ntasks, n_names), -1, dtype=_I64)
        for index, env in enumerate(lowered.envs):
            for bname, (bid, cnt) in env.items():
                ni = names[bname]
                env0_bid[index, ni] = bid
                env0_cnt[index, ni] = nb_row(cnt)
        self.env0_bid = env0_bid
        self.env0_cnt = env0_cnt

        nops = len(rows)
        n_static = len(nb_rows)
        nbufs_total = lowered.nbufs + iters * n_allocs + 2

        st = {}
        st["OPS"] = (np.array(rows, dtype=_I64).reshape(nops, 7)
                     if rows else np.zeros((0, 7), dtype=_I64))
        st["OPSTART"] = np.array(opstart, dtype=_I64)
        st["WLISTS"] = np.array(wlists or [0], dtype=_I64)
        st["FPR"] = (np.stack(fp_rows) if fp_rows
                     else np.zeros((1, S), dtype=_F64))
        st["TNODE"] = np.array([i // ppn for i in range(ntasks)],
                               dtype=_I64)
        st["TLR"] = np.array([i % ppn for i in range(ntasks)], dtype=_I64)
        st["OPQ"] = np.full(max(1, nops), -1, dtype=_I64)
        st["OPB"] = np.full(max(1, nops), -1, dtype=_I64)
        st["OPCID"] = np.full(max(1, nops), -1, dtype=_I64)
        st["ENVB"] = np.empty_like(env0_bid)
        st["ENVCR"] = np.empty_like(env0_cnt)
        st["SCR"] = np.zeros((ntasks, nbl.S_LEN), dtype=_I64)
        st["HND"] = np.zeros((ntasks, max_handles), dtype=_I64)

        # -- pools (generous static caps; ST_OVERFLOW retries at 4x) ---
        tcap = 2 + iters * (8 * nops + 3 * ntasks + 32) * scale
        ncap = n_static + 2 + iters * (n_resolve + 2) * scale
        mcap = 2 + iters * (2 * nops + 8) * scale
        popcap = 2 + iters * (4 * nops + ntasks + 16) * scale
        trcap = 2 + iters * (8 * nops + 32) * scale
        msgcap = 2 + iters * max(1, n_sends) * scale
        reqcap = 2 + iters * max(1, n_sends + n_recvs) * scale
        cacap = 2 + iters * max(1, n_adds) * scale
        ckcap = 2 + ntasks + iters * (2 * max(1, n_cwaits) + 4) * scale
        hcap = 2 * ntasks + 2 * max(1, n_sends) + 64
        rcap = 3 * ntasks + 2 * max(1, n_sends + n_recvs) + 64

        TP = np.zeros((tcap, S), dtype=_F64)
        NB = np.zeros((ncap, S), dtype=_I64)
        for r, row in enumerate(nb_rows):
            NB[r] = row
        st["TP"] = TP
        st["NB"] = NB
        st["MP"] = np.zeros((mcap, S), dtype=np.bool_)
        st["ht"] = np.zeros(hcap, dtype=_F64)
        for nm in ("hs", "hk", "hta", "hx", "hrow", "hpar"):
            st[nm] = np.zeros(hcap, dtype=_I64)
        for nm in ("rk", "rt", "ra", "rov"):
            st[nm] = np.zeros(rcap, dtype=_I64)
        for nm in ("pop_row", "pop_seq", "pop_epoch", "pop_par"):
            st[nm] = np.zeros(popcap, dtype=_I64)
        for nm in ("tr_res", "tr_cur", "tr_kind", "tr_mrow"):
            st[nm] = np.zeros(trcap, dtype=_I64)
        for nm in ("m_src", "m_dst", "m_cnt", "m_bid", "m_flags",
                   "m_lr", "m_sreq", "m_trow", "m_qid"):
            st[nm] = np.zeros(msgcap, dtype=_I64)
        for nm in ("q_kind", "q_done", "q_msg", "q_trow", "q_wait",
                   "q_wrow"):
            st[nm] = np.zeros(reqcap, dtype=_I64)
        for nm in ("ca_row", "ca_nv", "ca_next"):
            st[nm] = np.zeros(cacap, dtype=_I64)
        for nm in ("ck_cid", "ck_thr", "ck_reach", "ck_used"):
            st[nm] = np.zeros(ckcap, dtype=_I64)
        st["CS"] = np.zeros((3, max(2, cacap)), dtype=_I64)
        st["warm"] = np.zeros((3, self.size, nbufs_total), dtype=_I64)
        st["lane_free"] = np.zeros(
            (nodes, params.derived_copy_lanes(), S), dtype=_F64)
        st["inj_free"] = np.zeros((nodes, ppn, S), dtype=_F64)
        st["nic_state"] = np.zeros((nodes, 4, S), dtype=_F64)
        st["fabric_free"] = np.zeros((1, S), dtype=_F64)
        st["end_row"] = np.zeros(ntasks, dtype=_I64)

        # -- persistent boards / counters (arrays grown per iteration) --
        self._bmap: Dict = {}
        self._cmap: Dict = {}
        st["btrig"] = np.zeros(1, dtype=_I64)
        st["bvbid"] = np.zeros(1, dtype=_I64)
        st["bvrow"] = np.zeros(1, dtype=_I64)
        st["btrow"] = np.zeros(1, dtype=_I64)
        st["cval"] = np.zeros(1, dtype=_I64)
        st["csort"] = np.ones(1, dtype=_I64)
        st["ctmax"] = np.full(1, -1, dtype=_I64)
        st["ca_head"] = np.full(1, -1, dtype=_I64)
        st["ca_tail"] = np.full(1, -1, dtype=_I64)
        # (bw_*/cw_*/AQ/PQ CSR scratch is sized per iteration)

        # -- parameter vectors -----------------------------------------
        P = np.zeros(nbl.P_LEN, dtype=_F64)
        P[nbl.P_PROC_BW] = params.proc_bandwidth
        P[nbl.P_PROC_DMA_BW] = params.proc_dma_bandwidth
        P[nbl.P_RATE_FLOOR] = 1.0 / params.proc_msg_rate
        P[nbl.P_NIC_BW] = params.nic_bandwidth
        P[nbl.P_NIC_INTERVAL] = 1.0 / params.nic_msg_rate
        P[nbl.P_FABRIC_BW] = params.fabric_bandwidth or 0.0
        P[nbl.P_WIRE_LAT] = params.wire_latency
        P[nbl.P_SEND_OVH] = params.send_overhead
        P[nbl.P_RECV_OVH] = params.recv_overhead
        P[nbl.P_PIP_POST] = params.pip_post_time
        P[nbl.P_PIP_FLAG] = params.pip_flag_time
        P[nbl.P_COPY_LAT] = params.copy_latency
        P[nbl.P_CORE_BW] = params.core_copy_bw
        P[nbl.P_REDUCE_BW] = params.reduce_bw
        P[nbl.P_PAGE_FAULT] = params.page_fault_time
        P[nbl.P_SYSCALL] = params.syscall_time
        P[nbl.P_SIZESYNC] = params.pip_sizesync_time
        P[nbl.P_XP_EXPOSE] = params.xpmem_expose_time
        P[nbl.P_XP_ATTACH] = params.xpmem_attach_time
        P[nbl.P_XP_REATTACH] = params.xpmem_reattach_time
        P[nbl.P_SW_OVH] = software_overhead
        st["P"] = P
        C = np.zeros(nbl.C_LEN, dtype=_I64)
        C[nbl.C_NODES] = nodes
        C[nbl.C_PPN] = ppn
        C[nbl.C_NTASKS] = ntasks
        C[nbl.C_HAS_FABRIC] = 1 if params.fabric_bandwidth else 0
        C[nbl.C_MECH_SMALL] = small
        C[nbl.C_MECH_LARGE] = large
        C[nbl.C_MECH_THRESH] = thresh
        C[nbl.C_EAGER_THRESH] = params.eager_threshold
        C[nbl.C_PAGE_SIZE] = params.page_size
        C[nbl.C_RTS_ROW] = rts_row
        C[nbl.C_TRACK_MB] = 1 if track_mb else 0
        C[nbl.C_MB_BASE] = ntasks + 3 * nodes + 1
        C[nbl.C_QRES_BASE] = ntasks + 3 * nodes + 1 + nbufs_total + 1
        st["C"] = C

        W = np.zeros(nbl.W_LEN, dtype=_I64)
        W[nbl.W_TPN] = 1          # TP[0] is the zero start vector
        W[nbl.W_NBN] = n_static
        W[nbl.W_BUFSEQ] = lowered.nbufs
        st["W"] = W
        self.W = W
        self.st = st

    # -- identity ------------------------------------------------------

    def next_group_tag(self, tag_key) -> tuple:
        seq = self._group_seqs.get(tag_key, 0) + 1
        self._group_seqs[tag_key] = seq
        return (tag_key, seq)

    def internode_messages(self) -> int:
        return int(self.W[nbl.W_MSGS])

    # -- one iteration -------------------------------------------------

    def run_iteration(self) -> np.ndarray:
        st = self.st
        W = self.W
        k = self.num_namespaces
        ns_values = tuple(range(self._op_seq + 1, self._op_seq + 1 + k))
        self._op_seq += k
        symbols = (
            {"tag": self.next_group_tag(self.tag_key)} if self.flat else {}
        )

        # prologue: resolve tag values to dense ids
        qmap: Dict = {}
        bmap = self._bmap
        cmap = self._cmap
        send_q: List[int] = []
        recv_q: List[int] = []
        lookup_b: List[int] = []
        cwait_c: List[int] = []
        OPQ = st["OPQ"]
        OPB = st["OPB"]
        OPCID = st["OPCID"]
        ntasks = self.size
        for index in range(ntasks):
            tags = self.tags[index]
            dyn = self.dyn_tags[index]
            if dyn:
                for slot, builder in dyn:
                    tags[slot] = builder(ns_values, symbols)
            for gi, kind, partner, slot in self.tag_ops[index]:
                v = tags[slot]
                if kind == _T_SEND:
                    key = (partner, index, v)
                    qid = qmap.get(key)
                    if qid is None:
                        qid = qmap[key] = len(qmap)
                    OPQ[gi] = qid
                    send_q.append(qid)
                elif kind == _T_RECV:
                    key = (index, partner, v)
                    qid = qmap.get(key)
                    if qid is None:
                        qid = qmap[key] = len(qmap)
                    OPQ[gi] = qid
                    recv_q.append(qid)
                elif kind == _T_POST or kind == _T_LOOKUP:
                    key = (partner, v)
                    b = bmap.get(key)
                    if b is None:
                        b = bmap[key] = len(bmap)
                    OPB[gi] = b
                    if kind == _T_LOOKUP:
                        lookup_b.append(b)
                else:
                    key = (partner, v)
                    c = cmap.get(key)
                    if c is None:
                        c = cmap[key] = len(cmap)
                    OPCID[gi] = c
                    if kind == _T_CWAIT:
                        cwait_c.append(c)

        nq = max(1, len(qmap))
        acnt = (np.bincount(np.array(send_q, dtype=_I64), minlength=nq)
                if send_q else np.zeros(nq, dtype=_I64))
        pcnt = (np.bincount(np.array(recv_q, dtype=_I64), minlength=nq)
                if recv_q else np.zeros(nq, dtype=_I64))
        aq_off = np.zeros(nq + 1, dtype=_I64)
        np.cumsum(acnt, out=aq_off[1:])
        pq_off = np.zeros(nq + 1, dtype=_I64)
        np.cumsum(pcnt, out=pq_off[1:])
        st["AQ"] = np.zeros(max(1, int(aq_off[-1])), dtype=_I64)
        st["PQ"] = np.zeros(max(1, int(pq_off[-1])), dtype=_I64)
        st["AQB"] = aq_off[:-1].copy()
        st["PQB"] = pq_off[:-1].copy()
        st["aq_head"] = np.zeros(nq, dtype=_I64)
        st["aq_tail"] = np.zeros(nq, dtype=_I64)
        st["pq_head"] = np.zeros(nq, dtype=_I64)
        st["pq_tail"] = np.zeros(nq, dtype=_I64)
        st["C"][nbl.C_NQUEUES] = len(qmap)

        nb_ = max(1, len(bmap))
        if len(st["btrig"]) < nb_:
            grow = nb_ - len(st["btrig"])
            for nm in ("btrig", "bvbid", "bvrow", "btrow"):
                st[nm] = np.concatenate(
                    [st[nm], np.zeros(grow, dtype=_I64)])
        bcnt = (np.bincount(np.array(lookup_b, dtype=_I64), minlength=nb_)
                if lookup_b else np.zeros(nb_, dtype=_I64))
        bw_off = np.zeros(nb_ + 1, dtype=_I64)
        np.cumsum(bcnt, out=bw_off[1:])
        bwcap = max(1, int(bw_off[-1]))
        st["bw_task"] = np.zeros(bwcap, dtype=_I64)
        st["bw_rrow"] = np.zeros(bwcap, dtype=_I64)
        st["bw_base"] = bw_off[:-1].copy()
        st["bw_tail"] = np.zeros(nb_, dtype=_I64)

        ncs = max(1, len(cmap))
        if len(st["cval"]) < ncs:
            grow = ncs - len(st["cval"])
            st["cval"] = np.concatenate(
                [st["cval"], np.zeros(grow, dtype=_I64)])
            st["csort"] = np.concatenate(
                [st["csort"], np.ones(grow, dtype=_I64)])
            for nm in ("ctmax", "ca_head", "ca_tail"):
                st[nm] = np.concatenate(
                    [st[nm], np.full(grow, -1, dtype=_I64)])
        ccnt = (np.bincount(np.array(cwait_c, dtype=_I64), minlength=ncs)
                if cwait_c else np.zeros(ncs, dtype=_I64))
        cw_off = np.zeros(ncs + 1, dtype=_I64)
        np.cumsum(ccnt, out=cw_off[1:])
        cwcap = max(1, int(cw_off[-1]))
        for nm in ("cw_thr", "cw_task", "cw_rrow", "cw_act"):
            st[nm] = np.zeros(cwcap, dtype=_I64)
        st["cw_base"] = cw_off[:-1].copy()
        st["cw_tail"] = np.zeros(ncs, dtype=_I64)

        np.copyto(st["ENVB"], self.env0_bid)
        np.copyto(st["ENVCR"], self.env0_cnt)

        W[nbl.W_EPOCH] += 1
        W[nbl.W_START] = W[nbl.W_NOWROW]

        self.kernels["replay"](*[st[n] for n in nbl.REPLAY_ARGS])

        status = int(W[nbl.W_STATUS])
        if status == nbl.ST_DIVERGENT:
            raise BatchDivergence(
                st["MP"][int(W[nbl.W_DIVROW])].copy())
        if status == nbl.ST_DEADLOCK:
            raise DeadlockError(
                f"{int(W[nbl.W_LIVE])} schedule program(s) blocked — "
                f"batch evaluation deadlocked"
            )
        if status == nbl.ST_OVERFLOW:
            raise _Overflow()
        if status == nbl.ST_LEFTOVER:
            raise NativeBailout(
                "cross-iteration match-queue carry-over; the array "
                "queues are per-iteration — falling back to the "
                "pure-Python batchline"
            )
        return st["TP"][int(W[nbl.W_ELAPSED])].copy()

    # -- post-hoc adjudication (the pure engine's own code) ------------

    def _reconstruct_timeline(self) -> BatchTimeline:
        """Replay the raw pop/touch logs through a real BatchTimeline.

        The collapse rules, conflict matrix, tie reconstruction and
        signature labelling then run on the very code the pure engine
        uses; integer resource ids stand in bijectively for the pure
        engine's tuple keys.
        """
        st = self.st
        W = self.W
        TP = st["TP"]
        MP = st["MP"]
        tl = BatchTimeline(self.width)
        npop = int(W[nbl.W_POPN])
        pop_row = st["pop_row"]
        tl._pop_times = [TP[int(pop_row[i])] for i in range(npop)]
        tl._pop_seqs = [int(x) for x in st["pop_seq"][:npop]]
        tl._pop_epochs = [int(x) for x in st["pop_epoch"][:npop]]
        tl._pop_pars = [int(x) for x in st["pop_par"][:npop]]
        ntr = int(W[nbl.W_TRN])
        tr_res = st["tr_res"]
        tr_cur = st["tr_cur"]
        tr_kind = st["tr_kind"]
        tr_mrow = st["tr_mrow"]
        for i in range(ntr):
            tl._cur = int(tr_cur[i])
            res = int(tr_res[i])
            if tr_kind[i] == 0:
                tl.touch(res)
            else:
                mr = int(tr_mrow[i])
                if mr == -1:
                    tl.touch_ok(res, True)
                elif mr == -2:
                    tl.touch_ok(res, False)
                else:
                    tl.touch_ok(res, MP[mr])
        tl._cur = -1
        return tl

    def order_divergence(self, tl: BatchTimeline) -> np.ndarray:
        """Mirror of :meth:`BatchWorld.order_divergence` over the logs."""
        st = self.st
        W = self.W
        if W[nbl.W_BCONF]:
            return np.ones(self.width, dtype=bool)
        divergent = tl.order_divergence()
        nck = int(W[nbl.W_CKN])
        if nck:
            TP = st["TP"]
            ca_row = st["ca_row"]
            ca_nv = st["ca_nv"]
            ca_next = st["ca_next"]
            ca_head = st["ca_head"]
            csort = st["csort"]
            divergent = divergent.copy()
            adds_cache: Dict[int, list] = {}
            for i in range(nck):
                cid = int(st["ck_cid"][i])
                adds = adds_cache.get(cid)
                if adds is None:
                    adds = []
                    j = int(ca_head[cid])
                    while j >= 0:
                        adds.append((TP[int(ca_row[j])], int(ca_nv[j])))
                        j = int(ca_next[j])
                    adds_cache[cid] = adds
                proxy = _CtrProxy(adds, bool(csort[cid]))
                truth = np.maximum(
                    TP[int(st["ck_reach"][i])],
                    _counter_crossing(proxy, int(st["ck_thr"][i])),
                )
                divergent |= TP[int(st["ck_used"][i])] != truth
        return divergent


def _evaluate_partition_native(
    lowered: _LoweredColumn, nodes: int, ppn: int,
    part: Tuple[int, ...], lib, params: MachineParams, warmup: int,
    measure: int, force_interp: bool = False,
) -> Tuple[List[FastpathResult], np.ndarray, Optional[np.ndarray]]:
    """One vectorized pass over ``part`` on the native kernel.

    Drop-in for :func:`repro.sched.batch._evaluate_partition` — same
    signature, same return shape, bit-identical values.  May raise
    :class:`BatchDivergence` (split), :class:`DeadlockError`, or
    :class:`NativeBailout` (rerun this partition on the pure engine).
    """
    iters = warmup + measure
    mech = lib.make_mechanism()
    for scale in (1, 4):
        world = NativeBatchWorld(
            lowered, nodes, ppn, mech, lib.software_overhead, len(part),
            params, iters, force_interp=force_interp, scale=scale,
        )
        samples: List[np.ndarray] = []
        try:
            for it in range(iters):
                elapsed = world.run_iteration()
                if it >= warmup:
                    samples.append(elapsed)
        except _Overflow:
            continue
        tl = world._reconstruct_timeline()
        divergent = world.order_divergence(tl)
        labels = (
            tl.divergence_labels(divergent) if divergent.any() else None
        )
        msgs = world.internode_messages()
        results = [
            FastpathResult(tuple(float(v[j]) for v in samples), msgs)
            for j in range(len(part))
        ]
        return results, divergent, labels
    raise NativeBailout(
        "array pools overflowed even at the 4x retry capacity"
    )


def evaluate_column(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    sizes,
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    thresholds=None,
    force_interp: bool = False,
) -> ColumnResult:
    """Evaluate a whole message-size column on the native batch kernel.

    Same protocol, grouping, splitting and fallback policy as
    :func:`repro.sched.batch.evaluate_column` — this *is* that function,
    with each vectorized pass replayed by the array kernel instead of the
    pure-Python batchline, and per-pass
    :class:`~repro.sched.native.NativeBailout` falling back to the pure
    pass (bit-identical either way).  ``ColumnStats`` additionally
    reports ``kernel_mode`` and ``native_bailouts``.
    """
    counters = {"bailouts": 0}

    def _pe(lowered, nodes_, ppn_, part, lib, params_, warmup_, measure_):
        try:
            return _evaluate_partition_native(
                lowered, nodes_, ppn_, part, lib, params_, warmup_,
                measure_, force_interp=force_interp,
            )
        except NativeBailout:
            counters["bailouts"] += 1
            return _batch._evaluate_partition(
                lowered, nodes_, ppn_, part, lib, params_, warmup_,
                measure_,
            )

    res = _batch.evaluate_column(
        library, collective, nodes, ppn, sizes, params=params,
        warmup=warmup, measure=measure, thresholds=thresholds,
        partition_evaluator=_pe,
    )
    mode = nbl.get_kernels(force_interp=force_interp)["mode"]
    stats = res.stats._replace(
        kernel_mode=mode, native_bailouts=counters["bailouts"],
    )
    return ColumnResult(res.results, stats)


_WARMED = False


def warm_kernels() -> str:
    """Compile (or build) the batch replay kernel once; returns the mode.

    Under numba the first replay pays LLVM compilation; sweep drivers and
    the serve daemon call this once up front so per-column timings are
    steady.  Repeat calls are no-ops
    (``tests/sched/test_native_batch.py`` pins that no rebuild happens).
    """
    global _WARMED
    mode = nbl.get_kernels()["mode"]
    if not _WARMED:
        evaluate_column("pip-mcoll", "scatter", 2, 2, (64, 256),
                        warmup=0, measure=1)
        _WARMED = True
    return mode

"""Planners for the §III-C intranode building blocks.

The ``emit_*`` functions transcribe the control flow of the original
``repro.core.intranode`` generators for one local rank, so the primary
collective planners can inline them (one executor run, phases spanning the
whole collective); the ``plan_*`` functions wrap them into standalone
per-node schedules backing the public ``intra_*`` entry points.

Transcription fidelity is the whole game: every board post/lookup, counter
operation, copy and reduction is emitted at exactly the position the
generator performed it, so replay is bit-identical in simulated time.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.mpi.collectives.group import block_partition
from repro.sched.emit import Emitter
from repro.sched.ir import BufRef, Ns, RankProgram, Schedule

__all__ = [
    "emit_intra_barrier",
    "emit_intra_bcast",
    "emit_intra_gather",
    "emit_intra_reduce_binomial",
    "emit_intra_reduce_chunked",
    "plan_intra_bcast",
    "plan_intra_gather",
    "plan_intra_reduce_binomial",
    "plan_intra_reduce_chunked",
]


def emit_intra_barrier(em: Emitter, key, ppn: int) -> None:
    """Counter barrier among the node's ranks (``intra_barrier``)."""
    em.barrier(key, ppn)


def emit_intra_bcast(
    em: Emitter,
    lr: int,
    ppn: int,
    count: int,
    root_local: int,
    large: bool,
    ns_key,
    buf: str = "buf",
    prefix: str = "ib_",
) -> None:
    """Intranode broadcast of the root's buffer into every rank's buffer."""
    if ppn == 1:
        return
    if lr == root_local:
        if large:
            # post the source buffer itself; peers copy straight out of it,
            # and the root must wait for them before reusing it
            em.post((ns_key, "src"), BufRef(buf))
            em.counter_wait((ns_key, "done"), ppn - 1)
        else:
            # copy through a staging buffer so the root can move on
            staging = em.alloc(f"{prefix}stg", count, dtype_of=buf)
            em.copy(staging, BufRef(buf))
            em.post((ns_key, "src"), staging)
    else:
        src = em.lookup((ns_key, "src"), f"{prefix}src")
        em.copy(BufRef(buf), src)
        if large:
            em.counter_add((ns_key, "done"), 1)


def emit_intra_gather(
    em: Emitter,
    lr: int,
    ppn: int,
    count: int,
    root_local: int,
    ns_key,
    send: str = "send",
    recv: str = "recv",
    prefix: str = "ig_",
) -> None:
    """Intranode gather: rank ``l``'s block at offset ``l * count`` of the
    root's receive buffer, every process copying its own block in."""
    if lr == root_local:
        if ppn == 1:
            em.copy(BufRef(recv, 0, count), BufRef(send))
            return
        em.post((ns_key, "dst"), BufRef(recv))
        dst = BufRef(recv)
    else:
        dst = em.lookup((ns_key, "dst"), f"{prefix}dst")
    em.copy(dst.view(lr * count, count), BufRef(send))
    em.counter_add((ns_key, "done"), 1)
    if lr == root_local:
        em.counter_wait((ns_key, "done"), ppn)


def emit_intra_reduce_binomial(
    em: Emitter,
    lr: int,
    ppn: int,
    count: int,
    root_local: int,
    ns_key,
    send: str = "send",
    recv: str = "recv",
    prefix: str = "irb_",
) -> BufRef:
    """Small-message intranode reduce: binomial tree of direct accesses.

    Returns this rank's accumulator reference (the root's receive buffer,
    or the temporary a non-root folds into before its parent reads it).
    """
    rel = (lr - root_local) % ppn
    if rel == 0:
        acc = BufRef(recv)
    else:
        acc = em.alloc(f"{prefix}acc", count, dtype_of=send)
    em.copy(acc, BufRef(send))
    if ppn == 1:
        return acc

    mask = 1
    while mask < ppn:
        if rel & mask:
            # expose my accumulator to my parent; stay alive until it reads
            em.post((ns_key, "acc", rel), acc)
            em.counter_wait((ns_key, "read", rel), 1)
            return acc
        child = rel | mask
        if child < ppn:
            child_acc = em.lookup((ns_key, "acc", child), f"{prefix}c{child}")
            em.reduce(acc, child_acc)
            em.counter_add((ns_key, "read", child), 1)
        mask <<= 1
    return acc


def emit_intra_reduce_chunked(
    em: Emitter,
    lr: int,
    ppn: int,
    count: int,
    root_local: int,
    all_wait: bool,
    ns_key,
    send: str = "send",
    recv: str = "recv",
    prefix: str = "irc_",
) -> None:
    """Large-message intranode reduce (Fig. 5): chunk-parallel."""
    if ppn == 1:
        em.copy(BufRef(recv), BufRef(send))
        return

    em.post((ns_key, "src", lr), BufRef(send))
    if lr == root_local:
        em.post((ns_key, "dst"), BufRef(recv))
        dst = BufRef(recv)
    else:
        dst = em.lookup((ns_key, "dst"), f"{prefix}dst")

    def src_of(peer: int) -> BufRef:
        # resolve a peer's posted source buffer (my own without a lookup)
        if peer == lr:
            return BufRef(send)
        return em.lookup((ns_key, "src", peer), f"{prefix}s{peer}")

    counts, displs = block_partition(count, ppn)
    off, cnt = displs[lr], counts[lr]
    if cnt:
        # seed my chunk with the root's contribution, then fold in peers
        root_src = src_of(root_local)
        em.copy(dst.view(off, cnt), root_src.view(off, cnt))
        for peer in range(ppn):
            if peer == root_local:
                continue
            src = src_of(peer)
            em.reduce(dst.view(off, cnt), src.view(off, cnt))

    em.counter_add((ns_key, "done"), 1)
    if all_wait or lr == root_local:
        em.counter_wait((ns_key, "done"), ppn)


# ---------------------------------------------------------------------------
# standalone per-node schedules (programs indexed by local rank)
# ---------------------------------------------------------------------------

def _node_schedule(programs, label: str) -> Schedule:
    return Schedule(tuple(programs), num_namespaces=1, label=label)


@lru_cache(maxsize=None)
def plan_intra_bcast(
    ppn: int, count: int, root_local: int, large: bool
) -> Schedule:
    # the generator draws its namespace before the ppn == 1 early-out, so
    # the schedule always consumes one namespace, even when empty
    programs = []
    for lr in range(ppn):
        em = Emitter()
        emit_intra_bcast(
            em, lr, ppn, count, root_local, large, ("ib", Ns(0))
        )
        programs.append(em.build())
    return _node_schedule(programs, f"intra-bcast p{ppn} c{count}")


@lru_cache(maxsize=None)
def plan_intra_gather(ppn: int, count: int, root_local: int) -> Schedule:
    programs = []
    for lr in range(ppn):
        em = Emitter()
        emit_intra_gather(em, lr, ppn, count, root_local, ("ig", Ns(0)))
        programs.append(em.build())
    return _node_schedule(programs, f"intra-gather p{ppn} c{count}")


@lru_cache(maxsize=None)
def plan_intra_reduce_binomial(
    ppn: int, count: int, root_local: int
) -> Schedule:
    programs = []
    for lr in range(ppn):
        em = Emitter()
        emit_intra_reduce_binomial(
            em, lr, ppn, count, root_local, ("irb", Ns(0))
        )
        programs.append(em.build())
    return _node_schedule(programs, f"intra-reduce-binomial p{ppn} c{count}")


@lru_cache(maxsize=None)
def plan_intra_reduce_chunked(
    ppn: int, count: int, root_local: int, all_wait: bool
) -> Schedule:
    programs = []
    for lr in range(ppn):
        em = Emitter()
        emit_intra_reduce_chunked(
            em, lr, ppn, count, root_local, all_wait, ("irc", Ns(0))
        )
        programs.append(em.build())
    return _node_schedule(programs, f"intra-reduce-chunked p{ppn} c{count}")

"""Planner for the multi-object internode ring (Fig. 4 core).

``emit_ring_allgather_blocks`` transcribes ``repro.core.ring`` for one
rank; the primary planners inline it with their own namespace key, and
:func:`plan_ring_allgather_blocks` wraps it into a standalone schedule (the
caller-supplied namespace stays symbolic — ``Sym("ns")`` — because the
public entry point receives it as an argument).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

from repro.mpi.collectives.group import block_partition
from repro.sched.emit import Emitter
from repro.sched.ir import BufRef, HashTag, Schedule, Sym

__all__ = ["emit_ring_allgather_blocks", "plan_ring_allgather_blocks"]


def emit_ring_allgather_blocks(
    em: Emitter,
    node: int,
    lr: int,
    nodes: int,
    ppn: int,
    ns_key,
    node_counts: Sequence[int],
    node_displs: Sequence[int],
    staging: str = "staging",
    recv: str = "recv",
    overlap: bool = True,
) -> None:
    """Ring-allgather node blocks through ``staging`` into ``recv``.

    Same preconditions as the generator: the node's own block is complete
    in the shared staging buffer and all local ranks have synchronised on
    that fact.
    """
    N, P = nodes, ppn
    tag = HashTag(ns_key)
    stag = BufRef(staging)
    rbuf = BufRef(recv)

    def lane(b: int) -> Tuple[int, int]:
        # (element offset, count) of my lane's slice of block ``b``
        counts, displs = block_partition(node_counts[b], P)
        return node_displs[b] + displs[lr], counts[lr]

    def blk_key(b: int):
        return (ns_key, "blk", b)

    # own block is complete by precondition
    own = node
    em.copy(
        rbuf.view(node_displs[own], node_counts[own]),
        stag.view(node_displs[own], node_counts[own]),
    )
    if N == 1:
        return

    right = ((node + 1) % N) * P + lr
    left = ((node - 1) % N) * P + lr

    for step in range(N - 1):
        send_block = (node - step) % N
        recv_block = (node - step - 1) % N
        s_off, s_cnt = lane(send_block)
        r_off, r_cnt = lane(recv_block)
        rreq = em.irecv(left, stag.view(r_off, r_cnt), tag)
        sreq = em.isend(right, stag.view(s_off, s_cnt), tag)

        if overlap and step > 0:
            # overlapped intranode broadcast of the block completed last step
            done_block = (node - step) % N
            em.counter_wait(blk_key(done_block), P)
            em.copy(
                rbuf.view(node_displs[done_block], node_counts[done_block]),
                stag.view(node_displs[done_block], node_counts[done_block]),
            )

        em.wait(rreq)
        em.wait(sreq)
        em.counter_add(blk_key(recv_block), 1)

    # drain: everything not yet broadcast intranode (just the final step's
    # block with overlap on; all N-1 foreign blocks with it off)
    pending = (
        [(node + 1) % N]
        if overlap
        else [b for b in range(N) if b != node]
    )
    for b in pending:
        em.counter_wait(blk_key(b), P)
        em.copy(
            rbuf.view(node_displs[b], node_counts[b]),
            stag.view(node_displs[b], node_counts[b]),
        )


@lru_cache(maxsize=None)
def plan_ring_allgather_blocks(
    nodes: int,
    ppn: int,
    node_counts: Tuple[int, ...],
    node_displs: Tuple[int, ...],
    overlap: bool,
) -> Schedule:
    """Standalone schedule (programs indexed by global rank); the caller's
    namespace binds through ``symbols={"ns": ...}`` at execution."""
    programs = []
    for rank in range(nodes * ppn):
        node, lr = divmod(rank, ppn)
        em = Emitter()
        emit_ring_allgather_blocks(
            em, node, lr, nodes, ppn, Sym("ns"), node_counts, node_displs,
            overlap=overlap,
        )
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=0,
        label=f"ring-allgather {nodes}x{ppn}",
    )

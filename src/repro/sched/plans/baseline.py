"""Planners for the classical group allgather algorithms.

These back the baseline libraries' MPICH-style selection (Bruck for small
non-power-of-two groups, recursive doubling for small power-of-two, ring
for large).  Programs are indexed by *group index*; ``SendStep``/``RecvStep``
targets are the group members' global ranks, baked in at plan time.  The
communicator-scoped message tag stays symbolic (``Sym("tag")``): it comes
from :meth:`RankCtx.collective_tag`, which mutates per-(rank, group) call
counters and therefore must keep running in the wrapper.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.sched.emit import Emitter
from repro.sched.ir import BufRef, Schedule, Sym

__all__ = [
    "plan_allgather_bruck",
    "plan_allgather_recursive_doubling",
    "plan_allgather_ring",
]

_TAG = Sym("tag")


@lru_cache(maxsize=None)
def plan_allgather_bruck(ranks: Tuple[int, ...], count: int) -> Schedule:
    """Bruck allgather: ``ceil(log2 size)`` rounds, any group size."""
    size = len(ranks)
    programs = []
    for me in range(size):
        em = Emitter()
        em.phase("bruck")
        if size == 1:
            em.copy(BufRef("recv"), BufRef("send"))
            programs.append(em.build())
            continue

        staging = em.alloc("staging", size * count, dtype_of="send")
        em.copy(staging.view(0, count), BufRef("send"))

        pof = 1
        while pof < size:
            blocks = min(pof, size - pof)
            dst = ranks[(me - pof) % size]
            src = ranks[(me + pof) % size]
            rreq = em.irecv(
                src, staging.view(pof * count, blocks * count), _TAG
            )
            sreq = em.isend(dst, staging.view(0, blocks * count), _TAG)
            em.wait(rreq)
            em.wait(sreq)
            pof <<= 1

        # staging block j holds rank (me + j) % size's data; rotate so that
        # recvbuf block i holds group index i's data
        head = size - me
        em.copy(
            BufRef("recv", me * count, head * count),
            staging.view(0, head * count),
        )
        if me:
            em.copy(
                BufRef("recv", 0, me * count),
                staging.view(head * count, me * count),
            )
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=0,
        label=f"allgather-bruck g{size} c{count}",
    )


@lru_cache(maxsize=None)
def plan_allgather_recursive_doubling(
    ranks: Tuple[int, ...], count: int
) -> Schedule:
    """Recursive-doubling allgather (power-of-two group sizes only)."""
    size = len(ranks)
    programs = []
    for me in range(size):
        em = Emitter()
        em.phase("recursive-doubling")
        em.copy(BufRef("recv", me * count, count), BufRef("send"))

        mask = 1
        while mask < size:
            partner = me ^ mask
            base = (me // mask) * mask
            pbase = (partner // mask) * mask
            dst = ranks[partner]
            rreq = em.irecv(
                dst, BufRef("recv", pbase * count, mask * count), _TAG
            )
            sreq = em.isend(
                dst, BufRef("recv", base * count, mask * count), _TAG
            )
            em.wait(rreq)
            em.wait(sreq)
            mask <<= 1
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=0,
        label=f"allgather-recursive-doubling g{size} c{count}",
    )


@lru_cache(maxsize=None)
def plan_allgather_ring(ranks: Tuple[int, ...], count: int) -> Schedule:
    """Ring allgather: ``size - 1`` rounds of neighbour exchange."""
    size = len(ranks)
    programs = []
    for me in range(size):
        em = Emitter()
        em.phase("ring")
        em.copy(BufRef("recv", me * count, count), BufRef("send"))
        if size == 1:
            programs.append(em.build())
            continue

        right = ranks[(me + 1) % size]
        left = ranks[(me - 1) % size]
        for step in range(size - 1):
            send_block = (me - step) % size
            recv_block = (me - step - 1) % size
            rreq = em.irecv(
                left, BufRef("recv", recv_block * count, count), _TAG
            )
            sreq = em.isend(
                right, BufRef("recv", send_block * count, count), _TAG
            )
            em.wait(rreq)
            em.wait(sreq)
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=0,
        label=f"allgather-ring g{size} c{count}",
    )

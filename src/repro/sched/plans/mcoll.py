"""Planners for the paper's three primary collectives (§III-A, §III-B).

Each ``plan_*`` transcribes the control flow of the corresponding
``repro.core`` generator per rank, emitting the identical operation
sequence, and tags the algorithm phases (``PhaseStep``) for tracing and
per-phase accounting.  The intranode and ring building blocks are inlined
through their shared ``emit_*`` helpers with collective-scoped namespace
keys — exactly the keys the generators derived.

Namespace layout per schedule (drawn by the executor in index order):

* ``Ns(0)`` — the collective's own namespace (message tags, board keys);
* ``Ns(1)`` — the namespace of the one nested intranode collective the
  allreduce algorithms invoke (``intra_reduce_binomial`` / ``_chunked``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.mpi.collectives.group import block_partition
from repro.sched.emit import Emitter
from repro.sched.ir import BufRef, Ns, Schedule, TagOffset
from repro.sched.plans.intranode import (
    emit_intra_reduce_binomial,
    emit_intra_reduce_chunked,
)
from repro.sched.plans.ring import emit_ring_allgather_blocks
from repro.util.intmath import ilog

__all__ = [
    "plan_scatter",
    "plan_allgather_small",
    "plan_allgather_large",
    "plan_allreduce_small",
    "plan_allreduce_large",
]


@lru_cache(maxsize=None)
def plan_scatter(
    nodes: int, ppn: int, count: int, root: int, overlap: bool
) -> Schedule:
    """§III-A1 multi-object scatter (one algorithm across all sizes)."""
    N, P, C = nodes, ppn, count
    ns = Ns(0)
    tag = Ns(0)
    root_node = root // P
    programs = []
    for rank in range(N * P):
        node, lr = divmod(rank, P)
        vnode = (node - root_node) % N  # virtual node id, root node first
        em = Emitter()

        # ---- root: stage data in virtual-node order and post it ----------
        if rank == root:
            em.phase("stage")
            block = P * C
            if root_node == 0 or N == 1:
                staging = BufRef("send")
            else:
                # one rotation copy so virtual node v's block sits at v*block
                staging = em.alloc("staging", N * block, dtype_of="send")
                head = (N - root_node) * block
                em.copy(
                    staging.view(0, head),
                    BufRef("send", root_node * block, head),
                )
                em.copy(
                    staging.view(head, N * block - head),
                    BufRef("send", 0, N * block - head),
                )
            em.post((ns, "stage"), staging)

        # ---- internode (P+1)-ary tree rounds -----------------------------
        em.phase("internode-scatter")
        staging_ref = None
        sbase = 0  # virtual node id of staging block 0
        copied_own = False
        lo, hi = 0, N
        while hi - lo > 1:
            n = hi - lo
            parts = min(P + 1, n)
            counts, displs = block_partition(n, parts)
            if vnode == lo:
                # I am on the group-root node: multi-object send phase
                if staging_ref is None:
                    staging_ref = em.lookup((ns, "stage"), "stage")
                    sbase = lo
                chunk = lr + 1
                req = None
                if chunk < parts and counts[chunk] > 0:
                    dst_v = lo + displs[chunk]
                    dst_rank = ((root_node + dst_v) % N) * P
                    off = (dst_v - sbase) * P * C
                    req = em.isend(
                        dst_rank,
                        staging_ref.view(off, counts[chunk] * P * C),
                        tag,
                    )
                if overlap and not copied_own:
                    # overlapped intranode scatter of my own C elements
                    off = (vnode - sbase) * P * C + lr * C
                    em.copy(BufRef("recv"), staging_ref.view(off, C))
                    copied_own = True
                if req is not None:
                    em.wait(req)
                hi = lo + counts[0]
            else:
                # find my chunk and narrow
                rel = vnode - lo
                chunk = 0
                while not (displs[chunk] <= rel < displs[chunk] + counts[chunk]):
                    chunk += 1
                new_lo = lo + displs[chunk]
                if vnode == new_lo and lr == 0:
                    # my node receives its sub-tree's data this round
                    stg = em.alloc("stg", counts[chunk] * P * C, dtype_of="recv")
                    src_rank = ((root_node + lo) % N) * P + (chunk - 1)
                    rreq = em.irecv(src_rank, stg, tag)
                    em.wait(rreq)
                    em.post((ns, "stage"), stg)
                lo, hi = new_lo, new_lo + counts[chunk]

        # ---- final intranode scatter for ranks that never sent ------------
        if not copied_own:
            em.phase("intra-scatter")
            if staging_ref is None:
                staging_ref = em.lookup((ns, "stage"), "stage")
                sbase = lo
            off = (vnode - sbase) * P * C + lr * C
            em.copy(BufRef("recv"), staging_ref.view(off, C))
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=1,
        label=f"mcoll-scatter {N}x{P} c{C} root{root}",
    )


@lru_cache(maxsize=None)
def plan_allgather_small(nodes: int, ppn: int, count: int) -> Schedule:
    """§III-A2 multi-object Bruck allgather, radix ``P + 1``."""
    N, P, C = nodes, ppn, count
    ns = Ns(0)
    tag = Ns(0)
    block = P * C  # one node block
    programs = []
    for rank in range(N * P):
        node, lr = divmod(rank, P)
        em = Emitter()

        # -- 1. intranode gather into the local root's staging buffer A ----
        em.phase("intra-gather")
        if lr == 0:
            A = em.alloc("A", N * block, dtype_of="send")
            em.post((ns, "A"), A)
        else:
            A = em.lookup((ns, "A"), "A")
        em.copy(A.view(lr * C, C), BufRef("send"))
        em.barrier((ns, "gathered"), P)

        # -- 2. multi-object Bruck rounds -----------------------------------
        em.phase("bruck")
        rnd = 0
        S = 1
        while S < N:
            offset = (lr + 1) * S
            cnt = max(0, min(S, N - S - lr * S))
            if cnt > 0:
                dst = ((node - offset) % N) * P + lr
                src = ((node + offset) % N) * P + lr
                rreq = em.irecv(src, A.view(offset * block, cnt * block), tag)
                sreq = em.isend(dst, A.view(0, cnt * block), tag)
                em.wait(rreq)
                em.wait(sreq)
            # next round's sends read blocks my peers received: synchronise
            em.barrier((ns, "round", rnd), P)
            S *= P + 1
            rnd += 1

        # -- 3. rotate into absolute order, into my receive buffer ---------
        em.phase("rotate")
        head = (N - node) * block
        em.copy(BufRef("recv", node * block, head), A.view(0, head))
        if node:
            em.copy(
                BufRef("recv", 0, node * block),
                A.view(head, N * block - head),
            )
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=1,
        label=f"mcoll-allgather-small {N}x{P} c{C}",
    )


@lru_cache(maxsize=None)
def plan_allgather_large(
    nodes: int, ppn: int, count: int, overlap: bool = True
) -> Schedule:
    """§III-B1 multi-object ring allgather."""
    N, P, C = nodes, ppn, count
    ns = Ns(0)
    block = P * C
    node_counts = tuple([block] * N)
    node_displs = tuple(b * block for b in range(N))
    programs = []
    for rank in range(N * P):
        node, lr = divmod(rank, P)
        em = Emitter()

        # -- 1. intranode gather into the local root's staging (absolute) --
        em.phase("intra-gather")
        if lr == 0:
            A = em.alloc("A", N * block, dtype_of="send")
            em.post((ns, "A"), A)
        else:
            A = em.lookup((ns, "A"), "A")
        em.copy(A.view(node * block + lr * C, C), BufRef("send"))
        em.barrier((ns, "gathered"), P)

        # -- 2+3. multi-object ring with overlapped intranode broadcast ----
        em.phase("ring-allgather")
        emit_ring_allgather_blocks(
            em, node, lr, N, P, (ns, "ring"), node_counts, node_displs,
            staging="A", recv="recv", overlap=overlap,
        )
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=1,
        label=f"mcoll-allgather-large {N}x{P} c{C}",
    )


def _digits(value: int, base: int, ndigits: int) -> List[int]:
    """Base-``base`` digits of ``value``, least significant first."""
    out = []
    for _ in range(ndigits):
        value, d = divmod(value, base)
        out.append(d)
    return out


@lru_cache(maxsize=None)
def plan_allreduce_small(nodes: int, ppn: int, count: int) -> Schedule:
    """§III-A3 multi-object Bruck allreduce with digit-decomposition
    remainder handling."""
    N, P, C = nodes, ppn, count
    ns = Ns(0)
    tag = Ns(0)
    B = P + 1
    programs = []
    for rank in range(N * P):
        lr = rank % P
        node = rank // P
        em = Emitter()

        # -- 1. intranode binomial reduce into the local root's recvbuf ----
        em.phase("intranode-reduce")
        emit_intra_reduce_binomial(
            em, lr, P, C, 0, ("irb", Ns(1)), send="send", recv="recv"
        )
        if lr == 0:
            acc = BufRef("recv")
            em.post((ns, "acc"), acc)
        else:
            acc = em.lookup((ns, "acc"), "acc")

        if N > 1:
            em.phase("bruck")
            k = ilog(B, N)
            W = B**k
            R = N - W
            digits = _digits(R, B, k + 1)

            # persistent per-process receive temp, posted once (the real
            # implementation exchanges these addresses at communicator setup)
            temp = em.alloc("tmp", C, dtype_of="send")
            em.post((ns, "tmp", lr), temp)
            peer_temps: List[BufRef] = []
            for peer in range(P):
                if peer == lr:
                    peer_temps.append(temp)
                else:
                    peer_temps.append(
                        em.lookup((ns, "tmp", peer), f"tmp{peer}")
                    )

            my_counts, my_displs = block_partition(C, P)
            my_off, my_cnt = my_displs[lr], my_counts[lr]

            # snapshot buffers for non-zero remainder digits (paper's A_r)
            snaps: Dict[int, BufRef] = {}
            for j in range(k):
                if digits[j]:
                    if lr == 0:
                        s = em.alloc(f"snap{j}", C, dtype_of="send")
                        em.post((ns, "snap", j), s)
                    else:
                        s = em.lookup((ns, "snap", j), f"snap{j}")
                    snaps[j] = s

            # window-1 snapshot: acc before any internode round touches it
            if 0 in snaps:
                if my_cnt:
                    em.copy(
                        snaps[0].view(my_off, my_cnt),
                        acc.view(my_off, my_cnt),
                    )
                em.barrier((ns, "snap-bar", 0), P)

            # -- 2. full multi-object Bruck rounds --------------------------
            for j in range(k):
                S = B**j
                offset = (lr + 1) * S
                dst = ((node - offset) % N) * P + lr
                src = ((node + offset) % N) * P + lr
                rreq = em.irecv(src, temp, tag)
                sreq = em.isend(dst, acc, tag)
                em.wait(rreq)
                em.wait(sreq)
                em.barrier((ns, "recvd", j), P)
                # chunk-parallel fold of all P received partials into acc
                if my_cnt:
                    for t in peer_temps:
                        em.reduce(
                            acc.view(my_off, my_cnt), t.view(my_off, my_cnt)
                        )
                em.barrier((ns, "folded", j), P)
                if (j + 1) in snaps:
                    # window B^(j+1) snapshot, chunk-parallel copy
                    if my_cnt:
                        em.copy(
                            snaps[j + 1].view(my_off, my_cnt),
                            acc.view(my_off, my_cnt),
                        )
                    em.barrier((ns, "snap-bar", j + 1), P)

            # -- 3. remainder phase (digit decomposition) --------------------
            if R:
                em.phase("remainder")
                pairs: List[Tuple[int, int]] = []  # (node offset, window j)
                O = W
                for j in range(k, -1, -1):
                    for _ in range(digits[j]):
                        pairs.append((O, j))
                        O += B**j
                assert O == N
                mine = pairs[lr::P]
                rtemps = []
                reqs = []
                for idx, (offset, j) in enumerate(mine):
                    src = ((node + offset) % N) * P + lr
                    dst = ((node - offset) % N) * P + lr
                    rt = em.alloc(f"rtmp{idx}", C, dtype_of="send")
                    em.post((ns, "rtmp", lr, idx), rt)
                    rtemps.append(rt)
                    payload = acc if j == k else snaps[j]
                    rtag = TagOffset(Ns(0), 1 + idx)
                    reqs.append(em.irecv(src, rt, rtag))
                    reqs.append(em.isend(dst, payload, rtag))
                em.wait(*reqs)
                em.barrier((ns, "rem-recvd"), P)
                # chunk-parallel fold of every remainder temp into acc
                if my_cnt:
                    for peer in range(P):
                        n_l = len(pairs[peer::P])
                        for idx in range(n_l):
                            if peer == lr:
                                rt = rtemps[idx]
                            else:
                                rt = em.lookup(
                                    (ns, "rtmp", peer, idx),
                                    f"rtmp_{peer}_{idx}",
                                )
                            em.reduce(
                                acc.view(my_off, my_cnt),
                                rt.view(my_off, my_cnt),
                            )
                em.barrier((ns, "rem-folded"), P)

        # -- 4. intranode broadcast of the final result --------------------
        if lr != 0:
            em.phase("intra-bcast")
            em.copy(BufRef("recv"), acc)
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=2,
        label=f"mcoll-allreduce-small {N}x{P} c{C}",
    )


def _owner_of(node: int, node_counts, node_displs) -> int:
    """Local rank whose paired-node range contains ``node``."""
    for lr, (cnt, off) in enumerate(zip(node_counts, node_displs)):
        if off <= node < off + cnt:
            return lr
    raise AssertionError(f"node {node} not covered by any paired range")


@lru_cache(maxsize=None)
def plan_allreduce_large(nodes: int, ppn: int, count: int) -> Schedule:
    """§III-B2 reduce-scatter + multi-object ring allgather."""
    N, P, C = nodes, ppn, count
    ns = Ns(0)
    tag = Ns(0)
    programs = []
    for rank in range(N * P):
        node, lr = divmod(rank, P)
        em = Emitter()

        # -- 1. intranode chunk-parallel reduce into the local root's A ----
        em.phase("intranode-reduce")
        if lr == 0:
            em.alloc("A", C, dtype_of="send")
            em.post((ns, "A"), BufRef("A"))
        else:
            em.lookup((ns, "A"), "A")
        emit_intra_reduce_chunked(
            em, lr, P, C, 0, True, ("irc", Ns(1)), send="send", recv="A"
        )
        A = BufRef("A")

        if N > 1:
            # -- 2. internode multi-object reduce-scatter -------------------
            em.phase("reduce-scatter")
            chunk_counts, chunk_displs = block_partition(C, N)
            node_counts, node_displs = block_partition(N, P)
            my_nodes = range(
                node_displs[lr], node_displs[lr] + node_counts[lr]
            )
            owner_local = _owner_of(node, node_counts, node_displs)

            reqs = []
            rtemps = []
            if lr == owner_local and chunk_counts[node]:
                # I fold the N-1 incoming copies of my node's chunk
                for n in range(N):
                    if n == node:
                        continue
                    rt = em.alloc(f"rs{n}", chunk_counts[node], dtype_of="send")
                    rtemps.append(rt)
                    reqs.append(em.irecv(n * P + owner_local, rt, tag))
            for n in my_nodes:
                if n == node or chunk_counts[n] == 0:
                    continue
                dst_owner = _owner_of(n, node_counts, node_displs)
                reqs.append(
                    em.isend(
                        n * P + dst_owner,
                        A.view(chunk_displs[n], chunk_counts[n]),
                        tag,
                    )
                )
            em.wait(*reqs)
            for rt in rtemps:
                em.reduce(
                    A.view(chunk_displs[node], chunk_counts[node]), rt
                )
            # everyone must see the node's finished chunk before the ring
            em.barrier((ns, "rs-done"), P)

            # -- 3. multi-object ring allgather of the chunks ---------------
            em.phase("ring-allgather")
            emit_ring_allgather_blocks(
                em, node, lr, N, P, (ns, "ring"), chunk_counts, chunk_displs,
                staging="A", recv="recv", overlap=True,
            )
        else:
            # single node: A already holds the global result (all_wait above
            # synchronised every rank on its completion)
            em.phase("intra-bcast")
            em.copy(BufRef("recv"), A)
        programs.append(em.build())
    return Schedule(
        tuple(programs),
        num_namespaces=2,
        label=f"mcoll-allreduce-large {N}x{P} c{C}",
    )

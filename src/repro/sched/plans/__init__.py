"""Planners: compile each collective algorithm to a :class:`Schedule`.

One module per layer:

* :mod:`repro.sched.plans.intranode` — §III-C intranode building blocks
  (emit helpers shared with the primary planners, plus standalone plans
  backing the ``repro.core.intranode`` entry points);
* :mod:`repro.sched.plans.ring` — the multi-object internode ring;
* :mod:`repro.sched.plans.mcoll` — the paper's three primary collectives;
* :mod:`repro.sched.plans.baseline` — classical group algorithms
  (Bruck / recursive-doubling / ring allgather) used by the baselines.

Every planner is ``lru_cache``'d on its full shape signature: a 128x18
sweep invokes the same collective thousands of times, and planning is pure
Python that must not be repaid per invocation.
"""

from repro.sched.plans.baseline import (
    plan_allgather_bruck,
    plan_allgather_recursive_doubling,
    plan_allgather_ring,
)
from repro.sched.plans.intranode import (
    plan_intra_bcast,
    plan_intra_gather,
    plan_intra_reduce_binomial,
    plan_intra_reduce_chunked,
)
from repro.sched.plans.mcoll import (
    plan_allgather_large,
    plan_allgather_small,
    plan_allreduce_large,
    plan_allreduce_small,
    plan_scatter,
)
from repro.sched.plans.ring import plan_ring_allgather_blocks

__all__ = [
    "plan_allgather_bruck",
    "plan_allgather_recursive_doubling",
    "plan_allgather_ring",
    "plan_intra_bcast",
    "plan_intra_gather",
    "plan_intra_reduce_binomial",
    "plan_intra_reduce_chunked",
    "plan_allgather_large",
    "plan_allgather_small",
    "plan_allreduce_large",
    "plan_allreduce_small",
    "plan_scatter",
    "plan_ring_allgather_blocks",
]

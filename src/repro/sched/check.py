"""Static schedule checker: prove a compiled collective sound without
running the simulator.

The checker abstractly executes every rank's program round-robin with
*conservative* blocking semantics — a rank stops at the first step that
could block in the real runtime:

* ``WaitStep`` blocks until the awaited send/receive has a matching
  counterpart posted on the peer (FIFO per ``(src, dst, tag)`` channel,
  exactly the transport's matching rule);
* a board ``lookup`` blocks until the key is posted on the rank's node;
* a counter ``wait`` blocks until the node counter reaches its threshold.

Under these semantics, "no rank can advance but some are unfinished" is
precisely a cyclic wait dependency — reported with every blocked rank's
position.  Along the way the checker verifies:

* every send is matched by exactly one receive (and vice versa) with equal
  byte counts;
* every buffer reference stays in bounds of the buffer it views,
  including views of peers' buffers obtained through board lookups;
* board keys are posted at most once per node and every lookup/alloc/copy
  resolves;

and it accounts exact per-rank, per-phase byte and message counts
(internode vs intranode payload, local copy and reduction traffic).

Element counts equal byte counts (the benchmarks drive collectives with
byte elements), so the tables below read directly as bytes.

CLI::

    python -m repro.sched.check --library pip-mcoll --collective allreduce \\
        --np 8x16 --nbytes 64K

prints the per-phase volume/message table and exits non-zero if any check
fails.  ``--grid`` sweeps the full planner-backed registry instead.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sched.ir import (
    AllocStep,
    BufRef,
    ComputeStep,
    CopyStep,
    IntraOpStep,
    PhaseStep,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    WaitStep,
    resolve_key,
)
from repro.sched.registry import (
    COLLECTIVES,
    PlannedCollective,
    plan_for,
    registry_combinations,
)

__all__ = ["CheckError", "CheckReport", "check_schedule", "check_planned",
           "main"]

#: concrete namespace values substituted for Ns markers — arbitrary, but
#: identical across ranks, exactly like the live per-rank counters agree
_NS_BASE = 1001


class CheckError(Exception):
    """A schedule failed static verification."""


@dataclass(frozen=True)
class _View:
    """An element range of one abstract buffer."""

    buf: int  # abstract buffer id
    off: int
    cnt: int


@dataclass
class CheckReport:
    """Checker output: per-phase and per-rank traffic accounting.

    ``phases[phase]`` and ``per_rank[(rank, phase)]`` both map to
    ``[internode_msgs, internode_bytes, intranode_msgs, intranode_bytes,
    copy_bytes, reduce_bytes]``.
    """

    label: str
    nranks: int
    phases: Dict[str, List[int]] = field(default_factory=dict)
    per_rank: Dict[Tuple[int, str], List[int]] = field(default_factory=dict)

    _COLS = ("inter-msgs", "inter-bytes", "intra-msgs", "intra-bytes",
             "copy-bytes", "reduce-bytes")

    def totals(self) -> List[int]:
        out = [0] * 6
        for row in self.phases.values():
            for i, v in enumerate(row):
                out[i] += v
        return out

    @property
    def internode_bytes(self) -> int:
        return self.totals()[1]

    @property
    def internode_messages(self) -> int:
        return self.totals()[0]

    def format_table(self) -> str:
        width = max([len("TOTAL"), len("phase")]
                    + [len(p) or len("(untagged)") for p in self.phases])
        head = f"{'phase':<{width}}" + "".join(
            f"  {c:>12}" for c in self._COLS
        )
        lines = [f"schedule: {self.label}  ({self.nranks} ranks)", head,
                 "-" * len(head)]
        for phase in self.phases:
            name = phase or "(untagged)"
            row = self.phases[phase]
            lines.append(
                f"{name:<{width}}" + "".join(f"  {v:>12}" for v in row)
            )
        lines.append("-" * len(head))
        lines.append(
            f"{'TOTAL':<{width}}"
            + "".join(f"  {v:>12}" for v in self.totals())
        )
        return "\n".join(lines)


class _Rank:
    """One participant's abstract execution state."""

    __slots__ = ("idx", "rank", "node", "program", "pc", "env", "handles",
                 "phase", "phase_order")

    def __init__(self, idx, rank, node, program, env):
        self.idx = idx
        self.rank = rank
        self.node = node
        self.program = program
        self.pc = 0
        self.env: Dict[str, _View] = env
        self.handles: List[Optional[dict]] = [None] * program.num_handles
        self.phase = ""
        self.phase_order: List[str] = []

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program.steps)


def _check_view(st: _Rank, ref: BufRef, sizes: Dict[int, int]) -> _View:
    """Resolve ``ref`` in ``st``'s environment, verifying bounds."""
    base = st.env.get(ref.name)
    if base is None:
        raise CheckError(
            f"rank {st.rank}: step {st.pc} references unbound buffer "
            f"{ref.name!r}"
        )
    cnt = (base.cnt - ref.offset) if ref.count is None else ref.count
    if ref.offset < 0 or cnt < 0 or ref.offset + cnt > base.cnt:
        raise CheckError(
            f"rank {st.rank}: step {st.pc} view [{ref.offset}, "
            f"{ref.offset + cnt}) exceeds buffer {ref.name!r} "
            f"of {base.cnt} elements"
        )
    view = _View(base.buf, base.off + ref.offset, cnt)
    if view.off + view.cnt > sizes[view.buf]:
        raise CheckError(
            f"rank {st.rank}: step {st.pc} view of {ref.name!r} exceeds "
            f"the underlying allocation"
        )
    return view


def check_schedule(
    schedule: Schedule,
    ranks: Tuple[int, ...],
    bindings: Tuple[Dict[str, int], ...],
    ppn: int,
    symbols: Optional[dict] = None,
    label: str = "",
) -> CheckReport:
    """Verify ``schedule`` and return its traffic accounting.

    ``ranks[i]``/``bindings[i]`` give participant ``i``'s global rank and
    initial buffer environment (name -> element count); ``ppn`` maps ranks
    to nodes for board/counter placement and the internode/intranode
    traffic split.  Raises :class:`CheckError` on any violation.
    """
    if len(ranks) != schedule.nranks or len(bindings) != schedule.nranks:
        raise CheckError(
            f"schedule has {schedule.nranks} programs but {len(ranks)} "
            f"ranks / {len(bindings)} bindings were supplied"
        )
    ns_values = tuple(
        _NS_BASE + i for i in range(schedule.num_namespaces)
    )
    syms = symbols or {}

    sizes: Dict[int, int] = {}  # abstract buffer id -> element count
    next_buf = [0]

    def fresh_buf(count: int) -> _View:
        buf_id = next_buf[0]
        next_buf[0] += 1
        sizes[buf_id] = count
        return _View(buf_id, 0, count)

    states: List[_Rank] = []
    for i, (rank, binding) in enumerate(zip(ranks, bindings)):
        env = {name: fresh_buf(count) for name, count in binding.items()}
        states.append(_Rank(i, rank, rank // ppn, schedule.programs[i], env))

    boards: Dict[int, Dict[Any, _View]] = defaultdict(dict)
    counters: Dict[Tuple[int, Any], int] = defaultdict(int)
    # FIFO channels, the transport's matching rule
    pending_sends: Dict[tuple, deque] = defaultdict(deque)
    pending_recvs: Dict[tuple, deque] = defaultdict(deque)

    acct: Dict[Tuple[int, str], List[int]] = defaultdict(lambda: [0] * 6)
    phase_seen: Dict[str, None] = {}

    def account_message(sender: dict, recv_cnt: int) -> None:
        if sender["view"].cnt != recv_cnt:
            raise CheckError(
                f"rank {sender['rank']} sends {sender['view'].cnt} elements "
                f"to rank {sender['dst']} (tag {sender['tag']!r}) but the "
                f"receive buffer holds {recv_cnt}"
            )
        row = acct[(sender["rank"], sender["phase"])]
        col = 0 if sender["src_node"] != sender["dst_node"] else 2
        row[col] += 1
        row[col + 1] += sender["view"].cnt
        phase_seen.setdefault(sender["phase"], None)

    def exec_step(st: _Rank, step) -> bool:
        """Execute one step; return False when it blocks."""
        cls = step.__class__
        if cls is SendStep:
            view = _check_view(st, step.buf, sizes)
            tag = resolve_key(step.tag, ns_values, syms)
            chan = (st.rank, step.dst, tag)
            rec = {
                "kind": "send", "rank": st.rank, "dst": step.dst,
                "tag": tag, "view": view, "phase": st.phase,
                "src_node": st.node, "dst_node": step.dst // ppn,
                "paired": False,
            }
            if pending_recvs[chan]:
                peer = pending_recvs[chan].popleft()
                rec["paired"] = peer["paired"] = True
                account_message(rec, peer["view"].cnt)
            else:
                pending_sends[chan].append(rec)
            st.handles[step.handle] = rec
        elif cls is RecvStep:
            view = _check_view(st, step.buf, sizes)
            tag = resolve_key(step.tag, ns_values, syms)
            chan = (step.src, st.rank, tag)
            rec = {
                "kind": "recv", "rank": st.rank, "src": step.src,
                "tag": tag, "view": view, "paired": False,
            }
            if pending_sends[chan]:
                peer = pending_sends[chan].popleft()
                rec["paired"] = peer["paired"] = True
                account_message(peer, view.cnt)
            else:
                pending_recvs[chan].append(rec)
            st.handles[step.handle] = rec
        elif cls is WaitStep:
            for h in step.handles:
                rec = st.handles[h]
                if rec is None:
                    raise CheckError(
                        f"rank {st.rank}: step {st.pc} waits on handle {h} "
                        f"that was never posted"
                    )
                if not rec["paired"]:
                    return False
        elif cls is CopyStep:
            dst = _check_view(st, step.dst, sizes)
            src = _check_view(st, step.src, sizes)
            if dst.cnt != src.cnt:
                raise CheckError(
                    f"rank {st.rank}: step {st.pc} copies {src.cnt} "
                    f"elements into a {dst.cnt}-element destination"
                )
            acct[(st.rank, st.phase)][4] += src.cnt
            phase_seen.setdefault(st.phase, None)
        elif cls is ReduceStep:
            dst = _check_view(st, step.dst, sizes)
            src = _check_view(st, step.src, sizes)
            if dst.cnt != src.cnt:
                raise CheckError(
                    f"rank {st.rank}: step {st.pc} reduces {src.cnt} "
                    f"elements into a {dst.cnt}-element destination"
                )
            acct[(st.rank, st.phase)][5] += src.cnt
            phase_seen.setdefault(st.phase, None)
        elif cls is IntraOpStep:
            key = resolve_key(step.key, ns_values, syms)
            if step.op == "post":
                board = boards[st.node]
                if key in board:
                    raise CheckError(
                        f"rank {st.rank}: step {st.pc} re-posts board key "
                        f"{key!r} on node {st.node}"
                    )
                board[key] = _check_view(st, step.value, sizes)
            elif step.op == "lookup":
                view = boards[st.node].get(key)
                if view is None:
                    return False
                if step.bind is not None:
                    st.env[step.bind] = view
            elif step.op == "add":
                counters[(st.node, key)] += step.n
            elif step.op == "wait":
                if counters[(st.node, key)] < step.n:
                    return False
            else:
                raise CheckError(f"unknown intra op {step.op!r}")
        elif cls is AllocStep:
            if step.dtype_of not in st.env:
                raise CheckError(
                    f"rank {st.rank}: step {st.pc} allocates {step.name!r} "
                    f"with dtype of unbound buffer {step.dtype_of!r}"
                )
            st.env[step.name] = fresh_buf(step.count)
        elif cls is PhaseStep:
            st.phase = step.name
            st.phase_order.append(step.name)
            phase_seen.setdefault(step.name, None)
        elif cls is ComputeStep:
            pass
        else:
            raise CheckError(f"rank {st.rank}: unknown step {step!r}")
        return True

    # round-robin to fixpoint; no progress + unfinished ranks = deadlock
    while True:
        progress = False
        all_done = True
        for st in states:
            while not st.done:
                if not exec_step(st, st.program.steps[st.pc]):
                    break
                st.pc += 1
                progress = True
            if not st.done:
                all_done = False
        if all_done:
            break
        if not progress:
            stuck = [
                f"rank {st.rank} at step {st.pc}: "
                f"{st.program.steps[st.pc]!r}"
                for st in states if not st.done
            ]
            raise CheckError(
                "deadlock (cyclic wait dependency); blocked ranks:\n  "
                + "\n  ".join(stuck)
            )

    unmatched = [
        f"send rank {r['rank']} -> {r['dst']} tag {r['tag']!r}"
        for q in pending_sends.values() for r in q
    ] + [
        f"recv rank {r['rank']} <- {r['src']} tag {r['tag']!r}"
        for q in pending_recvs.values() for r in q
    ]
    if unmatched:
        raise CheckError(
            "unmatched point-to-point operations:\n  "
            + "\n  ".join(unmatched)
        )

    report = CheckReport(label or schedule.label, schedule.nranks)
    report.per_rank = dict(acct)
    for phase in phase_seen:
        report.phases[phase] = [0] * 6
    for (rank, phase), row in acct.items():
        for i, v in enumerate(row):
            report.phases[phase][i] += v
    return report


def check_planned(piece: PlannedCollective, ppn: int) -> CheckReport:
    """Check one registry entry."""
    return check_schedule(
        piece.schedule, piece.ranks, piece.bindings, ppn,
        symbols=piece.symbols, label=piece.label,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_bytes(text: str) -> int:
    text = text.strip().upper()
    factor = 1
    if text.endswith(("K", "M", "G")):
        factor = {"K": 1024, "M": 1024**2, "G": 1024**3}[text[-1]]
        text = text[:-1]
    try:
        value = int(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad byte size {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError("byte size must be positive")
    return value


def _parse_shape(text: str) -> Tuple[int, int]:
    try:
        nodes, ppn = (int(p) for p in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad shape {text!r}; expected NODESxPPN, e.g. 8x16"
        ) from None
    if nodes < 1 or ppn < 1:
        raise argparse.ArgumentTypeError("shape dimensions must be positive")
    return nodes, ppn


#: the CI verification grid (shapes x sizes over every registry combo)
GRID_SHAPES = ((2, 2), (4, 8), (8, 16))
GRID_SIZES = (1024, 64 * 1024, 1024 * 1024)


def _run_grid() -> int:
    failures = 0
    for library, collective in registry_combinations():
        for nodes, ppn in GRID_SHAPES:
            for nbytes in GRID_SIZES:
                piece = plan_for(library, collective, nodes, ppn, nbytes)
                try:
                    report = check_planned(piece, ppn)
                except CheckError as exc:
                    failures += 1
                    print(f"FAIL {piece.label}: {exc}")
                    continue
                totals = report.totals()
                print(
                    f"ok   {piece.label}: {totals[0]} internode msgs, "
                    f"{totals[1]} internode bytes"
                )
    if failures:
        print(f"{failures} grid point(s) FAILED")
        return 1
    print("all grid points passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched.check",
        description="Statically verify a compiled collective schedule and "
                    "print its per-phase volume/message table.",
    )
    parser.add_argument("--library", help="pip-mcoll, pip-mcoll-small, "
                                          "pip-mpich or openmpi")
    parser.add_argument("--collective", choices=COLLECTIVES)
    parser.add_argument("--np", type=_parse_shape, metavar="NODESxPPN",
                        help="cluster shape, e.g. 8x16")
    parser.add_argument("--nbytes", type=_parse_bytes, metavar="SIZE",
                        help="per-process message size, e.g. 64K")
    parser.add_argument("--grid", action="store_true",
                        help="check the full registry x shape x size grid")
    args = parser.parse_args(argv)

    if args.grid:
        return _run_grid()
    missing = [flag for flag, val in (
        ("--library", args.library), ("--collective", args.collective),
        ("--np", args.np), ("--nbytes", args.nbytes),
    ) if val is None]
    if missing:
        parser.error(f"missing {', '.join(missing)} (or use --grid)")

    nodes, ppn = args.np
    try:
        piece = plan_for(args.library, args.collective, nodes, ppn,
                         args.nbytes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = check_planned(piece, ppn)
    except CheckError as exc:
        print(f"CHECK FAILED: {piece.label}\n{exc}", file=sys.stderr)
        return 1
    print(report.format_table())
    print("checker: OK (sends matched, no deadlock, buffers in bounds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Small integer-math helpers used by the collective algorithms."""

from __future__ import annotations

__all__ = ["ceil_div", "ilog", "is_power_of"]


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def ilog(base: int, n: int) -> int:
    """Floor of log_base(n) computed with exact integer arithmetic.

    >>> ilog(19, 361)
    2
    >>> ilog(2, 7)
    2
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = 0
    acc = 1
    while acc * base <= n:
        acc *= base
        k += 1
    return k


def is_power_of(base: int, n: int) -> bool:
    """True if ``n == base**k`` for some integer ``k >= 0``."""
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if n < 1:
        return False
    while n % base == 0:
        n //= base
    return n == 1

"""Size and time unit helpers used throughout the benchmark harness."""

from __future__ import annotations

import re

__all__ = ["KB", "MB", "GB", "parse_size", "fmt_size", "fmt_time", "fmt_rate"]

#: Binary units, as used by the paper ("64 kB" message sizes are 64 * 1024).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(b|kb|k|kib|mb|m|mib|gb|g|gib)?\s*$",
    re.IGNORECASE,
)

_SIZE_FACTORS = {
    None: 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "kib": KB,
    "m": MB,
    "mb": MB,
    "mib": MB,
    "g": GB,
    "gb": GB,
    "gib": GB,
}


def parse_size(text: str | int) -> int:
    """Parse ``"64kB"``-style size strings into bytes.

    Integers pass through unchanged.  Binary prefixes are assumed (matching
    the paper's usage: 1 kB = 1024 B).

    >>> parse_size("64kB")
    65536
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size: {text}")
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    value, unit = m.groups()
    nbytes = float(value) * _SIZE_FACTORS[unit.lower() if unit else None]
    if not nbytes.is_integer():
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(nbytes)


def fmt_size(nbytes: int) -> str:
    """Format a byte count compactly: 512 -> '512B', 65536 -> '64kB'."""
    if nbytes >= GB and nbytes % GB == 0:
        return f"{nbytes // GB}GB"
    if nbytes >= MB and nbytes % MB == 0:
        return f"{nbytes // MB}MB"
    if nbytes >= KB and nbytes % KB == 0:
        return f"{nbytes // KB}kB"
    return f"{nbytes}B"


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (s/ms/us/ns)."""
    if seconds == 0:
        return "0s"
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3f}s"
    if a >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if a >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"


def fmt_rate(per_second: float) -> str:
    """Format an event rate (e.g. messages/s) with an adaptive unit."""
    if per_second >= 1e9:
        return f"{per_second / 1e9:.2f}G/s"
    if per_second >= 1e6:
        return f"{per_second / 1e6:.2f}M/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.2f}k/s"
    return f"{per_second:.2f}/s"

"""Shared helpers (units, integer math) for the PiP-MColl reproduction."""

from repro.util.units import GB, KB, MB, fmt_rate, fmt_size, fmt_time, parse_size
from repro.util.intmath import ceil_div, ilog, is_power_of

__all__ = [
    "GB",
    "KB",
    "MB",
    "fmt_rate",
    "fmt_size",
    "fmt_time",
    "parse_size",
    "ceil_div",
    "ilog",
    "is_power_of",
]

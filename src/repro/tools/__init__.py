"""Command-line tools built on the simulation harness.

Run as modules (``python -m repro.tools.osu``); nothing is imported here
so that ``runpy`` execution stays clean.
"""

__all__: list = []

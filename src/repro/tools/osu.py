"""OSU-microbenchmark-style CLI — ``python -m repro.tools.osu``.

Prints an `osu_allreduce`-like latency table for any collective and any
set of modelled libraries on a simulated cluster:

    python -m repro.tools.osu --collective allreduce \
        --libs PiP-MColl,IntelMPI --nodes 16 --ppn 6 \
        --min-size 16 --max-size 64kB

Sizes sweep in powers of two between ``--min-size`` and ``--max-size``
(inclusive); output is one row per size, one latency column per library —
the format cluster folks already know how to read.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.baselines.registry import LIBRARY_FACTORIES, library_names
from repro.bench.microbench import COLLECTIVES, run_point
from repro.hw.params import bebop_broadwell
from repro.util.units import fmt_size, parse_size

__all__ = ["main", "sweep_sizes"]


def sweep_sizes(min_size: int, max_size: int) -> List[int]:
    """Power-of-two sweep from min_size to max_size inclusive."""
    if min_size < 1:
        raise ValueError(f"min size must be >= 1, got {min_size}")
    if max_size < min_size:
        raise ValueError(
            f"max size {max_size} smaller than min size {min_size}"
        )
    sizes = []
    s = min_size
    while s <= max_size:
        sizes.append(s)
        s *= 2
    if sizes[-1] != max_size:
        sizes.append(max_size)
    return sizes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.osu", description=__doc__
    )
    parser.add_argument(
        "--collective", default="allreduce", choices=sorted(COLLECTIVES)
    )
    parser.add_argument(
        "--libs", default="PiP-MColl,PiP-MPICH,IntelMPI",
        help=f"comma-separated; known: {', '.join(sorted(LIBRARY_FACTORIES))}",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--ppn", type=int, default=6)
    parser.add_argument("--min-size", default="16")
    parser.add_argument("--max-size", default="64kB")
    args = parser.parse_args(argv)

    libs = [name.strip() for name in args.libs.split(",") if name.strip()]
    unknown = [n for n in libs if n not in LIBRARY_FACTORIES]
    if unknown:
        parser.error(
            f"unknown libraries {unknown}; known: {sorted(LIBRARY_FACTORIES)}"
        )
    sizes = sweep_sizes(parse_size(args.min_size), parse_size(args.max_size))

    print(f"# OSU-style {args.collective} latency, "
          f"{args.nodes} nodes x {args.ppn} ppn "
          f"({args.nodes * args.ppn} ranks), simulated Broadwell+Omni-Path")
    header = f"{'# Size':>10}" + "".join(f" {lib:>16}" for lib in libs)
    print(header)
    for nbytes in sizes:
        cells = []
        for lib in libs:
            r = run_point(
                lib, args.collective, args.nodes, args.ppn, nbytes,
                params=bebop_broadwell(),
            )
            cells.append(f"{r.time * 1e6:14.2f}us")
        print(f"{fmt_size(nbytes):>10}" + "".join(f" {c:>16}" for c in cells))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())

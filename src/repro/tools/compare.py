"""Library comparison matrix — ``python -m repro.tools.compare``.

One table per invocation: every collective × every requested library at a
fixed cluster shape and message size, normalised to the fastest entry per
row.  The quickest way to see where PiP-MColl's multi-object designs win
and where the classical algorithms hold their own:

    python -m repro.tools.compare --nodes 16 --ppn 6 --size 1kB
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.baselines.registry import LIBRARY_FACTORIES, library_names
from repro.bench.microbench import COLLECTIVES, run_point
from repro.util.units import fmt_time, parse_size

__all__ = ["main", "build_matrix", "format_matrix"]


def build_matrix(
    libs: List[str], nodes: int, ppn: int, nbytes: int
) -> Dict[str, Dict[str, float]]:
    """collective -> {library -> simulated seconds}."""
    matrix: Dict[str, Dict[str, float]] = {}
    for coll in COLLECTIVES:
        matrix[coll] = {
            lib: run_point(lib, coll, nodes, ppn, nbytes).time for lib in libs
        }
    return matrix


def format_matrix(
    matrix: Dict[str, Dict[str, float]], libs: List[str]
) -> str:
    width = max(len(lib) for lib in libs) + 2
    lines = [
        f"{'collective':>12} |"
        + "".join(f" {lib:>{width}} |" for lib in libs)
    ]
    lines.append("-" * len(lines[0]))
    for coll, row in matrix.items():
        best = min(row.values())
        cells = []
        for lib in libs:
            marker = "*" if row[lib] == best else " "
            cells.append(f"{fmt_time(row[lib])}{marker}")
        lines.append(
            f"{coll:>12} |" + "".join(f" {c:>{width}} |" for c in cells)
        )
    lines.append("(* = fastest in row)")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.compare", description=__doc__
    )
    parser.add_argument(
        "--libs", default=",".join(library_names()),
        help=f"comma-separated; known: {', '.join(sorted(LIBRARY_FACTORIES))}",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--ppn", type=int, default=6)
    parser.add_argument("--size", default="1kB", help="per-process bytes")
    args = parser.parse_args(argv)

    libs = [n.strip() for n in args.libs.split(",") if n.strip()]
    unknown = [n for n in libs if n not in LIBRARY_FACTORIES]
    if unknown:
        parser.error(
            f"unknown libraries {unknown}; known: {sorted(LIBRARY_FACTORIES)}"
        )
    nbytes = parse_size(args.size)

    print(
        f"# all collectives, {args.nodes} nodes x {args.ppn} ppn, "
        f"{args.size} per process, simulated Broadwell+Omni-Path"
    )
    matrix = build_matrix(libs, args.nodes, args.ppn, nbytes)
    print(format_matrix(matrix, libs))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())

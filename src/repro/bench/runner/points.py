"""Declarative sweep points.

A :class:`Point` is everything :func:`repro.bench.microbench.run_point`
needs, as a frozen, hashable, picklable value object.  Figure sweeps build
lists of points; the runner decides how (and whether) to execute them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.tuning import Thresholds
from repro.hw.params import MachineParams, bebop_broadwell

__all__ = ["Point", "expand_sweep"]


@dataclass(frozen=True)
class Point:
    """One microbenchmark point: a fully specified, independent simulation.

    ``params=None`` means the default testbed machine
    (:func:`~repro.hw.params.bebop_broadwell`); the cache key always uses
    the *resolved* parameters, so a changed default cannot alias stale
    entries.

    ``thresholds=None`` means the library's own defaults; a non-``None``
    value overrides the algorithm switch points (ablations).  It is part
    of the cache key — two ablation variants of the same library can never
    alias each other's cached results
    (``tests/bench/test_runner.py`` pins this).
    """

    library: str
    collective: str
    nodes: int
    ppn: int
    msg_bytes: int
    warmup: int = 1
    measure: int = 2
    params: Optional[MachineParams] = None
    thresholds: Optional[Thresholds] = None
    #: evaluation engine (see repro.bench.microbench.ENGINES).  Part of the
    #: cache key: ``auto`` may resolve differently as fast-path coverage
    #: grows, so engines never share cached entries even though ``dag``
    #: and ``native`` are bit-identical by construction.
    engine: str = "event"

    def resolved_params(self) -> MachineParams:
        return self.params if self.params is not None else bebop_broadwell()

    def spec_dict(self) -> Dict:
        """Canonical JSON-able description (stable cache-key input)."""
        return {
            "library": self.library,
            "collective": self.collective,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "msg_bytes": self.msg_bytes,
            "warmup": self.warmup,
            "measure": self.measure,
            "params": asdict(self.resolved_params()),
            # None = library default; the library name is in the key, so a
            # default can never alias an explicit override
            "thresholds": (
                None if self.thresholds is None else asdict(self.thresholds)
            ),
            "engine": self.engine,
        }

    def label(self) -> str:
        """Short human-readable form for progress lines."""
        return (
            f"{self.library} {self.collective} "
            f"{self.nodes}x{self.ppn} {self.msg_bytes}B"
        )


def expand_sweep(
    collective: str,
    sizes: Sequence[int],
    libs: Sequence[str],
    nodes: int,
    ppn: int,
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    engine: str = "event",
) -> List[Point]:
    """Expand a message-size sweep into points, size-major then library —
    the same order the serial loops used, so progress output and result
    ordering stay familiar."""
    return [
        Point(lib, collective, nodes, ppn, nbytes, warmup, measure, params,
              engine=engine)
        for nbytes in sizes
        for lib in libs
    ]

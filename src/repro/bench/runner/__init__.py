"""Parallel, memoizing sweep runner for the benchmark harness.

Every evaluation figure expands into a list of independent, deterministic
:class:`~repro.bench.runner.points.Point` specs — one simulated world per
``(library, collective, nodes, ppn, msg_bytes)``.  The
:class:`~repro.bench.runner.pool.SweepRunner` executes such a list:

* **in parallel** across a ``multiprocessing`` pool (``jobs=N``, default
  ``os.cpu_count()``) — each point ships to a worker as a picklable spec
  and comes back as a picklable :class:`~repro.bench.microbench.
  MicrobenchResult`;
* **memoized** through an on-disk columnar store (``.bench_cache/`` by
  default; append-only npz shards, one per column group, see
  :mod:`repro.bench.runner.store`) keyed by a stable hash of the cache
  epoch, the resolved :class:`~repro.hw.params.MachineParams`, the point
  spec, and the warm-up/measure protocol — re-running a figure is
  near-instant when nothing relevant changed, and a whole size axis
  reads back with one file open;
* **deterministically** — serial, parallel, and cache-hit execution return
  bit-identical results (``tests/bench/test_runner.py`` pins this).

Environment knobs (also exposed as CLI flags by ``repro.bench.record``):

* ``PIPMCOLL_JOBS`` — worker count (``1`` forces serial in-process runs)
* ``PIPMCOLL_CACHE`` — ``0``/``off`` disables the on-disk cache
* ``PIPMCOLL_CACHE_DIR`` — cache location (default ``.bench_cache``)
* ``PIPMCOLL_PROGRESS`` — ``1`` prints per-point progress to stderr
"""

from repro.bench.runner.cache import (
    CACHE_EPOCH,
    ResultCache,
    cache_key,
    column_key,
)
from repro.bench.runner.points import Point, expand_sweep
from repro.bench.runner.pool import SweepRunner, default_runner, run_points
from repro.bench.runner.store import ShardStore

__all__ = [
    "Point",
    "expand_sweep",
    "ResultCache",
    "ShardStore",
    "CACHE_EPOCH",
    "cache_key",
    "column_key",
    "SweepRunner",
    "default_runner",
    "run_points",
]

"""Append-only columnar shard store for memoized sweep results.

One *shard* is an ``.npz`` file holding a batch of
:class:`~repro.bench.microbench.MicrobenchResult` rows for one *column
group* — the set of points identical except for ``msg_bytes`` (see
:func:`repro.bench.runner.cache.column_key`).  A group's on-disk state is
the union of its shards, merged in shard-sequence order (later shards win
per message size), so writers never rewrite existing data:

* **append-only** — a put appends a brand-new shard; two pool workers (or
  two concurrent sweeps) flushing the same group cannot lose each other's
  rows, unlike a read-merge-replace JSON document;
* **crash-safe** — shards are written to a temp file in the same
  directory and published with ``os.replace``; a crash mid-write leaves a
  ``*.tmp`` file that no reader ever opens, never a truncated shard.  A
  shard that *is* damaged on disk (torn write on a dying filesystem) is
  detected by ``np.load`` failing and is skipped and removed, not
  crashed on.  Only *corruption* removes a file: a transient failure
  (``PermissionError``, ``MemoryError``, an interrupted read) skips the
  shard for this scan and leaves it on disk for the next one;
* **columnar** — a whole 121-size axis reads back with one file open and
  a handful of vectorized array conversions instead of one
  ``stat``+``open``+``json.loads`` per point (the I/O analogue of the
  batch engine; ``benchmarks/bench_speed.py --store`` measures the
  ratio into ``BENCH_store.json``).

Layout::

    <root>/<key[:2]>/<key>.<seq:04d>-<pid>.npz

``key`` is the group's content hash (cache epoch included), ``seq`` is a
per-group sequence number (max existing + 1 at append time) and ``pid``
breaks filename ties between concurrent writers.  Merge order is the
sorted filename, i.e. sequence then pid; concurrent same-sequence shards
hold bit-identical rows in practice (the simulator is deterministic), so
the tie order is immaterial.

Shard schema (``allow_pickle=False`` throughout), packed into three
members because every npz member costs a zip-entry open + header parse
on read: ``meta`` — unicode array of shape ``(2, rows)`` holding
``library`` and ``collective``; ``ints`` — int64 array of shape
``(5, rows)`` holding ``nodes``/``ppn``/``msg_bytes``/
``internode_messages``/``nsamples``; ``floats`` — float64 array of shape
``(rows, 1 + max(nsamples))`` whose first column is ``time`` and whose
remaining columns are the NaN-padded samples.  Floats round-trip through
float64 exactly, so a stored result is bit-identical to the computed
one.

The in-memory index (:attr:`ShardStore._groups`) memoizes each group's
merged view after the first read; appends update it in place, so a runner
process never re-reads a shard it has already seen.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.microbench import MicrobenchResult

__all__ = ["ShardStore"]

_SHARD_SUFFIX = ".npz"


def _rows_to_arrays(rows: Sequence[MicrobenchResult]) -> Dict[str, np.ndarray]:
    nsamples = [len(r.samples) for r in rows]
    width = max(nsamples)
    floats = np.full((len(rows), 1 + width), np.nan, dtype=np.float64)
    for i, r in enumerate(rows):
        floats[i, 0] = r.time
        floats[i, 1 : 1 + nsamples[i]] = r.samples
    return {
        "meta": np.array(
            [[r.library for r in rows], [r.collective for r in rows]]
        ),
        "ints": np.array(
            [
                [r.nodes for r in rows],
                [r.ppn for r in rows],
                [r.msg_bytes for r in rows],
                [r.internode_messages for r in rows],
                nsamples,
            ],
            dtype=np.int64,
        ),
        "floats": floats,
    }


def _arrays_to_rows(data) -> List[MicrobenchResult]:
    # materialize each npz member exactly once (NpzFile.__getitem__
    # decompresses the whole member on *every* subscript) and convert to
    # native Python values in C via .tolist() rather than per-element
    library, collective = data["meta"].tolist()
    nodes, ppn, msg_bytes, internode, nsamples = data["ints"].tolist()
    floats = data["floats"].tolist()
    rows = []
    for i in range(len(msg_bytes)):
        row = floats[i]
        rows.append(
            MicrobenchResult(
                library=library[i],
                collective=collective[i],
                nodes=nodes[i],
                ppn=ppn[i],
                msg_bytes=msg_bytes[i],
                time=row[0],
                samples=tuple(row[1 : 1 + nsamples[i]]),
                internode_messages=internode[i],
            )
        )
    return rows


class ShardStore:
    """A directory of append-only npz shards, grouped by content key."""

    def __init__(self, root: "Path | str"):
        self.root = Path(root)
        #: merged per-group view, memoized after first disk scan
        self._groups: Dict[str, Dict[int, MicrobenchResult]] = {}
        #: per-process sequence floor (monotone within this process)
        self._next_seq: Dict[str, int] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        self.shards_read = 0
        self.shards_written = 0

    # -- paths ----------------------------------------------------------

    def _group_dir(self, key: str) -> Path:
        return self.root / key[:2]

    def shard_files(self, key: str) -> List[Path]:
        """This group's shard files, in merge (sequence) order."""
        d = self._group_dir(key)
        if not d.is_dir():
            return []
        return sorted(d.glob(f"{key}.*{_SHARD_SUFFIX}"))

    # -- reads ----------------------------------------------------------

    def _load_shard(self, path: Path) -> Optional[List[MicrobenchResult]]:
        """Rows of one shard, or ``None`` for a damaged file (dropped)."""
        try:
            raw_size = path.stat().st_size
            with np.load(path, allow_pickle=False) as data:
                rows = _arrays_to_rows(data)
        except FileNotFoundError:
            return None
        except (PermissionError, InterruptedError, MemoryError):
            # transient: the file may be perfectly valid (EPERM from a
            # mount hiccup, allocation pressure, a signal) — skip it this
            # scan, never destroy results over it
            return None
        except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError):
            # actual corruption: torn write, wrong schema, a zip that
            # parses but truncates mid-member.  Ignore the shard, don't
            # crash the sweep; remove it so it is not rescanned forever
            try:
                path.unlink()
            except OSError:
                pass
            return None
        except Exception:
            # anything unforeseen: fail safe — skip without unlinking
            return None
        self.bytes_read += raw_size
        self.shards_read += 1
        return rows

    def group(self, key: str) -> Dict[int, MicrobenchResult]:
        """The merged ``{msg_bytes: result}`` view of one group.

        Scans the group's shards once and memoizes; later shards override
        earlier ones per size (overwrite-by-append, e.g. ``--refresh``).
        """
        cached = self._groups.get(key)
        if cached is not None:
            return cached
        merged: Dict[int, MicrobenchResult] = {}
        for path in self.shard_files(key):
            rows = self._load_shard(path)
            if rows is None:
                continue
            for row in rows:
                merged[row.msg_bytes] = row
        self._groups[key] = merged
        return merged

    # -- writes ---------------------------------------------------------

    def append(self, key: str, rows: Sequence[MicrobenchResult]) -> int:
        """Publish ``rows`` as one new shard; returns bytes written.

        Never touches existing shards: temp-file write + ``os.replace``
        to a filename no other writer can pick (sequence + pid), so
        concurrent appends to the same group both land and a crash
        mid-write publishes nothing.
        """
        if not rows:
            return 0
        d = self._group_dir(key)
        d.mkdir(parents=True, exist_ok=True)
        seq = self._next_seq.get(key, 0)
        for existing in self.shard_files(key):
            tail = existing.name[len(key) + 1 : -len(_SHARD_SUFFIX)]
            try:
                seq = max(seq, int(tail.split("-")[0]) + 1)
            except ValueError:
                continue
        self._next_seq[key] = seq + 1
        fd, tmp = tempfile.mkstemp(dir=d, prefix=f"{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **_rows_to_arrays(rows))
            nbytes = os.path.getsize(tmp)
            os.replace(tmp, d / f"{key}.{seq:04d}-{os.getpid()}{_SHARD_SUFFIX}")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.bytes_written += nbytes
        self.shards_written += 1
        view = self._groups.get(key)
        if view is not None:
            for row in rows:
                view[row.msg_bytes] = row
        return nbytes

    # -- maintenance ----------------------------------------------------

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop the memoized view (one group or all): next read rescans."""
        if key is None:
            self._groups.clear()
        else:
            self._groups.pop(key, None)

    def shard_count(self) -> int:
        """Shard files on disk (index freshness is irrelevant)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob(f"*/*{_SHARD_SUFFIX}"))

    def index_stats(self) -> Dict[str, int]:
        """Size of the in-memory index: groups loaded and entries held."""
        return {
            "groups": len(self._groups),
            "entries": sum(len(g) for g in self._groups.values()),
        }

    def entry_count(self) -> int:
        """Distinct ``(group, msg_bytes)`` entries on disk (full scan)."""
        if not self.root.is_dir():
            return 0
        n = 0
        seen = set(self._groups)
        for path in self.root.glob(f"*/*{_SHARD_SUFFIX}"):
            key = path.name.split(".", 1)[0]
            if key not in seen:
                seen.add(key)
                self.invalidate(key)
        for key in seen:
            n += len(self.group(key))
        return n

    def clear(self) -> int:
        """Delete every shard; returns files removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob(f"*/*{_SHARD_SUFFIX}"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self._groups.clear()
        return removed

"""On-disk memoization of microbenchmark results — columnar shard store.

Results persist in an append-only columnar store
(:class:`~repro.bench.runner.store.ShardStore`): npz shards under
``<root>/shards/<key[:2]>/``, grouped by *column group key* — a SHA-256
over a canonical JSON encoding of

* the cache epoch (:data:`CACHE_EPOCH`, bumped with the package version
  whenever simulation-relevant behaviour changes),
* the fully resolved :class:`~repro.hw.params.MachineParams`,
* the column spec (the point spec with ``msg_bytes`` removed: library,
  collective, shape, thresholds, engine), and
* the warm-up/measure protocol.

Every size along one figure curve shares a group, so a whole 121-size
axis reads back with one file open instead of one ``stat`` + ``open`` +
``json.loads`` per point — the I/O analogue of the batch engine
evaluating the column in one pass (``benchmarks/bench_speed.py --store``
measures the ratio into ``BENCH_store.json``).  Writes buffer in memory
and flush as whole shards (:meth:`ResultCache.flush`; the sweep runner
flushes at the end of every run), so a point-per-put sweep costs a
handful of shard files, not thousands of JSON files.

The simulator is deterministic, so a hit is exact — bit-identical to
recomputation under the same epoch.  The key does **not** hash source
code: re-running a figure after an unrelated code change is the use case.
If you changed simulation-relevant code without bumping the epoch, pass
``refresh=True`` (CLI ``--refresh``) or delete the cache directory.

Shards are crash-safe (temp file + ``os.replace``; damaged shards are
skipped and removed, see :mod:`repro.bench.runner.store`) and append-only,
so concurrent pool workers, parallel pytest runs, and overlapping sweeps
of the same column all land without read-merge-replace races.

Caches written before the 1.4.0 epoch used one JSON file per point
(``<root>/<key[:2]>/<key>.json``) and per column (``<root>/columns/...``).
The read-only fallback that kept those hitting was scheduled for one
release and has been removed: lookups consult the shard store only.
``python -m repro.bench.runner.cache migrate`` still ingests an explicit
legacy JSON tree into compact shards under ``<root>/legacy/`` (a storage
conversion — those shards are keyed under their original epoch and are
not consulted by lookups; entries from an old epoch are stale by
definition, which is the point of the epoch).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.points import Point
from repro.bench.runner.store import ShardStore

__all__ = [
    "ResultCache", "cache_key", "column_key", "default_cache_dir",
    "CACHE_EPOCH", "migrate",
    "result_to_doc", "result_from_doc",
]

_ENV_DIR = "PIPMCOLL_CACHE_DIR"
_DEFAULT_DIR = ".bench_cache"

#: the current cache-key epoch.  Tracks the package version: bump
#: ``repro.__version__`` whenever a change alters simulated results (new
#: engine semantics, cost-model changes, protocol changes) so stale
#: entries can never alias fresh ones.  See DESIGN.md §5 for the policy.
CACHE_EPOCH = repro.__version__


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_DIR, _DEFAULT_DIR))


def cache_key(point: Point, epoch: Optional[str] = None) -> str:
    """Stable content hash identifying one point's result.

    ``epoch`` defaults to :data:`CACHE_EPOCH`; tests pass explicit epochs
    to pin that entries from different epochs can never alias.
    """
    payload = {"version": epoch or CACHE_EPOCH, "point": point.spec_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: memoized column hashes — hashing a resolved ``MachineParams`` spec is
#: ~0.5 ms, which would dominate cached-column reads if paid per point;
#: every size along a column shares the hash, so memoize it by the
#: point's hashable column identity (all spec fields but ``msg_bytes``)
_COLUMN_KEY_MEMO: Dict[tuple, str] = {}


def column_key(point: Point, epoch: Optional[str] = None) -> str:
    """Stable content hash identifying a point's *column group*.

    The column is the point spec with ``msg_bytes`` removed: every size
    along one figure curve shares it.  Engine, thresholds, params and the
    protocol all stay in the key, so the column store aliases exactly as
    much as the per-point key does — nothing.
    """
    epoch = epoch or CACHE_EPOCH
    ident = (
        point.library, point.collective, point.nodes, point.ppn,
        point.warmup, point.measure, point.params, point.thresholds,
        point.engine, epoch,
    )
    key = _COLUMN_KEY_MEMO.get(ident)
    if key is None:
        spec = point.spec_dict()
        del spec["msg_bytes"]
        payload = {"version": epoch, "column": spec}
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        if len(_COLUMN_KEY_MEMO) >= 65536:
            _COLUMN_KEY_MEMO.clear()
        _COLUMN_KEY_MEMO[ident] = key
    return key


def _result_doc(result: MicrobenchResult) -> dict:
    return {
        "library": result.library,
        "collective": result.collective,
        "nodes": result.nodes,
        "ppn": result.ppn,
        "msg_bytes": result.msg_bytes,
        "time": result.time,
        "samples": list(result.samples),
        "internode_messages": result.internode_messages,
    }


def _result_from_doc(doc: dict) -> MicrobenchResult:
    return MicrobenchResult(
        library=doc["library"],
        collective=doc["collective"],
        nodes=doc["nodes"],
        ppn=doc["ppn"],
        msg_bytes=doc["msg_bytes"],
        time=doc["time"],
        samples=tuple(doc["samples"]),
        internode_messages=doc["internode_messages"],
    )


#: public aliases — the serve wire protocol ships results as exactly the
#: documents the legacy cache used (JSON floats round-trip float64 via
#: repr, so a result crossing the socket stays bit-identical)
result_to_doc = _result_doc
result_from_doc = _result_from_doc


class ResultCache:
    """Memoized :class:`MicrobenchResult` values in a columnar store.

    Reads consult the in-memory write buffer, then the shard store.
    Writes buffer in memory per column group and publish as whole shards
    on :meth:`flush` — called automatically once ``flush_threshold`` rows
    are pending, by :meth:`put_many` (a column is a natural batch), and
    by the sweep runner at the end of each run.
    """

    def __init__(
        self, root: "Path | str | None" = None, flush_threshold: int = 256
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.store = ShardStore(self.root / "shards")
        self.flush_threshold = flush_threshold
        #: counters since construction (``--cache-stats`` reporting);
        #: point_* from :meth:`get`, column_* from :meth:`get_many` — the
        #: same per-point accounting, split by access path
        self.point_hits = 0
        self.point_misses = 0
        self.column_hits = 0
        self.column_misses = 0
        self.stores = 0
        self.flushes = 0
        #: pending rows, keyed by column group then message size
        self._pending: Dict[str, Dict[int, MicrobenchResult]] = {}
        self._pending_rows = 0

    # -- aggregate counters ---------------------------------------------

    @property
    def hits(self) -> int:
        """Point-level and column-level hits, counted identically."""
        return self.point_hits + self.column_hits

    @property
    def misses(self) -> int:
        return self.point_misses + self.column_misses

    @property
    def bytes_read(self) -> int:
        return self.store.bytes_read

    @property
    def bytes_written(self) -> int:
        return self.store.bytes_written

    def stats(self) -> dict:
        """Counters since construction plus store shape (shards, index)."""
        index = self.store.index_stats()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "point_hits": self.point_hits,
            "point_misses": self.point_misses,
            "column_hits": self.column_hits,
            "column_misses": self.column_misses,
            "stores": self.stores,
            "flushes": self.flushes,
            "pending_rows": self._pending_rows,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "shards": self.store.shard_count(),
            "index_groups": index["groups"],
            "index_entries": index["entries"],
        }

    # -- lookups ---------------------------------------------------------

    def _lookup(self, point: Point, key: str) -> Optional[MicrobenchResult]:
        pending = self._pending.get(key)
        if pending is not None and point.msg_bytes in pending:
            return pending[point.msg_bytes]
        return self.store.group(key).get(point.msg_bytes)

    def peek(self, point: Point) -> Optional[MicrobenchResult]:
        """:meth:`get` without touching the hit/miss counters.

        The serve daemon re-checks the cache after awaiting a coalesced
        in-flight evaluation; those re-checks are bookkeeping, not client
        traffic, and must not inflate the stats a ``stats`` request (or
        ``record.py --cache-stats``) reports.
        """
        return self._lookup(point, column_key(point))

    def get(self, point: Point) -> Optional[MicrobenchResult]:
        """The cached result for ``point``, or ``None`` on a miss."""
        row = self._lookup(point, column_key(point))
        if row is None:
            self.point_misses += 1
        else:
            self.point_hits += 1
        return row

    def get_many(
        self, points: Sequence[Point]
    ) -> List[Optional[MicrobenchResult]]:
        """Cached results for ``points``, one group scan per column.

        Points may span several columns; each group's shards are read at
        most once (the store memoizes merged views).  Hit/miss accounting
        is per point, identical to a :meth:`get` loop, tallied under the
        ``column_*`` counters.
        """
        out: List[Optional[MicrobenchResult]] = []
        for point in points:
            row = self._lookup(point, column_key(point))
            if row is None:
                self.column_misses += 1
            else:
                self.column_hits += 1
            out.append(row)
        return out

    # -- writes ----------------------------------------------------------

    def put(self, point: Point, result: MicrobenchResult) -> None:
        """Buffer ``result``; durable after the next :meth:`flush`.

        Within the buffer, a repeated put of the same (column, size)
        overwrites — same last-write-wins the append-only shard merge
        applies on disk.
        """
        group = self._pending.setdefault(column_key(point), {})
        if point.msg_bytes not in group:
            self._pending_rows += 1
        group[point.msg_bytes] = result
        self.stores += 1
        if self._pending_rows >= self.flush_threshold:
            self.flush()

    def put_many(
        self, points: Sequence[Point], results: Sequence[MicrobenchResult]
    ) -> None:
        """Store a batch (typically one column) and flush it as shards."""
        if len(points) != len(results):
            raise ValueError(
                f"{len(points)} points but {len(results)} results"
            )
        for point, result in zip(points, results):
            group = self._pending.setdefault(column_key(point), {})
            if point.msg_bytes not in group:
                self._pending_rows += 1
            group[point.msg_bytes] = result
            self.stores += 1
        self.flush()

    def flush(self) -> int:
        """Publish pending rows, one shard per column group; returns rows
        written.  Crash-safe: a shard appears fully or not at all."""
        written = 0
        if not self._pending:
            return 0
        for key, rows in self._pending.items():
            ordered = [rows[size] for size in sorted(rows)]
            self.store.append(key, ordered)
            written += len(ordered)
        self._pending.clear()
        self._pending_rows = 0
        self.flushes += 1
        return written

    # -- maintenance ------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (shards, plus any migrated legacy shards or
        stray pre-1.4.0 JSON files left in the directory); discards
        pending rows; returns files removed."""
        self._pending.clear()
        self._pending_rows = 0
        removed = self.store.clear() + ShardStore(self.root / "legacy").clear()
        if self.root.exists():
            for pattern in ("*/*.json", "columns/*/*.json"):
                for entry in self.root.glob(pattern):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __len__(self) -> int:
        """Entries on disk (pending rows are not yet entries)."""
        return self.store.entry_count()


# -- migration tool ---------------------------------------------------------


def migrate(
    root: "Path | str | None" = None, purge_json: bool = False
) -> Dict[str, int]:
    """Ingest a pre-1.4.0 JSON cache tree into legacy shards.

    Per-point files become one-row shards and column documents become
    whole-column shards, both under ``<root>/legacy/`` keyed by the
    *legacy* key the JSON file was stored under (the filename).  This is
    a storage conversion for explicit legacy trees: thousands of JSON
    files become a handful of compact shards.  Since 1.5.0 lookups no
    longer consult legacy entries (they were keyed under an old epoch and
    are stale by definition), so migration is archival — inspect the
    result with the ``stats`` subcommand.  Idempotent: entries already
    present in the legacy store are skipped.  ``purge_json=True`` removes
    each JSON file after successful ingestion.
    """
    root = Path(root) if root is not None else default_cache_dir()
    legacy = ShardStore(root / "legacy")
    counts = {
        "point_files": 0, "column_files": 0, "entries": 0,
        "skipped_entries": 0, "corrupt_files": 0, "purged_files": 0,
    }

    def ingest(key: str, rows: List[MicrobenchResult]) -> None:
        have = legacy.group(key)
        fresh = [r for r in rows if r.msg_bytes not in have]
        counts["skipped_entries"] += len(rows) - len(fresh)
        if fresh:
            legacy.append(key, fresh)
            counts["entries"] += len(fresh)

    if root.exists():
        for path in sorted(root.glob("*/*.json")):
            if path.parent.name in ("columns", "shards", "legacy"):
                continue
            try:
                row = _result_from_doc(json.loads(path.read_bytes()))
            except (OSError, ValueError, KeyError, TypeError):
                counts["corrupt_files"] += 1
                continue
            ingest(path.stem, [row])
            counts["point_files"] += 1
            if purge_json:
                path.unlink(missing_ok=True)
                counts["purged_files"] += 1
        for path in sorted(root.glob("columns/*/*.json")):
            try:
                entries = json.loads(path.read_bytes())["entries"]
                rows = [_result_from_doc(doc) for doc in entries.values()]
            except (OSError, ValueError, KeyError, TypeError):
                counts["corrupt_files"] += 1
                continue
            ingest(path.stem, rows)
            counts["column_files"] += 1
            if purge_json:
                path.unlink(missing_ok=True)
                counts["purged_files"] += 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner.cache",
        description="Result-cache maintenance tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    mig = sub.add_parser(
        "migrate",
        help="ingest a pre-1.4.0 JSON cache tree into compact legacy "
             "shards (idempotent storage conversion; legacy entries are "
             "no longer consulted by lookups)",
    )
    mig.add_argument(
        "--root", default=None,
        help=f"cache directory (default: ${_ENV_DIR} or {_DEFAULT_DIR})",
    )
    mig.add_argument(
        "--purge-json", action="store_true",
        help="delete each JSON file after successful ingestion",
    )
    stats = sub.add_parser(
        "stats", help="print store shape (shards, entries, legacy files)"
    )
    stats.add_argument("--root", default=None)
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else default_cache_dir()
    if args.command == "migrate":
        counts = migrate(root, purge_json=args.purge_json)
        print(
            f"migrated {counts['point_files']} point files and "
            f"{counts['column_files']} column files -> "
            f"{counts['entries']} new entries "
            f"({counts['skipped_entries']} already present, "
            f"{counts['corrupt_files']} corrupt files skipped, "
            f"{counts['purged_files']} JSON files purged) under {root}"
        )
        return 0
    cache = ResultCache(root)
    legacy = ShardStore(root / "legacy")
    print(
        f"{root}: {cache.store.shard_count()} shards, "
        f"{cache.store.entry_count()} entries, "
        f"{legacy.shard_count()} legacy shards, "
        f"{legacy.entry_count()} legacy entries"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

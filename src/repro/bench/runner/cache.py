"""On-disk memoization of microbenchmark results.

Layout: one JSON file per point under ``<root>/<key[:2]>/<key>.json``,
where ``key`` is a SHA-256 over a canonical JSON encoding of

* the ``repro`` package version,
* the fully resolved :class:`~repro.hw.params.MachineParams`,
* the point spec (library, collective, shape, size), and
* the warm-up/measure protocol.

The simulator is deterministic, so a hit is exact — bit-identical to
recomputation under the same version.  The key does **not** hash source
code: re-running a figure after an unrelated code change is the use case.
If you changed simulation-relevant code without bumping the version, pass
``refresh=True`` (CLI ``--refresh``) or delete the cache directory.

Writes are atomic (tmp file + ``os.replace``) so concurrent pool workers
and parallel pytest runs can share one cache directory; corrupted or
unreadable entries are treated as misses and removed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

import repro
from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.points import Point

__all__ = ["ResultCache", "cache_key", "default_cache_dir"]

_ENV_DIR = "PIPMCOLL_CACHE_DIR"
_DEFAULT_DIR = ".bench_cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_DIR, _DEFAULT_DIR))


def cache_key(point: Point) -> str:
    """Stable content hash identifying one point's result."""
    payload = {"version": repro.__version__, "point": point.spec_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of memoized :class:`MicrobenchResult` values."""

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        #: hits/misses/stores since construction (for tests and reporting)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entry bytes deserialized on hits / serialized on stores
        self.bytes_read = 0
        self.bytes_written = 0

    def stats(self) -> dict:
        """Counters since construction (``--cache-stats`` reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, point: Point) -> Optional[MicrobenchResult]:
        """The cached result for ``point``, or ``None`` on a miss."""
        path = self._path(cache_key(point))
        try:
            raw = path.read_bytes()
            doc = json.loads(raw)
            result = MicrobenchResult(
                library=doc["library"],
                collective=doc["collective"],
                nodes=doc["nodes"],
                ppn=doc["ppn"],
                msg_bytes=doc["msg_bytes"],
                time=doc["time"],
                samples=tuple(doc["samples"]),
                internode_messages=doc["internode_messages"],
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupted / truncated / wrong-schema entry: drop and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_read += len(raw)
        return result

    def put(self, point: Point, result: MicrobenchResult) -> None:
        """Store ``result`` atomically (safe under concurrent writers)."""
        path = self._path(cache_key(point))
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": repro.__version__,
            "library": result.library,
            "collective": result.collective,
            "nodes": result.nodes,
            "ppn": result.ppn,
            "msg_bytes": result.msg_bytes,
            "time": result.time,
            "samples": list(result.samples),
            "internode_messages": result.internode_messages,
        }
        encoded = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(encoded)
            os.replace(tmp, path)
            self.stores += 1
            self.bytes_written += len(encoded)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json")) if self.root.exists() else 0

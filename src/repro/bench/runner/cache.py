"""On-disk memoization of microbenchmark results.

Layout: one JSON file per point under ``<root>/<key[:2]>/<key>.json``,
where ``key`` is a SHA-256 over a canonical JSON encoding of

* the ``repro`` package version,
* the fully resolved :class:`~repro.hw.params.MachineParams`,
* the point spec (library, collective, shape, size), and
* the warm-up/measure protocol.

Column sweeps additionally use a *column store* under
``<root>/columns/<key[:2]>/<key>.json``: one JSON document per column
(the point spec with ``msg_bytes`` removed), mapping message size to the
same result schema.  :meth:`ResultCache.get_many` /
:meth:`ResultCache.put_many` touch that one file once per call, so a
60-size column costs one read and one write instead of 120 file
operations — the I/O analogue of the batch engine evaluating the column
in one pass.

The simulator is deterministic, so a hit is exact — bit-identical to
recomputation under the same version.  The key does **not** hash source
code: re-running a figure after an unrelated code change is the use case.
If you changed simulation-relevant code without bumping the version, pass
``refresh=True`` (CLI ``--refresh``) or delete the cache directory.

Writes are atomic (tmp file + ``os.replace``) so concurrent pool workers
and parallel pytest runs can share one cache directory; corrupted or
unreadable entries are treated as misses and removed.  Column writes
merge into the existing document before replacing it, so two sweeps over
different axes of the same column both land.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence

import repro
from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.points import Point

__all__ = ["ResultCache", "cache_key", "column_key", "default_cache_dir"]

_ENV_DIR = "PIPMCOLL_CACHE_DIR"
_DEFAULT_DIR = ".bench_cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_DIR, _DEFAULT_DIR))


def cache_key(point: Point) -> str:
    """Stable content hash identifying one point's result."""
    payload = {"version": repro.__version__, "point": point.spec_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def column_key(point: Point) -> str:
    """Stable content hash identifying a point's *column*.

    The column is the point spec with ``msg_bytes`` removed: every size
    along one figure curve shares it.  Engine, thresholds, params and the
    protocol all stay in the key, so the column store aliases exactly as
    much as the per-point store does — nothing.
    """
    spec = point.spec_dict()
    del spec["msg_bytes"]
    payload = {"version": repro.__version__, "column": spec}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _result_doc(result: MicrobenchResult) -> dict:
    return {
        "library": result.library,
        "collective": result.collective,
        "nodes": result.nodes,
        "ppn": result.ppn,
        "msg_bytes": result.msg_bytes,
        "time": result.time,
        "samples": list(result.samples),
        "internode_messages": result.internode_messages,
    }


def _result_from_doc(doc: dict) -> MicrobenchResult:
    return MicrobenchResult(
        library=doc["library"],
        collective=doc["collective"],
        nodes=doc["nodes"],
        ppn=doc["ppn"],
        msg_bytes=doc["msg_bytes"],
        time=doc["time"],
        samples=tuple(doc["samples"]),
        internode_messages=doc["internode_messages"],
    )


def _atomic_write(path: Path, encoded: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(encoded)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """A directory of memoized :class:`MicrobenchResult` values."""

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        #: hits/misses/stores since construction (for tests and reporting)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entry bytes deserialized on hits / serialized on stores
        self.bytes_read = 0
        self.bytes_written = 0

    def stats(self) -> dict:
        """Counters since construction (``--cache-stats`` reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _column_path(self, key: str) -> Path:
        return self.root / "columns" / key[:2] / f"{key}.json"

    def get(self, point: Point) -> Optional[MicrobenchResult]:
        """The cached result for ``point``, or ``None`` on a miss."""
        path = self._path(cache_key(point))
        try:
            raw = path.read_bytes()
            result = _result_from_doc(json.loads(raw))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupted / truncated / wrong-schema entry: drop and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_read += len(raw)
        return result

    def put(self, point: Point, result: MicrobenchResult) -> None:
        """Store ``result`` atomically (safe under concurrent writers)."""
        path = self._path(cache_key(point))
        doc = {"version": repro.__version__, **_result_doc(result)}
        encoded = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        _atomic_write(path, encoded)
        self.stores += 1
        self.bytes_written += len(encoded)

    # -- column (bulk) interface ----------------------------------------

    def _read_column(self, path: Path) -> Optional[dict]:
        """The column document at ``path``, or ``None`` (bad file → drop)."""
        try:
            raw = path.read_bytes()
            doc = json.loads(raw)
            entries = doc["entries"]
            if not isinstance(entries, dict):
                raise TypeError("column entries must be an object")
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.bytes_read += len(raw)
        return entries

    def get_many(
        self, points: Sequence[Point]
    ) -> List[Optional[MicrobenchResult]]:
        """Cached results for ``points``, one column file read per column.

        Points may span several columns; each distinct column document is
        read at most once.  Per-point hit/miss accounting matches what a
        :meth:`get` loop would record; ``bytes_read`` counts each column
        file once.  A point whose entry is absent or malformed is a miss.
        """
        docs: dict = {}
        out: List[Optional[MicrobenchResult]] = []
        for point in points:
            key = column_key(point)
            if key not in docs:
                docs[key] = self._read_column(self._column_path(key))
            entries = docs[key]
            result = None
            if entries is not None:
                doc = entries.get(str(point.msg_bytes))
                if doc is not None:
                    try:
                        result = _result_from_doc(doc)
                    except (ValueError, KeyError, TypeError):
                        result = None
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
            out.append(result)
        return out

    def put_many(
        self, points: Sequence[Point], results: Sequence[MicrobenchResult]
    ) -> None:
        """Store results, one merged column file write per column.

        Merges into the existing document (read once per column) before
        the atomic replace, so sweeps over different axes of the same
        column accumulate instead of clobbering each other.
        """
        if len(points) != len(results):
            raise ValueError(
                f"{len(points)} points but {len(results)} results"
            )
        by_col: dict = {}
        for point, result in zip(points, results):
            by_col.setdefault(column_key(point), []).append((point, result))
        for key, pairs in by_col.items():
            path = self._column_path(key)
            entries = self._read_column(path) or {}
            for point, result in pairs:
                entries[str(point.msg_bytes)] = _result_doc(result)
                self.stores += 1
            doc = {"version": repro.__version__, "entries": entries}
            encoded = json.dumps(doc, separators=(",", ":")).encode("utf-8")
            _atomic_write(path, encoded)
            self.bytes_written += len(encoded)

    def clear(self) -> int:
        """Delete every entry (point and column); returns files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for entry in self.root.glob("columns/*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        """Point entries plus column entries (not files) on disk."""
        if not self.root.exists():
            return 0
        # point files sit at <k2>/<key>.json; column files one level deeper
        # under columns/, so the first glob cannot double-count them
        n = sum(1 for _ in self.root.glob("*/*.json"))
        for path in self.root.glob("columns/*/*.json"):
            try:
                doc = json.loads(path.read_bytes())
                n += len(doc["entries"])
            except (OSError, ValueError, KeyError, TypeError):
                pass
        return n

"""On-disk memoization of microbenchmark results — columnar shard store.

Results persist in an append-only columnar store
(:class:`~repro.bench.runner.store.ShardStore`): npz shards under
``<root>/shards/<key[:2]>/``, grouped by *column group key* — a SHA-256
over a canonical JSON encoding of

* the cache epoch (:data:`CACHE_EPOCH`, bumped with the package version
  whenever simulation-relevant behaviour changes),
* the fully resolved :class:`~repro.hw.params.MachineParams`,
* the column spec (the point spec with ``msg_bytes`` removed: library,
  collective, shape, thresholds, engine), and
* the warm-up/measure protocol.

Every size along one figure curve shares a group, so a whole 121-size
axis reads back with one file open instead of one ``stat`` + ``open`` +
``json.loads`` per point — the I/O analogue of the batch engine
evaluating the column in one pass (``benchmarks/bench_speed.py --store``
measures the ratio into ``BENCH_store.json``).  Writes buffer in memory
and flush as whole shards (:meth:`ResultCache.flush`; the sweep runner
flushes at the end of every run), so a point-per-put sweep costs a
handful of shard files, not thousands of JSON files.

The simulator is deterministic, so a hit is exact — bit-identical to
recomputation under the same epoch.  The key does **not** hash source
code: re-running a figure after an unrelated code change is the use case.
If you changed simulation-relevant code without bumping the epoch, pass
``refresh=True`` (CLI ``--refresh``) or delete the cache directory.

Shards are crash-safe (temp file + ``os.replace``; damaged shards are
skipped and removed, see :mod:`repro.bench.runner.store`) and append-only,
so concurrent pool workers, parallel pytest runs, and overlapping sweeps
of the same column all land without read-merge-replace races.

**Legacy JSON fallback (one release).**  Caches written before the 1.4.0
epoch used one JSON file per point (``<root>/<key[:2]>/<key>.json``) and
per column (``<root>/columns/...``), keyed under the legacy epoch.  Those
entries still hit, read-only, through :data:`LEGACY_EPOCHS`: lookups that
miss the shard store probe migrated legacy shards (``<root>/legacy/``)
and then the raw JSON tree under the legacy keys.  ``python -m
repro.bench.runner.cache migrate`` ingests a JSON tree into legacy shards
once, after which the JSON files can be deleted.  The epoch bump
guarantees a stale JSON entry can never alias a shard entry: the two
namespaces hash different epoch strings.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.points import Point
from repro.bench.runner.store import ShardStore

__all__ = [
    "ResultCache", "cache_key", "column_key", "default_cache_dir",
    "CACHE_EPOCH", "LEGACY_EPOCHS", "migrate",
    "write_legacy_json_point", "write_legacy_json_column",
    "result_to_doc", "result_from_doc",
]

_ENV_DIR = "PIPMCOLL_CACHE_DIR"
_DEFAULT_DIR = ".bench_cache"

#: the current cache-key epoch.  Tracks the package version: bump
#: ``repro.__version__`` whenever a change alters simulated results (new
#: engine semantics, cost-model changes, protocol changes) so stale
#: entries can never alias fresh ones.  See DESIGN.md §5 for the policy.
CACHE_EPOCH = repro.__version__

#: epochs whose pre-shard JSON caches are still readable (read-only
#: fallback, kept for one release after the columnar store landed)
LEGACY_EPOCHS = ("1.3.0",)


def default_cache_dir() -> Path:
    return Path(os.environ.get(_ENV_DIR, _DEFAULT_DIR))


def cache_key(point: Point, epoch: Optional[str] = None) -> str:
    """Stable content hash identifying one point's result.

    ``epoch`` defaults to :data:`CACHE_EPOCH`; the legacy fallback passes
    entries of :data:`LEGACY_EPOCHS` to reproduce pre-shard JSON keys.
    """
    payload = {"version": epoch or CACHE_EPOCH, "point": point.spec_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: memoized column hashes — hashing a resolved ``MachineParams`` spec is
#: ~0.5 ms, which would dominate cached-column reads if paid per point;
#: every size along a column shares the hash, so memoize it by the
#: point's hashable column identity (all spec fields but ``msg_bytes``)
_COLUMN_KEY_MEMO: Dict[tuple, str] = {}


def column_key(point: Point, epoch: Optional[str] = None) -> str:
    """Stable content hash identifying a point's *column group*.

    The column is the point spec with ``msg_bytes`` removed: every size
    along one figure curve shares it.  Engine, thresholds, params and the
    protocol all stay in the key, so the column store aliases exactly as
    much as the per-point key does — nothing.
    """
    epoch = epoch or CACHE_EPOCH
    ident = (
        point.library, point.collective, point.nodes, point.ppn,
        point.warmup, point.measure, point.params, point.thresholds,
        point.engine, epoch,
    )
    key = _COLUMN_KEY_MEMO.get(ident)
    if key is None:
        spec = point.spec_dict()
        del spec["msg_bytes"]
        payload = {"version": epoch, "column": spec}
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        if len(_COLUMN_KEY_MEMO) >= 65536:
            _COLUMN_KEY_MEMO.clear()
        _COLUMN_KEY_MEMO[ident] = key
    return key


def _result_doc(result: MicrobenchResult) -> dict:
    return {
        "library": result.library,
        "collective": result.collective,
        "nodes": result.nodes,
        "ppn": result.ppn,
        "msg_bytes": result.msg_bytes,
        "time": result.time,
        "samples": list(result.samples),
        "internode_messages": result.internode_messages,
    }


def _result_from_doc(doc: dict) -> MicrobenchResult:
    return MicrobenchResult(
        library=doc["library"],
        collective=doc["collective"],
        nodes=doc["nodes"],
        ppn=doc["ppn"],
        msg_bytes=doc["msg_bytes"],
        time=doc["time"],
        samples=tuple(doc["samples"]),
        internode_messages=doc["internode_messages"],
    )


#: public aliases — the serve wire protocol ships results as exactly the
#: documents the legacy cache used (JSON floats round-trip float64 via
#: repr, so a result crossing the socket stays bit-identical)
result_to_doc = _result_doc
result_from_doc = _result_from_doc


def _atomic_write(path: Path, encoded: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(encoded)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# -- legacy JSON layout (pre-1.4.0 caches; read-only + migration) ----------


def _legacy_point_path(root: Path, key: str) -> Path:
    return root / key[:2] / f"{key}.json"


def _legacy_column_path(root: Path, key: str) -> Path:
    return root / "columns" / key[:2] / f"{key}.json"


def write_legacy_json_point(
    root: "Path | str", point: Point, result: MicrobenchResult,
    epoch: str = LEGACY_EPOCHS[0],
) -> Path:
    """Write one pre-shard per-point JSON entry (tests and benchmarks
    fabricate legacy caches with this; production code never writes JSON)."""
    path = _legacy_point_path(Path(root), cache_key(point, epoch))
    doc = {"version": epoch, **_result_doc(result)}
    _atomic_write(path, json.dumps(doc, separators=(",", ":")).encode())
    return path


def write_legacy_json_column(
    root: "Path | str",
    points: Sequence[Point],
    results: Sequence[MicrobenchResult],
    epoch: str = LEGACY_EPOCHS[0],
) -> Path:
    """Write one pre-shard column JSON document (see
    :func:`write_legacy_json_point`); all points must share a column."""
    keys = {column_key(p, epoch) for p in points}
    if len(keys) != 1:
        raise ValueError(f"points span {len(keys)} columns, expected 1")
    path = _legacy_column_path(Path(root), keys.pop())
    entries = {
        str(p.msg_bytes): _result_doc(r) for p, r in zip(points, results)
    }
    doc = {"version": epoch, "entries": entries}
    _atomic_write(path, json.dumps(doc, separators=(",", ":")).encode())
    return path


class ResultCache:
    """Memoized :class:`MicrobenchResult` values in a columnar store.

    Reads consult, in order: the in-memory write buffer, the shard store,
    migrated legacy shards, and (read-only) any pre-1.4.0 JSON tree left
    in the same directory.  Writes buffer in memory per column group and
    publish as whole shards on :meth:`flush` — called automatically once
    ``flush_threshold`` rows are pending, by :meth:`put_many` (a column
    is a natural batch), and by the sweep runner at the end of each run.
    """

    def __init__(
        self, root: "Path | str | None" = None, flush_threshold: int = 256
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.store = ShardStore(self.root / "shards")
        self._legacy = ShardStore(self.root / "legacy")
        self.flush_threshold = flush_threshold
        #: counters since construction (``--cache-stats`` reporting);
        #: point_* from :meth:`get`, column_* from :meth:`get_many` — the
        #: same per-point accounting, split by access path
        self.point_hits = 0
        self.point_misses = 0
        self.column_hits = 0
        self.column_misses = 0
        self.legacy_hits = 0
        self.stores = 0
        self.flushes = 0
        self._json_bytes_read = 0
        #: pending rows, keyed by column group then message size
        self._pending: Dict[str, Dict[int, MicrobenchResult]] = {}
        self._pending_rows = 0
        #: memoized legacy column JSON documents (read-only, so safe)
        self._legacy_cols: Dict[str, Optional[dict]] = {}

    # -- aggregate counters ---------------------------------------------

    @property
    def hits(self) -> int:
        """Point-level and column-level hits, counted identically."""
        return self.point_hits + self.column_hits

    @property
    def misses(self) -> int:
        return self.point_misses + self.column_misses

    @property
    def bytes_read(self) -> int:
        return (
            self.store.bytes_read + self._legacy.bytes_read
            + self._json_bytes_read
        )

    @property
    def bytes_written(self) -> int:
        return self.store.bytes_written

    def stats(self) -> dict:
        """Counters since construction plus store shape (shards, index)."""
        index = self.store.index_stats()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "point_hits": self.point_hits,
            "point_misses": self.point_misses,
            "column_hits": self.column_hits,
            "column_misses": self.column_misses,
            "legacy_hits": self.legacy_hits,
            "stores": self.stores,
            "flushes": self.flushes,
            "pending_rows": self._pending_rows,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "shards": self.store.shard_count(),
            "index_groups": index["groups"],
            "index_entries": index["entries"],
        }

    # -- lookups ---------------------------------------------------------

    def _lookup(self, point: Point, key: str) -> Optional[MicrobenchResult]:
        pending = self._pending.get(key)
        if pending is not None and point.msg_bytes in pending:
            return pending[point.msg_bytes]
        row = self.store.group(key).get(point.msg_bytes)
        if row is None:
            row = self._legacy_lookup(point)
            if row is not None:
                self.legacy_hits += 1
        return row

    def _legacy_lookup(self, point: Point) -> Optional[MicrobenchResult]:
        """Read-only fallback: migrated legacy shards, then raw JSON."""
        for epoch in LEGACY_EPOCHS:
            col_key = column_key(point, epoch)
            pt_key = cache_key(point, epoch)
            for legacy_key in (col_key, pt_key):
                row = self._legacy.group(legacy_key).get(point.msg_bytes)
                if row is not None:
                    return row
            entries = self._read_legacy_column_json(col_key)
            if entries is not None:
                doc = entries.get(str(point.msg_bytes))
                if doc is not None:
                    try:
                        return _result_from_doc(doc)
                    except (ValueError, KeyError, TypeError):
                        pass
            row = self._read_legacy_point_json(pt_key)
            if row is not None:
                return row
        return None

    def _read_legacy_column_json(self, key: str) -> Optional[dict]:
        if key in self._legacy_cols:
            return self._legacy_cols[key]
        entries: Optional[dict] = None
        try:
            raw = _legacy_column_path(self.root, key).read_bytes()
            doc = json.loads(raw)
            if isinstance(doc.get("entries"), dict):
                entries = doc["entries"]
                self._json_bytes_read += len(raw)
        except (OSError, ValueError):
            pass
        self._legacy_cols[key] = entries
        return entries

    def _read_legacy_point_json(self, key: str) -> Optional[MicrobenchResult]:
        try:
            raw = _legacy_point_path(self.root, key).read_bytes()
            result = _result_from_doc(json.loads(raw))
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self._json_bytes_read += len(raw)
        return result

    def peek(self, point: Point) -> Optional[MicrobenchResult]:
        """:meth:`get` without touching the hit/miss counters.

        The serve daemon re-checks the cache after awaiting a coalesced
        in-flight evaluation; those re-checks are bookkeeping, not client
        traffic, and must not inflate the stats a ``stats`` request (or
        ``record.py --cache-stats``) reports.
        """
        return self._lookup(point, column_key(point))

    def get(self, point: Point) -> Optional[MicrobenchResult]:
        """The cached result for ``point``, or ``None`` on a miss."""
        row = self._lookup(point, column_key(point))
        if row is None:
            self.point_misses += 1
        else:
            self.point_hits += 1
        return row

    def get_many(
        self, points: Sequence[Point]
    ) -> List[Optional[MicrobenchResult]]:
        """Cached results for ``points``, one group scan per column.

        Points may span several columns; each group's shards are read at
        most once (the store memoizes merged views).  Hit/miss accounting
        is per point, identical to a :meth:`get` loop, tallied under the
        ``column_*`` counters.
        """
        out: List[Optional[MicrobenchResult]] = []
        for point in points:
            row = self._lookup(point, column_key(point))
            if row is None:
                self.column_misses += 1
            else:
                self.column_hits += 1
            out.append(row)
        return out

    # -- writes ----------------------------------------------------------

    def put(self, point: Point, result: MicrobenchResult) -> None:
        """Buffer ``result``; durable after the next :meth:`flush`.

        Within the buffer, a repeated put of the same (column, size)
        overwrites — same last-write-wins the append-only shard merge
        applies on disk.
        """
        group = self._pending.setdefault(column_key(point), {})
        if point.msg_bytes not in group:
            self._pending_rows += 1
        group[point.msg_bytes] = result
        self.stores += 1
        if self._pending_rows >= self.flush_threshold:
            self.flush()

    def put_many(
        self, points: Sequence[Point], results: Sequence[MicrobenchResult]
    ) -> None:
        """Store a batch (typically one column) and flush it as shards."""
        if len(points) != len(results):
            raise ValueError(
                f"{len(points)} points but {len(results)} results"
            )
        for point, result in zip(points, results):
            group = self._pending.setdefault(column_key(point), {})
            if point.msg_bytes not in group:
                self._pending_rows += 1
            group[point.msg_bytes] = result
            self.stores += 1
        self.flush()

    def flush(self) -> int:
        """Publish pending rows, one shard per column group; returns rows
        written.  Crash-safe: a shard appears fully or not at all."""
        written = 0
        if not self._pending:
            return 0
        for key, rows in self._pending.items():
            ordered = [rows[size] for size in sorted(rows)]
            self.store.append(key, ordered)
            written += len(ordered)
        self._pending.clear()
        self._pending_rows = 0
        self.flushes += 1
        return written

    # -- maintenance ------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (shards, legacy shards, legacy JSON);
        discards pending rows; returns files removed."""
        self._pending.clear()
        self._pending_rows = 0
        self._legacy_cols.clear()
        removed = self.store.clear() + self._legacy.clear()
        if self.root.exists():
            for pattern in ("*/*.json", "columns/*/*.json"):
                for entry in self.root.glob(pattern):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __len__(self) -> int:
        """Entries on disk: shard rows plus legacy shard rows plus legacy
        JSON entries (pending rows are not yet entries)."""
        n = self.store.entry_count() + self._legacy.entry_count()
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                if path.parent.parent.name == "columns":
                    continue
                n += 1
            for path in self.root.glob("columns/*/*.json"):
                try:
                    n += len(json.loads(path.read_bytes())["entries"])
                except (OSError, ValueError, KeyError, TypeError):
                    pass
        return n


# -- migration tool ---------------------------------------------------------


def migrate(
    root: "Path | str | None" = None, purge_json: bool = False
) -> Dict[str, int]:
    """Ingest a pre-1.4.0 JSON cache tree into legacy shards.

    Per-point files become one-row shards and column documents become
    whole-column shards, both under ``<root>/legacy/`` keyed by the
    *legacy* key the JSON file was stored under (the filename) — lookups
    probe those keys through :data:`LEGACY_EPOCHS`, so migrated entries
    keep hitting bit-identically.  Idempotent: entries already present in
    the legacy store are skipped.  ``purge_json=True`` removes each JSON
    file after successful ingestion.
    """
    root = Path(root) if root is not None else default_cache_dir()
    legacy = ShardStore(root / "legacy")
    counts = {
        "point_files": 0, "column_files": 0, "entries": 0,
        "skipped_entries": 0, "corrupt_files": 0, "purged_files": 0,
    }

    def ingest(key: str, rows: List[MicrobenchResult]) -> None:
        have = legacy.group(key)
        fresh = [r for r in rows if r.msg_bytes not in have]
        counts["skipped_entries"] += len(rows) - len(fresh)
        if fresh:
            legacy.append(key, fresh)
            counts["entries"] += len(fresh)

    if root.exists():
        for path in sorted(root.glob("*/*.json")):
            if path.parent.name in ("columns", "shards", "legacy"):
                continue
            try:
                row = _result_from_doc(json.loads(path.read_bytes()))
            except (OSError, ValueError, KeyError, TypeError):
                counts["corrupt_files"] += 1
                continue
            ingest(path.stem, [row])
            counts["point_files"] += 1
            if purge_json:
                path.unlink(missing_ok=True)
                counts["purged_files"] += 1
        for path in sorted(root.glob("columns/*/*.json")):
            try:
                entries = json.loads(path.read_bytes())["entries"]
                rows = [_result_from_doc(doc) for doc in entries.values()]
            except (OSError, ValueError, KeyError, TypeError):
                counts["corrupt_files"] += 1
                continue
            ingest(path.stem, rows)
            counts["column_files"] += 1
            if purge_json:
                path.unlink(missing_ok=True)
                counts["purged_files"] += 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner.cache",
        description="Result-cache maintenance tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    mig = sub.add_parser(
        "migrate",
        help="ingest a pre-1.4.0 JSON cache tree into legacy shards "
             "(idempotent; old entries keep hitting afterwards)",
    )
    mig.add_argument(
        "--root", default=None,
        help=f"cache directory (default: ${_ENV_DIR} or {_DEFAULT_DIR})",
    )
    mig.add_argument(
        "--purge-json", action="store_true",
        help="delete each JSON file after successful ingestion",
    )
    stats = sub.add_parser(
        "stats", help="print store shape (shards, entries, legacy files)"
    )
    stats.add_argument("--root", default=None)
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else default_cache_dir()
    if args.command == "migrate":
        counts = migrate(root, purge_json=args.purge_json)
        print(
            f"migrated {counts['point_files']} point files and "
            f"{counts['column_files']} column files -> "
            f"{counts['entries']} new entries "
            f"({counts['skipped_entries']} already present, "
            f"{counts['corrupt_files']} corrupt files skipped, "
            f"{counts['purged_files']} JSON files purged) under {root}"
        )
        return 0
    cache = ResultCache(root)
    print(
        f"{root}: {cache.store.shard_count()} shards, "
        f"{cache.store.entry_count()} entries, "
        f"{cache._legacy.shard_count()} legacy shards, "
        f"{cache._legacy.entry_count()} legacy entries"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""The sweep runner: process-pool execution + cache orchestration.

Each :class:`~repro.bench.runner.points.Point` is an independent,
deterministic simulation, so a sweep is embarrassingly parallel: the runner
ships point specs (not worlds — specs pickle in ~200 bytes) to a
``multiprocessing`` pool and reassembles results in submission order.
Serial, parallel, and cache-hit execution are bit-identical by
construction; ``tests/bench/test_runner.py`` enforces it.

Points bound for the batch engine take a different route through the same
machinery: the runner groups them into *columns* — points identical except
for ``msg_bytes`` — and ships each column as one work unit
(:func:`run_sweep_column`), which evaluates the whole size axis in one
vectorized pass (:func:`repro.sched.batch.evaluate_column`) and reads and
writes the columnar result store one column-group shard at a time
(:meth:`~repro.bench.runner.cache.ResultCache.get_many` /
:meth:`~repro.bench.runner.cache.ResultCache.put_many`).  ``auto`` points
upgrade to the column route automatically when the pair is planner-backed
and the column has at least two sizes; the batch engine's bit-identity
contract makes the upgrade invisible in the results.
"""

from __future__ import annotations

import os
import sys
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.microbench import ENGINES, MicrobenchResult, run_point
from repro.bench.runner.cache import ResultCache
from repro.bench.runner.points import Point
from repro.sched.fastpath import fastpath_supported

__all__ = [
    "SweepRunner", "default_runner", "run_points", "run_point_spec",
    "run_sweep_column", "run_sweep_column_stats", "plan_column_routes",
]

_ENV_JOBS = "PIPMCOLL_JOBS"
_ENV_CACHE = "PIPMCOLL_CACHE"
_ENV_PROGRESS = "PIPMCOLL_PROGRESS"
_ENV_ENGINE = "PIPMCOLL_ENGINE"

#: ``progress(done, total, point, source)`` with source in {"run", "cache"}
ProgressFn = Callable[[int, int, Point, str], None]


def run_point_spec(point: Point) -> MicrobenchResult:
    """Module-level pool worker: execute one point.

    Must stay a plain top-level function — ``multiprocessing`` pickles it
    by qualified name, and the :class:`Point` argument plus the returned
    :class:`MicrobenchResult` are the only state that crosses the process
    boundary (no closures over ``World``).
    """
    return run_point(
        point.library,
        point.collective,
        point.nodes,
        point.ppn,
        point.msg_bytes,
        params=point.params,
        warmup=point.warmup,
        measure=point.measure,
        thresholds=point.thresholds,
        engine=point.engine,
    )


def _evaluate_sweep_column(points: Sequence[Point]):
    """Evaluate one column work unit; returns the raw ``ColumnResult``.

    Explicit ``engine="batch"`` points stay on the pure-Python batch
    engine; ``"native-batch"`` and upgraded ``"auto"`` columns replay on
    the native vector-clock kernel whenever it is usable
    (:func:`repro.sched.native_batch.native_batch_available` — numba
    importable and ``PIPMCOLL_NO_NATIVE`` unset), and fall back to the
    pure batch engine otherwise.  Bit-identical either way.
    """
    first = points[0]
    # fail fast with run_point's exact semantics (it refuses measure < 1
    # up front) instead of tripping a ZeroDivisionError — or an engine
    # internal error — deep inside a pool worker
    if first.measure < 1:
        raise ValueError("need at least one measured iteration")

    evaluate = None
    if first.engine != "batch":
        from repro.sched.native_batch import native_batch_available

        if native_batch_available():
            from repro.sched.native_batch import evaluate_column as evaluate
    if evaluate is None:
        from repro.sched.batch import evaluate_column as evaluate

    return evaluate(
        first.library,
        first.collective,
        first.nodes,
        first.ppn,
        [p.msg_bytes for p in points],
        params=first.params,
        warmup=first.warmup,
        measure=first.measure,
        thresholds=first.thresholds,
    )


def _column_results(points: Sequence[Point], col) -> List[MicrobenchResult]:
    out: List[MicrobenchResult] = []
    for p in points:
        fast = col.results[p.msg_bytes]
        out.append(
            MicrobenchResult(
                library=p.library,
                collective=p.collective,
                nodes=p.nodes,
                ppn=p.ppn,
                msg_bytes=p.msg_bytes,
                time=sum(fast.samples) / len(fast.samples),
                samples=fast.samples,
                internode_messages=fast.internode_messages,
            )
        )
    return out


def run_sweep_column(points: Sequence[Point]) -> List[MicrobenchResult]:
    """Pool worker: evaluate one column of points in a single batch pass.

    ``points`` must agree on everything but ``msg_bytes`` (the runner's
    grouping guarantees it).  Results come back in ``points`` order and
    are bit-identical to running each point on the DAG engine — the batch
    engine's contract (see :mod:`repro.sched.batch`).  Top-level for the
    same pickling reason as :func:`run_point_spec`.
    """
    return _column_results(points, _evaluate_sweep_column(points))


def run_sweep_column_stats(
    points: Sequence[Point],
) -> Tuple[List[MicrobenchResult], Dict]:
    """Pool worker: :func:`run_sweep_column` plus this work unit's lowering
    and kernel counters.

    Pool workers are separate processes, so the parent's
    ``planner_cache_info()["batch_lowering"]`` counters never see column
    work — each worker's counters die with its process.  This wrapper
    snapshots the per-process counters around the column pass and ships
    the *delta* home in the result payload, so the runner can aggregate
    lowering hits/misses across every work unit of the sweep regardless
    of which process ran it.  The delta also carries the column's
    ``kernel_mode`` (``""`` for the pure-Python batchline, ``"jit"`` /
    ``"interp"`` for the native kernel) and its ``native_bailouts``
    count, aggregated the same way.
    """
    from repro.sched.batch import lowering_cache_info

    before = lowering_cache_info()
    col = _evaluate_sweep_column(points)
    after = lowering_cache_info()
    delta = {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "kernel_mode": col.stats.kernel_mode,
        "native_bailouts": col.stats.native_bailouts,
    }
    return _column_results(points, col), delta


def _column_group_key(point: Point) -> Tuple:
    """Hashable identity of a point's column (everything but the size)."""
    return (
        point.library, point.collective, point.nodes, point.ppn,
        point.warmup, point.measure, point.params, point.thresholds,
        point.engine,
    )


def plan_column_routes(points: Sequence[Point]) -> Dict[Tuple, List[int]]:
    """Indices of column-routed points, grouped by column.

    A point rides a column when its engine is ``"batch"`` or
    ``"native-batch"`` explicitly, or when it is ``"auto"``, the pair is
    planner-backed, and at least one other point shares its column with a
    different size — the regime where the vectorized pass pays for
    itself.  Shared by
    :class:`SweepRunner` and the :mod:`repro.serve` daemon so both fronts
    route identically (the bit-identity contract makes routing invisible
    in the results, but identical routing keeps cache traffic and
    work-unit shapes the same too).
    """
    groups: Dict[Tuple, List[int]] = {}
    for i, p in enumerate(points):
        if p.engine in ("batch", "native-batch") or (
            p.engine == "auto"
            and fastpath_supported(p.library, p.collective)
        ):
            groups.setdefault(_column_group_key(p), []).append(i)
    return {
        key: idxs
        for key, idxs in groups.items()
        if points[idxs[0]].engine in ("batch", "native-batch")
        or len({points[i].msg_bytes for i in idxs}) > 1
    }


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        # empty-but-set (a shell exporting a placeholder) means "unset →
        # default", not explicit false
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no")


def _default_jobs() -> int:
    raw = os.environ.get(_ENV_JOBS)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(f"{_ENV_JOBS}={raw!r} is not an integer") from None
    return os.cpu_count() or 1


def _stderr_progress(done: int, total: int, point: Point, source: str) -> None:
    tag = " (cached)" if source == "cache" else ""
    print(f"  [{done}/{total}] {point.label()}{tag}", file=sys.stderr, flush=True)


class SweepRunner:
    """Executes lists of points with optional parallelism and memoization.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` reads ``PIPMCOLL_JOBS`` and falls back
        to ``os.cpu_count()``.  ``1`` runs serially in-process (no pool).
    use_cache:
        Consult/populate the on-disk cache (``None`` → ``PIPMCOLL_CACHE``
        env, default on).
    refresh:
        Recompute every point even on a cache hit, then overwrite the
        stored entry (CLI ``--refresh``).
    cache:
        A :class:`ResultCache`; defaults to the standard directory.
    progress:
        ``progress(done, total, point, source)`` callback; ``None`` reads
        ``PIPMCOLL_PROGRESS`` and, when set, prints to stderr.
    engine:
        Force every point onto one evaluation engine (``"event"``,
        ``"dag"``, ``"native"``, ``"batch"`` or ``"auto"``); ``None``
        reads ``PIPMCOLL_ENGINE`` and,
        when that is unset too, leaves each point's own ``engine`` field
        alone.  The override rewrites the points before the cache pass, so
        it is part of the cache key like any other spec field.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None,
        refresh: bool = False,
        cache: Optional[ResultCache] = None,
        progress: "ProgressFn | None" = None,
        engine: Optional[str] = None,
    ):
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.use_cache = (
            _env_flag(_ENV_CACHE, True) if use_cache is None else use_cache
        )
        self.refresh = refresh
        self.cache = cache if cache is not None else ResultCache()
        if progress is None and _env_flag(_ENV_PROGRESS, False):
            progress = _stderr_progress
        self.progress = progress
        if engine is None:
            engine = os.environ.get(_ENV_ENGINE) or None
        if engine is not None and engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
        self.engine = engine
        #: lowering-cache and native-kernel counters summed over every
        #: column work unit this runner executed (pool or serial); see
        #: run_sweep_column_stats
        self._lowering_totals = {
            "hits": 0, "misses": 0, "columns": 0,
            "jit_columns": 0, "interp_columns": 0, "native_bailouts": 0,
        }

    def lowering_cache_totals(self) -> Dict[str, int]:
        """Batch-lowering hits/misses aggregated across all column work
        units run by this runner — survives the process pool, unlike the
        in-process ``planner_cache_info()["batch_lowering"]`` counters.
        ``jit_columns``/``interp_columns`` count the work units whose
        vector passes ran on the native kernel (by tier), and
        ``native_bailouts`` the passes the kernel handed back to the
        pure-Python batchline."""
        return dict(self._lowering_totals)

    # -- execution -------------------------------------------------------

    def _column_indices(
        self, points: Sequence[Point]
    ) -> Dict[Tuple, List[int]]:
        """See :func:`plan_column_routes` — sweeps are grouped before any
        evaluation, so a column is lowered once no matter how many sizes
        it spans (the pool warm start)."""
        return plan_column_routes(points)

    def run(self, points: Sequence[Point]) -> List[MicrobenchResult]:
        """Execute ``points``; results come back in submission order."""
        if self.engine is not None:
            points = [
                p if p.engine == self.engine else replace(p, engine=self.engine)
                for p in points
            ]
        total = len(points)
        results: List[Optional[MicrobenchResult]] = [None] * total
        done = 0

        col_groups = self._column_indices(points)
        col_member = {i for idxs in col_groups.values() for i in idxs}

        # 1. cache pass — point files for point-routed work, one column
        # file per column for the rest
        pending: List[int] = []
        col_pending: Dict[Tuple, List[int]] = {}
        consult = self.use_cache and not self.refresh
        for key, idxs in col_groups.items():
            hits = (
                self.cache.get_many([points[i] for i in idxs])
                if consult else [None] * len(idxs)
            )
            for i, hit in zip(idxs, hits):
                if hit is not None:
                    results[i] = hit
                    done += 1
                    if self.progress:
                        self.progress(done, total, points[i], "cache")
                else:
                    col_pending.setdefault(key, []).append(i)
        for i, point in enumerate(points):
            if i in col_member:
                continue
            hit = self.cache.get(point) if consult else None
            if hit is not None:
                results[i] = hit
                done += 1
                if self.progress:
                    self.progress(done, total, point, "cache")
            else:
                pending.append(i)

        # 2. compute misses (pool or serial); each column is one work unit.
        # Point-routed puts buffer in the cache and flush as whole shards
        # in the finally block — the batched-flush half of the columnar
        # store (column puts are already one shard per put_many call).
        try:
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    computed = self._map_pool(
                        run_point_spec, [points[i] for i in pending]
                    )
                else:
                    computed = map(run_point_spec, (points[i] for i in pending))
                for i, result in zip(pending, computed):
                    results[i] = result
                    if self.use_cache:
                        self.cache.put(points[i], result)
                    done += 1
                    if self.progress:
                        self.progress(done, total, points[i], "run")
            if col_pending:
                groups = [[points[i] for i in idxs]
                          for idxs in col_pending.values()]
                if self.jobs > 1 and len(groups) > 1:
                    computed_cols = self._map_pool(
                        run_sweep_column_stats, groups
                    )
                else:
                    computed_cols = map(run_sweep_column_stats, groups)
                for idxs, group, (col_results, lower_delta) in zip(
                    col_pending.values(), groups, computed_cols
                ):
                    self._lowering_totals["hits"] += lower_delta["hits"]
                    self._lowering_totals["misses"] += lower_delta["misses"]
                    self._lowering_totals["columns"] += 1
                    mode = lower_delta.get("kernel_mode") or ""
                    if mode:
                        self._lowering_totals[f"{mode}_columns"] += 1
                    self._lowering_totals["native_bailouts"] += (
                        lower_delta.get("native_bailouts", 0)
                    )
                    if self.use_cache:
                        self.cache.put_many(group, col_results)
                    for i, result in zip(idxs, col_results):
                        results[i] = result
                        done += 1
                        if self.progress:
                            self.progress(done, total, points[i], "run")
        finally:
            if self.use_cache:
                self.cache.flush()

        return results  # type: ignore[return-value]

    def _map_pool(self, fn, items: List) -> List:
        import multiprocessing as mp

        # fork (where available) inherits the warm interpreter: no
        # re-import of numpy/repro per worker, and workers pickle by name
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        workers = min(self.jobs, len(items))
        # modest chunking keeps scheduling overhead low on big sweeps while
        # still load-balancing the heavy large-message points
        chunksize = max(1, len(items) // (workers * 4))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(fn, items, chunksize=chunksize)


def default_runner(**overrides) -> SweepRunner:
    """A runner configured purely from the environment (plus overrides)."""
    return SweepRunner(**overrides)


def run_points(
    points: Sequence[Point], runner: Optional[SweepRunner] = None
) -> List[MicrobenchResult]:
    """Convenience wrapper: run ``points`` on ``runner`` or an env-default."""
    return (runner or default_runner()).run(points)

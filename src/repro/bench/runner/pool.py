"""The sweep runner: process-pool execution + cache orchestration.

Each :class:`~repro.bench.runner.points.Point` is an independent,
deterministic simulation, so a sweep is embarrassingly parallel: the runner
ships point specs (not worlds — specs pickle in ~200 bytes) to a
``multiprocessing`` pool and reassembles results in submission order.
Serial, parallel, and cache-hit execution are bit-identical by
construction; ``tests/bench/test_runner.py`` enforces it.
"""

from __future__ import annotations

import os
import sys
from dataclasses import replace
from typing import Callable, List, Optional, Sequence

from repro.bench.microbench import ENGINES, MicrobenchResult, run_point
from repro.bench.runner.cache import ResultCache
from repro.bench.runner.points import Point

__all__ = ["SweepRunner", "default_runner", "run_points", "run_point_spec"]

_ENV_JOBS = "PIPMCOLL_JOBS"
_ENV_CACHE = "PIPMCOLL_CACHE"
_ENV_PROGRESS = "PIPMCOLL_PROGRESS"
_ENV_ENGINE = "PIPMCOLL_ENGINE"

#: ``progress(done, total, point, source)`` with source in {"run", "cache"}
ProgressFn = Callable[[int, int, Point, str], None]


def run_point_spec(point: Point) -> MicrobenchResult:
    """Module-level pool worker: execute one point.

    Must stay a plain top-level function — ``multiprocessing`` pickles it
    by qualified name, and the :class:`Point` argument plus the returned
    :class:`MicrobenchResult` are the only state that crosses the process
    boundary (no closures over ``World``).
    """
    return run_point(
        point.library,
        point.collective,
        point.nodes,
        point.ppn,
        point.msg_bytes,
        params=point.params,
        warmup=point.warmup,
        measure=point.measure,
        thresholds=point.thresholds,
        engine=point.engine,
    )


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


def _default_jobs() -> int:
    raw = os.environ.get(_ENV_JOBS)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(f"{_ENV_JOBS}={raw!r} is not an integer") from None
    return os.cpu_count() or 1


def _stderr_progress(done: int, total: int, point: Point, source: str) -> None:
    tag = " (cached)" if source == "cache" else ""
    print(f"  [{done}/{total}] {point.label()}{tag}", file=sys.stderr, flush=True)


class SweepRunner:
    """Executes lists of points with optional parallelism and memoization.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` reads ``PIPMCOLL_JOBS`` and falls back
        to ``os.cpu_count()``.  ``1`` runs serially in-process (no pool).
    use_cache:
        Consult/populate the on-disk cache (``None`` → ``PIPMCOLL_CACHE``
        env, default on).
    refresh:
        Recompute every point even on a cache hit, then overwrite the
        stored entry (CLI ``--refresh``).
    cache:
        A :class:`ResultCache`; defaults to the standard directory.
    progress:
        ``progress(done, total, point, source)`` callback; ``None`` reads
        ``PIPMCOLL_PROGRESS`` and, when set, prints to stderr.
    engine:
        Force every point onto one evaluation engine (``"event"``,
        ``"dag"`` or ``"auto"``); ``None`` reads ``PIPMCOLL_ENGINE`` and,
        when that is unset too, leaves each point's own ``engine`` field
        alone.  The override rewrites the points before the cache pass, so
        it is part of the cache key like any other spec field.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None,
        refresh: bool = False,
        cache: Optional[ResultCache] = None,
        progress: "ProgressFn | None" = None,
        engine: Optional[str] = None,
    ):
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.use_cache = (
            _env_flag(_ENV_CACHE, True) if use_cache is None else use_cache
        )
        self.refresh = refresh
        self.cache = cache if cache is not None else ResultCache()
        if progress is None and _env_flag(_ENV_PROGRESS, False):
            progress = _stderr_progress
        self.progress = progress
        if engine is None:
            engine = os.environ.get(_ENV_ENGINE) or None
        if engine is not None and engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
        self.engine = engine

    # -- execution -------------------------------------------------------

    def run(self, points: Sequence[Point]) -> List[MicrobenchResult]:
        """Execute ``points``; results come back in submission order."""
        if self.engine is not None:
            points = [
                p if p.engine == self.engine else replace(p, engine=self.engine)
                for p in points
            ]
        total = len(points)
        results: List[Optional[MicrobenchResult]] = [None] * total
        done = 0

        # 1. cache pass
        pending: List[int] = []
        for i, point in enumerate(points):
            hit = (
                self.cache.get(point)
                if self.use_cache and not self.refresh
                else None
            )
            if hit is not None:
                results[i] = hit
                done += 1
                if self.progress:
                    self.progress(done, total, point, "cache")
            else:
                pending.append(i)

        # 2. compute misses (pool or serial)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                computed = self._run_pool([points[i] for i in pending])
            else:
                computed = map(run_point_spec, (points[i] for i in pending))
            for i, result in zip(pending, computed):
                results[i] = result
                if self.use_cache:
                    self.cache.put(points[i], result)
                done += 1
                if self.progress:
                    self.progress(done, total, points[i], "run")

        return results  # type: ignore[return-value]

    def _run_pool(self, points: List[Point]) -> List[MicrobenchResult]:
        import multiprocessing as mp

        # fork (where available) inherits the warm interpreter: no
        # re-import of numpy/repro per worker, and run_point pickles by name
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        workers = min(self.jobs, len(points))
        # modest chunking keeps scheduling overhead low on big sweeps while
        # still load-balancing the heavy large-message points
        chunksize = max(1, len(points) // (workers * 4))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(run_point_spec, points, chunksize=chunksize)


def default_runner(**overrides) -> SweepRunner:
    """A runner configured purely from the environment (plus overrides)."""
    return SweepRunner(**overrides)


def run_points(
    points: Sequence[Point], runner: Optional[SweepRunner] = None
) -> List[MicrobenchResult]:
    """Convenience wrapper: run ``points`` on ``runner`` or an env-default."""
    return (runner or default_runner()).run(points)

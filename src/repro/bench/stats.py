"""Run diagnostics: communication and resource statistics for one World.

Answers the questions a performance engineer asks after a run: how many
messages and bytes crossed the wire (by size class), how busy were the
NICs and memory systems, how many messages queued as unexpected.  Used by
the examples and the ablation analysis; also a debugging aid when an
algorithm moves more data than its cost model says it should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mpi.runtime import World
from repro.util.units import KB, fmt_size

__all__ = [
    "CommStats",
    "collect_stats",
    "format_stats",
    "size_class_of",
    "message_histogram",
]

#: size-class edges for the message histogram (paper's small/medium/large)
SIZE_CLASSES: Tuple[Tuple[str, int], ...] = (
    ("<=1kB", 1 * KB),
    ("<=8kB", 8 * KB),
    ("<128kB", 128 * KB - 1),
    (">=128kB", 1 << 62),
)


@dataclass(frozen=True)
class CommStats:
    """Aggregated statistics of everything a World has simulated so far."""

    internode_messages: int
    internode_bytes: int
    #: per-node (messages, bytes) sent
    per_node_sent: Tuple[Tuple[int, int], ...]
    #: busiest / least busy NIC byte counts (load balance indicator)
    max_node_bytes: int
    min_node_bytes: int
    #: messages that arrived before a receive was posted
    unexpected_messages: int
    #: per-node memory-lane busy seconds
    memory_busy: Tuple[float, ...]
    #: per-node bytes copied / reduced through the memory system
    memory_bytes_copied: Tuple[int, ...]
    memory_bytes_reduced: Tuple[int, ...]

    @property
    def nodes(self) -> int:
        return len(self.per_node_sent)

    @property
    def wire_balance(self) -> float:
        """max/min per-node wire bytes (1.0 = perfectly balanced).

        Infinity when some node sent nothing (e.g. scatter leaves)."""
        if self.min_node_bytes == 0:
            return float("inf") if self.max_node_bytes else 1.0
        return self.max_node_bytes / self.min_node_bytes


def collect_stats(world: World) -> CommStats:
    """Snapshot the accounting counters of ``world``'s hardware."""
    per_node = tuple(
        (nic.messages_sent, nic.bytes_sent) for nic in world.hw.nics
    )
    byte_counts = [b for _m, b in per_node]
    return CommStats(
        internode_messages=world.hw.total_internode_messages(),
        internode_bytes=world.hw.total_internode_bytes(),
        per_node_sent=per_node,
        max_node_bytes=max(byte_counts),
        min_node_bytes=min(byte_counts),
        unexpected_messages=world.transport.unexpected_count,
        memory_busy=tuple(m.lanes.busy_time for m in world.hw.memories),
        memory_bytes_copied=tuple(m.bytes_copied for m in world.hw.memories),
        memory_bytes_reduced=tuple(m.bytes_reduced for m in world.hw.memories),
    )


def format_stats(stats: CommStats, title: str = "run statistics") -> str:
    """Readable multi-line report."""
    lines = [f"== {title} =="]
    lines.append(
        f"internode: {stats.internode_messages} messages, "
        f"{fmt_size(stats.internode_bytes)} total"
    )
    balance = stats.wire_balance
    balance_text = "inf" if balance == float("inf") else f"{balance:.2f}"
    lines.append(
        f"wire balance (max/min node bytes): {balance_text} "
        f"({fmt_size(stats.max_node_bytes)} / {fmt_size(stats.min_node_bytes)})"
    )
    lines.append(f"unexpected messages: {stats.unexpected_messages}")
    copied = sum(stats.memory_bytes_copied)
    reduced = sum(stats.memory_bytes_reduced)
    lines.append(
        f"memory traffic: {fmt_size(copied)} copied, "
        f"{fmt_size(reduced)} reduced, "
        f"{sum(stats.memory_busy) * 1e6:.1f}us lane-busy total"
    )
    return "\n".join(lines)


def size_class_of(nbytes: int) -> str:
    """The histogram bucket a message of ``nbytes`` falls into."""
    for label, limit in SIZE_CLASSES:
        if nbytes <= limit:
            return label
    raise AssertionError("unreachable: last class is unbounded")


def message_histogram(sizes: List[int]) -> Dict[str, int]:
    """Bucket a list of message sizes into the paper's size classes."""
    hist = {label: 0 for label, _ in SIZE_CLASSES}
    for nbytes in sizes:
        hist[size_class_of(nbytes)] += 1
    return hist

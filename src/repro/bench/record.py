"""Record figure results to disk — ``python -m repro.bench.record``.

Runs the selected figure experiments at the selected scale and writes both
the absolute and the normalised tables to a text file (and stdout).  This
is the tool that produced the measured numbers quoted in EXPERIMENTS.md.

Sweeps execute through :mod:`repro.bench.runner`: points fan out across a
process pool (``--jobs``) and results are memoized in ``.bench_cache/``
(``--no-cache`` to bypass, ``--refresh`` to recompute and overwrite).
``--check`` reruns each figure serially with the cache off and asserts the
parallel/cached series are bit-identical — the determinism guarantee CI
leans on.

Usage::

    python -m repro.bench.record --figures fig09,fig11 --scale paper \
        --jobs 8 --out results/paper_scale.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.figures import ALL_FIGURES
from repro.bench.report import format_normalized, format_table
from repro.bench.runner import SweepRunner

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.record", description=__doc__
    )
    parser.add_argument(
        "--figures",
        default=",".join(ALL_FIGURES),
        help=f"comma-separated subset of {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--scale", default="medium", choices=sorted(SCALES),
        help="cluster scale preset (paper = 128x18, the testbed of §IV-A)",
    )
    parser.add_argument(
        "--out", default=None, help="append results to this file as well"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep pool (default: PIPMCOLL_JOBS "
             "or os.cpu_count(); 1 = serial in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute every point and overwrite its cache entry",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed point to stderr",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="after each figure, rerun it serially with the cache off and "
             "assert the series are identical (determinism self-test)",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    names = [n.strip() for n in args.figures.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}")

    runner = SweepRunner(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        refresh=args.refresh,
        progress=_stderr_progress if args.progress else None,
    )

    out_path = Path(args.out) if args.out else None
    if out_path:
        out_path.parent.mkdir(parents=True, exist_ok=True)

    def emit(text: str) -> None:
        print(text, flush=True)
        if out_path:
            with out_path.open("a") as fh:
                fh.write(text + "\n")

    for name in names:
        t0 = time.time()
        result = ALL_FIGURES[name](scale=scale, runner=runner)
        wall = time.time() - t0
        emit(format_table(result))
        if "PiP-MColl" in result.series:
            emit(format_normalized(result))
            emit(
                f"   best speedup vs fastest other library: "
                f"{result.best_speedup_vs_fastest_other():.2f}x"
            )
        emit(f"   [{name} done in {wall:.1f}s host time]\n")
        if args.check:
            serial = SweepRunner(jobs=1, use_cache=False)
            reference = ALL_FIGURES[name](scale=scale, runner=serial)
            if reference.series != result.series:
                emit(f"   [{name} CHECK FAILED: parallel != serial]")
                return 1
            emit(f"   [{name} check ok: parallel/cached == serial]\n")
    return 0


def _stderr_progress(done, total, point, source) -> None:
    tag = " (cached)" if source == "cache" else ""
    print(f"  [{done}/{total}] {point.label()}{tag}", file=sys.stderr, flush=True)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

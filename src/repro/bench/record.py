"""Record figure results to disk — ``python -m repro.bench.record``.

Runs the selected figure experiments at the selected scale and writes both
the absolute and the normalised tables to a text file (and stdout).  This
is the tool that produced the measured numbers quoted in EXPERIMENTS.md.

Usage::

    python -m repro.bench.record --figures fig09,fig11 --scale paper \
        --out results/paper_scale.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.figures import ALL_FIGURES
from repro.bench.report import format_normalized, format_table

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.record", description=__doc__
    )
    parser.add_argument(
        "--figures",
        default=",".join(ALL_FIGURES),
        help=f"comma-separated subset of {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--scale", default="medium", choices=sorted(SCALES),
        help="cluster scale preset (paper = 128x18, the testbed of §IV-A)",
    )
    parser.add_argument(
        "--out", default=None, help="append results to this file as well"
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    names = [n.strip() for n in args.figures.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}")

    out_path = Path(args.out) if args.out else None
    if out_path:
        out_path.parent.mkdir(parents=True, exist_ok=True)

    def emit(text: str) -> None:
        print(text, flush=True)
        if out_path:
            with out_path.open("a") as fh:
                fh.write(text + "\n")

    for name in names:
        t0 = time.time()
        result = ALL_FIGURES[name](scale=scale)
        wall = time.time() - t0
        emit(format_table(result))
        if "PiP-MColl" in result.series:
            emit(format_normalized(result))
            emit(
                f"   best speedup vs fastest other library: "
                f"{result.best_speedup_vs_fastest_other():.2f}x"
            )
        emit(f"   [{name} done in {wall:.1f}s host time]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Record figure results to disk — ``python -m repro.bench.record``.

Runs the selected figure experiments at the selected scale and writes both
the absolute and the normalised tables to a text file (and stdout).  This
is the tool that produced the measured numbers quoted in EXPERIMENTS.md.

Sweeps execute through :mod:`repro.bench.runner`: points fan out across a
process pool (``--jobs``) and results are memoized in the columnar shard
store under ``.bench_cache/`` (``--no-cache`` to bypass, ``--refresh`` to
recompute and overwrite-by-append; ``--incremental`` skips figures whose
backing shards are unchanged since their last recording).
``--check`` reruns each figure serially with the cache off and asserts the
parallel/cached series are bit-identical — the determinism guarantee CI
leans on.  ``--engine dag`` (or ``auto``) evaluates points on the analytic
DAG fast path instead of the event loop — bit-identical results, several
times faster on planner-backed sweeps; ``--engine native`` replays the
same lowered programs in the numba-JIT kernel (bit-identical to DAG,
another order of magnitude when numba is installed, transparent DAG
fallback when it is not); ``--engine batch`` evaluates whole
message-size columns in one vectorized pass (bit-identical again, another
multiple faster on dense axes; ``auto`` picks it by itself for
planner-backed multi-size columns); ``--cache-stats`` reports cache
hit/miss/byte counters at the end.

``--trace out.json --trace-point LIBRARY/COLLECTIVE/NBYTES`` skips the
figure sweeps and instead records one steady-state iteration of a single
point (at the selected scale's shape) into a phase-tagged Chrome/Perfetto
trace — load it at https://ui.perfetto.dev to see the algorithm phases.

Usage::

    python -m repro.bench.record --figures fig09,fig11 --scale paper \
        --jobs 8 --out results/paper_scale.txt
    python -m repro.bench.record --scale small \
        --trace out.json --trace-point PiP-MColl/allreduce/64K
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.figures import ALL_FIGURES, figure_points
from repro.bench.microbench import ENGINES
from repro.bench.report import format_normalized, format_table
from repro.bench.runner import SweepRunner

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.record", description=__doc__
    )
    parser.add_argument(
        "--figures",
        default=",".join(ALL_FIGURES),
        help=f"comma-separated subset of {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--scale", default="medium", choices=sorted(SCALES),
        help="cluster scale preset (paper = 128x18, the testbed of §IV-A)",
    )
    parser.add_argument(
        "--out", default=None, help="append results to this file as well"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep pool (default: PIPMCOLL_JOBS "
             "or os.cpu_count(); 1 = serial in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute every point and overwrite its cache entry",
    )
    parser.add_argument(
        "--engine", default=None, choices=ENGINES,
        help="evaluation engine for every point: the coroutine event loop "
             "(authoritative), the DAG fast path (bit-identical, "
             "planner-backed pairs only), native (bit-identical; the "
             "numba-JIT replay kernel, DAG fallback without numba), "
             "batch (bit-identical; whole size columns in one vectorized "
             "pass), or auto (batch for planner-backed multi-size "
             "columns, native/DAG for the rest of its coverage); "
             "default: PIPMCOLL_ENGINE or each point's own setting",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed point to stderr",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="report result-store hits/misses/bytes (point- and "
             "column-level), shard count, in-memory index size, and "
             "batch-lowering counters (aggregated across pool work "
             "units) after the figures",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="skip figures whose backing store shards are unchanged "
             "since they were last recorded (tracked in "
             "figures_manifest.json next to the shards; fig01 is never "
             "skipped — it is not point-backed)",
    )
    parser.add_argument(
        "--error-report", action="store_true",
        help="skip the figures and measure the analytic tier's error "
             "against the exact engines across the registry grid, "
             "persisting results/analytic_error.json (exit 1 if the "
             "documented bound is violated)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="after each figure, rerun it serially with the cache off and "
             "assert the series are identical (determinism self-test)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="OUT.JSON",
        help="dump a phase-tagged Perfetto trace of one point (requires "
             "--trace-point) instead of running figures",
    )
    parser.add_argument(
        "--trace-point", default=None, metavar="LIB/COLLECTIVE/NBYTES",
        help="the point to trace, e.g. PiP-MColl/allreduce/64K; the shape "
             "comes from --scale",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    if args.error_report:
        from repro.models.calibrate import format_summary, write_error_report

        doc = write_error_report()
        print(format_summary(doc))
        print("wrote results/analytic_error.json")
        return 0 if doc["within_bound"] else 1
    if args.trace or args.trace_point:
        if not (args.trace and args.trace_point):
            parser.error("--trace and --trace-point must be used together")
        return _record_trace(args.trace, args.trace_point, scale, parser)
    names = [n.strip() for n in args.figures.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}")

    runner = SweepRunner(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        refresh=args.refresh,
        progress=_stderr_progress if args.progress else None,
        engine=args.engine,
    )

    manifest = None
    if args.incremental:
        if args.no_cache:
            parser.error("--incremental requires the result store "
                         "(drop --no-cache)")
        from repro.bench.manifest import MANIFEST_NAME, FigureManifest

        manifest = FigureManifest(runner.cache.root / MANIFEST_NAME)

    out_path = Path(args.out) if args.out else None
    if out_path:
        out_path.parent.mkdir(parents=True, exist_ok=True)

    def emit(text: str) -> None:
        print(text, flush=True)
        if out_path:
            with out_path.open("a") as fh:
                fh.write(text + "\n")

    def _manifest_points(name):
        pts = figure_points(name, scale)
        if pts is not None and runner.engine is not None:
            pts = [replace(p, engine=runner.engine) for p in pts]
        return pts

    for name in names:
        fig_id = fig_points = None
        if manifest is not None:
            fig_points = _manifest_points(name)
            if fig_points is not None:
                fig_id = manifest.figure_id(name, args.scale, runner.engine)
                if not args.refresh and manifest.is_fresh(
                    fig_id, manifest.fingerprint(runner.cache, fig_points)
                ):
                    emit(f"   [{name} backing shards unchanged, skipped "
                         f"(incremental)]\n")
                    continue
        t0 = time.time()
        result = ALL_FIGURES[name](scale=scale, runner=runner)
        wall = time.time() - t0
        emit(format_table(result))
        if "PiP-MColl" in result.series:
            emit(format_normalized(result))
            emit(
                f"   best speedup vs fastest other library: "
                f"{result.best_speedup_vs_fastest_other():.2f}x"
            )
        emit(f"   [{name} done in {wall:.1f}s host time]\n")
        if fig_id is not None:
            # fingerprint *after* the run: the sweep flushed its shards,
            # so the recorded state covers every backing point
            manifest.record(
                fig_id, manifest.fingerprint(runner.cache, fig_points)
            )
        if args.check:
            serial = SweepRunner(jobs=1, use_cache=False, engine=args.engine)
            reference = ALL_FIGURES[name](scale=scale, runner=serial)
            if reference.series != result.series:
                emit(f"   [{name} CHECK FAILED: parallel != serial]")
                return 1
            emit(f"   [{name} check ok: parallel/cached == serial]\n")
    if args.cache_stats:
        s = runner.cache.stats()
        emit(
            f"   [cache: {s['hits']} hits ({s['point_hits']} point / "
            f"{s['column_hits']} column), {s['misses']} misses "
            f"({s['point_misses']} point / {s['column_misses']} column), "
            f"{s['stores']} stores in "
            f"{s['flushes']} flushes, {s['bytes_read']}B read, "
            f"{s['bytes_written']}B written]"
        )
        emit(
            f"   [store: {s['shards']} shards on disk, index "
            f"{s['index_groups']} groups / {s['index_entries']} entries]"
        )
        lo = runner.lowering_cache_totals()
        emit(
            f"   [batch lowering: {lo['hits']} hits, {lo['misses']} misses "
            f"across {lo['columns']} column work units]"
        )
        emit(
            f"   [native batch: {lo['jit_columns']} jit / "
            f"{lo['interp_columns']} interp kernel columns, "
            f"{lo['native_bailouts']} bailouts]"
        )
    return 0


def _record_trace(out_path: str, spec: str, scale, parser) -> int:
    """Run one point with a tracer attached and dump the Perfetto JSON."""
    from repro.bench.microbench import run_point
    from repro.sim.trace import Tracer

    parts = spec.split("/")
    if len(parts) != 3:
        parser.error(
            f"bad --trace-point {spec!r}; expected LIB/COLLECTIVE/NBYTES"
        )
    library, collective, size_text = parts
    try:
        msg_bytes = _parse_size(size_text)
    except ValueError as exc:
        parser.error(str(exc))

    tracer = Tracer()
    result = run_point(
        library, collective, scale.nodes, scale.ppn, msg_bytes, tracer=tracer
    )
    tracer.dump_chrome_trace(out_path)
    phases = sorted(p or "(untagged)" for p in tracer.by_phase())
    print(
        f"traced {library} {collective} {scale.nodes}x{scale.ppn} "
        f"{msg_bytes}B: {result.time * 1e6:.2f}us simulated, "
        f"{len(tracer.events)} spans -> {out_path}"
    )
    print(f"   phases: {', '.join(phases)}")
    return 0


def _parse_size(text: str) -> int:
    """Parse ``64K``-style sizes (K/M suffix, base 1024)."""
    raw = text.strip().upper()
    factor = 1
    if raw.endswith(("K", "M")):
        factor = 1024 if raw.endswith("K") else 1024**2
        raw = raw[:-1]
    try:
        value = int(raw) * factor
    except ValueError:
        raise ValueError(f"bad message size {text!r}") from None
    if value < 1:
        raise ValueError(f"message size must be positive, got {text!r}")
    return value


def _stderr_progress(done, total, point, source) -> None:
    tag = " (cached)" if source == "cache" else ""
    print(f"  [{done}/{total}] {point.label()}{tag}", file=sys.stderr, flush=True)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

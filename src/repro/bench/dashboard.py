"""Cross-run regression dashboard — ``python -m repro.bench.dashboard``.

The repository commits one ``BENCH_*.json`` document per performance
campaign (``BENCH_fastpath.json``, ``BENCH_native.json``,
``BENCH_batch.json``, ``BENCH_native_batch.json``,
``BENCH_analytic.json``, ``BENCH_store.json``,
``BENCH_serve.json`` — all written by
``benchmarks/bench_speed.py``).  Each carries an ``aggregate`` block with
a headline points-per-second figure.  This tool lines those figures up
*across commits*: for every ``BENCH_*.json`` in the working tree it walks
the file's git history, extracts the headline metric from each committed
revision, prints the trajectory, and flags a regression when the working
tree value drops below ``--threshold`` (default 0.8) times the best
committed value.

Usage::

    python -m repro.bench.dashboard                  # table + trajectories
    python -m repro.bench.dashboard --check          # exit 1 on regression
    python -m repro.bench.dashboard --commits 0      # working tree only

Outside a git checkout (or with ``--commits 0``) the dashboard degrades
to a plain table of current values.  CI runs the per-benchmark smoke
gates for hard regression checks; this tool is the cross-campaign,
cross-commit view a human reads.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["main", "headline_metric"]

#: aggregate keys, most-derived engine first — the first present in a
#: document's ``aggregate`` block is its headline metric
_PREFERRED_METRICS = (
    "warm_points_per_sec",
    "store_points_per_sec",
    "native_batch_points_per_sec",
    "native_points_per_sec",
    "batch_points_per_sec",
    "analytic_points_per_sec",
    "dag_points_per_sec",
)


def headline_metric(doc: dict) -> Tuple[str, float]:
    """The (name, value) of a bench document's headline throughput."""
    agg = doc.get("aggregate")
    if not isinstance(agg, dict):
        raise ValueError("no aggregate block")
    for key in _PREFERRED_METRICS:
        if key in agg:
            return key, float(agg[key])
    for key in sorted(agg):
        if key.endswith("points_per_sec"):
            return key, float(agg[key])
    raise ValueError("no points-per-sec aggregate metric")


def _git(args: List[str], cwd: Path) -> Optional[str]:
    try:
        res = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return res.stdout if res.returncode == 0 else None


def file_history(
    directory: Path, name: str, limit: int
) -> List[Tuple[str, str, dict]]:
    """``(short_sha, date, doc)`` per committed revision, newest first."""
    if limit <= 0:
        return []
    log = _git(
        ["log", "--format=%h %cs", "-n", str(limit), "--", name], directory
    )
    if not log:
        return []
    out = []
    for line in log.splitlines():
        parts = line.split(maxsplit=1)
        if len(parts) != 2:
            continue
        sha, date = parts
        # ./ anchors the path at the cwd, not the repository toplevel
        raw = _git(["show", f"{sha}:./{name}"], directory)
        if raw is None:
            continue
        try:
            out.append((sha, date, json.loads(raw)))
        except ValueError:
            continue
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.dashboard", description=__doc__
    )
    parser.add_argument(
        "--dir", default=".", metavar="PATH",
        help="directory holding the BENCH_*.json files (default: .)",
    )
    parser.add_argument(
        "--commits", type=int, default=8, metavar="N",
        help="git revisions of each file to include (0 = working tree "
             "only; default 8)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.8,
        help="flag a regression when the working-tree value is below "
             "THRESHOLD x the best committed value (default 0.8)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any benchmark regressed (CI/cron mode)",
    )
    args = parser.parse_args(argv)

    directory = Path(args.dir)
    files = sorted(directory.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json files under {directory}", file=sys.stderr)
        return 2

    regressions = []
    for path in files:
        try:
            doc = json.loads(path.read_text())
            metric, current = headline_metric(doc)
        except (OSError, ValueError) as exc:
            print(f"{path.name}: unreadable ({exc})", file=sys.stderr)
            regressions.append(path.name)
            continue

        history = file_history(directory, path.name, args.commits)
        trail = []
        for sha, date, old in history:
            try:
                old_metric, value = headline_metric(old)
            except ValueError:
                continue
            if old_metric == metric:
                trail.append((sha, date, value))

        print(f"{path.name}  [{metric}]")
        print(f"  working tree: {current:12.1f} pts/s")
        best_prior = None
        for sha, date, value in trail:
            best_prior = value if best_prior is None else max(
                best_prior, value
            )
            print(f"  {sha} {date}: {value:12.1f} pts/s")
        if best_prior is not None and current < args.threshold * best_prior:
            print(
                f"  REGRESSION: {current:.1f} < "
                f"{args.threshold:.2f} x best committed ({best_prior:.1f})"
            )
            regressions.append(path.name)
        elif best_prior is not None:
            print(
                f"  ok: within {args.threshold:.2f}x of best committed "
                f"({best_prior:.1f})"
            )
        else:
            print("  (no committed history)")
        print()

    if regressions:
        print(f"regressed: {', '.join(regressions)}")
        return 1 if args.check else 0
    print("all benchmarks within threshold")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

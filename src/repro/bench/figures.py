"""One experiment definition per evaluation figure of the paper.

Every function regenerates the rows/series of the corresponding figure in
§IV (times per library per x-axis point) at the active
:class:`~repro.bench.config.BenchScale`.  Figures 2-5 are design diagrams,
not measurements, and have no bench.

Message-size axes follow the paper exactly; at reduced scales only the
cluster shape changes (see ``config``).

Execution goes through :mod:`repro.bench.runner`: every sweep expands into
declarative :class:`~repro.bench.runner.Point` specs and is submitted to a
:class:`~repro.bench.runner.SweepRunner` — parallel across a process pool
and memoized on disk, with results bit-identical to the old serial loops.
Pass ``runner=`` to control jobs/caching programmatically, or use the
``PIPMCOLL_JOBS`` / ``PIPMCOLL_CACHE`` environment knobs (see the runner
module docs and ``python -m repro.bench.record --help``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import library_names
from repro.bench.config import BenchScale, current_scale
from repro.bench.report import FigureResult
from repro.bench.runner import Point, SweepRunner, expand_sweep, run_points
from repro.hw.params import MachineParams, bebop_broadwell
from repro.hw.topology import Topology
from repro.mpi.buffer import Buffer
from repro.mpi.runtime import World
from repro.shmem.mechanisms import PipShmem
from repro.util.units import KB, fmt_size

__all__ = [
    "figure_points",
    "fig01_multiobject_p2p",
    "fig06_scatter_scaling",
    "fig07_allgather_scaling",
    "fig08_allreduce_scaling",
    "fig09_scatter_small",
    "fig10_allgather_small",
    "fig11_allreduce_small",
    "fig12_scatter_large",
    "fig13_allgather_large",
    "fig14_allreduce_large",
    "ALL_FIGURES",
]

SMALL_SIZES = [16, 32, 64, 128, 256, 512]
LARGE_SIZES = [KB * (1 << i) for i in range(10)]  # 1 kB .. 512 kB
DOUBLE = 8
SMALL_COUNTS = [2, 4, 8, 16, 32, 64]  # doubles: 16 B .. 512 B
LARGE_COUNTS = [1024 * (1 << i) for i in range(10)]  # 1 k .. 512 k doubles


def _sweep_points(
    collective: str,
    sizes: Sequence[int],
    libs: Sequence[str],
    scale: BenchScale,
    params: Optional[MachineParams],
    nodes: Optional[int] = None,
) -> List[Point]:
    return expand_sweep(
        collective, sizes, libs, nodes or scale.nodes, scale.ppn, params
    )


def _node_sweep_points(
    collective: str,
    nbytes: int,
    libs: Sequence[str],
    scale: BenchScale,
    params: Optional[MachineParams],
) -> List[Point]:
    return [
        Point(lib, collective, nodes, scale.ppn, nbytes, params=params)
        for nodes in scale.node_sweep
        for lib in libs
    ]


def _series_from(
    points: Sequence[Point],
    libs: Sequence[str],
    runner: Optional[SweepRunner],
) -> Dict[str, List[float]]:
    results = run_points(points, runner)
    series: Dict[str, List[float]] = {lib: [] for lib in libs}
    for point, r in zip(points, results):
        series[point.library].append(r.time)
    return series


def _sweep(
    collective: str,
    sizes: Sequence[int],
    libs: Sequence[str],
    scale: BenchScale,
    params: Optional[MachineParams],
    nodes: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, List[float]]:
    points = _sweep_points(collective, sizes, libs, scale, params, nodes)
    return _series_from(points, libs, runner)


def _node_sweep(
    collective: str,
    nbytes: int,
    libs: Sequence[str],
    scale: BenchScale,
    params: Optional[MachineParams],
    runner: Optional[SweepRunner] = None,
) -> Dict[str, List[float]]:
    points = _node_sweep_points(collective, nbytes, libs, scale, params)
    return _series_from(points, libs, runner)


def _meta(scale: BenchScale, **extra) -> Dict[str, str]:
    m = {"scale": scale.name, "shape": f"{scale.nodes}x{scale.ppn}"}
    m.update({k: str(v) for k, v in extra.items()})
    return m


# ---------------------------------------------------------------------------
# Fig. 1 — internode p2p message rate / throughput vs #senders+receivers
# ---------------------------------------------------------------------------

def fig01_multiobject_p2p(
    scale: Optional[BenchScale] = None,
    params: Optional[MachineParams] = None,
    messages_per_sender: int = 64,
    runner: Optional[SweepRunner] = None,  # accepted for API uniformity;
    # this figure builds custom p2p worlds, which stay serial in-process
) -> FigureResult:
    """Fig. 1: 2 nodes, 1..ppn concurrent sender/receiver pairs.

    Series (not times): ``msgrate_4kB`` in messages/s and
    ``throughput_128kB`` in bytes/s — the two panels of the figure.
    """
    scale = scale or current_scale()
    params = params or bebop_broadwell()
    ppn = max(scale.ppn, 18)  # the figure sweeps up to 18 pairs
    xs = list(range(1, ppn + 1))
    rate_series: List[float] = []
    bw_series: List[float] = []

    for nbytes, out in ((4 * KB, rate_series), (128 * KB, bw_series)):
        for k in xs:
            world = World(
                Topology(2, ppn), params, mechanism=PipShmem(), phantom=True
            )
            sends = [Buffer.phantom(nbytes) for _ in range(k)]
            recvs = [Buffer.phantom(nbytes) for _ in range(k)]

            def body(ctx, k=k, sends=sends, recvs=recvs):
                if ctx.node == 0 and ctx.local_rank < k:
                    reqs = []
                    for _ in range(messages_per_sender):
                        req = yield from ctx.isend(
                            ctx.rank_of(1, ctx.local_rank),
                            sends[ctx.local_rank],
                            tag=7,
                        )
                        reqs.append(req)
                    yield from ctx.waitall(reqs)
                elif ctx.node == 1 and ctx.local_rank < k:
                    reqs = [
                        ctx.irecv(
                            ctx.rank_of(0, ctx.local_rank),
                            recvs[ctx.local_rank],
                            tag=7,
                        )
                        for _ in range(messages_per_sender)
                    ]
                    yield from ctx.waitall(reqs)

            elapsed = world.run(body).elapsed
            total_msgs = k * messages_per_sender
            if nbytes == 4 * KB:
                out.append(total_msgs / elapsed)
            else:
                out.append(total_msgs * nbytes / elapsed)

    return FigureResult(
        fig_id="fig01",
        title="Internode p2p with multiple senders/receivers (Omni-Path model)",
        xlabel="#sender/receiver pairs",
        xs=xs,
        series={"msgrate_4kB[msg/s]": rate_series,
                "throughput_128kB[B/s]": bw_series},
        notes="series are rates, not times: higher is better",
        meta={"nodes": "2", "ppn": str(ppn)},
    )


# ---------------------------------------------------------------------------
# Figs. 6-8 — scalability vs node count (PiP-MColl vs PiP-MPICH)
# ---------------------------------------------------------------------------

def _scaling_figure(
    fig_id: str, collective: str, small_bytes: int, medium_bytes: int,
    small_label: str, medium_label: str,
    scale: Optional[BenchScale], params: Optional[MachineParams],
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    scale = scale or current_scale()
    libs = ["PiP-MColl", "PiP-MPICH"]
    small = _node_sweep(collective, small_bytes, libs, scale, params, runner)
    medium = _node_sweep(collective, medium_bytes, libs, scale, params, runner)
    series = {
        f"{lib} @{small_label}": small[lib] for lib in libs
    }
    series.update({f"{lib} @{medium_label}": medium[lib] for lib in libs})
    return FigureResult(
        fig_id=fig_id,
        title=f"MPI_{collective.capitalize()} vs node count",
        xlabel="nodes",
        xs=list(scale.node_sweep),
        series=series,
        meta=_meta(scale, ppn=scale.ppn),
    )


def fig06_scatter_scaling(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 6: MPI_Scatter, 16 B and 1 kB, increasing node counts."""
    return _scaling_figure(
        "fig06", "scatter", 16, 1 * KB, "16B", "1kB", scale, params, runner
    )


def fig07_allgather_scaling(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 7: MPI_Allgather, 16 B and 1 kB, increasing node counts."""
    return _scaling_figure(
        "fig07", "allgather", 16, 1 * KB, "16B", "1kB", scale, params, runner
    )


def fig08_allreduce_scaling(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 8: MPI_Allreduce, 16 and 1 k doubles, increasing node counts."""
    return _scaling_figure(
        "fig08", "allreduce", 16 * DOUBLE, 1024 * DOUBLE, "16dbl", "1kdbl",
        scale, params, runner,
    )


# ---------------------------------------------------------------------------
# Figs. 9-11 — small messages, all five libraries
# ---------------------------------------------------------------------------

def fig09_scatter_small(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 9: MPI_Scatter, 16-512 B per process, five libraries."""
    scale = scale or current_scale()
    libs = library_names()
    series = _sweep("scatter", SMALL_SIZES, libs, scale, params, runner=runner)
    return FigureResult(
        "fig09", "MPI_Scatter, small message sizes", "msgsize",
        [fmt_size(s) for s in SMALL_SIZES], series, meta=_meta(scale),
    )


def fig10_allgather_small(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 10: MPI_Allgather, 16-512 B per process, five libraries."""
    scale = scale or current_scale()
    libs = library_names()
    series = _sweep("allgather", SMALL_SIZES, libs, scale, params, runner=runner)
    return FigureResult(
        "fig10", "MPI_Allgather, small message sizes", "msgsize",
        [fmt_size(s) for s in SMALL_SIZES], series, meta=_meta(scale),
    )


def fig11_allreduce_small(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 11: MPI_Allreduce, small double counts, five libraries."""
    scale = scale or current_scale()
    libs = library_names()
    sizes = [c * DOUBLE for c in SMALL_COUNTS]
    series = _sweep("allreduce", sizes, libs, scale, params, runner=runner)
    return FigureResult(
        "fig11", "MPI_Allreduce, small double counts", "count",
        [str(c) for c in SMALL_COUNTS], series, meta=_meta(scale),
    )


# ---------------------------------------------------------------------------
# Figs. 12-14 — medium/large messages
# ---------------------------------------------------------------------------

def fig12_scatter_large(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 12: MPI_Scatter, 1-512 kB (same algorithm as small sizes)."""
    scale = scale or current_scale()
    libs = library_names()
    series = _sweep("scatter", LARGE_SIZES, libs, scale, params, runner=runner)
    return FigureResult(
        "fig12", "MPI_Scatter, medium and large message sizes", "msgsize",
        [fmt_size(s) for s in LARGE_SIZES], series, meta=_meta(scale),
    )


def fig13_allgather_large(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 13: MPI_Allgather, 1-512 kB, incl. the PiP-MColl-small variant
    (algorithm switch at 64 kB)."""
    scale = scale or current_scale()
    libs = library_names(include_variants=True)
    series = _sweep("allgather", LARGE_SIZES, libs, scale, params, runner=runner)
    return FigureResult(
        "fig13", "MPI_Allgather, medium and large message sizes", "msgsize",
        [fmt_size(s) for s in LARGE_SIZES], series,
        notes="PiP-MColl switches to the ring algorithm at 64kB",
        meta=_meta(scale),
    )


def fig14_allreduce_large(scale=None, params=None, runner=None) -> FigureResult:
    """Fig. 14: MPI_Allreduce, 1 k-512 k double counts, incl. the
    PiP-MColl-small variant (algorithm switch at 8 k counts = 64 kB)."""
    scale = scale or current_scale()
    libs = library_names(include_variants=True)
    sizes = [c * DOUBLE for c in LARGE_COUNTS]
    series = _sweep("allreduce", sizes, libs, scale, params, runner=runner)
    return FigureResult(
        "fig14", "MPI_Allreduce, medium and large double counts", "count",
        [f"{c // 1024}k" for c in LARGE_COUNTS], series,
        notes="PiP-MColl switches to reduce-scatter+ring at 8k counts",
        meta=_meta(scale),
    )


ALL_FIGURES = {
    "fig01": fig01_multiobject_p2p,
    "fig06": fig06_scatter_scaling,
    "fig07": fig07_allgather_scaling,
    "fig08": fig08_allreduce_scaling,
    "fig09": fig09_scatter_small,
    "fig10": fig10_allgather_small,
    "fig11": fig11_allreduce_small,
    "fig12": fig12_scatter_large,
    "fig13": fig13_allgather_large,
    "fig14": fig14_allreduce_large,
}


# ---------------------------------------------------------------------------
# Declarative point lists (incremental regeneration)
# ---------------------------------------------------------------------------

def _scaling_points(collective, small_bytes, medium_bytes, scale, params):
    libs = ["PiP-MColl", "PiP-MPICH"]
    return (
        _node_sweep_points(collective, small_bytes, libs, scale, params)
        + _node_sweep_points(collective, medium_bytes, libs, scale, params)
    )


#: per-figure point providers, built from the same helpers the figure
#: bodies sweep with, so the declarative list cannot drift from the
#: figure's actual cache traffic.  ``None``: not point-backed (fig01
#: builds custom p2p worlds and never touches the result store).
_FIGURE_POINTS = {
    "fig01": None,
    "fig06": lambda scale, params: _scaling_points(
        "scatter", 16, 1 * KB, scale, params),
    "fig07": lambda scale, params: _scaling_points(
        "allgather", 16, 1 * KB, scale, params),
    "fig08": lambda scale, params: _scaling_points(
        "allreduce", 16 * DOUBLE, 1024 * DOUBLE, scale, params),
    "fig09": lambda scale, params: _sweep_points(
        "scatter", SMALL_SIZES, library_names(), scale, params),
    "fig10": lambda scale, params: _sweep_points(
        "allgather", SMALL_SIZES, library_names(), scale, params),
    "fig11": lambda scale, params: _sweep_points(
        "allreduce", [c * DOUBLE for c in SMALL_COUNTS],
        library_names(), scale, params),
    "fig12": lambda scale, params: _sweep_points(
        "scatter", LARGE_SIZES, library_names(), scale, params),
    "fig13": lambda scale, params: _sweep_points(
        "allgather", LARGE_SIZES,
        library_names(include_variants=True), scale, params),
    "fig14": lambda scale, params: _sweep_points(
        "allreduce", [c * DOUBLE for c in LARGE_COUNTS],
        library_names(include_variants=True), scale, params),
}


def figure_points(
    name: str,
    scale: Optional[BenchScale] = None,
    params: Optional[MachineParams] = None,
) -> Optional[List[Point]]:
    """The declarative :class:`Point` list backing a figure at ``scale``.

    ``None`` for figures that are not point-backed (fig01).  The
    incremental path in ``repro.bench.record`` fingerprints these points'
    column groups (see :mod:`repro.bench.manifest`) to decide whether a
    figure's backing shards changed since it was last rendered.
    """
    if name not in ALL_FIGURES:
        raise KeyError(f"unknown figure {name!r}")
    provider = _FIGURE_POINTS[name]
    if provider is None:
        return None
    return provider(scale or current_scale(), params)

"""Figure regeneration manifest — incremental ``repro.bench.record``.

A figure's series are a pure function of the results backing it, and
those results live in the columnar store as append-only shards grouped by
column key.  So "does this figure need regenerating?" reduces to "did any
backing shard change?": the :class:`FigureManifest` fingerprints the
shard file set (names and sizes — shards are append-only, so the set only
ever grows or is cleared) of every column group a figure's declarative
point list touches (:func:`repro.bench.figures.figure_points`), plus the
cache epoch, and ``record --incremental`` skips figures whose fingerprint
matches the one recorded after their last regeneration.

The manifest is one JSON document next to the shards
(``<cache_root>/figures_manifest.json``), keyed by
``figure@scale/engine``.  Deleting it, clearing the cache, bumping the
epoch, ``--refresh``, or any new shard in a backing group all invalidate
the affected figures; figures that are not point-backed (fig01 builds
custom p2p worlds) are never skipped.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, List, Optional

import repro
from repro.bench.runner.cache import ResultCache, column_key
from repro.bench.runner.points import Point

__all__ = ["FigureManifest", "MANIFEST_NAME"]

MANIFEST_NAME = "figures_manifest.json"


class FigureManifest:
    """Fingerprints of the shard state each figure was last rendered from."""

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        try:
            data = json.loads(self.path.read_text())
            self._data = data if isinstance(data, dict) else {}
        except (OSError, ValueError):
            self._data = {}

    @staticmethod
    def figure_id(name: str, scale_name: str, engine: Optional[str]) -> str:
        """Manifest key: one entry per (figure, scale, engine override)."""
        return f"{name}@{scale_name}/{engine or 'point-default'}"

    def fingerprint(
        self,
        cache: ResultCache,
        points: List[Point],
        extra: Iterable[str] = (),
    ) -> str:
        """Hash of the shard files backing ``points`` (plus the epoch).

        Append-only shards never change in place, so (name, size) pairs
        identify the group state exactly; any new/removed shard — a
        recomputed point, a cleared cache — changes the fingerprint.
        """
        keys = sorted({column_key(p) for p in points})
        shards = []
        for key in keys:
            for path in cache.store.shard_files(key):
                try:
                    shards.append((path.name, path.stat().st_size))
                except OSError:
                    continue
        payload = json.dumps(
            {
                "epoch": repro.__version__,
                "keys": keys,
                "shards": shards,
                "extra": sorted(extra),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def is_fresh(self, figure_id: str, fingerprint: str) -> bool:
        return self._data.get(figure_id) == fingerprint

    def record(self, figure_id: str, fingerprint: str) -> None:
        self._data[figure_id] = fingerprint
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._data, indent=1, sort_keys=True))
        tmp.replace(self.path)

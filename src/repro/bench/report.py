"""ASCII rendering of figure results (the rows/series the paper plots)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.units import fmt_time

__all__ = ["FigureResult", "format_table", "format_normalized"]


@dataclass
class FigureResult:
    """One reproduced figure: x-axis points and one time series per library."""

    fig_id: str
    title: str
    xlabel: str
    xs: Sequence
    #: library name -> simulated seconds per iteration, one per x
    series: Dict[str, List[float]]
    notes: str = ""
    #: extra metadata (scale preset, shapes, ...)
    meta: Dict[str, str] = field(default_factory=dict)

    def speedup_vs(self, other: str, reference: str = "PiP-MColl") -> List[float]:
        """Per-x speedup of ``reference`` over ``other``."""
        ref = self.series[reference]
        oth = self.series[other]
        return [o / r if r > 0 else float("inf") for r, o in zip(ref, oth)]

    def best_speedup_vs_fastest_other(
        self, reference: str = "PiP-MColl"
    ) -> float:
        """Max over x of reference's speedup vs the fastest non-reference
        library — the paper's headline metric."""
        best = 0.0
        ref = self.series[reference]
        for i in range(len(self.xs)):
            others = [
                s[i] for name, s in self.series.items() if name != reference
            ]
            if others and ref[i] > 0:
                best = max(best, min(others) / ref[i])
        return best


def _col_width(values: List[str]) -> int:
    return max(len(v) for v in values)


def format_table(result: FigureResult) -> str:
    """Absolute simulated times, one row per x, one column per library."""
    libs = list(result.series)
    header = [result.xlabel] + libs
    rows = []
    for i, x in enumerate(result.xs):
        rows.append([str(x)] + [fmt_time(result.series[lib][i]) for lib in libs])
    widths = [
        _col_width([header[c]] + [r[c] for r in rows]) for c in range(len(header))
    ]
    lines = [f"== {result.fig_id}: {result.title} =="]
    if result.meta:
        lines.append(
            "   " + "  ".join(f"{k}={v}" for k, v in sorted(result.meta.items()))
        )
    lines.append(
        " | ".join(h.rjust(w) for h, w in zip(header, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for r in rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    if result.notes:
        lines.append(f"   note: {result.notes}")
    return "\n".join(lines)


def format_normalized(
    result: FigureResult, reference: str = "PiP-MColl", cap: Optional[float] = None
) -> str:
    """Times normalised to ``reference`` — the paper's bar-chart view.

    Values above ``cap`` are printed as ``>cap`` (the paper clips its bars
    the same way, e.g. at 4x in Fig. 9 and 6x in Fig. 13).
    """
    libs = list(result.series)
    header = [result.xlabel] + libs
    rows = []
    ref = result.series[reference]
    for i, x in enumerate(result.xs):
        row = [str(x)]
        for lib in libs:
            v = result.series[lib][i] / ref[i] if ref[i] > 0 else float("inf")
            if cap is not None and v > cap:
                row.append(f">{cap:g}x")
            else:
                row.append(f"{v:.2f}x")
        rows.append(row)
    widths = [
        _col_width([header[c]] + [r[c] for r in rows]) for c in range(len(header))
    ]
    lines = [f"== {result.fig_id} (normalised to {reference}) =="]
    lines.append(" | ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for r in rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)

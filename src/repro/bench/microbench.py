"""The microbenchmark protocol of §IV-A, adapted to a deterministic world.

The paper runs a warm-up stage and an execution stage with equal iteration
counts (10 000 / 1 000 / 100 / 10 by size class) and averages, because
hardware runs are noisy.  The simulator is deterministic, so one warm-up
iteration (which absorbs page-fault/attach warm-up exactly like the paper's
warm-up stage does) and a couple of measured iterations give the same
answer the full protocol would; :func:`paper_iterations` documents the
original counts and is exercised by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.baselines.base import MpiLibrary
from repro.baselines.registry import make_library
from repro.core.tuning import Thresholds
from repro.hw.params import MachineParams, bebop_broadwell
from repro.hw.topology import Topology
from repro.mpi.buffer import Buffer
from repro.mpi.datatypes import SUM
from repro.mpi.runtime import RankCtx, World
from repro.sched.fastpath import evaluate_point as _dag_evaluate_point
from repro.sched.fastpath import fastpath_supported
from repro.sim.engine import ProcGen
from repro.sim.trace import Tracer
from repro.util.units import KB

__all__ = [
    "paper_iterations", "MicrobenchResult", "run_point", "COLLECTIVES",
    "ENGINES", "resolve_engine",
]

#: the paper's three primary collectives first, then the extensions
COLLECTIVES = (
    "scatter", "allgather", "allreduce", "alltoall", "bcast", "gather",
    "reduce",
)

#: how a point is evaluated: the coroutine event loop (authoritative), the
#: DAG fast path (bit-identical, planner-backed pairs only), the native
#: numba-JIT kernel (bit-identical to DAG; falls back to DAG without
#: numba), the batch engine (bit-identical, whole size columns
#: vectorized), the analytic tier (closed-form estimates — approximate,
#: error-bounded, never picked by ``auto``; see
#: :mod:`repro.sched.analytic`), the native batch engine (bit-identical,
#: whole size columns replayed in the numba-JIT vector-clock kernel of
#: :mod:`repro.sched.native_batch`; falls back to the pure-Python batch
#: engine without numba), or ``auto`` (native/DAG/batch whenever they
#: apply, event loop otherwise)
ENGINES = ("event", "dag", "native", "batch", "native-batch", "analytic",
           "auto")


def resolve_engine(
    engine: str, library: str, collective: str, tracing: bool = False
) -> str:
    """Resolve ``auto`` to the engine that will actually run.

    ``auto`` picks the replay fast path exactly when the (library,
    collective) pair is planner-backed and no tracer is attached (phantom
    data is implied: :func:`run_point` worlds are always phantom) — the
    native JIT kernel when numba is importable, the pure-Python DAG
    replay otherwise (same bits either way).  For a *single* point the
    result is always ``"event"``, ``"dag"`` or ``"native"``; the sweep
    runner upgrades ``auto`` columns to the batch engine itself, where
    the whole size axis is in hand — and to the native batch kernel
    (``"native-batch"``) wherever numba imports (see
    :mod:`repro.bench.runner.pool`).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    if engine == "auto":
        if not tracing and fastpath_supported(library, collective):
            from repro.sched.native import native_available

            return "native" if native_available() else "dag"
        return "event"
    return engine


def paper_iterations(nbytes: int) -> int:
    """Iteration counts of §IV-A, by message-size class."""
    if nbytes < 0:
        raise ValueError(f"negative message size: {nbytes}")
    if nbytes <= 1 * KB:
        return 10_000
    if nbytes <= 8 * KB:
        return 1_000
    if nbytes < 128 * KB:
        return 100
    return 10


@dataclass(frozen=True)
class MicrobenchResult:
    """One measured point.

    Crosses process boundaries (pool workers return it) and round-trips
    through the JSON result cache, so it must stay a plain frozen
    dataclass of primitives — no references to ``World`` or ``Engine``.
    ``tests/bench/test_runner.py`` pins the pickle round-trip.
    """

    library: str
    collective: str
    nodes: int
    ppn: int
    msg_bytes: int
    #: mean simulated seconds per iteration over the execution stage
    time: float
    #: per-iteration simulated times (warm-up excluded)
    samples: Tuple[float, ...]
    #: total internode messages in the final iteration (diagnostics)
    internode_messages: int


def _make_body(
    lib: MpiLibrary, world: World, collective: str, nbytes: int
) -> Callable[[RankCtx], ProcGen]:
    size = world.world_size
    if collective == "scatter":
        sendbuf = Buffer.phantom(nbytes * size)
        recvs = [Buffer.phantom(nbytes) for _ in range(size)]

        def body(ctx: RankCtx) -> ProcGen:
            sb = sendbuf if ctx.rank == 0 else None
            yield from lib.scatter(ctx, sb, recvs[ctx.rank], root=0)

    elif collective == "allgather":
        sends = [Buffer.phantom(nbytes) for _ in range(size)]
        recvs = [Buffer.phantom(nbytes * size) for _ in range(size)]

        def body(ctx: RankCtx) -> ProcGen:
            yield from lib.allgather(ctx, sends[ctx.rank], recvs[ctx.rank])

    elif collective == "allreduce":
        sends = [Buffer.phantom(nbytes) for _ in range(size)]
        recvs = [Buffer.phantom(nbytes) for _ in range(size)]

        def body(ctx: RankCtx) -> ProcGen:
            yield from lib.allreduce(ctx, sends[ctx.rank], recvs[ctx.rank], SUM)

    elif collective == "alltoall":
        sends = [Buffer.phantom(nbytes * size) for _ in range(size)]
        recvs = [Buffer.phantom(nbytes * size) for _ in range(size)]

        def body(ctx: RankCtx) -> ProcGen:
            yield from lib.alltoall(ctx, sends[ctx.rank], recvs[ctx.rank])

    elif collective == "bcast":
        bufs = [Buffer.phantom(nbytes) for _ in range(size)]

        def body(ctx: RankCtx) -> ProcGen:
            yield from lib.bcast(ctx, bufs[ctx.rank], root=0)

    elif collective == "gather":
        sends = [Buffer.phantom(nbytes) for _ in range(size)]
        recvbuf = Buffer.phantom(nbytes * size)

        def body(ctx: RankCtx) -> ProcGen:
            rb = recvbuf if ctx.rank == 0 else None
            yield from lib.gather(ctx, sends[ctx.rank], rb, root=0)

    elif collective == "reduce":
        sends = [Buffer.phantom(nbytes) for _ in range(size)]
        recvbuf = Buffer.phantom(nbytes)

        def body(ctx: RankCtx) -> ProcGen:
            rb = recvbuf if ctx.rank == 0 else None
            yield from lib.reduce(ctx, sends[ctx.rank], rb, SUM, root=0)

    else:
        raise ValueError(
            f"unknown collective {collective!r}; known: {COLLECTIVES}"
        )
    return body


def run_point(
    library: str,
    collective: str,
    nodes: int,
    ppn: int,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    warmup: int = 1,
    measure: int = 2,
    tracer: Optional[Tracer] = None,
    thresholds: Optional[Thresholds] = None,
    engine: str = "event",
) -> MicrobenchResult:
    """Measure one (library, collective, shape, size) point.

    Builds a fresh phantom-data world, runs ``warmup`` unrecorded
    iterations followed by ``measure`` recorded ones, and returns the mean
    simulated per-iteration time.

    With a ``tracer`` attached, spans are recorded throughout but the
    tracer is cleared before the final measured iteration, so it ends up
    holding exactly one steady-state iteration of the collective.

    ``thresholds`` overrides the library's algorithm switch points
    (ablations); only libraries that select by size accept it.

    ``engine`` selects how the point is evaluated (see :data:`ENGINES`).
    ``"dag"`` replays the compiled schedule on the analytic fast path —
    bit-identical samples, no coroutines — and only covers planner-backed
    pairs; it cannot trace.  ``"native"`` lowers the same opcode programs
    to numpy arrays and replays them in the numba-JIT kernel
    (:mod:`repro.sched.native`) — bit-identical to ``"dag"``, same
    coverage; without numba (or with ``PIPMCOLL_NO_NATIVE=1``), and for
    points the lowering cannot represent, it transparently runs the DAG
    replay instead.  ``"batch"`` routes through the vectorized
    column engine (:func:`repro.sched.batch.evaluate_column`) — same
    coverage and bit-identity contract as ``"dag"``; a single point gains
    nothing over it, the option exists so sweep drivers can thread one
    engine name end to end.  ``"native-batch"`` is the batch engine with
    its vector passes replayed by the numba-JIT kernel
    (:mod:`repro.sched.native_batch`) — bit-identical, same coverage;
    without numba it transparently runs the pure-Python batch engine
    instead.  ``"analytic"`` skips simulation entirely and
    returns the closed-form estimate (approximate — see
    :mod:`repro.sched.analytic` for the error contract); ``auto`` never
    selects it.  ``"auto"`` degrades to the event loop instead of raising.
    """
    if measure < 1:
        raise ValueError("need at least one measured iteration")
    engine = resolve_engine(engine, library, collective, tracing=tracer is not None)
    if engine == "analytic":
        if tracer is not None:
            raise ValueError(
                "engine='analytic' cannot record traces; use engine='event'"
            )
        from repro.sched.analytic import evaluate_point as _analytic_point

        est = _analytic_point(
            library, collective, nodes, ppn, msg_bytes,
            params=params, warmup=warmup, measure=measure,
            thresholds=thresholds,
        )
        return MicrobenchResult(
            library=library,
            collective=collective,
            nodes=nodes,
            ppn=ppn,
            msg_bytes=msg_bytes,
            time=est.time,
            samples=est.samples,
            internode_messages=est.internode_messages,
        )
    if engine in ("batch", "native-batch"):
        if tracer is not None:
            raise ValueError(
                f"engine={engine!r} cannot record traces; use engine='event'"
            )
        if engine == "native-batch":
            from repro.sched.native_batch import native_batch_available

            if native_batch_available():
                from repro.sched.native_batch import evaluate_column
            else:
                # no numba (or PIPMCOLL_NO_NATIVE=1): the pure-Python
                # batch engine is the bit-identical fallback
                from repro.sched.batch import evaluate_column
        else:
            from repro.sched.batch import evaluate_column

        col = evaluate_column(
            library, collective, nodes, ppn, [msg_bytes],
            params=params, warmup=warmup, measure=measure,
            thresholds=thresholds,
        )
        fast = col.results[msg_bytes]
        return MicrobenchResult(
            library=library,
            collective=collective,
            nodes=nodes,
            ppn=ppn,
            msg_bytes=msg_bytes,
            time=sum(fast.samples) / len(fast.samples),
            samples=fast.samples,
            internode_messages=fast.internode_messages,
        )
    if engine == "native":
        if tracer is not None:
            raise ValueError(
                "engine='native' cannot record traces; use engine='event'"
            )
        from repro.sched.native import (
            NativeBailout,
            native_available,
            evaluate_point as _native_point,
        )

        fast = None
        if native_available():
            try:
                fast = _native_point(
                    library, collective, nodes, ppn, msg_bytes,
                    params=params, warmup=warmup, measure=measure,
                    thresholds=thresholds,
                )
            except NativeBailout:
                # the lowered form cannot replay this point exactly; the
                # DAG engine is the bit-identical pure-Python fallback
                fast = None
        if fast is not None:
            return MicrobenchResult(
                library=library,
                collective=collective,
                nodes=nodes,
                ppn=ppn,
                msg_bytes=msg_bytes,
                time=sum(fast.samples) / len(fast.samples),
                samples=fast.samples,
                internode_messages=fast.internode_messages,
            )
        engine = "dag"
    if engine == "dag":
        if tracer is not None:
            raise ValueError(
                "engine='dag' cannot record traces; use engine='event'"
            )
        fast = _dag_evaluate_point(
            library, collective, nodes, ppn, msg_bytes,
            params=params, warmup=warmup, measure=measure,
            thresholds=thresholds,
        )
        return MicrobenchResult(
            library=library,
            collective=collective,
            nodes=nodes,
            ppn=ppn,
            msg_bytes=msg_bytes,
            time=sum(fast.samples) / len(fast.samples),
            samples=fast.samples,
            internode_messages=fast.internode_messages,
        )
    lib = make_library(library)
    if thresholds is not None:
        if not hasattr(lib, "thresholds"):
            raise ValueError(
                f"library {library!r} has no size thresholds to override"
            )
        lib.thresholds = thresholds
    world = lib.make_world(
        Topology(nodes, ppn), params or bebop_broadwell(), phantom=True,
        tracer=tracer,
    )
    body = _make_body(lib, world, collective, msg_bytes)

    for _ in range(warmup):
        world.run(body)
    samples = []
    for i in range(measure):
        if tracer is not None and i == measure - 1:
            tracer.clear()
        samples.append(world.run(body).elapsed)
    samples = tuple(samples)
    return MicrobenchResult(
        library=library,
        collective=collective,
        nodes=nodes,
        ppn=ppn,
        msg_bytes=msg_bytes,
        time=sum(samples) / len(samples),
        samples=samples,
        internode_messages=world.hw.total_internode_messages(),
    )

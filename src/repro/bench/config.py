"""Benchmark scale presets.

The paper's testbed is 128 nodes x 18 processes = 2304 ranks.  Simulating
PiP-MColl at that scale is fast, but the *flat* baselines (PiP-MPICH /
Open MPI) run ring allgathers with ``world - 1`` steps, which costs minutes
of host time per point.  The default preset therefore runs a reduced scale
that preserves every structural property the figures depend on:

* ``ppn + 1``-ary round counts: ``ceil(log_7 32) = 2`` rounds at medium
  scale, exactly like ``ceil(log_19 128) = 2`` at paper scale;
* the 64 kB algorithm switch points (per-process sizes are unchanged);
* intra- vs internode cost ratios (same machine parameters).

Select with ``PIPMCOLL_SCALE=small|medium|paper`` (environment variable) —
``paper`` reproduces the exact evaluation shape of §IV and is what
EXPERIMENTS.md's recorded runs use where host time permits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

__all__ = ["BenchScale", "SCALES", "current_scale"]


@dataclass(frozen=True)
class BenchScale:
    """One benchmark scale preset."""

    name: str
    #: fixed cluster shape for the message-size sweeps (Figs. 9-14)
    nodes: int
    ppn: int
    #: node counts for the scalability sweeps (Figs. 6-8)
    node_sweep: Tuple[int, ...]

    @property
    def world_size(self) -> int:
        return self.nodes * self.ppn


SCALES = {
    "small": BenchScale("small", nodes=8, ppn=4, node_sweep=(2, 4, 8)),
    "medium": BenchScale(
        "medium", nodes=32, ppn=6, node_sweep=(2, 4, 8, 16, 32)
    ),
    "paper": BenchScale(
        "paper", nodes=128, ppn=18, node_sweep=(2, 4, 8, 16, 32, 64, 128)
    ),
}


def current_scale() -> BenchScale:
    """The active preset (``PIPMCOLL_SCALE``, default ``medium``)."""
    name = os.environ.get("PIPMCOLL_SCALE", "medium").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"PIPMCOLL_SCALE={name!r} unknown; pick one of {sorted(SCALES)}"
        ) from None

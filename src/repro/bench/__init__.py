"""Benchmark harness: microbenchmark protocol, figure sweeps, reporting."""

from repro.bench.config import SCALES, BenchScale, current_scale
from repro.bench.figures import ALL_FIGURES
from repro.bench.microbench import (
    COLLECTIVES,
    MicrobenchResult,
    paper_iterations,
    run_point,
)
from repro.bench.report import FigureResult, format_normalized, format_table
from repro.bench.runner import (
    Point,
    ResultCache,
    SweepRunner,
    expand_sweep,
    run_points,
)

__all__ = [
    "Point",
    "ResultCache",
    "SweepRunner",
    "expand_sweep",
    "run_points",
    "SCALES",
    "BenchScale",
    "current_scale",
    "ALL_FIGURES",
    "COLLECTIVES",
    "MicrobenchResult",
    "paper_iterations",
    "run_point",
    "FigureResult",
    "format_normalized",
    "format_table",
]

"""PiP-MColl reproduction: Process-in-Process-based multi-object MPI
collectives on a simulated cluster.

This package reproduces Huang et al., *PiP-MColl: Process-in-Process-based
Multi-object MPI Collectives* (IEEE CLUSTER 2023), entirely in Python: a
deterministic discrete-event cluster simulator (NIC, memory, shared-memory
mechanisms) hosts a simulated MPI runtime on which both the paper's
contribution (:mod:`repro.core`) and the baseline MPI libraries
(:mod:`repro.baselines`) run, with real numpy data movement so every
collective is functionally verifiable.

Quickstart::

    import repro

    lib = repro.make_library("PiP-MColl")
    world = lib.make_world(repro.Topology(4, 3), repro.bebop_broadwell())
    ...

See ``examples/quickstart.py`` for a complete runnable program and
``README.md`` for the architecture overview.
"""

from repro.baselines import (
    MpiLibrary,
    all_libraries,
    library_names,
    make_library,
)
from repro.core import PiPMColl, Thresholds
from repro.hw import MachineParams, Topology, bebop_broadwell, tiny_test_machine
from repro.mpi import (
    BYTE,
    DOUBLE,
    FLOAT32,
    INT32,
    INT64,
    MAX,
    MIN,
    PROD,
    SUM,
    Buffer,
    RankCtx,
    RunResult,
    World,
)

__version__ = "1.5.0"

__all__ = [
    "MpiLibrary",
    "all_libraries",
    "library_names",
    "make_library",
    "PiPMColl",
    "Thresholds",
    "MachineParams",
    "Topology",
    "bebop_broadwell",
    "tiny_test_machine",
    "BYTE",
    "DOUBLE",
    "FLOAT32",
    "INT32",
    "INT64",
    "MAX",
    "MIN",
    "PROD",
    "SUM",
    "Buffer",
    "RankCtx",
    "RunResult",
    "World",
    "__version__",
]

"""Name-indexed registry of all modelled MPI libraries."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines.base import MpiLibrary
from repro.baselines.libraries import MVAPICH2, IntelMPI, OpenMPI, PiPMPICH
from repro.core.mcoll import PiPMColl
from repro.core.tuning import Thresholds

__all__ = ["LIBRARY_FACTORIES", "make_library", "all_libraries",
           "library_names"]


def _mcoll_small_only() -> PiPMColl:
    lib = PiPMColl(Thresholds.always_small())
    lib.name = "PiP-MColl-small"
    return lib


#: factories, not instances: libraries carry per-world state (e.g. XPMEM
#: attach caches), so every World gets a fresh one
LIBRARY_FACTORIES: Dict[str, Callable[[], MpiLibrary]] = {
    "PiP-MColl": PiPMColl,
    "PiP-MColl-small": _mcoll_small_only,
    "PiP-MPICH": PiPMPICH,
    "OpenMPI": OpenMPI,
    "MVAPICH2": MVAPICH2,
    "IntelMPI": IntelMPI,
}


def make_library(name: str) -> MpiLibrary:
    try:
        return LIBRARY_FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown library {name!r}; known: {sorted(LIBRARY_FACTORIES)}"
        ) from None


def library_names(include_variants: bool = False) -> List[str]:
    """The five libraries of the paper's figures (+ the -small variant)."""
    names = ["PiP-MColl", "PiP-MPICH", "IntelMPI", "OpenMPI", "MVAPICH2"]
    if include_variants:
        names.insert(1, "PiP-MColl-small")
    return names


def all_libraries(include_variants: bool = False) -> List[MpiLibrary]:
    return [make_library(n) for n in library_names(include_variants)]

"""Two-level (leader-based) collective composition.

MVAPICH2 and Intel MPI run hierarchical collectives by default: an
intranode phase over shared memory, an internode phase among one *leader*
process per node (local rank 0), and an intranode fan-out.  These helpers
compose the classical algorithms of :mod:`repro.mpi.collectives`
accordingly; the intranode phases travel through the library's configured
shared-memory mechanism via regular p2p.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mpi.buffer import Buffer
from repro.mpi.collectives import (
    bcast_binomial,
    gather_binomial,
    reduce_binomial,
    scatter_binomial,
)
from repro.mpi.collectives.group import Group
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.sim.engine import ProcGen

__all__ = ["node_group", "leader_group", "hier_scatter", "hier_allgather",
           "hier_allreduce"]


def node_group(ctx: RankCtx) -> Group:
    """This rank's node as a group (leader = local rank 0 = index 0)."""
    return Group(range(ctx.node * ctx.ppn, (ctx.node + 1) * ctx.ppn))


def leader_group(ctx: RankCtx) -> Group:
    """One leader (local rank 0) per node."""
    return Group(ctx.rank_of(n, 0) for n in range(ctx.nodes))


def hier_scatter(
    ctx: RankCtx,
    sendbuf: Optional[Buffer],
    recvbuf: Buffer,
    root: int,
    leader_scatter: Callable = scatter_binomial,
) -> ProcGen:
    """Leader-based scatter.

    Assumes the root is a node leader (the benchmarks use rank 0, as the
    paper does); a non-leader root first forwards its buffer to its node's
    leader, which is what production libraries fall back to as well.
    """
    N, P, C = ctx.nodes, ctx.ppn, recvbuf.count
    leaders = leader_group(ctx)
    # relocation channel: only root and its leader use it; a constant,
    # root-scoped tag is safe because p2p matching is FIFO per (src, tag)
    tag = ("hier-reloc", root)

    root_node = ctx.node_of(root)
    root_leader = ctx.rank_of(root_node, 0)
    staging: Optional[Buffer] = None
    if root != root_leader:
        # relocate the payload onto the leader
        if ctx.rank == root:
            assert sendbuf is not None
            yield from ctx.send(root_leader, sendbuf, tag=tag)
        elif ctx.rank == root_leader:
            staging = ctx.alloc(recvbuf.dtype, N * P * C)
            yield from ctx.recv(root, staging, tag=tag)
    elif ctx.rank == root:
        staging = sendbuf

    if ctx.local_rank == 0:
        # internode: scatter node blocks among leaders
        node_block = ctx.alloc(recvbuf.dtype, P * C)
        yield from leader_scatter(
            ctx, leaders, staging, node_block, leaders.index_of(root_leader)
        )
        # intranode: scatter the node block locally
        yield from scatter_binomial(ctx, node_group(ctx), node_block, recvbuf, 0)
    else:
        yield from scatter_binomial(ctx, node_group(ctx), None, recvbuf, 0)


def hier_allgather(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Buffer,
    leader_allgather: Callable,
) -> ProcGen:
    """Intranode gather -> leader allgather -> intranode broadcast."""
    N, P, C = ctx.nodes, ctx.ppn, sendbuf.count
    ngroup = node_group(ctx)

    if ctx.local_rank == 0:
        node_block = ctx.alloc(sendbuf.dtype, P * C)
        yield from gather_binomial(ctx, ngroup, sendbuf, node_block, 0)
        yield from leader_allgather(ctx, leader_group(ctx), node_block, recvbuf)
    else:
        yield from gather_binomial(ctx, ngroup, sendbuf, None, 0)
    yield from bcast_binomial(ctx, ngroup, recvbuf, 0)


def hier_bcast(ctx: RankCtx, buf: Buffer, root: int) -> ProcGen:
    """Leader-based broadcast: root -> its leader -> leaders -> intranode.

    Non-leader roots forward to their node's leader first (one intranode
    hop), as production libraries do.
    """
    root_node = ctx.node_of(root)
    root_leader = ctx.rank_of(root_node, 0)
    tag = ("hier-bcast-reloc", root)
    if root != root_leader:
        if ctx.rank == root:
            yield from ctx.send(root_leader, buf, tag=tag)
        elif ctx.rank == root_leader:
            yield from ctx.recv(root, buf, tag=tag)
    leaders = leader_group(ctx)
    if ctx.local_rank == 0:
        yield from bcast_binomial(
            ctx, leaders, buf, leaders.index_of(root_leader)
        )
    yield from bcast_binomial(ctx, node_group(ctx), buf, 0)


def hier_reduce(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    op: ReduceOp,
    root: int,
    leader_reduce: Callable = reduce_binomial,
) -> ProcGen:
    """Leader-based reduce: intranode reduce -> leader reduce -> deliver.

    The leader reduction targets the root's node leader; a final intranode
    hop delivers to a non-leader root.
    """
    root_node = ctx.node_of(root)
    root_leader = ctx.rank_of(root_node, 0)
    leaders = leader_group(ctx)
    ngroup = node_group(ctx)
    tag = ("hier-reduce-deliver", root)

    if ctx.local_rank == 0:
        partial = ctx.alloc(sendbuf.dtype, sendbuf.count)
        yield from reduce_binomial(ctx, ngroup, sendbuf, partial, op, 0)
        if ctx.rank == root_leader:
            result = recvbuf if ctx.rank == root else ctx.alloc(
                sendbuf.dtype, sendbuf.count
            )
            yield from leader_reduce(
                ctx, leaders, partial, result,
                op, leaders.index_of(root_leader),
            )
            if ctx.rank != root:
                yield from ctx.send(root, result, tag=tag)
        else:
            yield from leader_reduce(
                ctx, leaders, partial, None, op, leaders.index_of(root_leader)
            )
    else:
        yield from reduce_binomial(ctx, ngroup, sendbuf, None, op, 0)
        if ctx.rank == root and ctx.rank != root_leader:
            assert recvbuf is not None
            yield from ctx.recv(root_leader, recvbuf, tag=tag)


def hier_allreduce(
    ctx: RankCtx,
    sendbuf: Buffer,
    recvbuf: Buffer,
    op: ReduceOp,
    leader_allreduce: Callable,
) -> ProcGen:
    """Intranode reduce -> leader allreduce -> intranode broadcast."""
    ngroup = node_group(ctx)

    if ctx.local_rank == 0:
        partial = ctx.alloc(sendbuf.dtype, sendbuf.count)
        yield from reduce_binomial(ctx, ngroup, sendbuf, partial, op, 0)
        yield from leader_allreduce(ctx, leader_group(ctx), partial, recvbuf, op)
    else:
        yield from reduce_binomial(ctx, ngroup, sendbuf, None, op, 0)
    yield from bcast_binomial(ctx, ngroup, recvbuf, 0)

"""The MPI-library interface every modelled implementation provides.

A *library* bundles (a) the intranode transport mechanism its p2p path uses
and (b) its collective algorithm choices.  Benchmarks instantiate one
library per run and call the three collectives the paper evaluates
(MPI_Scatter, MPI_Allgather, MPI_Allreduce) through this interface.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.mpi.buffer import Buffer
from repro.mpi.collectives.group import Group
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx, World
from repro.shmem.base import ShmemMechanism
from repro.sim.engine import Delay, ProcGen

__all__ = ["MpiLibrary"]


class MpiLibrary(abc.ABC):
    """One modelled MPI implementation."""

    #: display name for reports
    name: str = "abstract"
    #: fixed per-collective-call software-stack overhead per rank (models
    #: differences in progress-engine/path length between implementations)
    software_overhead: float = 0.0

    @abc.abstractmethod
    def make_mechanism(self) -> Optional[ShmemMechanism]:
        """Fresh intranode mechanism for a new :class:`World`."""

    def make_world(
        self, topology, params, phantom: bool = False, tracer=None,
        validate: bool = False,
    ) -> World:
        """Convenience: a world configured with this library's transport."""
        return World(
            topology, params, mechanism=self.make_mechanism(),
            phantom=phantom, tracer=tracer, validate=validate,
        )

    # -- collectives --------------------------------------------------------

    @abc.abstractmethod
    def scatter(
        self, ctx: RankCtx, sendbuf: Optional[Buffer], recvbuf: Buffer,
        root: int = 0,
    ) -> ProcGen:
        """MPI_Scatter over the whole world."""

    @abc.abstractmethod
    def allgather(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        """MPI_Allgather over the whole world."""

    @abc.abstractmethod
    def allreduce(
        self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer, op: ReduceOp
    ) -> ProcGen:
        """MPI_Allreduce over the whole world."""

    @abc.abstractmethod
    def alltoall(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        """MPI_Alltoall over the whole world (equal blocks)."""

    @abc.abstractmethod
    def bcast(self, ctx: RankCtx, buf: Buffer, root: int = 0) -> ProcGen:
        """MPI_Bcast over the whole world."""

    @abc.abstractmethod
    def gather(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Optional[Buffer],
               root: int = 0) -> ProcGen:
        """MPI_Gather over the whole world."""

    @abc.abstractmethod
    def reduce(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Optional[Buffer],
               op: ReduceOp, root: int = 0) -> ProcGen:
        """MPI_Reduce over the whole world."""

    @abc.abstractmethod
    def barrier(self, ctx: RankCtx) -> ProcGen:
        """MPI_Barrier over the whole world."""

    # -- helpers -------------------------------------------------------------

    def _enter(self, ctx: RankCtx) -> ProcGen:
        """Charge the per-call software overhead."""
        yield Delay(self.software_overhead)

    @staticmethod
    def world_group(ctx: RankCtx) -> Group:
        return Group(range(ctx.world_size))

    def __str__(self) -> str:
        return self.name

"""Models of the MPI libraries the paper compares against."""

from repro.baselines.base import MpiLibrary
from repro.baselines.hierarchical import (
    hier_allgather,
    hier_allreduce,
    hier_bcast,
    hier_reduce,
    hier_scatter,
    leader_group,
    node_group,
)
from repro.baselines.libraries import MVAPICH2, IntelMPI, OpenMPI, PiPMPICH
from repro.baselines.registry import (
    LIBRARY_FACTORIES,
    all_libraries,
    library_names,
    make_library,
)

__all__ = [
    "MpiLibrary",
    "hier_allgather",
    "hier_allreduce",
    "hier_bcast",
    "hier_reduce",
    "hier_scatter",
    "leader_group",
    "node_group",
    "MVAPICH2",
    "IntelMPI",
    "OpenMPI",
    "PiPMPICH",
    "LIBRARY_FACTORIES",
    "all_libraries",
    "library_names",
    "make_library",
]

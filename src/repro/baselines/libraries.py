"""The four modelled production MPI libraries.

Each library = intranode mechanism × algorithm suite × per-call software
overhead.  Algorithm selections follow the libraries' published defaults:

* **PiP-MPICH** (the paper's baseline, §IV-A): stock MPICH algorithm
  selection running on the PiP transport — every intranode message pays the
  PiP size-synchronisation handshake, which is exactly the overhead
  PiP-MColl's redesign removes.
* **Open MPI**: flat (non-hierarchical by default in the tuned module for
  these sizes) with a POSIX-SHMEM/CMA hybrid BTL.
* **MVAPICH2**: two-level leader-based collectives over a POSIX/LiMiC
  hybrid channel.
* **Intel MPI**: two-level leader-based collectives over POSIX-SHMEM/CMA,
  with the leanest software stack of the four (it is generally the fastest
  baseline in the paper's figures).

The ``software_overhead`` constants are calibration levers, not published
numbers: they encode relative per-call path lengths so the baseline
ordering matches the paper's figures.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import MpiLibrary
from repro.baselines.hierarchical import (
    hier_allgather,
    hier_allreduce,
    hier_bcast,
    hier_reduce,
    hier_scatter,
)
from repro.mpi.buffer import Buffer
from repro.mpi.collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    gather_binomial,
    reduce_binomial,
    scatter_binomial,
)
from repro.mpi.collectives.group import Group
from repro.mpi.datatypes import ReduceOp
from repro.mpi.runtime import RankCtx
from repro.shmem import HybridMechanism, KernelCopy, PipShmem, PosixShmem
from repro.sim.engine import ProcGen
from repro.util.intmath import is_power_of
from repro.util.units import KB

__all__ = ["PiPMPICH", "OpenMPI", "MVAPICH2", "IntelMPI"]

_US = 1e-6


def _mpich_allgather(ctx: RankCtx, group: Group, sendbuf: Buffer,
                     recvbuf: Buffer) -> ProcGen:
    """MPICH's default allgather selection (total size + pow2 based)."""
    total = recvbuf.nbytes
    if total < 80 * KB:
        if is_power_of(2, group.size):
            yield from allgather_recursive_doubling(ctx, group, sendbuf, recvbuf)
        else:
            yield from allgather_bruck(ctx, group, sendbuf, recvbuf)
    else:
        yield from allgather_ring(ctx, group, sendbuf, recvbuf)


def _mpich_allreduce(ctx: RankCtx, group: Group, sendbuf: Buffer,
                     recvbuf: Buffer, op: ReduceOp) -> ProcGen:
    """MPICH's default allreduce selection (2 kB switch)."""
    if sendbuf.nbytes <= 2 * KB:
        yield from allreduce_recursive_doubling(ctx, group, sendbuf, recvbuf, op)
    else:
        yield from allreduce_rabenseifner(ctx, group, sendbuf, recvbuf, op)


def _mpich_alltoall(ctx: RankCtx, group: Group, sendbuf: Buffer,
                    recvbuf: Buffer) -> ProcGen:
    """MPICH's default alltoall selection (Bruck for short blocks)."""
    block_bytes = (sendbuf.nbytes // group.size) if group.size else 0
    if block_bytes <= 256 and group.size >= 8:
        yield from alltoall_bruck(ctx, group, sendbuf, recvbuf)
    else:
        yield from alltoall_pairwise(ctx, group, sendbuf, recvbuf)


class _FlatLibrary(MpiLibrary):
    """Classical flat algorithms over the whole communicator."""

    def scatter(self, ctx: RankCtx, sendbuf: Optional[Buffer],
                recvbuf: Buffer, root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from scatter_binomial(
            ctx, self.world_group(ctx), sendbuf, recvbuf, root
        )

    def allgather(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        yield from self._enter(ctx)
        yield from _mpich_allgather(ctx, self.world_group(ctx), sendbuf, recvbuf)

    def allreduce(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer,
                  op: ReduceOp) -> ProcGen:
        yield from self._enter(ctx)
        yield from _mpich_allreduce(ctx, self.world_group(ctx), sendbuf, recvbuf, op)

    def alltoall(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        yield from self._enter(ctx)
        yield from _mpich_alltoall(ctx, self.world_group(ctx), sendbuf, recvbuf)

    def bcast(self, ctx: RankCtx, buf: Buffer, root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from bcast_binomial(ctx, self.world_group(ctx), buf, root)

    def gather(self, ctx: RankCtx, sendbuf: Buffer,
               recvbuf: Optional[Buffer], root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from gather_binomial(ctx, self.world_group(ctx), sendbuf, recvbuf, root)

    def reduce(self, ctx: RankCtx, sendbuf: Buffer,
               recvbuf: Optional[Buffer], op: ReduceOp, root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from reduce_binomial(ctx, self.world_group(ctx), sendbuf, recvbuf, op, root)

    def barrier(self, ctx: RankCtx) -> ProcGen:
        yield from self._enter(ctx)
        yield from barrier_dissemination(ctx, self.world_group(ctx))


class _HierLibrary(MpiLibrary):
    """Two-level leader-based collectives."""

    def scatter(self, ctx: RankCtx, sendbuf: Optional[Buffer],
                recvbuf: Buffer, root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from hier_scatter(ctx, sendbuf, recvbuf, root)

    def allgather(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        yield from self._enter(ctx)
        yield from hier_allgather(ctx, sendbuf, recvbuf, _mpich_allgather)

    def allreduce(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer,
                  op: ReduceOp) -> ProcGen:
        yield from self._enter(ctx)
        yield from hier_allreduce(ctx, sendbuf, recvbuf, op, _mpich_allreduce)

    def alltoall(self, ctx: RankCtx, sendbuf: Buffer, recvbuf: Buffer) -> ProcGen:
        # production libraries run alltoall flat even in hierarchical mode
        yield from self._enter(ctx)
        yield from _mpich_alltoall(ctx, self.world_group(ctx), sendbuf, recvbuf)

    def bcast(self, ctx: RankCtx, buf: Buffer, root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from hier_bcast(ctx, buf, root)

    def gather(self, ctx: RankCtx, sendbuf: Buffer,
               recvbuf: Optional[Buffer], root: int = 0) -> ProcGen:
        # gathers run flat: the leader composition buys nothing (the root
        # must receive every byte either way)
        yield from self._enter(ctx)
        yield from gather_binomial(ctx, self.world_group(ctx), sendbuf, recvbuf, root)

    def reduce(self, ctx: RankCtx, sendbuf: Buffer,
               recvbuf: Optional[Buffer], op: ReduceOp, root: int = 0) -> ProcGen:
        yield from self._enter(ctx)
        yield from hier_reduce(ctx, sendbuf, recvbuf, op, root)

    def barrier(self, ctx: RankCtx) -> ProcGen:
        yield from self._enter(ctx)
        yield from barrier_dissemination(ctx, self.world_group(ctx))


class PiPMPICH(_FlatLibrary):
    """The paper's baseline: stock MPICH algorithms on the PiP transport."""

    name = "PiP-MPICH"
    software_overhead = 0.3 * _US

    def make_mechanism(self) -> PipShmem:
        return PipShmem()


class OpenMPI(_FlatLibrary):
    """Open MPI: flat tuned collectives, POSIX/CMA hybrid shared memory."""

    name = "OpenMPI"
    software_overhead = 0.9 * _US

    def make_mechanism(self) -> HybridMechanism:
        return HybridMechanism(PosixShmem(), KernelCopy(), threshold=4 * KB)


class MVAPICH2(_HierLibrary):
    """MVAPICH2: leader-based two-level collectives, POSIX/LiMiC hybrid."""

    name = "MVAPICH2"
    software_overhead = 0.6 * _US

    def make_mechanism(self) -> HybridMechanism:
        return HybridMechanism(PosixShmem(), KernelCopy(), threshold=8 * KB)


class IntelMPI(_HierLibrary):
    """Intel MPI: leader-based two-level collectives, lean software stack."""

    name = "IntelMPI"
    software_overhead = 0.2 * _US

    def make_mechanism(self) -> HybridMechanism:
        return HybridMechanism(PosixShmem(), KernelCopy(), threshold=16 * KB)

"""``python -m repro.serve`` — foreground daemon entry point."""

import sys

from repro.serve.daemon import main

if __name__ == "__main__":
    sys.exit(main())

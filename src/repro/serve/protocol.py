"""Wire protocol of the sweep daemon: newline-delimited JSON messages.

One message is one JSON object on one ``\\n``-terminated line — trivially
parseable from any language, debuggable with ``nc``/``socat``, and
framing-safe (JSON strings never contain raw newlines).  Requests carry
an ``op`` plus op-specific fields and an optional client-chosen ``id``
that is echoed verbatim in the response:

========== ==============================================================
op          request fields → response fields
========== ==============================================================
``sweep``   ``points`` (list of point specs), optional ``timeout``
            seconds → ``results`` (list of result docs, in request
            order)
``stats``   → ``stats`` (daemon/cache/lowering counter document)
``ping``    → ``version`` (protocol version), ``pid``
``flush``   → ``flushed`` (rows published to shards)
``shutdown`` → acknowledged, then the daemon drains and exits
========== ==============================================================

Every response has ``ok``; failures carry ``error = {code, message}``
with codes from :data:`ERROR_CODES` (``overloaded`` and ``timeout`` are
the backpressure/cancellation signals clients are expected to handle,
e.g. by retrying later).

Point specs are :meth:`~repro.bench.runner.points.Point` fields with
``params``/``thresholds`` as nested dataclass dicts or ``null``
(:func:`point_to_doc` / :func:`point_from_doc`).  Results travel as the
same documents the pre-1.4.0 JSON cache used
(:func:`~repro.bench.runner.cache.result_to_doc`); JSON floats serialize
via ``repr`` and therefore round-trip float64 **exactly**, so a result
crossing the socket stays bit-identical to one computed in-process —
the property ``tests/serve/`` pins against ``SweepRunner.run``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Optional, Tuple, Union

from repro.bench.microbench import ENGINES
from repro.bench.runner.cache import result_from_doc, result_to_doc
from repro.bench.runner.points import Point
from repro.core.tuning import Thresholds
from repro.hw.params import MachineParams

__all__ = [
    "PROTOCOL_VERSION", "MAX_LINE", "ERROR_CODES", "ServeError",
    "parse_address", "point_to_doc", "point_from_doc",
    "result_to_doc", "result_from_doc",
    "encode_message", "decode_message", "read_message", "write_message",
]

PROTOCOL_VERSION = 1

#: one message may not exceed this many bytes on the wire — bounds daemon
#: memory per connection; a full 121-size column request is ~30 kB, so
#: the ceiling is generous without being unbounded
MAX_LINE = 8 * 1024 * 1024

ERROR_CODES = (
    "bad-request",   # unparseable message or malformed point spec
    "overloaded",    # admission gate full: back off and retry
    "timeout",       # the request's own deadline expired (work may
                     # still complete and populate the cache)
    "shutting-down", # daemon is draining; no new sweeps accepted
    "internal",      # evaluation raised; message carries the repr
)


class ServeError(Exception):
    """A protocol-level failure, carried as ``{code, message}`` on the
    wire and raised client-side."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    def to_doc(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_doc(cls, doc: dict) -> "ServeError":
        return cls(
            str(doc.get("code", "internal")), str(doc.get("message", ""))
        )


Address = Union[Tuple[str, str, int], Tuple[str, str]]


def parse_address(address: str) -> Address:
    """``"host:port"`` → ``("tcp", host, port)``; anything else is a
    filesystem path → ``("unix", path)``.

    A lone integer means TCP on localhost (``"8641"`` ≡
    ``"127.0.0.1:8641"``).  Unix sockets are the default for local use —
    filesystem permissions for free, no port collisions between test
    runs.
    """
    text = address.strip()
    if not text:
        raise ValueError("empty serve address")
    if text.isdigit():
        return ("tcp", "127.0.0.1", int(text))
    host, sep, port = text.rpartition(":")
    if sep and host and port.isdigit() and "/" not in host:
        return ("tcp", host, int(port))
    return ("unix", text)


# -- point specs ------------------------------------------------------------


def point_to_doc(point: Point) -> dict:
    """The wire form of one sweep point.

    ``params``/``thresholds`` stay ``None`` when the point uses defaults
    (the daemon reconstructs the identical :class:`Point`, so cache keys
    and results match a local ``SweepRunner`` run exactly).
    """
    return {
        "library": point.library,
        "collective": point.collective,
        "nodes": point.nodes,
        "ppn": point.ppn,
        "msg_bytes": point.msg_bytes,
        "warmup": point.warmup,
        "measure": point.measure,
        "params": None if point.params is None else asdict(point.params),
        "thresholds": (
            None if point.thresholds is None else asdict(point.thresholds)
        ),
        "engine": point.engine,
    }


def point_from_doc(doc: dict) -> Point:
    """Rebuild a :class:`Point` from its wire form; raises
    :class:`ServeError` (``bad-request``) on anything malformed."""
    if not isinstance(doc, dict):
        raise ServeError("bad-request", f"point spec is not an object: {doc!r}")
    try:
        params = doc.get("params")
        thresholds = doc.get("thresholds")
        engine = str(doc.get("engine", "event"))
        if engine not in ENGINES:
            # validate at the daemon's front door (same message as the
            # SweepRunner constructor) instead of deep inside a worker
            raise ServeError(
                "bad-request", f"unknown engine {engine!r}; known: {ENGINES}"
            )
        return Point(
            library=str(doc["library"]),
            collective=str(doc["collective"]),
            nodes=int(doc["nodes"]),
            ppn=int(doc["ppn"]),
            msg_bytes=int(doc["msg_bytes"]),
            warmup=int(doc.get("warmup", 1)),
            measure=int(doc.get("measure", 2)),
            params=None if params is None else MachineParams(**params),
            thresholds=(
                None if thresholds is None else Thresholds(**thresholds)
            ),
            engine=engine,
        )
    except ServeError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError("bad-request", f"malformed point spec: {exc}") from None


# -- framing ----------------------------------------------------------------


def encode_message(doc: dict) -> bytes:
    """One message, framed: compact JSON + newline."""
    line = json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE:
        raise ServeError(
            "bad-request", f"message of {len(line)} bytes exceeds {MAX_LINE}"
        )
    return line


def decode_message(line: bytes) -> dict:
    """Parse one framed line; raises :class:`ServeError` on junk."""
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServeError("bad-request", f"unparseable message: {exc}") from None
    if not isinstance(doc, dict):
        raise ServeError("bad-request", "message is not a JSON object")
    return doc


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """The next message on ``reader``, or ``None`` on a clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError(
            "bad-request", "connection closed mid-message"
        ) from None
    except asyncio.LimitOverrunError:
        raise ServeError(
            "bad-request", f"message exceeds the {MAX_LINE}-byte line limit"
        ) from None
    return decode_message(line)


async def write_message(writer: asyncio.StreamWriter, doc: dict) -> None:
    writer.write(encode_message(doc))
    await writer.drain()

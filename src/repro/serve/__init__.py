"""``repro.serve`` — the long-running sweep daemon and its clients.

Every sweep used to be a cold CLI process: ~1 s of interpreter start and
imports, then planner/lowering warm-up, all re-paid per invocation, each
process talking to its own private cache object.  The serve daemon is the
shared, persistent front end the ROADMAP's "heavy concurrent traffic"
direction asks for:

* **one warm process** owns a single :class:`~repro.bench.runner.cache.
  ResultCache`/:class:`~repro.bench.runner.store.ShardStore` plus the
  process-wide planner and batch-lowering caches, and a resident worker
  pool whose forked workers stay warm across requests;
* **many concurrent clients** speak a newline-delimited-JSON socket
  protocol (TCP or unix socket; see :mod:`repro.serve.protocol`) and
  submit sweep requests — lists of :class:`~repro.bench.runner.points.
  Point` specs — that return results bit-identical to
  :meth:`~repro.bench.runner.pool.SweepRunner.run` on the same points;
* **request coalescing**: two clients asking for overlapping columns
  await one in-flight evaluation through a per-column-key future table
  instead of evaluating twice (``tests/serve/`` pins the counter);
* **robustness first**: per-request timeouts with cancellation, a
  bounded admission gate with explicit ``overloaded`` backpressure
  errors, graceful shutdown that drains in-flight work and flushes
  buffered shards, and a ``stats`` request surfacing
  hit/miss/coalesce/inflight counters.

Run the daemon with ``python -m repro.serve`` and talk to it with
``python -m repro.serve.client`` (or :class:`SweepClient` in code).
``benchmarks/bench_speed.py --serve`` records the warm-daemon vs
cold-CLI-process latency ratio into ``BENCH_serve.json``.
"""

from repro.serve.client import SweepClient, wait_until_ready
from repro.serve.daemon import SweepDaemon
from repro.serve.protocol import PROTOCOL_VERSION, ServeError, parse_address

__all__ = [
    "SweepDaemon",
    "SweepClient",
    "ServeError",
    "PROTOCOL_VERSION",
    "parse_address",
    "wait_until_ready",
]

"""The persistent sweep daemon: one warm process, many clients.

Architecture (one asyncio event loop, one resident worker pool)::

    client conns ──> per-connection handler (sequential per conn)
                        │  admission gate (max_pending, else "overloaded")
                        │  per-request deadline (wait_for + cancellation)
                        ▼
                  _run_points: cache pass ──hits──> response
                        │ misses, grouped into work units
                        ▼
                  per-unit-key future table  ── coalesce: await the
                        │ (single flight)        in-flight task
                        ▼
                  resident executor (forked workers, warm planner/
                  lowering caches) running the *same* top-level worker
                  functions the SweepRunner pool uses
                        ▼
                  buffered ResultCache puts ── periodic + shutdown flush
                                               to columnar shards

**Coalescing.**  Work units are the sweep runner's: one *column* (points
identical but for ``msg_bytes``, routed via
:func:`~repro.bench.runner.pool.plan_column_routes`) or one scalar
point.  Each unit in flight is an ``asyncio.Task`` registered in a table
keyed by the unit's cache key — the column-group hash for columns,
``"pt:"+cache_key`` for points.  A request whose misses land on a key
already in flight **awaits that task instead of evaluating** (the
``coalesced`` counter), then re-reads the cache: full overlaps cost zero
extra work, partial overlaps re-enter single-flight for just the
remainder.  Waiters hold the task through ``asyncio.shield``, so a
request timeout cancels only the *request*; the evaluation runs to
completion and lands in the cache — late work is never wasted, the next
client hits.

**Backpressure.**  Admission is a plain bounded counter: more than
``max_pending`` sweeps in flight and the daemon answers ``overloaded``
immediately rather than queueing unboundedly and timing everyone out.
Clients retry with backoff; the ``stats`` op exposes ``active``/
``rejected`` so operators can see the gate working.

**Shutdown.**  ``shutdown`` op or SIGINT/SIGTERM: stop accepting, give
in-flight requests and evaluations a grace period to drain, cancel the
stragglers, flush buffered rows to shards, stop the pool.  The flush is
the part that matters — buffered puts are the write-batching half of the
columnar store, and the daemon owns the buffer.

Results are **bit-identical** to
:meth:`~repro.bench.runner.pool.SweepRunner.run` on the same point list:
identical routing, identical worker functions, identical cache; the
engines' own bit-identity contracts do the rest (``tests/serve/`` pins
it end to end through a real socket).
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.cache import ResultCache, cache_key, column_key
from repro.bench.runner.points import Point
from repro.bench.runner.pool import (
    _default_jobs,
    plan_column_routes,
    run_point_spec,
    run_sweep_column_stats,
)
from repro.serve.protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    ServeError,
    parse_address,
    point_from_doc,
    read_message,
    result_to_doc,
    write_message,
)

__all__ = ["SweepDaemon", "DaemonStats"]


@dataclass
class DaemonStats:
    """Monotone counters since daemon start (the ``stats`` op payload)."""

    requests: int = 0        #: messages dispatched (any op)
    sweeps: int = 0          #: sweep requests admitted
    points: int = 0          #: points across admitted sweeps
    hits: int = 0            #: points answered from the cache
    misses: int = 0          #: points that needed evaluation
    coalesced: int = 0       #: misses that awaited an in-flight unit
    evaluations: int = 0     #: work units actually dispatched to the pool
    timeouts: int = 0        #: requests cancelled at their deadline
    rejected: int = 0        #: sweeps refused at the admission gate
    errors: int = 0          #: error responses (any code)
    started: float = field(default_factory=time.monotonic)

    def to_doc(self) -> dict:
        return {
            "requests": self.requests,
            "sweeps": self.sweeps,
            "points": self.points,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evaluations": self.evaluations,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "errors": self.errors,
            "uptime_s": time.monotonic() - self.started,
        }


class SweepDaemon:
    """A newline-delimited-JSON sweep server (see the module docstring).

    Parameters
    ----------
    address:
        ``"host:port"`` for TCP or a filesystem path for a unix socket
        (``"127.0.0.1:0"`` binds an ephemeral port; read it back from
        :attr:`bound_address` once serving).
    cache:
        The daemon's (single, shared) :class:`ResultCache`; defaults to
        the standard directory.  All writes buffer here and flush as
        whole shards periodically and at shutdown.
    jobs:
        Resident pool width.  ``>= 1`` forks that many worker processes
        (warm across requests); ``0`` evaluates in daemon-process worker
        threads — same results, no fork, handy for tests and debugging.
        ``None`` reads ``PIPMCOLL_JOBS`` / CPU count.
    max_pending:
        Admission-gate width: sweeps in flight beyond this are refused
        with an ``overloaded`` error instead of queued.
    default_timeout:
        Per-request deadline in seconds applied when a sweep request
        carries none; ``None`` means no deadline.
    flush_interval:
        Seconds between periodic flushes of buffered cache rows.
    grace:
        Seconds shutdown waits for in-flight requests and evaluations
        before cancelling what remains.
    """

    def __init__(
        self,
        address: str,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        max_pending: int = 32,
        default_timeout: Optional[float] = None,
        flush_interval: float = 5.0,
        grace: float = 10.0,
    ):
        self.address = parse_address(address)
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = _default_jobs() if jobs is None else max(0, int(jobs))
        self.max_pending = max(1, int(max_pending))
        self.default_timeout = default_timeout
        self.flush_interval = flush_interval
        self.grace = grace
        self.stats = DaemonStats()
        #: work-unit key -> in-flight evaluation task (the coalescing
        #: table; see module docstring)
        self._inflight: Dict[str, asyncio.Task] = {}
        #: lowering-cache and native-kernel deltas shipped home by column
        #: work units (see run_sweep_column_stats)
        self._lowering = {
            "hits": 0, "misses": 0, "columns": 0,
            "jit_columns": 0, "interp_columns": 0, "native_bailouts": 0,
        }
        self._active = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[Executor] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self.bound_address: Optional[str] = None

    # -- lifecycle -------------------------------------------------------

    async def serve(
        self, ready: Optional[Callable[["SweepDaemon"], None]] = None
    ) -> None:
        """Listen and serve until :meth:`request_shutdown`.

        ``ready(self)`` fires once the socket is bound (tests and
        embedders use it instead of polling)."""
        self._shutdown_requested = asyncio.Event()
        self._executor = self._make_executor()
        kind = self.address[0]
        if kind == "unix":
            path = self.address[1]
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=path, limit=MAX_LINE
            )
            self.bound_address = path
        else:
            _, host, port = self.address
            self._server = await asyncio.start_server(
                self._handle_conn, host=host, port=port, limit=MAX_LINE
            )
            sock = self._server.sockets[0].getsockname()
            self.bound_address = f"{sock[0]}:{sock[1]}"
        flusher = asyncio.create_task(self._flusher())
        if ready is not None:
            ready(self)
        try:
            await self._shutdown_requested.wait()
        finally:
            self._draining = True
            self._server.close()
            await self._server.wait_closed()
            await self._drain()
            flusher.cancel()
            self.cache.flush()
            if kind == "unix":
                try:
                    os.unlink(self.address[1])
                except OSError:
                    pass
            self._executor.shutdown(wait=False, cancel_futures=True)

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent; loop-thread only — from
        signal handlers use ``loop.call_soon_threadsafe``)."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    def _make_executor(self) -> Executor:
        if self.jobs == 0:
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-eval"
            )
        import multiprocessing as mp

        # fork (where available) inherits the warm interpreter — the
        # same rationale as SweepRunner._map_pool, but the pool persists
        # across requests, so workers also keep their planner caches warm
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=mp.get_context(method)
        )

    async def _flusher(self) -> None:
        while True:
            await asyncio.sleep(self.flush_interval)
            self.cache.flush()

    async def _drain(self) -> None:
        """Give in-flight requests and evaluations ``grace`` seconds,
        then cancel what remains."""
        deadline = time.monotonic() + self.grace
        while (
            (self._active or self._inflight)
            and time.monotonic() < deadline
        ):
            tasks = list(self._inflight.values())
            if tasks:
                await asyncio.wait(
                    tasks, timeout=max(0.05, deadline - time.monotonic())
                )
            else:
                await asyncio.sleep(0.05)
        for task in list(self._inflight.values()):
            task.cancel()

    # -- connection handling ---------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: requests handled sequentially, responses
        in request order (concurrency comes from concurrent clients)."""
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ServeError as exc:
                    # framing is broken — answer once, then hang up
                    self.stats.errors += 1
                    await write_message(
                        writer, {"ok": False, "error": exc.to_doc()}
                    )
                    return
                if request is None:
                    return
                response, stop_after = await self._dispatch(request)
                if "id" in request:
                    response["id"] = request["id"]
                await write_message(writer, response)
                if stop_after:
                    self.request_shutdown()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: dict) -> "tuple[dict, bool]":
        self.stats.requests += 1
        op = request.get("op")
        try:
            if op == "ping":
                return {
                    "ok": True,
                    "version": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                }, False
            if op == "stats":
                return {"ok": True, "stats": self.stats_doc()}, False
            if op == "flush":
                return {"ok": True, "flushed": self.cache.flush()}, False
            if op == "shutdown":
                return {"ok": True, "shutting_down": True}, True
            if op == "sweep":
                return await self._handle_sweep(request), False
            raise ServeError("bad-request", f"unknown op {op!r}")
        except ServeError as exc:
            self.stats.errors += 1
            return {"ok": False, "error": exc.to_doc()}, False
        except Exception as exc:  # evaluation/internal failure
            self.stats.errors += 1
            err = ServeError("internal", f"{type(exc).__name__}: {exc}")
            return {"ok": False, "error": err.to_doc()}, False

    async def _handle_sweep(self, request: dict) -> dict:
        if self._draining:
            raise ServeError("shutting-down", "daemon is draining")
        if self._active >= self.max_pending:
            self.stats.rejected += 1
            raise ServeError(
                "overloaded",
                f"{self._active} sweeps in flight (max_pending="
                f"{self.max_pending}); retry later",
            )
        specs = request.get("points")
        if not isinstance(specs, list) or not specs:
            raise ServeError("bad-request", "sweep needs a non-empty "
                                            "'points' list")
        points = [point_from_doc(doc) for doc in specs]
        timeout = request.get("timeout", self.default_timeout)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ServeError("bad-request", "timeout must be positive")
        self.stats.sweeps += 1
        self.stats.points += len(points)
        self._active += 1
        try:
            work = self._run_points(points)
            if timeout is not None:
                try:
                    results = await asyncio.wait_for(work, timeout)
                except asyncio.TimeoutError:
                    self.stats.timeouts += 1
                    raise ServeError(
                        "timeout",
                        f"deadline of {timeout}s expired; in-flight "
                        f"evaluation continues and will populate the cache",
                    ) from None
            else:
                results = await work
        finally:
            self._active -= 1
        return {"ok": True, "results": [result_to_doc(r) for r in results]}

    # -- evaluation ------------------------------------------------------

    async def _run_points(
        self, points: Sequence[Point]
    ) -> List[MicrobenchResult]:
        """Cache pass, then concurrent single-flight unit fills — the
        async twin of :meth:`SweepRunner.run` (same routing, same worker
        functions, bit-identical results)."""
        results: List[Optional[MicrobenchResult]] = [None] * len(points)
        fills: List[Awaitable[None]] = []

        routes = plan_column_routes(points)
        col_member = {i for idxs in routes.values() for i in idxs}
        for idxs in routes.values():
            group = [points[i] for i in idxs]
            hits = self.cache.get_many(group)
            miss_idx = []
            for i, hit in zip(idxs, hits):
                if hit is not None:
                    results[i] = hit
                    self.stats.hits += 1
                else:
                    miss_idx.append(i)
            if miss_idx:
                self.stats.misses += len(miss_idx)
                fills.append(self._fill_column(points, miss_idx, results))
        for i, point in enumerate(points):
            if i in col_member:
                continue
            hit = self.cache.get(point)
            if hit is not None:
                results[i] = hit
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                fills.append(self._fill_point(point, i, results))

        if fills:
            # gather cancels siblings on first failure; shielded unit
            # tasks keep running and stay coalescable
            await asyncio.gather(*fills)
        return results  # type: ignore[return-value]

    async def _fill_column(
        self,
        points: Sequence[Point],
        miss_idx: List[int],
        results: List[Optional[MicrobenchResult]],
    ) -> None:
        misses = [points[i] for i in miss_idx]
        got = await self._fetch_column(column_key(misses[0]), misses)
        for i, point in zip(miss_idx, misses):
            results[i] = got[point.msg_bytes]

    async def _fetch_column(
        self, key: str, misses: List[Point]
    ) -> Dict[int, MicrobenchResult]:
        """Single-flight fill of one column's missing sizes.

        If the column is already being evaluated, await that task and
        re-check the cache: an identical or superset request costs zero
        extra work; a partial overlap loops and evaluates only what is
        still missing.  The loop terminates because each pass either
        drains ``pending`` from the cache or owns a task that evaluates
        exactly ``pending``.
        """
        out: Dict[int, MicrobenchResult] = {}
        pending = list(misses)
        while pending:
            task = self._inflight.get(key)
            if task is None:
                task = asyncio.create_task(
                    self._evaluate_column(list(pending))
                )
                self._inflight[key] = task
                task.add_done_callback(self._inflight_done(key))
            else:
                self.stats.coalesced += 1
            await asyncio.shield(task)
            still = []
            for point in pending:
                row = self.cache.peek(point)
                if row is None:
                    still.append(point)
                else:
                    out[point.msg_bytes] = row
            pending = still
        return out

    async def _fill_point(
        self,
        point: Point,
        index: int,
        results: List[Optional[MicrobenchResult]],
    ) -> None:
        """Single-flight fill of one scalar point (unit covers exactly
        the point, so waiters can take the task's result directly)."""
        key = "pt:" + cache_key(point)
        task = self._inflight.get(key)
        if task is None:
            task = asyncio.create_task(self._evaluate_point(point))
            self._inflight[key] = task
            task.add_done_callback(self._inflight_done(key))
        else:
            self.stats.coalesced += 1
        results[index] = await asyncio.shield(task)

    def _inflight_done(self, key: str) -> Callable[[asyncio.Task], None]:
        def _cb(task: asyncio.Task) -> None:
            if self._inflight.get(key) is task:
                del self._inflight[key]
            if not task.cancelled():
                # retrieve the exception even if every waiter timed out
                # first, so the loop never logs "never retrieved"
                task.exception()
        return _cb

    async def _evaluate_column(
        self, group: List[Point]
    ) -> List[MicrobenchResult]:
        self.stats.evaluations += 1
        col_results, delta = await self._run_in_pool(
            run_sweep_column_stats, group
        )
        self._lowering["hits"] += delta["hits"]
        self._lowering["misses"] += delta["misses"]
        self._lowering["columns"] += 1
        mode = delta.get("kernel_mode") or ""
        if mode:
            self._lowering[f"{mode}_columns"] += 1
        self._lowering["native_bailouts"] += delta.get("native_bailouts", 0)
        for point, result in zip(group, col_results):
            self.cache.put(point, result)
        return col_results

    async def _evaluate_point(self, point: Point) -> MicrobenchResult:
        self.stats.evaluations += 1
        result = await self._run_in_pool(run_point_spec, point)
        self.cache.put(point, result)
        return result

    async def _run_in_pool(self, fn, arg):
        """One work unit on the resident executor (tests wrap this to
        inject latency/failures without touching the engines)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, arg)

    # -- introspection ---------------------------------------------------

    def stats_doc(self) -> dict:
        doc = self.stats.to_doc()
        doc.update({
            "inflight": len(self._inflight),
            "active": self._active,
            "jobs": self.jobs,
            "max_pending": self.max_pending,
            "pid": os.getpid(),
        })
        return {
            "daemon": doc,
            "cache": self.cache.stats(),
            "lowering": dict(self._lowering),
        }


def main(argv=None) -> int:
    """``python -m repro.serve`` — run the daemon in the foreground."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent sweep daemon: newline-delimited JSON over "
                    "TCP (host:port) or a unix socket (path).",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:8641", metavar="ADDR",
        help="host:port, bare port, or unix-socket path "
             "(default 127.0.0.1:8641; port 0 binds ephemerally)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="resident worker processes (0 = in-process threads; "
             "default $PIPMCOLL_JOBS or CPU count)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default $PIPMCOLL_CACHE_DIR or "
             ".bench_cache)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=32,
        help="sweeps in flight before new ones are refused as "
             "'overloaded' (default 32)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request deadline in seconds (requests may "
             "override; default none)",
    )
    parser.add_argument(
        "--flush-interval", type=float, default=5.0,
        help="seconds between periodic shard flushes (default 5)",
    )
    parser.add_argument(
        "--grace", type=float, default=10.0,
        help="shutdown drain window in seconds (default 10)",
    )
    args = parser.parse_args(argv)

    cache = (
        ResultCache(args.cache_dir) if args.cache_dir is not None
        else ResultCache()
    )
    daemon = SweepDaemon(
        args.listen,
        cache=cache,
        jobs=args.jobs,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        flush_interval=args.flush_interval,
        grace=args.grace,
    )

    async def _run() -> None:
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, daemon.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass

        def announce(d: SweepDaemon) -> None:
            print(
                f"repro.serve: listening on {d.bound_address} "
                f"(jobs={d.jobs}, cache={d.cache.root})",
                file=sys.stderr, flush=True,
            )

        await daemon.serve(ready=announce)

    asyncio.run(_run())
    print("repro.serve: drained and flushed, bye", file=sys.stderr)
    return 0

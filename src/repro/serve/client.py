"""Synchronous client for the sweep daemon.

The daemon is async because it multiplexes many clients; a *client* is a
plain blocking socket — figure scripts, notebooks, and shells don't want
an event loop.  One :class:`SweepClient` holds one connection and issues
requests sequentially (responses come back in request order); run several
clients for concurrency, which is exactly what the daemon exists to
coalesce.

Command line::

    python -m repro.serve.client --connect /tmp/repro.sock \\
        --library PiP-MColl --collective allgather --nodes 4 --ppn 8 \\
        --sizes 512,4096,65536 --engine auto
    python -m repro.serve.client --connect 127.0.0.1:8641 --stats
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.points import Point
from repro.serve.protocol import (
    MAX_LINE,
    ServeError,
    decode_message,
    encode_message,
    parse_address,
    point_to_doc,
    result_from_doc,
)

__all__ = ["SweepClient", "wait_until_ready", "main"]


class SweepClient:
    """One blocking connection to a :class:`~repro.serve.daemon.
    SweepDaemon`; usable as a context manager."""

    def __init__(self, address: str, connect_timeout: float = 10.0):
        self.address = parse_address(address)
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection ------------------------------------------------------

    def connect(self) -> "SweepClient":
        if self._sock is not None:
            return self
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(self.address[1])
        else:
            _, host, port = self.address
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        # request timeouts are the daemon's job; the client blocks
        sock.settimeout(None)
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "SweepClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def request(self, doc: dict) -> dict:
        """Send one message, block for its response; raises
        :class:`ServeError` on an error response or a dropped
        connection."""
        if self._file is None:
            self.connect()
        self._file.write(encode_message(doc))
        self._file.flush()
        line = self._file.readline(MAX_LINE + 1)
        if not line:
            raise ServeError("internal", "connection closed by daemon")
        response = decode_message(line)
        if not response.get("ok"):
            raise ServeError.from_doc(response.get("error", {}))
        return response

    def sweep(
        self, points: Sequence[Point], timeout: Optional[float] = None
    ) -> List[MicrobenchResult]:
        """Evaluate ``points`` on the daemon; results in request order,
        bit-identical to a local ``SweepRunner.run``."""
        doc = {"op": "sweep", "points": [point_to_doc(p) for p in points]}
        if timeout is not None:
            doc["timeout"] = timeout
        response = self.request(doc)
        return [result_from_doc(d) for d in response["results"]]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def flush(self) -> int:
        return self.request({"op": "flush"})["flushed"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})


def wait_until_ready(
    address: str, deadline: float = 10.0, poll: float = 0.05
) -> None:
    """Block until a daemon answers a ping at ``address`` (used after
    spawning ``python -m repro.serve`` as a subprocess)."""
    end = time.monotonic() + deadline
    last: Exception = ServeError("internal", "never attempted")
    while time.monotonic() < end:
        try:
            with SweepClient(address, connect_timeout=poll * 4) as client:
                client.ping()
                return
        except (OSError, ServeError) as exc:
            last = exc
            time.sleep(poll)
    raise TimeoutError(
        f"no daemon answering at {address} within {deadline}s: {last}"
    )


# -- command line -----------------------------------------------------------


def _parse_sizes(text: str) -> List[int]:
    sizes = [int(s) for s in text.split(",") if s.strip()]
    if not sizes:
        raise ValueError("--sizes selected no sizes")
    return sizes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Talk to a running sweep daemon.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="ADDR",
        help="daemon address: host:port or unix-socket path",
    )
    parser.add_argument("--stats", action="store_true",
                        help="print daemon counters and exit")
    parser.add_argument("--ping", action="store_true",
                        help="health check and exit")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to drain, flush and exit")
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of a table")
    parser.add_argument("--library")
    parser.add_argument("--collective")
    parser.add_argument("--nodes", type=int)
    parser.add_argument("--ppn", type=int)
    parser.add_argument("--sizes", metavar="B1,B2,...",
                        help="comma-separated message sizes in bytes")
    parser.add_argument("--engine", default="auto")
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--measure", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-request deadline in seconds")
    args = parser.parse_args(argv)

    try:
        with SweepClient(args.connect) as client:
            if args.ping:
                doc = client.ping()
                print(json.dumps(doc) if args.json
                      else f"ok: daemon pid {doc['pid']} "
                           f"(protocol v{doc['version']})")
                return 0
            if args.stats:
                doc = client.stats()
                if args.json:
                    print(json.dumps(doc, indent=2))
                else:
                    d = doc["daemon"]
                    print(
                        f"daemon pid {d['pid']}: {d['sweeps']} sweeps / "
                        f"{d['points']} points ({d['hits']} hits, "
                        f"{d['misses']} misses, {d['coalesced']} coalesced, "
                        f"{d['evaluations']} evaluations), "
                        f"{d['active']} active, {d['inflight']} in flight, "
                        f"{d['rejected']} rejected, {d['timeouts']} "
                        f"timeouts, up {d['uptime_s']:.1f}s"
                    )
                return 0
            if args.shutdown:
                client.shutdown()
                print("daemon shutting down")
                return 0

            required = ("library", "collective", "nodes", "ppn", "sizes")
            missing = [k for k in required if getattr(args, k) is None]
            if missing:
                parser.error(
                    f"sweep needs --{' --'.join(missing)} "
                    f"(or one of --stats/--ping/--shutdown)"
                )
            points = [
                Point(
                    args.library, args.collective, args.nodes, args.ppn,
                    size, warmup=args.warmup, measure=args.measure,
                    engine=args.engine,
                )
                for size in _parse_sizes(args.sizes)
            ]
            results = client.sweep(points, timeout=args.timeout)
            if args.json:
                from repro.serve.protocol import result_to_doc

                print(json.dumps([result_to_doc(r) for r in results],
                                 indent=2))
            else:
                for r in results:
                    print(
                        f"{r.library:>15} {r.collective:<9} "
                        f"{r.nodes}x{r.ppn:<2} {r.msg_bytes:>8}B  "
                        f"{r.time * 1e6:10.3f} us"
                    )
            return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach daemon at {args.connect}: {exc}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

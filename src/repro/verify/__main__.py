"""CLI for the differential verification campaign.

Examples::

    PYTHONPATH=src python -m repro.verify --seed 0 --points 200
    PYTHONPATH=src python -m repro.verify --seed 0 --point 37   # repro one
    PYTHONPATH=src python -m repro.verify --list                # case space

Exit status is non-zero if any point fails, so the command doubles as a CI
gate (see the verify-campaign job).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import defaultdict
from typing import Dict, List, Set

from repro.verify.cases import ENTRIES, build_case
from repro.verify.engine import PointResult, repro_command, run_point


def _print_coverage(results: List[PointResult]) -> None:
    mechs: Dict[str, Set[str]] = defaultdict(set)
    dtypes: Dict[str, Set[str]] = defaultdict(set)
    kinds: Dict[str, Set[str]] = defaultdict(set)
    for r in results:
        coll = r.case.entry.collective
        mechs[coll].add(r.mechanism)
        dtypes[coll].add(r.case.dtype_name)
        kinds[coll].add(r.case.entry.kind)
    print("coverage (collective: surfaces / mechanisms / dtypes):")
    for coll in sorted(mechs):
        print(
            f"  {coll:15s} {len(kinds[coll])} surface kinds / "
            f"{len(mechs[coll])} mechanisms / {len(dtypes[coll])} dtypes"
        )
    thin = [
        coll
        for coll in mechs
        if len(mechs[coll]) < 2 or len(dtypes[coll]) < 2
    ]
    if thin:
        print(
            "note: thin coverage (fewer than 2 mechanisms or dtypes) for: "
            + ", ".join(sorted(thin))
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Differential data-correctness campaign over every registered "
            "collective"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--points", type=int, default=200,
        help="number of campaign points to run (default 200)",
    )
    parser.add_argument(
        "--point", type=int, default=None,
        help="run exactly one point (repro mode)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the case-space registry and exit",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print every point, not just failures",
    )
    args = parser.parse_args(argv)

    if args.list:
        for i, e in enumerate(ENTRIES):
            print(f"[{i:3d}] {e.kind:8s} {e.collective:15s} {e.algo}")
        print(f"{len(ENTRIES)} entries")
        return 0

    indices = (
        [args.point] if args.point is not None else list(range(args.points))
    )

    t0 = time.perf_counter()
    results: List[PointResult] = []
    failures: List[PointResult] = []
    for index in indices:
        if args.verbose:
            case = build_case(args.seed, index)
            print(f"     [{index:4d}] {case.describe()}", flush=True)
        result = run_point(args.seed, index)
        results.append(result)
        if not result.ok:
            failures.append(result)
            print(result.summary())
            for f in result.failures[:8]:
                print(f"       {f}")
            if len(result.failures) > 8:
                print(f"       ... {len(result.failures) - 8} more")
            print(f"       repro: {repro_command(args.seed, result.index)}")
        elif args.verbose or args.point is not None:
            print(result.summary())
    wall = time.perf_counter() - t0

    print(
        f"summary: {len(results)} points, {len(failures)} failed "
        f"({wall:.1f}s wall)"
    )
    if args.point is None:
        _print_coverage(results)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Differential execution engine: run one campaign point, check payloads.

For every :class:`~repro.verify.cases.Case` the engine builds a real-buffer
(non-phantom) world with ``validate=True`` — arming the runtime semantics
oracles (send-buffer reuse, non-overtaking, quiescence) — executes exactly
one collective, and compares every rank's final payload against the pure
numpy oracles in :mod:`repro.verify.oracles`.

A point fails on a payload mismatch, a :class:`ValidationError`, or any
other exception; the failure report always carries the one-line repro
command from :func:`repro_command`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import make_library
from repro.core.mcoll import PiPMColl
from repro.core.tuning import Thresholds
from repro.hw import Topology, tiny_test_machine
from repro.mpi.buffer import Buffer
from repro.mpi.collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allgatherv_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    gather_binomial,
    gatherv_linear,
    reduce_binomial,
    reduce_scatter_halving,
    reduce_scatter_pairwise,
    scatter_binomial,
    scatterv_linear,
)
from repro.mpi.collectives.group import Group
from repro.mpi.datatypes import BYTE, DataType, ReduceOp
from repro.mpi.runtime import World
from repro.sched.executor import ScheduleExecutor
from repro.sched.registry import plan_for
from repro.shmem.mechanisms import PipShmem, PosixShmem
from repro.verify import oracles
from repro.verify.cases import (
    DTYPES,
    MECHANISMS,
    OPS,
    Case,
    build_case,
)

__all__ = ["PointResult", "run_point", "repro_command"]

_DTYPE_BY_NAME: Dict[str, DataType] = {d.name: d for d in DTYPES}
_OP_BY_NAME: Dict[str, ReduceOp] = {o.name: o for o in OPS}

_FLAT_FUNCS = {
    "allgather_bruck": allgather_bruck,
    "allgather_recursive_doubling": allgather_recursive_doubling,
    "allgather_ring": allgather_ring,
    "allreduce_recursive_doubling": allreduce_recursive_doubling,
    "allreduce_rabenseifner": allreduce_rabenseifner,
    "alltoall_bruck": alltoall_bruck,
    "alltoall_pairwise": alltoall_pairwise,
    "bcast_binomial": bcast_binomial,
    "gather_binomial": gather_binomial,
    "reduce_binomial": reduce_binomial,
    "reduce_scatter_halving": reduce_scatter_halving,
    "reduce_scatter_pairwise": reduce_scatter_pairwise,
    "scatter_binomial": scatter_binomial,
    "barrier_dissemination": barrier_dissemination,
}


@dataclass
class PointResult:
    """Outcome of one campaign point."""

    index: int
    case: Case
    ok: bool
    #: human-readable mismatch/error descriptions (empty when ok)
    failures: List[str] = field(default_factory=list)
    #: intranode mechanism actually used (library cases use their own)
    mechanism: str = ""

    def summary(self) -> str:
        status = "ok " if self.ok else "FAIL"
        return f"{status} [{self.index:4d}] {self.case.describe()}"


def repro_command(seed: int, index: int) -> str:
    """The one-liner that replays exactly this point."""
    return (
        f"PYTHONPATH=src python -m repro.verify --seed {seed} --point {index}"
    )


# -- deterministic content ----------------------------------------------------


def _fill(rng: np.random.Generator, dtype: DataType, n: int) -> np.ndarray:
    """Random payload in a range safe for every reduce op.

    Floats stay in [0.5, 1.5] so PROD over <=16 ranks neither explodes nor
    underflows; integers use the full wrap-capable range (the oracle wraps
    identically by accumulating in-dtype).
    """
    nd = dtype.np_dtype
    if n == 0:
        return np.empty(0, dtype=nd)
    if nd.kind == "f":
        return (rng.random(n) + 0.5).astype(nd)
    if nd == np.uint8:
        return rng.integers(0, 256, size=n, dtype=nd)
    return rng.integers(-100, 101, size=n, dtype=nd)


def _make_params(case: Case):
    params = tiny_test_machine()
    if case.eager_threshold is not None:
        params = params.with_overrides(eager_threshold=case.eager_threshold)
    return params


def _compare(
    per_rank_actual: Sequence[Optional[np.ndarray]],
    per_rank_expected: Sequence[Optional[np.ndarray]],
    labels: Sequence[str],
) -> List[str]:
    failures = []
    for label, actual, expected in zip(
        labels, per_rank_actual, per_rank_expected
    ):
        if expected is None:
            continue
        if actual is None:
            failures.append(f"{label}: missing output buffer")
            continue
        if not oracles.payloads_match(actual, expected):
            diff = _first_diff(actual, expected)
            failures.append(f"{label}: payload mismatch {diff}")
    return failures


def _first_diff(actual: np.ndarray, expected: np.ndarray) -> str:
    if actual.shape != expected.shape:
        return f"(shape {actual.shape} != {expected.shape})"
    if actual.dtype != expected.dtype:
        return f"(dtype {actual.dtype} != {expected.dtype})"
    bad = np.flatnonzero(actual != expected)
    if bad.size == 0:  # float tolerance failure
        return "(float tolerance exceeded)"
    i = int(bad[0])
    return (
        f"(first diff at [{i}]: got {actual[i]!r}, want {expected[i]!r}; "
        f"{bad.size}/{actual.size} elements differ)"
    )


# -- case runners -------------------------------------------------------------


def _run_library_case(case: Case) -> Tuple[List[str], str]:
    lib_name = case.entry.algo
    coll = case.entry.collective
    if lib_name == "PiP-MColl" and case.thresholds != "default":
        thr = (
            Thresholds.always_small()
            if case.thresholds == "small"
            else Thresholds.always_large()
        )
        lib = PiPMColl(thr)
    else:
        lib = make_library(lib_name)
    mech = lib.make_mechanism()
    world = World(
        Topology(case.nodes, case.ppn),
        _make_params(case),
        mechanism=mech,
        validate=True,
    )
    P = world.world_size
    C = case.count
    dtype = _DTYPE_BY_NAME[case.dtype_name]
    op = _OP_BY_NAME[case.op_name]
    root = case.root_index
    rng = np.random.default_rng((case.index, 0xC0FFEE))

    if coll == "barrier":
        world.run(lambda ctx: lib.barrier(ctx))
        return [], mech.name if mech is not None else "none"

    inputs = [_fill(rng, dtype, C) for _ in range(P)]
    sendbufs: List[Optional[Buffer]] = []
    recvbufs: List[Optional[Buffer]] = []

    if coll == "scatter":
        root_input = _fill(rng, dtype, P * C)
        sendbufs = [
            Buffer.real(root_input.copy(), dtype) if r == root else None
            for r in range(P)
        ]
        recvbufs = [Buffer.alloc(dtype, C) for _ in range(P)]
        expected = oracles.scatter(root_input, P, C)
        body = lambda ctx: lib.scatter(  # noqa: E731
            ctx, sendbufs[ctx.rank], recvbufs[ctx.rank], root=root
        )
    elif coll == "allgather":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, P * C) for _ in range(P)]
        expected = oracles.allgather(inputs)
        body = lambda ctx: lib.allgather(  # noqa: E731
            ctx, sendbufs[ctx.rank], recvbufs[ctx.rank]
        )
    elif coll == "allreduce":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, C) for _ in range(P)]
        expected = oracles.allreduce(inputs, op)
        body = lambda ctx: lib.allreduce(  # noqa: E731
            ctx, sendbufs[ctx.rank], recvbufs[ctx.rank], op
        )
    elif coll == "alltoall":
        inputs = [_fill(rng, dtype, P * C) for _ in range(P)]
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, P * C) for _ in range(P)]
        expected = oracles.alltoall(inputs, C)
        body = lambda ctx: lib.alltoall(  # noqa: E731
            ctx, sendbufs[ctx.rank], recvbufs[ctx.rank]
        )
    elif coll == "bcast":
        bufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = bufs
        expected = oracles.bcast(inputs[root], P)
        body = lambda ctx: lib.bcast(ctx, bufs[ctx.rank], root=root)  # noqa: E731
    elif coll == "gather":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [
            Buffer.alloc(dtype, P * C) if r == root else None
            for r in range(P)
        ]
        expected = oracles.gather(inputs, root)
        body = lambda ctx: lib.gather(  # noqa: E731
            ctx, sendbufs[ctx.rank], recvbufs[ctx.rank], root=root
        )
    elif coll == "reduce":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [
            Buffer.alloc(dtype, C) if r == root else None for r in range(P)
        ]
        expected = oracles.reduce(inputs, op, root)
        body = lambda ctx: lib.reduce(  # noqa: E731
            ctx, sendbufs[ctx.rank], recvbufs[ctx.rank], op, root=root
        )
    else:  # pragma: no cover - registry/enum drift
        raise ValueError(f"unknown library collective {coll!r}")

    world.run(body)
    actual = [b.array() if b is not None else None for b in recvbufs]
    labels = [f"rank {r} ({coll})" for r in range(P)]
    return (
        _compare(actual, expected, labels),
        mech.name if mech is not None else "none",
    )


def _noop_body():
    return
    yield  # pragma: no cover - makes this a generator


def _run_flat_case(case: Case) -> Tuple[List[str], str]:
    algo = case.entry.algo
    func = _FLAT_FUNCS[algo]
    mech = MECHANISMS[case.mechanism]()
    world = World(
        Topology(case.nodes, case.ppn),
        _make_params(case),
        mechanism=mech,
        validate=True,
    )
    group = Group(case.group_ranks)
    size = group.size
    C = case.count
    dtype = _DTYPE_BY_NAME[case.dtype_name]
    op = _OP_BY_NAME[case.op_name]
    root = case.root_index
    rng = np.random.default_rng((case.index, 0xC0FFEE))

    # inputs/expected are ordered by *group index*
    coll = case.entry.collective
    inputs = [_fill(rng, dtype, C) for _ in range(size)]
    sendbufs: List[Optional[Buffer]] = [None] * size
    recvbufs: List[Optional[Buffer]] = [None] * size
    expected: Sequence[Optional[np.ndarray]] = [None] * size

    if coll == "allgather":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, size * C) for _ in range(size)]
        expected = oracles.allgather(inputs)
        args = lambda i: (sendbufs[i], recvbufs[i])  # noqa: E731
    elif coll == "allreduce":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, C) for _ in range(size)]
        expected = oracles.allreduce(inputs, op)
        args = lambda i: (sendbufs[i], recvbufs[i], op)  # noqa: E731
    elif coll == "alltoall":
        inputs = [_fill(rng, dtype, size * C) for _ in range(size)]
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, size * C) for _ in range(size)]
        expected = oracles.alltoall(inputs, C)
        args = lambda i: (sendbufs[i], recvbufs[i])  # noqa: E731
    elif coll == "bcast":
        bufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = bufs
        expected = oracles.bcast(inputs[root], size)
        args = lambda i: (bufs[i],)  # noqa: E731
    elif coll == "gather":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [
            Buffer.alloc(dtype, size * C) if i == root else None
            for i in range(size)
        ]
        expected = oracles.gather(inputs, root)
        args = lambda i: (sendbufs[i], recvbufs[i])  # noqa: E731
    elif coll == "reduce":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [
            Buffer.alloc(dtype, C) if i == root else None for i in range(size)
        ]
        expected = oracles.reduce(inputs, op, root)
        args = lambda i: (sendbufs[i], recvbufs[i], op)  # noqa: E731
    elif coll == "reduce_scatter":
        inputs = [_fill(rng, dtype, size * C) for _ in range(size)]
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, C) for _ in range(size)]
        expected = oracles.reduce_scatter(inputs, op, C)
        args = lambda i: (sendbufs[i], recvbufs[i], op)  # noqa: E731
    elif coll == "scatter":
        root_input = _fill(rng, dtype, size * C)
        sendbufs = [
            Buffer.real(root_input.copy(), dtype) if i == root else None
            for i in range(size)
        ]
        recvbufs = [Buffer.alloc(dtype, C) for _ in range(size)]
        expected = oracles.scatter(root_input, size, C)
        args = lambda i: (sendbufs[i], recvbufs[i])  # noqa: E731
    elif coll == "barrier":
        args = lambda i: ()  # noqa: E731
    else:  # pragma: no cover - registry/enum drift
        raise ValueError(f"unknown flat collective {coll!r}")

    rooted = coll in ("scatter", "gather", "reduce", "bcast")

    def body(ctx):
        if ctx.rank not in group:
            return _noop_body()
        i = group.index_of(ctx.rank)
        if rooted:
            return func(ctx, group, *args(i), root_index=root)
        return func(ctx, group, *args(i))

    world.run(body)
    if coll == "barrier":
        return [], mech.name
    actual = [b.array() if b is not None else None for b in recvbufs]
    labels = [
        f"group[{i}]=rank {r} ({algo})"
        for i, r in enumerate(case.group_ranks)
    ]
    return _compare(actual, expected, labels), mech.name


def _run_vector_case(case: Case) -> Tuple[List[str], str]:
    algo = case.entry.algo
    mech = MECHANISMS[case.mechanism]()
    world = World(
        Topology(case.nodes, case.ppn),
        _make_params(case),
        mechanism=mech,
        validate=True,
    )
    group = Group(case.group_ranks)
    size = group.size
    dtype = _DTYPE_BY_NAME[case.dtype_name]
    counts, displs = list(case.counts), list(case.displs)
    total = max(
        (d + c for c, d in zip(counts, displs)), default=0
    )
    root = case.root_index
    rng = np.random.default_rng((case.index, 0xC0FFEE))

    inputs = [_fill(rng, dtype, c) for c in counts]
    sendbufs: List[Optional[Buffer]] = [None] * size
    recvbufs: List[Optional[Buffer]] = [None] * size

    if algo == "scatterv":
        root_input = _fill(rng, dtype, total)
        sendbufs = [
            Buffer.real(root_input.copy(), dtype) if i == root else None
            for i in range(size)
        ]
        recvbufs = [Buffer.alloc(dtype, c) for c in counts]
        expected = oracles.scatterv(root_input, counts, displs)

        def body(ctx):
            if ctx.rank not in group:
                return _noop_body()
            i = group.index_of(ctx.rank)
            return scatterv_linear(
                ctx, group, sendbufs[i], counts, displs, recvbufs[i],
                root_index=root,
            )
    elif algo == "gatherv":
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [
            Buffer.alloc(dtype, total) if i == root else None
            for i in range(size)
        ]
        expected = oracles.gatherv(inputs, counts, displs, root, total)

        def body(ctx):
            if ctx.rank not in group:
                return _noop_body()
            i = group.index_of(ctx.rank)
            return gatherv_linear(
                ctx, group, sendbufs[i], counts, displs, recvbufs[i],
                root_index=root,
            )
    else:  # allgatherv
        sendbufs = [Buffer.real(a.copy(), dtype) for a in inputs]
        recvbufs = [Buffer.alloc(dtype, total) for _ in range(size)]
        expected = oracles.allgatherv(inputs, counts, displs, total)

        def body(ctx):
            if ctx.rank not in group:
                return _noop_body()
            i = group.index_of(ctx.rank)
            return allgatherv_ring(
                ctx, group, sendbufs[i], counts, displs, recvbufs[i]
            )

    world.run(body)
    actual = [b.array() if b is not None else None for b in recvbufs]
    labels = [
        f"group[{i}]=rank {r} ({algo})"
        for i, r in enumerate(case.group_ranks)
    ]
    return _compare(actual, expected, labels), mech.name


def _run_schedule_case(case: Case) -> Tuple[List[str], str]:
    lib, coll = case.entry.algo.split(":")
    thr = None
    if lib == "pip-mcoll" and case.thresholds != "default":
        thr = (
            Thresholds.always_small()
            if case.thresholds == "small"
            else Thresholds.always_large()
        )
    planned = plan_for(
        lib, coll, case.nodes, case.ppn, case.count, thresholds=thr
    )
    mech = PipShmem() if lib.startswith("pip") else PosixShmem()
    world = World(
        Topology(case.nodes, case.ppn),
        _make_params(case),
        mechanism=mech,
        validate=True,
    )
    P = world.world_size
    C = case.count  # byte elements: schedules plan in bytes
    op = _OP_BY_NAME[case.op_name]
    rng = np.random.default_rng((case.index, 0xC0FFEE))

    # per-participant buffers: "send"-ish names are inputs, others outputs
    inputs: List[Optional[np.ndarray]] = [None] * P
    bound: List[Dict[str, Optional[Buffer]]] = []
    for i in range(P):
        bufs: Dict[str, Optional[Buffer]] = {}
        for name, count in planned.bindings[i].items():
            if name == "send":
                arr = _fill(rng, BYTE, count)
                if inputs[i] is None:
                    inputs[i] = arr
                bufs[name] = Buffer.real(arr.copy(), BYTE)
            else:
                bufs[name] = Buffer.alloc(BYTE, count)
        bound.append(bufs)

    executor = ScheduleExecutor(planned.schedule)
    rank_to_program = {r: i for i, r in enumerate(planned.ranks)}

    def body(ctx):
        i = rank_to_program.get(ctx.rank)
        if i is None:
            return _noop_body()
        return executor.run(
            ctx,
            bound[i],
            op=op,
            symbols=dict(planned.symbols) if planned.symbols else None,
            program_index=i,
        )

    world.run(body)

    if coll == "scatter":
        # the mcoll scatter plans root at global rank 0
        root_input = inputs[0]
        expected = oracles.scatter(root_input, P, C)
    elif coll == "allgather":
        expected = oracles.allgather(inputs)
    elif coll == "allreduce":
        expected = oracles.allreduce(inputs, op)
    else:  # pragma: no cover - registry drift
        raise ValueError(f"no oracle for schedule collective {coll!r}")

    actual = [
        bound[i]["recv"].array() if "recv" in bound[i] else None
        for i in range(P)
    ]
    labels = [f"rank {r} ({planned.label})" for r in planned.ranks]
    return _compare(actual, expected, labels), mech.name


_RUNNERS: Dict[str, Callable[[Case], Tuple[List[str], str]]] = {
    "library": _run_library_case,
    "flat": _run_flat_case,
    "vector": _run_vector_case,
    "schedule": _run_schedule_case,
}


def run_point(seed: int, index: int) -> PointResult:
    """Build and execute campaign point ``index``; never raises."""
    case = build_case(seed, index)
    try:
        failures, mech_name = _RUNNERS[case.entry.kind](case)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        failures = [f"{type(exc).__name__}: {exc}"]
        mech_name = case.mechanism
    return PointResult(
        index=index,
        case=case,
        ok=not failures,
        failures=failures,
        mechanism=mech_name,
    )

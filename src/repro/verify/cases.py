"""The differential campaign's case space and deterministic sampler.

A campaign of ``N`` points cycles round-robin through :data:`ENTRIES` — the
registry of every verifiable collective surface: the six modelled libraries'
collectives, the flat classical algorithms, the vector collectives, and the
planner-backed schedules replayed directly through the
:class:`~repro.sched.executor.ScheduleExecutor`.  Each visit *rotates*
dtype, intranode mechanism, eager/rendezvous regime, and threshold variant
(guaranteed coverage), and draws shape, counts, reduction op, root, and
subgroup from an rng seeded by ``(seed, point)`` (randomized breadth).

Everything about point ``K`` derives from ``(seed, K)``, so a failed
campaign point is reproduced exactly by
``python -m repro.verify --seed S --point K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mpi.datatypes import BYTE, DOUBLE, FLOAT32, INT32, INT64
from repro.mpi.datatypes import MAX, MIN, PROD, SUM
from repro.shmem.mechanisms import (
    HybridMechanism,
    KernelCopy,
    PipShmem,
    PosixShmem,
    Xpmem,
)

__all__ = ["Entry", "Case", "ENTRIES", "build_case", "DTYPES", "MECHANISMS"]


@dataclass(frozen=True)
class Entry:
    """One verifiable collective surface."""

    #: "library" | "flat" | "vector" | "schedule"
    kind: str
    #: canonical collective name (coverage is tracked per this name)
    collective: str
    #: library name, flat algorithm name, or "library:collective" combo
    algo: str
    #: group sizes restricted to powers of two (algorithm requirement)
    pow2_group: bool = False


_LIBRARY_COLLECTIVES = (
    "scatter", "allgather", "allreduce", "alltoall",
    "bcast", "gather", "reduce", "barrier",
)
_LIBRARIES = (
    "PiP-MColl", "PiP-MColl-small", "PiP-MPICH",
    "OpenMPI", "MVAPICH2", "IntelMPI",
)

#: flat algorithm -> canonical collective name
_FLAT_ALGORITHMS = {
    "allgather_bruck": "allgather",
    "allgather_recursive_doubling": "allgather",
    "allgather_ring": "allgather",
    "allreduce_recursive_doubling": "allreduce",
    "allreduce_rabenseifner": "allreduce",
    "alltoall_bruck": "alltoall",
    "alltoall_pairwise": "alltoall",
    "bcast_binomial": "bcast",
    "gather_binomial": "gather",
    "reduce_binomial": "reduce",
    "reduce_scatter_halving": "reduce_scatter",
    "reduce_scatter_pairwise": "reduce_scatter",
    "scatter_binomial": "scatter",
    "barrier_dissemination": "barrier",
}
_POW2_ONLY = {"allgather_recursive_doubling", "reduce_scatter_halving"}

_VECTOR = ("scatterv", "gatherv", "allgatherv")

#: planner-backed (library, collective) combos replayed directly through
#: the ScheduleExecutor (mirrors repro.sched.registry.registry_combinations)
_SCHEDULE_COMBOS = (
    ("pip-mcoll", "scatter"), ("pip-mcoll", "allgather"),
    ("pip-mcoll", "allreduce"),
    ("pip-mcoll-small", "scatter"), ("pip-mcoll-small", "allgather"),
    ("pip-mcoll-small", "allreduce"),
    ("pip-mpich", "allgather"), ("openmpi", "allgather"),
)


def _build_entries() -> Tuple[Entry, ...]:
    entries = [
        Entry("library", coll, lib)
        for lib in _LIBRARIES
        for coll in _LIBRARY_COLLECTIVES
    ]
    entries += [
        Entry("flat", coll, algo, pow2_group=algo in _POW2_ONLY)
        for algo, coll in _FLAT_ALGORITHMS.items()
    ]
    entries += [Entry("vector", v, v) for v in _VECTOR]
    entries += [
        Entry("schedule", coll, f"{lib}:{coll}")
        for lib, coll in _SCHEDULE_COMBOS
    ]
    return tuple(entries)


#: the fixed, ordered case-space registry (order feeds the rotations —
#: append only)
ENTRIES: Tuple[Entry, ...] = _build_entries()

DTYPES = (BYTE, INT32, INT64, FLOAT32, DOUBLE)
OPS = (SUM, PROD, MAX, MIN)

#: intranode mechanism factories for flat/vector cases (library cases use
#: the library's own mechanism)
MECHANISMS = {
    "posix-shmem": PosixShmem,
    "pip": PipShmem,
    "kernel-copy": KernelCopy,
    "xpmem": Xpmem,
    "hybrid": lambda: HybridMechanism(PosixShmem(), KernelCopy(), 4096),
}
_MECH_NAMES = tuple(MECHANISMS)

#: (nodes, ppn) pool; 16 simulated ranks max keeps a 200-point campaign
#: comfortably inside a CI minute
_SHAPES = (
    (1, 2), (2, 1), (2, 2), (1, 4), (4, 1), (3, 2),
    (2, 3), (4, 2), (2, 4), (3, 3), (4, 4), (1, 1),
)

#: element counts: zero, ones, primes/non-divisible, block sizes
_COUNTS = (0, 1, 2, 3, 5, 8, 13, 17, 32, 96, 256, 1000)

#: eager-threshold regimes: machine default (64 kB: everything eager at
#: these counts) and a 64-byte override that forces most internode traffic
#: through the rendezvous path
_EAGER_REGIMES = (None, None, 64)

#: PiP-MColl threshold variants (algorithm switch coverage independent of
#: message size)
_THRESHOLD_VARIANTS = ("default", "small", "large")


@dataclass(frozen=True)
class Case:
    """One fully-determined campaign point."""

    index: int
    entry: Entry
    nodes: int
    ppn: int
    count: int
    dtype_name: str
    op_name: str
    mechanism: str
    #: group indices are used for roots; this is the root's group index
    root_index: int
    #: None = machine default
    eager_threshold: Optional[int]
    #: "default" | "small" | "large" (PiP-MColl surfaces only)
    thresholds: str
    #: participant global ranks, in group order (library/schedule cases
    #: always span the whole world)
    group_ranks: Tuple[int, ...]
    #: per-rank element counts (vector collectives only)
    counts: Optional[Tuple[int, ...]] = None
    #: per-rank element displacements (vector collectives only)
    displs: Optional[Tuple[int, ...]] = None

    @property
    def world_size(self) -> int:
        return self.nodes * self.ppn

    def describe(self) -> str:
        bits = [
            f"{self.entry.kind}:{self.entry.algo}",
            f"{self.nodes}x{self.ppn}",
            f"count={self.count}" if self.counts is None
            else f"counts={list(self.counts)}",
            self.dtype_name,
            f"op={self.op_name}",
            f"mech={self.mechanism}",
            f"root={self.root_index}",
        ]
        if self.eager_threshold is not None:
            bits.append(f"eager<={self.eager_threshold}B")
        if self.thresholds != "default":
            bits.append(f"thresholds={self.thresholds}")
        if len(self.group_ranks) != self.world_size:
            bits.append(f"group={list(self.group_ranks)}")
        return " ".join(bits)


def _pow2_floor(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


def build_case(seed: int, index: int) -> Case:
    """The fully-determined parameters of campaign point ``index``."""
    entry = ENTRIES[index % len(ENTRIES)]
    occ = index // len(ENTRIES)          # how often this entry came up
    ei = index % len(ENTRIES)            # rotation phase offset per entry
    rng = np.random.default_rng((seed, index))

    dtype = DTYPES[(occ + ei) % len(DTYPES)]
    mechanism = _MECH_NAMES[(occ + 2 * ei) % len(_MECH_NAMES)]
    eager = _EAGER_REGIMES[(occ + ei) % len(_EAGER_REGIMES)]
    thresholds = _THRESHOLD_VARIANTS[(occ + ei) % len(_THRESHOLD_VARIANTS)]
    op = OPS[int(rng.integers(len(OPS)))]

    nodes, ppn = _SHAPES[int(rng.integers(len(_SHAPES)))]
    world_size = nodes * ppn
    world = tuple(range(world_size))

    count = int(_COUNTS[int(rng.integers(len(_COUNTS)))])
    if entry.kind == "schedule" and count == 0:
        count = 1  # planners reject empty messages; p2p tests cover zero

    group_ranks = world
    if entry.kind in ("flat", "vector"):
        gsize = world_size
        if rng.random() < 0.5 and world_size > 1:
            gsize = int(rng.integers(1, world_size + 1))
        if entry.pow2_group:
            gsize = _pow2_floor(gsize)
        members = rng.permutation(world_size)[:gsize]
        group_ranks = tuple(int(r) for r in members)

    counts = displs = None
    if entry.kind == "vector":
        per_rank = rng.integers(0, 13, size=len(group_ranks))
        # force zero-count members in about half the layouts
        if rng.random() < 0.5 and len(group_ranks) > 1:
            zero_at = rng.integers(0, len(group_ranks), size=1 + len(group_ranks) // 3)
            per_rank[zero_at] = 0
        counts = tuple(int(c) for c in per_rank)
        gaps = rng.integers(0, 3, size=len(group_ranks))  # gapped layouts
        d, acc = [], 0
        for c, g in zip(counts, gaps):
            acc += int(g)
            d.append(acc)
            acc += c
        displs = tuple(d)

    root_index = int(rng.integers(len(group_ranks)))

    return Case(
        index=index,
        entry=entry,
        nodes=nodes,
        ppn=ppn,
        count=count,
        dtype_name=dtype.name,
        op_name=op.name,
        mechanism=mechanism,
        root_index=root_index,
        eager_threshold=eager,
        thresholds=thresholds,
        group_ranks=group_ranks,
        counts=counts,
        displs=displs,
    )

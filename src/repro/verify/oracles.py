"""Pure-numpy ground truth for every collective's final payloads.

Each oracle takes the per-rank *input* arrays (ordered by group index) and
returns the per-rank *expected output* arrays, computed without any of the
simulator's machinery — no buffers, no transport, no schedules.  The
differential engine compares a collective's real-buffer results against
these, exactly as MPICH's self-verifying collective tests and OSU-style
validation runs check payloads against host arithmetic.

Reductions accumulate in the *operand dtype* (``ufunc.reduce(...,
dtype=...)``): sequential in-place accumulation in uint8 wraps mod 256, and
the oracle must wrap identically rather than letting numpy upcast to a wide
accumulator.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.mpi.datatypes import ReduceOp

__all__ = [
    "allgather",
    "allgatherv",
    "allreduce",
    "alltoall",
    "bcast",
    "gather",
    "gatherv",
    "reduce",
    "reduce_scatter",
    "scatter",
    "scatterv",
    "payloads_match",
]


def _reduce_stack(inputs: Sequence[np.ndarray], op: ReduceOp) -> np.ndarray:
    """Elementwise reduction across ranks, accumulating in-dtype."""
    stack = np.stack([np.asarray(a) for a in inputs])
    return op.ufunc.reduce(stack, axis=0, dtype=stack.dtype)


def allgather(inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Every rank ends with the concatenation of all inputs."""
    full = np.concatenate(list(inputs))
    return [full] * len(inputs)


def allreduce(inputs: Sequence[np.ndarray], op: ReduceOp) -> List[np.ndarray]:
    """Every rank ends with the elementwise reduction of all inputs."""
    result = _reduce_stack(inputs, op)
    return [result] * len(inputs)


def reduce(
    inputs: Sequence[np.ndarray], op: ReduceOp, root: int
) -> List[np.ndarray]:
    """Only the root's output is defined (``None`` elsewhere)."""
    result = _reduce_stack(inputs, op)
    return [result if i == root else None for i in range(len(inputs))]


def reduce_scatter(
    inputs: Sequence[np.ndarray], op: ReduceOp, count: int
) -> List[np.ndarray]:
    """Rank ``i`` ends with block ``i`` of the full reduction."""
    total = _reduce_stack(inputs, op)
    return [
        total[i * count : (i + 1) * count] for i in range(len(inputs))
    ]


def scatter(root_input: np.ndarray, size: int, count: int) -> List[np.ndarray]:
    """Rank ``i`` receives the ``i``-th ``count``-element block."""
    return [root_input[i * count : (i + 1) * count] for i in range(size)]


def gather(inputs: Sequence[np.ndarray], root: int) -> List[np.ndarray]:
    """The root ends with the concatenation, ordered by group index."""
    full = np.concatenate(list(inputs))
    return [full if i == root else None for i in range(len(inputs))]


def bcast(root_input: np.ndarray, size: int) -> List[np.ndarray]:
    """Every rank ends with the root's data."""
    return [np.asarray(root_input)] * size


def alltoall(inputs: Sequence[np.ndarray], count: int) -> List[np.ndarray]:
    """Block transpose: rank ``i``'s slot ``j`` gets rank ``j``'s block
    ``i``."""
    size = len(inputs)
    return [
        np.concatenate(
            [inputs[j][i * count : (i + 1) * count] for j in range(size)]
        )
        for i in range(size)
    ]


# -- vector (v-) collectives ------------------------------------------------


def scatterv(
    root_input: np.ndarray,
    counts: Sequence[int],
    displs: Sequence[int],
) -> List[np.ndarray]:
    return [
        root_input[d : d + c] for c, d in zip(counts, displs)
    ]


def gatherv(
    inputs: Sequence[np.ndarray],
    counts: Sequence[int],
    displs: Sequence[int],
    root: int,
    total: int,
) -> List[np.ndarray]:
    """Root's buffer with every rank's block placed at its displacement.

    Gaps keep the receive buffer's initial contents, which the engine
    allocates zeroed — so the oracle starts from zeros too.
    """
    out = np.zeros(total, dtype=np.asarray(inputs[0]).dtype)
    for src, (c, d) in enumerate(zip(counts, displs)):
        out[d : d + c] = inputs[src]
    return [out if i == root else None for i in range(len(inputs))]


def allgatherv(
    inputs: Sequence[np.ndarray],
    counts: Sequence[int],
    displs: Sequence[int],
    total: int,
) -> List[np.ndarray]:
    out = np.zeros(total, dtype=np.asarray(inputs[0]).dtype)
    for src, (c, d) in enumerate(zip(counts, displs)):
        out[d : d + c] = inputs[src]
    return [out] * len(inputs)


# -- comparison -------------------------------------------------------------

#: relative tolerances for floating-point reassociation (real MPI libraries
#: reassociate reductions the same way; exact match holds for everything
#: non-float and for MAX/MIN)
_FLOAT_RTOL = {np.dtype(np.float32): 1e-4, np.dtype(np.float64): 1e-9}


def payloads_match(actual: np.ndarray, expected: np.ndarray) -> bool:
    """Exact for integers; tolerance-based for float dtypes."""
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if actual.shape != expected.shape or actual.dtype != expected.dtype:
        return False
    rtol = _FLOAT_RTOL.get(actual.dtype)
    if rtol is None:
        return bool(np.array_equal(actual, expected))
    return bool(np.allclose(actual, expected, rtol=rtol, atol=0.0))

"""Differential data-correctness engine for the collective stack.

``python -m repro.verify --seed S --points N`` sweeps N randomized points
over every registered collective surface with real buffers, validates the
final payloads against pure-numpy oracles, and arms the runtime semantics
oracles (``validate=True``).  A failing point prints a one-line repro
command (``--seed S --point K``) that replays it exactly.
"""

from repro.verify.cases import ENTRIES, Case, Entry, build_case
from repro.verify.engine import PointResult, repro_command, run_point

__all__ = [
    "Case",
    "Entry",
    "ENTRIES",
    "build_case",
    "PointResult",
    "repro_command",
    "run_point",
]

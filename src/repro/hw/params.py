"""Machine parameter sets for the simulated cluster.

Every scalar that enters the hardware model lives in :class:`MachineParams`.
The default preset, :func:`bebop_broadwell`, is calibrated to the paper's
testbed: dual-socket Intel Xeon E5-2695v4 (Broadwell, 36 cores) nodes with
an Intel Omni-Path (OPA) fabric — 100 Gbps, 97 M messages/s — running 18
MPI processes per node.

Calibration sources:

* OPA line rate and message rate are the paper's own numbers (§IV-A).
* Single-process injection rate / stream bandwidth are set so that Fig. 1's
  saturation knees reproduce: small-message rate scales nearly linearly to
  ~15 senders; 128 kB streams saturate the NIC with ~3 senders.
* memcpy and reduction bandwidths are typical single-thread Broadwell
  figures; node memory bandwidth is the DDR4-2400 4-channel × 2-socket
  aggregate derated for copy traffic.
* syscall / page-fault / XPMEM attach costs follow the measurements in the
  KNEM, CMA, and XPMEM literature cited by the paper (§II).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineParams", "bebop_broadwell", "tiny_test_machine"]


@dataclass(frozen=True)
class MachineParams:
    """All hardware rate/latency constants, in seconds and bytes/second."""

    # ---- internode network (per node NIC) ------------------------------
    #: one-way wire latency between any two nodes (flat fabric assumed)
    wire_latency: float
    #: NIC hardware message-rate ceiling, messages/s (shared per node)
    nic_msg_rate: float
    #: NIC bandwidth, bytes/s (shared per node, each direction)
    nic_bandwidth: float
    #: per-process message injection rate, messages/s (software/doorbell)
    proc_msg_rate: float
    #: per-process injection stream bandwidth for the eager path, bytes/s
    #: (bounded by the CPU copy into NIC bounce buffers)
    proc_bandwidth: float
    #: per-process stream bandwidth for rendezvous DMA, bytes/s (the NIC
    #: pulls the data; a single process gets close to — but, per Fig. 1b,
    #: not quite — line rate)
    proc_dma_bandwidth: float
    #: sender CPU overhead per message (software stack)
    send_overhead: float
    #: receiver CPU overhead per message (match + completion)
    recv_overhead: float
    #: eager/rendezvous protocol switch for internode messages, bytes
    eager_threshold: int

    # ---- node memory system --------------------------------------------
    #: single-core memcpy bandwidth, bytes/s
    core_copy_bw: float
    #: aggregate node copy bandwidth, bytes/s (sets concurrent copy lanes)
    node_copy_bw: float
    #: fixed cost per intranode copy operation
    copy_latency: float
    #: single-core reduction throughput, bytes/s (γ = 1/reduce_bw)
    reduce_bw: float

    # ---- kernel-assisted shmem costs ------------------------------------
    #: one syscall (process_vm_readv / KNEM ioctl / LiMiC ioctl)
    syscall_time: float
    #: cost to fault one page on first touch of a mapped/attached region
    page_fault_time: float
    page_size: int
    #: XPMEM segment expose (once per exposed buffer)
    xpmem_expose_time: float
    #: XPMEM attach, first time a process attaches a given segment
    xpmem_attach_time: float
    #: XPMEM re-use of a cached attachment
    xpmem_reattach_time: float

    # ---- PiP costs -------------------------------------------------------
    #: per-message size-synchronisation handshake in PiP p2p (the overhead
    #: §II-B says PiP-MPICH pays on every message and PiP-MColl avoids)
    pip_sizesync_time: float
    #: posting one buffer address to the node's address board
    pip_post_time: float
    #: waiting on / checking one userspace flag
    pip_flag_time: float

    # ---- fabric (optional) ------------------------------------------------
    #: aggregate core-fabric bandwidth shared by ALL internode traffic,
    #: bytes/s; ``None`` models a full-bisection (non-blocking) fabric —
    #: the paper's flat-network assumption.  Set to ``nodes_per_uplink *
    #: nic_bandwidth / oversubscription`` to study oversubscribed fat trees.
    fabric_bandwidth: float | None = None

    def derived_copy_lanes(self) -> int:
        """Number of concurrent full-speed copy lanes the node memory allows."""
        return max(1, int(self.node_copy_bw / self.core_copy_bw))

    def with_overrides(self, **kwargs) -> "MachineParams":
        """A copy of these parameters with selected fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Raise ``ValueError`` on physically meaningless settings."""
        positive = [
            "wire_latency", "nic_msg_rate", "nic_bandwidth", "proc_msg_rate",
            "proc_bandwidth", "proc_dma_bandwidth", "core_copy_bw",
            "node_copy_bw", "reduce_bw",
        ]
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        nonneg = [
            "send_overhead", "recv_overhead", "copy_latency", "syscall_time",
            "page_fault_time", "xpmem_expose_time", "xpmem_attach_time",
            "xpmem_reattach_time", "pip_sizesync_time", "pip_post_time",
            "pip_flag_time",
        ]
        for name in nonneg:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.page_size <= 0 or self.eager_threshold < 0:
            raise ValueError("page_size must be positive, eager_threshold >= 0")
        if self.proc_msg_rate > self.nic_msg_rate:
            raise ValueError("per-process message rate cannot exceed NIC rate")
        if self.proc_bandwidth > self.nic_bandwidth:
            raise ValueError("per-process bandwidth cannot exceed NIC bandwidth")
        if not (self.proc_bandwidth <= self.proc_dma_bandwidth <= self.nic_bandwidth):
            raise ValueError(
                "DMA bandwidth must sit between the eager per-process "
                "bandwidth and the NIC line rate"
            )
        if self.core_copy_bw > self.node_copy_bw:
            raise ValueError("core copy bandwidth cannot exceed node bandwidth")
        if self.fabric_bandwidth is not None and self.fabric_bandwidth <= 0:
            raise ValueError("fabric_bandwidth must be positive (or None)")


_US = 1e-6


def bebop_broadwell() -> MachineParams:
    """The paper's testbed: Bebop Broadwell nodes + Intel Omni-Path."""
    return MachineParams(
        # network — OPA: 100 Gbps, 97 M msg/s (paper §IV-A)
        wire_latency=1.0 * _US,
        nic_msg_rate=97e6,
        nic_bandwidth=12.5e9,
        proc_msg_rate=6.5e6,
        proc_bandwidth=4.5e9,
        proc_dma_bandwidth=9.0e9,
        send_overhead=0.25 * _US,
        recv_overhead=0.30 * _US,
        eager_threshold=64 * 1024,
        # memory — Broadwell single-thread memcpy / dual-socket DDR4
        core_copy_bw=5.0e9,
        node_copy_bw=60.0e9,
        copy_latency=0.05 * _US,
        reduce_bw=4.0e9,
        # kernel shmem
        syscall_time=0.50 * _US,
        page_fault_time=0.60 * _US,
        page_size=4096,
        xpmem_expose_time=1.0 * _US,
        xpmem_attach_time=1.5 * _US,
        xpmem_reattach_time=0.10 * _US,
        # PiP
        pip_sizesync_time=0.40 * _US,
        pip_post_time=0.20 * _US,
        pip_flag_time=0.10 * _US,
    )


def tiny_test_machine() -> MachineParams:
    """Round-number parameters for unit tests (easy hand arithmetic).

    1 µs wire latency, 1 GB/s everywhere per process, 10 GB/s shared,
    1 M msg/s per process, 10 M msg/s NIC, 0.1 µs fixed overheads.
    """
    return MachineParams(
        wire_latency=1.0 * _US,
        nic_msg_rate=10e6,
        nic_bandwidth=10e9,
        proc_msg_rate=1e6,
        proc_bandwidth=1e9,
        proc_dma_bandwidth=2e9,
        send_overhead=0.1 * _US,
        recv_overhead=0.1 * _US,
        eager_threshold=64 * 1024,
        core_copy_bw=1e9,
        node_copy_bw=10e9,
        copy_latency=0.1 * _US,
        reduce_bw=1e9,
        syscall_time=0.5 * _US,
        page_fault_time=0.5 * _US,
        page_size=4096,
        xpmem_expose_time=1.0 * _US,
        xpmem_attach_time=1.0 * _US,
        xpmem_reattach_time=0.1 * _US,
        pip_sizesync_time=0.4 * _US,
        pip_post_time=0.2 * _US,
        pip_flag_time=0.1 * _US,
    )

"""The simulated cluster: engine + topology + per-node hardware."""

from __future__ import annotations

from typing import List

from repro.hw.memory import MemoryModel
from repro.hw.nic import NodeNic
from repro.hw.params import MachineParams
from repro.hw.topology import Topology
from repro.sim.engine import Engine
from repro.sim.resources import Server

__all__ = ["ClusterHW"]


class ClusterHW:
    """All hardware state of a simulated cluster run.

    One instance per simulation; collective runs share the same engine so
    repeated iterations see warmed page-fault state, exactly like the
    paper's warm-up + execution microbenchmark protocol.
    """

    def __init__(self, topology: Topology, params: MachineParams, engine: Engine | None = None):
        params.validate()
        self.topology = topology
        self.params = params
        self.engine = engine if engine is not None else Engine()
        #: shared core-fabric bandwidth server (None = full bisection)
        self.fabric: Server | None = (
            Server(name="fabric") if params.fabric_bandwidth else None
        )
        self.nics: List[NodeNic] = [
            NodeNic(params, node, topology.ppn, fabric=self.fabric)
            for node in range(topology.nodes)
        ]
        self.memories: List[MemoryModel] = [
            MemoryModel(self.engine, params, node) for node in range(topology.nodes)
        ]

    def nic_of(self, rank: int) -> NodeNic:
        return self.nics[self.topology.node_of(rank)]

    def memory_of(self, rank: int) -> MemoryModel:
        return self.memories[self.topology.node_of(rank)]

    def total_internode_messages(self) -> int:
        return sum(nic.messages_sent for nic in self.nics)

    def total_internode_bytes(self) -> int:
        return sum(nic.bytes_sent for nic in self.nics)

    def reset_hardware(self) -> None:
        """Clear resource queues and accounting (keeps warm page state)."""
        for nic in self.nics:
            nic.reset()
        if self.fabric is not None:
            self.fabric.reset()

"""Per-node memory-system model.

Copies and reductions are the currency of intranode collective work.  The
node memory system is modelled as ``node_copy_bw / core_copy_bw`` concurrent
full-speed lanes fed by a FIFO queue (a standard first-order approximation
of fluid bandwidth sharing): one process copying runs at core speed; more
than ``lanes`` concurrent copies queue.

Page-fault accounting mirrors how kernel-assisted mechanisms behave: the
first time a consumer touches a foreign mapping it faults every page; later
touches of the same region are warm.  The microbenchmark protocol's warm-up
stage (§IV-A) therefore absorbs fault costs exactly like the real runs do.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Hashable, Set, Tuple

import numpy as np

from repro.hw.params import MachineParams
from repro.sim.batchline import BatchDivergence
from repro.sim.engine import Delay, Engine, ProcGen
from repro.sim.resources import MultiServer

__all__ = ["MemoryModel", "BatchMemory"]


class MemoryModel:
    """Memory system of one node."""

    def __init__(self, engine: Engine, params: MachineParams, node: int):
        self.engine = engine
        self.params = params
        self.node = node
        self.lanes = MultiServer(params.derived_copy_lanes(), name=f"mem[{node}]")
        self._warmed: Set[Hashable] = set()
        #: bytes copied / reduced (accounting for reports and tests)
        self.bytes_copied = 0
        self.bytes_reduced = 0

    # -- cost arithmetic (no simulated blocking) --------------------------

    def copy_service(self, nbytes: int) -> float:
        """Lane occupancy for copying ``nbytes`` at core speed."""
        return nbytes / self.params.core_copy_bw

    def reduce_service(self, nbytes: int) -> float:
        """Lane occupancy for reducing ``nbytes`` (read+op+write streams)."""
        return nbytes / self.params.reduce_bw

    def fault_cost(self, region: Hashable, nbytes: int) -> float:
        """Page-fault cost for touching ``region``; warm after first touch.

        ``region`` identifies (consumer, mapped buffer) — the fault happens
        in the page table of the process doing the touching.
        """
        if nbytes == 0 or region in self._warmed:
            return 0.0
        self._warmed.add(region)
        pages = -(-nbytes // self.params.page_size)
        return pages * self.params.page_fault_time

    def forget_warm_state(self) -> None:
        """Drop page-fault warm state (used between benchmark repetitions)."""
        self._warmed.clear()

    # -- occupancy closures (reserve lanes now, return the blocked time) --

    def copy_occupy(self, now: float, nbytes: int, extra_fixed: float = 0.0) -> float:
        """Reserve the lanes for one copy starting ``now``; return how long
        the calling process is blocked.

        The per-byte part contends for memory lanes; ``copy_latency`` and
        ``extra_fixed`` (syscalls, faults, handshakes) are charged to the
        process without occupying a lane.  This is the shared cost closure:
        the event engine yields the returned duration as a ``Delay``, the
        DAG fast path schedules it directly on a timeline.
        """
        blocked = self.params.copy_latency + extra_fixed
        if nbytes > 0:
            # lanes.reserve inlined (same arithmetic and accounting):
            # this runs once per simulated copy and sits on the hot path
            # of both engines
            lanes = self.lanes
            service = nbytes / self.params.core_copy_bw
            heap = lanes._free_heap
            earliest = heappop(heap)
            start = earliest if earliest > now else now
            end = start + service
            heappush(heap, end)
            lanes.busy_time += service
            lanes.served += 1
            blocked += end - now
            self.bytes_copied += nbytes
        return blocked

    def reduce_occupy(self, now: float, nbytes: int, extra_fixed: float = 0.0) -> float:
        """Reserve the lanes for one reduction; return the blocked time."""
        blocked = self.params.copy_latency + extra_fixed
        if nbytes > 0:
            lanes = self.lanes
            service = nbytes / self.params.reduce_bw
            heap = lanes._free_heap
            earliest = heappop(heap)
            start = earliest if earliest > now else now
            end = start + service
            heappush(heap, end)
            lanes.busy_time += service
            lanes.served += 1
            blocked += end - now
            self.bytes_reduced += nbytes
        return blocked

    # -- blocking operations (yield from these inside a process) ----------

    def copy(self, nbytes: int, extra_fixed: float = 0.0) -> ProcGen:
        """Block the calling process for one ``nbytes`` copy."""
        yield Delay(self.copy_occupy(self.engine.now, nbytes, extra_fixed))

    def reduce(self, nbytes: int, extra_fixed: float = 0.0) -> ProcGen:
        """Block the calling process for one ``nbytes`` reduction."""
        yield Delay(self.reduce_occupy(self.engine.now, nbytes, extra_fixed))

    def utilisation(self) -> Tuple[float, int]:
        """(total lane-busy seconds, operations served)."""
        return self.lanes.busy_time, self.lanes.served


class BatchMemory:
    """Vector-over-sizes mirror of :class:`MemoryModel`.

    Duck-typed for the mechanism closures (``engine``/``params``/
    ``copy_occupy``/``reduce_occupy``/``fault_cost``), with every time a
    ``(S,)`` array over the partition's size axis.  The ``engine`` must
    also provide ``touch_ok`` (the batch engine's shim forwards it to the
    timeline's conflict recorder): the lane pool is one resource for the
    conflict check, with zero-wait reservations recorded as commuting
    accesses.  The lane pool becomes a
    ``(lanes, S)`` matrix of next-free times: ``argmin`` over the lane axis
    is the vector form of the scalar heappop — when next-free times tie,
    the lanes are indistinguishable, so replacing *a* minimum with the new
    end time evolves the same multiset of lane times and hence the same
    start values as the scalar heap.

    Size-dependent branches (``nbytes > 0``, cold-vs-warm page faults with
    ``nbytes == 0`` short-circuits) must be uniform across the partition;
    mixed masks raise :class:`~repro.sim.batchline.BatchDivergence` so the
    batch engine can split the size axis there.
    """

    def __init__(self, engine, params: MachineParams, node: int, width: int):
        self.engine = engine
        self.params = params
        self.node = node
        self.width = width
        self._lane_free = np.zeros((params.derived_copy_lanes(), width))
        self._lane_cols = np.arange(width)
        self._warmed: Set[Hashable] = set()
        self._mm_key = ("mm", node)

    def _occupy(self, now, nbytes, extra_fixed, bw: float):
        blocked = self.params.copy_latency + extra_fixed
        if isinstance(nbytes, np.ndarray):
            pos = nbytes > 0
            if pos[0]:
                if not pos.all():
                    raise BatchDivergence(pos)
            elif not pos.any():
                return blocked
            else:
                raise BatchDivergence(pos)
        elif nbytes <= 0:
            return blocked
        lanes = self._lane_free
        service = nbytes / bw
        lane = lanes.argmin(axis=0)
        cols = self._lane_cols
        prev = lanes[lane, cols]
        start = np.maximum(prev, now)
        end = start + service
        lanes[lane, cols] = end
        # two reservations that both started without waiting commute:
        # argmin removes the same two smallest lane-free times in either
        # order, the added end times are admit+service either way, and the
        # blocked durations are wait-free — so the pool multiset and both
        # return values are order-independent (see batchline docstring)
        ok = prev <= now
        self.engine.touch_ok(self._mm_key, True if ok.all() else ok)
        return blocked + (end - now)

    def copy_occupy(self, now, nbytes, extra_fixed=0.0):
        """Vector :meth:`MemoryModel.copy_occupy` (same operand order)."""
        return self._occupy(now, nbytes, extra_fixed,
                            self.params.core_copy_bw)

    def reduce_occupy(self, now, nbytes, extra_fixed=0.0):
        """Vector :meth:`MemoryModel.reduce_occupy`."""
        return self._occupy(now, nbytes, extra_fixed, self.params.reduce_bw)

    def fault_cost(self, region: Hashable, nbytes):
        """Vector :meth:`MemoryModel.fault_cost`.

        The scalar method returns 0 for ``nbytes == 0`` *without* warming
        the region; a partition mixing zero and nonzero counts on a cold
        region would therefore diverge structurally (some sizes warm it,
        some don't) and must be split.  An already-warm region costs 0
        for every size, mixed mask or not.
        """
        if isinstance(nbytes, np.ndarray):
            zero = nbytes == 0
            if zero.all():
                return 0.0
            if region in self._warmed:
                return 0.0
            if zero.any():
                raise BatchDivergence(~zero)
            self._warmed.add(region)
            pages = -(-nbytes // self.params.page_size)
            return pages * self.params.page_fault_time
        if nbytes == 0 or region in self._warmed:
            return 0.0
        self._warmed.add(region)
        pages = -(-nbytes // self.params.page_size)
        return pages * self.params.page_fault_time

"""Per-node memory-system model.

Copies and reductions are the currency of intranode collective work.  The
node memory system is modelled as ``node_copy_bw / core_copy_bw`` concurrent
full-speed lanes fed by a FIFO queue (a standard first-order approximation
of fluid bandwidth sharing): one process copying runs at core speed; more
than ``lanes`` concurrent copies queue.

Page-fault accounting mirrors how kernel-assisted mechanisms behave: the
first time a consumer touches a foreign mapping it faults every page; later
touches of the same region are warm.  The microbenchmark protocol's warm-up
stage (§IV-A) therefore absorbs fault costs exactly like the real runs do.
"""

from __future__ import annotations

from typing import Hashable, Set, Tuple

from repro.hw.params import MachineParams
from repro.sim.engine import Delay, Engine, ProcGen
from repro.sim.resources import MultiServer

__all__ = ["MemoryModel"]


class MemoryModel:
    """Memory system of one node."""

    def __init__(self, engine: Engine, params: MachineParams, node: int):
        self.engine = engine
        self.params = params
        self.node = node
        self.lanes = MultiServer(params.derived_copy_lanes(), name=f"mem[{node}]")
        self._warmed: Set[Hashable] = set()
        #: bytes copied / reduced (accounting for reports and tests)
        self.bytes_copied = 0
        self.bytes_reduced = 0

    # -- cost arithmetic (no simulated blocking) --------------------------

    def copy_service(self, nbytes: int) -> float:
        """Lane occupancy for copying ``nbytes`` at core speed."""
        return nbytes / self.params.core_copy_bw

    def reduce_service(self, nbytes: int) -> float:
        """Lane occupancy for reducing ``nbytes`` (read+op+write streams)."""
        return nbytes / self.params.reduce_bw

    def fault_cost(self, region: Hashable, nbytes: int) -> float:
        """Page-fault cost for touching ``region``; warm after first touch.

        ``region`` identifies (consumer, mapped buffer) — the fault happens
        in the page table of the process doing the touching.
        """
        if nbytes == 0 or region in self._warmed:
            return 0.0
        self._warmed.add(region)
        pages = -(-nbytes // self.params.page_size)
        return pages * self.params.page_fault_time

    def forget_warm_state(self) -> None:
        """Drop page-fault warm state (used between benchmark repetitions)."""
        self._warmed.clear()

    # -- blocking operations (yield from these inside a process) ----------

    def copy(self, nbytes: int, extra_fixed: float = 0.0) -> ProcGen:
        """Block the calling process for one ``nbytes`` copy.

        The per-byte part contends for memory lanes; ``copy_latency`` and
        ``extra_fixed`` (syscalls, faults, handshakes) are charged to the
        process without occupying a lane.
        """
        now = self.engine.now
        blocked = self.params.copy_latency + extra_fixed
        if nbytes > 0:
            _, end = self.lanes.reserve(now, self.copy_service(nbytes))
            blocked += end - now
            self.bytes_copied += nbytes
        yield Delay(blocked)

    def reduce(self, nbytes: int, extra_fixed: float = 0.0) -> ProcGen:
        """Block the calling process for one ``nbytes`` reduction."""
        now = self.engine.now
        blocked = self.params.copy_latency + extra_fixed
        if nbytes > 0:
            _, end = self.lanes.reserve(now, self.reduce_service(nbytes))
            blocked += end - now
            self.bytes_reduced += nbytes
        yield Delay(blocked)

    def utilisation(self) -> Tuple[float, int]:
        """(total lane-busy seconds, operations served)."""
        return self.lanes.busy_time, self.lanes.served

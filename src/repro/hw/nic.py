"""Per-node NIC model (LogGP-flavoured, with hardware rate ceilings).

An internode message passes through, in order:

1. the *sender process's injection pipeline* — a FIFO server per local
   process with per-message service ``max(1/proc_msg_rate,
   nbytes/proc_bandwidth)``.  This is the resource a **single** process
   saturates, and the reason multi-object designs win (Fig. 1);
2. the *node NIC transmit side* — a message-rate limiter (97 M msg/s for
   OPA) in series with a bandwidth server (``nbytes/nic_bandwidth``), both
   shared by every process on the node;
3. the *wire* — constant one-way latency;
4. the *destination NIC receive side* — rate limiter + bandwidth server,
   pipelined with the transmit side (the receive reservation starts when
   the head of the message arrives, so an uncontended transfer costs
   ``nbytes/B + L``, not ``2·nbytes/B + L``, while incast still queues).

All reservations are eager (see :mod:`repro.sim.resources`); the function
returns the two times the MPI layer needs: when the sender's injection
completed (local completion for nonblocking sends) and when the full message
is available at the destination.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.hw.params import MachineParams
from repro.sim.resources import RateLimiter, Server

__all__ = ["NodeNic", "BatchNic", "BatchFabric"]


class NodeNic:
    """NIC state for one node."""

    def __init__(self, params: MachineParams, node: int, ppn: int,
                 fabric: "Server | None" = None):
        self.params = params
        self.node = node
        #: shared core-fabric bandwidth server (None = full bisection)
        self.fabric = fabric
        self.inject: List[Server] = [
            Server(name=f"inject[{node}.{lr}]") for lr in range(ppn)
        ]
        self.tx_rate = RateLimiter(params.nic_msg_rate, name=f"txrate[{node}]")
        self.rx_rate = RateLimiter(params.nic_msg_rate, name=f"rxrate[{node}]")
        self.tx_bw = Server(name=f"txbw[{node}]")
        self.rx_bw = Server(name=f"rxbw[{node}]")
        #: messages / bytes sent (accounting)
        self.messages_sent = 0
        self.bytes_sent = 0

    def inject_service(self, nbytes: int, dma: bool = False) -> float:
        """Injection-pipeline occupancy for one message.

        Eager messages are copied by the CPU into bounce buffers
        (``proc_bandwidth``); rendezvous data is DMA-pulled by the NIC
        (``proc_dma_bandwidth``) and only costs the process its doorbell.
        """
        p = self.params
        bw = p.proc_dma_bandwidth if dma else p.proc_bandwidth
        return max(1.0 / p.proc_msg_rate, nbytes / bw)

    def wire_service(self, nbytes: int) -> float:
        """NIC bandwidth-server occupancy for one message."""
        return nbytes / self.params.nic_bandwidth

    def transfer(
        self, now: float, src_local: int, dst: "NodeNic", nbytes: int,
        dma: bool = False,
    ) -> Tuple[float, float]:
        """Reserve the full path for one message.

        Returns ``(inject_done, arrival)``: when the sending process's
        injection pipeline frees (local send completion) and when the last
        byte is available at ``dst``.
        """
        p = self.params
        self.messages_sent += 1
        self.bytes_sent += nbytes

        # All three stages are cut-through pipelined: a downstream stage
        # starts when the *head* of the message clears the upstream stage,
        # and a message cannot finish a stage before it finishes the
        # previous one.  An uncontended transfer therefore costs
        # ``nbytes / min(stage bandwidths) + wire latency``, while each
        # stage still serialises competing messages FIFO.
        #
        # The Server/RateLimiter reservations are inlined here (same
        # arithmetic, same accounting fields): this function runs once per
        # simulated message and the method-call overhead of five reserve/
        # admit calls dominated its cost.
        # 1. per-process injection
        inj = self.inject[src_local]
        service = nbytes / (p.proc_dma_bandwidth if dma else p.proc_bandwidth)
        rate_floor = 1.0 / p.proc_msg_rate
        if service < rate_floor:
            service = rate_floor
        inj_start = inj._next_free
        if now > inj_start:
            inj_start = now
        inj_done = inj_start + service
        inj._next_free = inj_done
        inj.busy_time += service
        inj.served += 1
        # 2. node transmit side: rate ceiling then bandwidth
        tx_rate = self.tx_rate
        tx_admit = tx_rate._next_slot
        if inj_start > tx_admit:
            tx_admit = inj_start
        tx_rate._next_slot = tx_admit + tx_rate._interval
        tx_rate.admitted += 1
        wire_service = nbytes / p.nic_bandwidth
        tx_bw = self.tx_bw
        tx_start = tx_bw._next_free
        if tx_admit > tx_start:
            tx_start = tx_admit
        tx_end = tx_start + wire_service
        tx_bw._next_free = tx_end
        tx_bw.busy_time += wire_service
        tx_bw.served += 1
        if inj_done > tx_end:
            tx_end = inj_done
        # 2b. oversubscribed core fabric (optional), pipelined like the rest
        if self.fabric is not None:
            fab_start, fab_end = self.fabric.reserve(
                tx_start, nbytes / p.fabric_bandwidth
            )
            fab_end = max(fab_end, tx_end)
            head_start, tail_end = fab_start, fab_end
        else:
            head_start, tail_end = tx_start, tx_end
        # 3+4. wire + receive side
        head_arrival = head_start + p.wire_latency
        rx_rate = dst.rx_rate
        rx_admit = rx_rate._next_slot
        if head_arrival > rx_admit:
            rx_admit = head_arrival
        rx_rate._next_slot = rx_admit + rx_rate._interval
        rx_rate.admitted += 1
        rx_service = nbytes / dst.params.nic_bandwidth
        rx_bw = dst.rx_bw
        rx_start = rx_bw._next_free
        if rx_admit > rx_start:
            rx_start = rx_admit
        rx_end = rx_start + rx_service
        rx_bw._next_free = rx_end
        rx_bw.busy_time += rx_service
        rx_bw.served += 1
        arrival = tail_end + p.wire_latency
        if rx_end > arrival:
            arrival = rx_end
        return inj_done, arrival

    def reset(self) -> None:
        for s in self.inject:
            s.reset()
        self.tx_rate.reset()
        self.rx_rate.reset()
        self.tx_bw.reset()
        self.rx_bw.reset()
        self.messages_sent = 0
        self.bytes_sent = 0


#: conflict-resource key of the shared core fabric (one per world)
_FB_KEY = ("fb",)


class BatchFabric:
    """Shared core-fabric bandwidth server over the size axis.

    The vector counterpart of the fabric :class:`~repro.sim.resources.Server`
    one node hands every :class:`BatchNic`: a single FIFO next-free vector.
    """

    __slots__ = ("_next_free",)

    def __init__(self, width: int):
        self._next_free = np.zeros(width)


class BatchNic:
    """Vector-over-sizes mirror of :class:`NodeNic` for the batch engine.

    Every scalar ``_next_free`` / ``_next_slot`` field of the inlined
    reservation pipeline in :meth:`NodeNic.transfer` becomes an ``(S,)``
    array over the partition's size axis; :meth:`transfer` replicates that
    method's arithmetic operation for operation (same operand order, same
    ``max`` placements) so each size's component is bit-identical to the
    scalar computation.  ``np.maximum`` stands in for the scalar
    compare-and-assign idiom — identical values for identical operands.

    There is no size-dependent branch here, so no uniformity check: byte
    counts may arrive as an int (uniform across the partition) or as an
    ``(S,)`` integer vector and flow straight through the arithmetic.
    Utilisation accounting (busy_time/served) is not maintained — the
    batch engine reports samples and message counts only.

    Each stage of the reservation pipeline is a resource for the
    timeline's conflict check (``tl.touch``): the per-process injection
    lane, the node transmit side (rate + bandwidth, always accessed
    together), the shared fabric, and the destination receive side.
    """

    __slots__ = (
        "params", "node", "tl", "fabric", "_inject_free", "_interval",
        "_tx_rate_next", "_rx_rate_next", "_tx_bw_next", "_rx_bw_next",
        "messages_sent", "_ni_keys", "_tx_key", "_rx_key",
    )

    def __init__(self, params: MachineParams, node: int, ppn: int,
                 width: int, tl, fabric: "BatchFabric | None" = None):
        self.params = params
        self.node = node
        self.tl = tl
        self.fabric = fabric
        self._inject_free = [np.zeros(width) for _ in range(ppn)]
        self._interval = 1.0 / params.nic_msg_rate
        self._tx_rate_next = np.zeros(width)
        self._rx_rate_next = np.zeros(width)
        self._tx_bw_next = np.zeros(width)
        self._rx_bw_next = np.zeros(width)
        self.messages_sent = 0
        # conflict-resource keys, interned once (transfer is the hot path)
        self._ni_keys = tuple(("ni", node, lr) for lr in range(ppn))
        self._tx_key = ("tx", node)
        self._rx_key = ("rx", node)

    def transfer(self, now: np.ndarray, src_local: int, dst: "BatchNic",
                 nbytes, dma: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Reserve the full path for one message, vectorized over sizes.

        Returns ``(inject_done, arrival)`` as ``(S,)`` arrays.  Fresh
        arrays are built at every step — state vectors are replaced, never
        mutated in place — so previously returned times stay valid.
        """
        p = self.params
        self.messages_sent += 1
        touch = self.tl.touch
        touch(self._ni_keys[src_local])
        touch(self._tx_key)
        touch(dst._rx_key)
        if self.fabric is not None:
            touch(_FB_KEY)
        # 1. per-process injection
        service = nbytes / (p.proc_dma_bandwidth if dma else p.proc_bandwidth)
        service = np.maximum(service, 1.0 / p.proc_msg_rate)
        inj_start = np.maximum(now, self._inject_free[src_local])
        inj_done = inj_start + service
        self._inject_free[src_local] = inj_done
        # 2. node transmit side: rate ceiling then bandwidth
        tx_admit = np.maximum(self._tx_rate_next, inj_start)
        self._tx_rate_next = tx_admit + self._interval
        wire_service = nbytes / p.nic_bandwidth
        tx_start = np.maximum(self._tx_bw_next, tx_admit)
        tx_end = tx_start + wire_service
        # the scalar path stores the pre-pipelining end before maxing with
        # inj_done; replicate that exactly
        self._tx_bw_next = tx_end
        tx_end = np.maximum(tx_end, inj_done)
        # 2b. oversubscribed core fabric (optional)
        if self.fabric is not None:
            fabric = self.fabric
            fab_start = np.maximum(tx_start, fabric._next_free)
            fab_end = fab_start + nbytes / p.fabric_bandwidth
            fabric._next_free = fab_end
            fab_end = np.maximum(fab_end, tx_end)
            head_start, tail_end = fab_start, fab_end
        else:
            head_start, tail_end = tx_start, tx_end
        # 3+4. wire + receive side
        head_arrival = head_start + p.wire_latency
        rx_admit = np.maximum(dst._rx_rate_next, head_arrival)
        dst._rx_rate_next = rx_admit + dst._interval
        rx_service = nbytes / dst.params.nic_bandwidth
        rx_start = np.maximum(dst._rx_bw_next, rx_admit)
        rx_end = rx_start + rx_service
        dst._rx_bw_next = rx_end
        arrival = tail_end + p.wire_latency
        arrival = np.maximum(arrival, rx_end)
        return inj_done, arrival

"""Per-node NIC model (LogGP-flavoured, with hardware rate ceilings).

An internode message passes through, in order:

1. the *sender process's injection pipeline* — a FIFO server per local
   process with per-message service ``max(1/proc_msg_rate,
   nbytes/proc_bandwidth)``.  This is the resource a **single** process
   saturates, and the reason multi-object designs win (Fig. 1);
2. the *node NIC transmit side* — a message-rate limiter (97 M msg/s for
   OPA) in series with a bandwidth server (``nbytes/nic_bandwidth``), both
   shared by every process on the node;
3. the *wire* — constant one-way latency;
4. the *destination NIC receive side* — rate limiter + bandwidth server,
   pipelined with the transmit side (the receive reservation starts when
   the head of the message arrives, so an uncontended transfer costs
   ``nbytes/B + L``, not ``2·nbytes/B + L``, while incast still queues).

All reservations are eager (see :mod:`repro.sim.resources`); the function
returns the two times the MPI layer needs: when the sender's injection
completed (local completion for nonblocking sends) and when the full message
is available at the destination.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hw.params import MachineParams
from repro.sim.resources import RateLimiter, Server

__all__ = ["NodeNic"]


class NodeNic:
    """NIC state for one node."""

    def __init__(self, params: MachineParams, node: int, ppn: int,
                 fabric: "Server | None" = None):
        self.params = params
        self.node = node
        #: shared core-fabric bandwidth server (None = full bisection)
        self.fabric = fabric
        self.inject: List[Server] = [
            Server(name=f"inject[{node}.{lr}]") for lr in range(ppn)
        ]
        self.tx_rate = RateLimiter(params.nic_msg_rate, name=f"txrate[{node}]")
        self.rx_rate = RateLimiter(params.nic_msg_rate, name=f"rxrate[{node}]")
        self.tx_bw = Server(name=f"txbw[{node}]")
        self.rx_bw = Server(name=f"rxbw[{node}]")
        #: messages / bytes sent (accounting)
        self.messages_sent = 0
        self.bytes_sent = 0

    def inject_service(self, nbytes: int, dma: bool = False) -> float:
        """Injection-pipeline occupancy for one message.

        Eager messages are copied by the CPU into bounce buffers
        (``proc_bandwidth``); rendezvous data is DMA-pulled by the NIC
        (``proc_dma_bandwidth``) and only costs the process its doorbell.
        """
        p = self.params
        bw = p.proc_dma_bandwidth if dma else p.proc_bandwidth
        return max(1.0 / p.proc_msg_rate, nbytes / bw)

    def wire_service(self, nbytes: int) -> float:
        """NIC bandwidth-server occupancy for one message."""
        return nbytes / self.params.nic_bandwidth

    def transfer(
        self, now: float, src_local: int, dst: "NodeNic", nbytes: int,
        dma: bool = False,
    ) -> Tuple[float, float]:
        """Reserve the full path for one message.

        Returns ``(inject_done, arrival)``: when the sending process's
        injection pipeline frees (local send completion) and when the last
        byte is available at ``dst``.
        """
        p = self.params
        self.messages_sent += 1
        self.bytes_sent += nbytes

        # All three stages are cut-through pipelined: a downstream stage
        # starts when the *head* of the message clears the upstream stage,
        # and a message cannot finish a stage before it finishes the
        # previous one.  An uncontended transfer therefore costs
        # ``nbytes / min(stage bandwidths) + wire latency``, while each
        # stage still serialises competing messages FIFO.
        #
        # The Server/RateLimiter reservations are inlined here (same
        # arithmetic, same accounting fields): this function runs once per
        # simulated message and the method-call overhead of five reserve/
        # admit calls dominated its cost.
        # 1. per-process injection
        inj = self.inject[src_local]
        service = nbytes / (p.proc_dma_bandwidth if dma else p.proc_bandwidth)
        rate_floor = 1.0 / p.proc_msg_rate
        if service < rate_floor:
            service = rate_floor
        inj_start = inj._next_free
        if now > inj_start:
            inj_start = now
        inj_done = inj_start + service
        inj._next_free = inj_done
        inj.busy_time += service
        inj.served += 1
        # 2. node transmit side: rate ceiling then bandwidth
        tx_rate = self.tx_rate
        tx_admit = tx_rate._next_slot
        if inj_start > tx_admit:
            tx_admit = inj_start
        tx_rate._next_slot = tx_admit + tx_rate._interval
        tx_rate.admitted += 1
        wire_service = nbytes / p.nic_bandwidth
        tx_bw = self.tx_bw
        tx_start = tx_bw._next_free
        if tx_admit > tx_start:
            tx_start = tx_admit
        tx_end = tx_start + wire_service
        tx_bw._next_free = tx_end
        tx_bw.busy_time += wire_service
        tx_bw.served += 1
        if inj_done > tx_end:
            tx_end = inj_done
        # 2b. oversubscribed core fabric (optional), pipelined like the rest
        if self.fabric is not None:
            fab_start, fab_end = self.fabric.reserve(
                tx_start, nbytes / p.fabric_bandwidth
            )
            fab_end = max(fab_end, tx_end)
            head_start, tail_end = fab_start, fab_end
        else:
            head_start, tail_end = tx_start, tx_end
        # 3+4. wire + receive side
        head_arrival = head_start + p.wire_latency
        rx_rate = dst.rx_rate
        rx_admit = rx_rate._next_slot
        if head_arrival > rx_admit:
            rx_admit = head_arrival
        rx_rate._next_slot = rx_admit + rx_rate._interval
        rx_rate.admitted += 1
        rx_service = nbytes / dst.params.nic_bandwidth
        rx_bw = dst.rx_bw
        rx_start = rx_bw._next_free
        if rx_admit > rx_start:
            rx_start = rx_admit
        rx_end = rx_start + rx_service
        rx_bw._next_free = rx_end
        rx_bw.busy_time += rx_service
        rx_bw.served += 1
        arrival = tail_end + p.wire_latency
        if rx_end > arrival:
            arrival = rx_end
        return inj_done, arrival

    def reset(self) -> None:
        for s in self.inject:
            s.reset()
        self.tx_rate.reset()
        self.rx_rate.reset()
        self.tx_bw.reset()
        self.rx_bw.reset()
        self.messages_sent = 0
        self.bytes_sent = 0

"""Hardware models: machine parameters, topology, NIC, and memory system."""

from repro.hw.cluster import ClusterHW
from repro.hw.memory import MemoryModel
from repro.hw.nic import NodeNic
from repro.hw.params import MachineParams, bebop_broadwell, tiny_test_machine
from repro.hw.topology import Topology

__all__ = [
    "ClusterHW",
    "MemoryModel",
    "NodeNic",
    "MachineParams",
    "bebop_broadwell",
    "tiny_test_machine",
    "Topology",
]

"""Cluster topology: nodes × processes-per-node, rank mapping.

The paper launches ranks block-mapped: global rank = node_id * ppn +
local_rank.  All algorithms in this repository assume that mapping (it is
what makes the "paired process rank is ``N_src * P + R_l``" arithmetic in
§III work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """A flat cluster of ``nodes`` nodes with ``ppn`` processes each."""

    nodes: int
    ppn: int

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if self.ppn < 1:
            raise ValueError(f"need at least one process per node, got {self.ppn}")

    @property
    def world_size(self) -> int:
        return self.nodes * self.ppn

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.ppn

    def local_rank_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.ppn

    def rank_of(self, node: int, local_rank: int) -> int:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        if not 0 <= local_rank < self.ppn:
            raise ValueError(f"local rank {local_rank} out of range [0, {self.ppn})")
        return node * self.ppn + local_rank

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def node_ranks(self, node: int) -> range:
        """Global ranks living on ``node`` (contiguous by block mapping)."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        return range(node * self.ppn, (node + 1) * self.ppn)

    def ranks(self) -> Iterator[int]:
        return iter(range(self.world_size))

    def locate(self, rank: int) -> Tuple[int, int]:
        """``(node, local_rank)`` of a global rank."""
        self._check_rank(rank)
        return divmod(rank, self.ppn)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range [0, {self.world_size})"
            )

    def __str__(self) -> str:
        return f"{self.nodes}x{self.ppn}"

"""Daemon behaviour through a real socket: bit-identity, coalescing,
timeouts, backpressure, shutdown flush.

Every test runs a real :class:`SweepDaemon` on a unix socket in a
background thread and talks to it with the blocking
:class:`SweepClient` — the full wire path, not method calls.  ``jobs=0``
keeps evaluation in-process (worker threads), so tests can wrap
``daemon._run_in_pool`` to inject latency without touching the engines.
"""

import asyncio
import threading
import time

import pytest

from repro.bench.runner import Point, ResultCache, SweepRunner
from repro.serve import ServeError, SweepClient, SweepDaemon, wait_until_ready

AXIS = (64, 1024, 16384)


def column(sizes=AXIS, collective="allgather", engine="batch"):
    return [
        Point("PiP-MColl", collective, 2, 4, s, engine=engine)
        for s in sizes
    ]


def reference(points):
    """What the daemon must reproduce bit-identically."""
    return SweepRunner(jobs=1, use_cache=False).run(points)


class DaemonThread:
    """A daemon serving on a unix socket from a background thread."""

    def __init__(self, tmp_path, *, delay=0.0, **kwargs):
        self.sock = str(tmp_path / "daemon.sock")
        kwargs.setdefault("cache", ResultCache(tmp_path / "serve_cache"))
        kwargs.setdefault("jobs", 0)
        kwargs.setdefault("grace", 5.0)
        self.daemon = SweepDaemon(self.sock, **kwargs)
        if delay:
            inner = self.daemon._run_in_pool

            async def slow(fn, arg):
                await asyncio.sleep(delay)
                return await inner(fn, arg)

            self.daemon._run_in_pool = slow
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        wait_until_ready(self.sock)
        return self

    def __exit__(self, *exc):
        if self.thread.is_alive():
            try:
                with SweepClient(self.sock) as client:
                    client.shutdown()
            except (OSError, ServeError):
                pass
            self.thread.join(timeout=10)
        assert not self.thread.is_alive(), "daemon failed to drain and exit"

    def client(self):
        return SweepClient(self.sock)


# -- the contract: bit-identical to SweepRunner.run ------------------------


def test_sweep_bit_identical_to_runner_across_engines(tmp_path):
    # a batch column, auto points (upgraded to the column route on both
    # fronts), and a scalar event point — the full routing surface
    points = (
        column(engine="batch")
        + [Point("PiP-MColl", "allreduce", 2, 4, s, engine="auto")
           for s in (512, 8192)]
        + [Point("OpenMPI", "allgather", 2, 2, 1024, engine="event")]
    )
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            got = client.sweep(points)
    assert got == reference(points)


def test_warm_repeat_is_pure_cache_hits(tmp_path):
    points = column()
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            first = client.sweep(points)
            again = client.sweep(points)
            stats = client.stats()["daemon"]
    assert first == again == reference(points)
    assert stats["evaluations"] == 1
    assert stats["hits"] == len(points)
    assert stats["misses"] == len(points)


def test_results_come_back_in_request_order(tmp_path):
    points = list(reversed(column())) + column((4096,))
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            got = client.sweep(points)
    assert [(r.msg_bytes) for r in got] == [p.msg_bytes for p in points]
    assert got == reference(points)


# -- coalescing ------------------------------------------------------------


def _sweep_in_thread(sock, points, out, idx, delay=0.0):
    def run():
        if delay:
            time.sleep(delay)
        with SweepClient(sock) as client:
            out[idx] = client.sweep(points)

    thread = threading.Thread(target=run)
    thread.start()
    return thread


def test_identical_concurrent_requests_coalesce_to_one_evaluation(tmp_path):
    points = column()
    out = {}
    with DaemonThread(tmp_path, delay=0.6) as harness:
        a = _sweep_in_thread(harness.sock, points, out, "a")
        b = _sweep_in_thread(harness.sock, points, out, "b", delay=0.2)
        a.join(timeout=30)
        b.join(timeout=30)
        with harness.client() as client:
            stats = client.stats()["daemon"]
    assert out["a"] == out["b"] == reference(points)
    assert stats["evaluations"] == 1   # one in-flight unit served both
    assert stats["coalesced"] == 1     # the second request awaited it


def test_overlapping_requests_coalesce_then_fill_the_remainder(tmp_path):
    shared = (1024, 16384)
    a_points = column((64,) + shared)
    b_points = column(shared + (262144,))
    out = {}
    with DaemonThread(tmp_path, delay=0.5) as harness:
        a = _sweep_in_thread(harness.sock, a_points, out, "a")
        b = _sweep_in_thread(harness.sock, b_points, out, "b", delay=0.2)
        a.join(timeout=30)
        b.join(timeout=30)
        with harness.client() as client:
            stats = client.stats()["daemon"]
    assert out["a"] == reference(a_points)
    assert out["b"] == reference(b_points)
    # B awaited A's evaluation for the shared sizes, then evaluated only
    # its own remainder — two evaluations total, not three
    assert stats["evaluations"] == 2
    assert stats["coalesced"] == 1


def test_scalar_point_misses_coalesce_too(tmp_path):
    point = [Point("OpenMPI", "allgather", 2, 2, 512, engine="event")]
    out = {}
    with DaemonThread(tmp_path, delay=0.5) as harness:
        a = _sweep_in_thread(harness.sock, point, out, "a")
        b = _sweep_in_thread(harness.sock, point, out, "b", delay=0.2)
        a.join(timeout=30)
        b.join(timeout=30)
        with harness.client() as client:
            stats = client.stats()["daemon"]
    assert out["a"] == out["b"] == reference(point)
    assert stats["evaluations"] == 1
    assert stats["coalesced"] == 1


# -- timeouts and cancellation ---------------------------------------------


def test_request_timeout_cancels_request_but_evaluation_completes(tmp_path):
    points = column()
    with DaemonThread(tmp_path, delay=0.8) as harness:
        with harness.client() as client:
            with pytest.raises(ServeError) as err:
                client.sweep(points, timeout=0.15)
            assert err.value.code == "timeout"
            assert client.stats()["daemon"]["timeouts"] == 1
            # the shielded evaluation ran to completion and landed in the
            # cache: the retry is a pure hit, no second evaluation
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    got = client.sweep(points, timeout=0.15)
                    break
                except ServeError as exc:
                    assert exc.code == "timeout"
                    time.sleep(0.05)
            stats = client.stats()["daemon"]
    assert got == reference(points)
    assert stats["evaluations"] == 1


def test_daemon_default_timeout_applies_when_request_has_none(tmp_path):
    with DaemonThread(tmp_path, delay=0.8,
                      default_timeout=0.15) as harness:
        with harness.client() as client:
            with pytest.raises(ServeError) as err:
                client.sweep(column())
            assert err.value.code == "timeout"


# -- backpressure ----------------------------------------------------------


def test_admission_gate_rejects_with_overloaded(tmp_path):
    first = column()
    second = column(collective="allreduce")
    out = {}
    with DaemonThread(tmp_path, delay=0.6, max_pending=1) as harness:
        a = _sweep_in_thread(harness.sock, first, out, "a")
        time.sleep(0.2)  # a is mid-evaluation and holds the only slot
        with harness.client() as client:
            with pytest.raises(ServeError) as err:
                client.sweep(second)
            assert err.value.code == "overloaded"
            a.join(timeout=30)
            # the slot freed: the retry is admitted and succeeds
            got = client.sweep(second)
            stats = client.stats()["daemon"]
    assert out["a"] == reference(first)
    assert got == reference(second)
    assert stats["rejected"] == 1


# -- shutdown --------------------------------------------------------------


def test_shutdown_flushes_buffered_shards(tmp_path):
    # a huge threshold and interval: nothing flushes until shutdown does
    cache = ResultCache(tmp_path / "serve_cache", flush_threshold=10**6)
    points = column()
    with DaemonThread(tmp_path, cache=cache,
                      flush_interval=3600.0) as harness:
        with harness.client() as client:
            got = client.sweep(points)
        # rows are buffered in daemon memory only — nothing on disk yet
        probe = ResultCache(tmp_path / "serve_cache")
        assert probe.store.shard_count() == 0
    # __exit__ sent shutdown and joined: the drain flushed the buffer
    fresh = ResultCache(tmp_path / "serve_cache")
    assert fresh.get_many(points) == got == reference(points)
    assert fresh.store.shard_count() > 0


def test_flush_op_publishes_pending_rows_on_demand(tmp_path):
    cache = ResultCache(tmp_path / "serve_cache", flush_threshold=10**6)
    points = column()
    with DaemonThread(tmp_path, cache=cache,
                      flush_interval=3600.0) as harness:
        with harness.client() as client:
            got = client.sweep(points)
            assert client.flush() == len(points)
        fresh = ResultCache(tmp_path / "serve_cache")
        assert fresh.get_many(points) == got


# -- protocol errors over the wire -----------------------------------------


def test_unknown_op_and_bad_sweeps_answer_with_errors(tmp_path):
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            with pytest.raises(ServeError) as err:
                client.request({"op": "frobnicate"})
            assert err.value.code == "bad-request"
            with pytest.raises(ServeError) as err:
                client.request({"op": "sweep", "points": []})
            assert err.value.code == "bad-request"
            with pytest.raises(ServeError) as err:
                client.request({"op": "sweep",
                                "points": [{"library": "only"}]})
            assert err.value.code == "bad-request"
            # the connection survives error responses
            assert client.ping()["version"] >= 1


def test_evaluation_failure_reports_internal_not_a_hang(tmp_path):
    bad = [Point("PiP-MColl", "allgather", 2, 4, 512,
                 measure=0, engine="event")]
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            with pytest.raises(ServeError) as err:
                client.sweep(bad)
            assert err.value.code == "internal"
            assert "measured iteration" in err.value.message
            assert client.ping()["pid"] > 0  # daemon is still healthy


def test_request_id_is_echoed(tmp_path):
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            response = client.request({"op": "ping", "id": "req-42"})
    assert response["id"] == "req-42"


def test_stats_document_shape(tmp_path):
    with DaemonThread(tmp_path) as harness:
        with harness.client() as client:
            client.sweep(column((64,), engine="event"))
            doc = client.stats()
    for section in ("daemon", "cache", "lowering"):
        assert section in doc
    daemon = doc["daemon"]
    for key in ("requests", "sweeps", "points", "hits", "misses",
                "coalesced", "evaluations", "timeouts", "rejected",
                "inflight", "active", "uptime_s", "jobs", "pid"):
        assert key in daemon
    assert daemon["inflight"] == 0 and daemon["active"] == 0

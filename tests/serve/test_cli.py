"""The two command lines: a real ``python -m repro.serve`` subprocess
(process-pool evaluation path) and the ``repro.serve.client`` CLI."""

import os
import subprocess
import sys
import threading
import asyncio

import pytest

from repro.bench.runner import Point, ResultCache, SweepRunner
from repro.serve import SweepClient, SweepDaemon, wait_until_ready
from repro.serve.client import main as client_main


@pytest.fixture
def daemon_subprocess(tmp_path):
    """A real daemon process on a unix socket, with forked pool workers."""
    sock = str(tmp_path / "daemon.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else "src"
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--listen", sock, "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        wait_until_ready(sock, deadline=30.0)
        yield sock
    finally:
        if proc.poll() is None:
            try:
                with SweepClient(sock) as client:
                    client.shutdown()
            except Exception:
                proc.kill()
            proc.wait(timeout=30)


def test_subprocess_daemon_serves_bit_identical_results(
    daemon_subprocess, tmp_path
):
    points = [
        Point("PiP-MColl", "allgather", 2, 4, s, engine="auto")
        for s in (512, 4096)
    ]
    with SweepClient(daemon_subprocess) as client:
        got = client.sweep(points)
        stats = client.stats()["daemon"]
    assert got == SweepRunner(jobs=1, use_cache=False).run(points)
    assert stats["evaluations"] >= 1
    # shutdown (in the fixture finally) flushes the daemon's buffer
    # and the subprocess exits cleanly


def test_client_cli_sweep_stats_ping(daemon_subprocess, capsys):
    rc = client_main([
        "--connect", daemon_subprocess,
        "--library", "PiP-MColl", "--collective", "allgather",
        "--nodes", "2", "--ppn", "4", "--sizes", "512,4096",
        "--engine", "auto",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("PiP-MColl") == 2 and "512B" in out.replace(" ", "")

    assert client_main(["--connect", daemon_subprocess, "--ping"]) == 0
    assert "ok: daemon pid" in capsys.readouterr().out

    assert client_main(["--connect", daemon_subprocess, "--stats"]) == 0
    assert "2 points" in capsys.readouterr().out


def test_client_cli_unreachable_daemon_fails_cleanly(tmp_path, capsys):
    rc = client_main([
        "--connect", str(tmp_path / "nobody-home.sock"), "--ping",
    ])
    assert rc == 1
    assert "cannot reach daemon" in capsys.readouterr().err


def test_client_cli_shutdown_stops_an_in_process_daemon(tmp_path, capsys):
    sock = str(tmp_path / "daemon.sock")
    daemon = SweepDaemon(sock, cache=ResultCache(tmp_path / "cache"), jobs=0)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve()), daemon=True
    )
    thread.start()
    wait_until_ready(sock)
    assert client_main(["--connect", sock, "--shutdown"]) == 0
    thread.join(timeout=10)
    assert not thread.is_alive()

"""Wire-protocol unit tests: addresses, point specs, framing, errors."""

import json

import pytest

from repro.bench.microbench import MicrobenchResult
from repro.bench.runner.points import Point
from repro.core.tuning import Thresholds
from repro.hw.params import tiny_test_machine
from repro.serve.protocol import (
    MAX_LINE,
    ServeError,
    decode_message,
    encode_message,
    parse_address,
    point_from_doc,
    point_to_doc,
    result_from_doc,
    result_to_doc,
)


def test_parse_address_forms():
    assert parse_address("127.0.0.1:8641") == ("tcp", "127.0.0.1", 8641)
    assert parse_address("localhost:0") == ("tcp", "localhost", 0)
    assert parse_address("8641") == ("tcp", "127.0.0.1", 8641)
    assert parse_address("/tmp/repro.sock") == ("unix", "/tmp/repro.sock")
    assert parse_address("relative.sock") == ("unix", "relative.sock")
    # a path containing a colon is still a path
    assert parse_address("/tmp/odd:name/d.sock") == \
        ("unix", "/tmp/odd:name/d.sock")
    with pytest.raises(ValueError):
        parse_address("   ")


def test_point_round_trips_including_params_and_thresholds():
    points = [
        Point("PiP-MColl", "allgather", 2, 4, 512, engine="auto"),
        Point("PiP-MColl", "allreduce", 4, 8, 65536, warmup=2, measure=3,
              params=tiny_test_machine(), engine="batch"),
        Point("PiP-MColl", "allgather", 2, 2, 1024,
              thresholds=Thresholds.always_small(), engine="event"),
    ]
    for point in points:
        doc = json.loads(json.dumps(point_to_doc(point)))
        assert point_from_doc(doc) == point


def test_malformed_point_spec_raises_bad_request():
    with pytest.raises(ServeError) as err:
        point_from_doc({"library": "PiP-MColl"})
    assert err.value.code == "bad-request"
    with pytest.raises(ServeError) as err:
        point_from_doc("not an object")
    assert err.value.code == "bad-request"
    with pytest.raises(ServeError) as err:
        point_from_doc({
            "library": "x", "collective": "y", "nodes": 2, "ppn": 2,
            "msg_bytes": 64, "params": {"no_such_field": 1},
        })
    assert err.value.code == "bad-request"


def test_unknown_engine_rejected_at_the_front_door():
    """Engine names are validated once, at the daemon entry, with the
    same message the SweepRunner constructor uses — a bad name must not
    surface as an ``internal`` error from deep inside a worker."""
    doc = {
        "library": "PiP-MColl", "collective": "allreduce",
        "nodes": 2, "ppn": 2, "msg_bytes": 64, "engine": "fast",
    }
    with pytest.raises(ServeError) as err:
        point_from_doc(doc)
    assert err.value.code == "bad-request"
    assert "unknown engine 'fast'" in err.value.message
    assert "known:" in err.value.message


def test_result_doc_round_trip_is_bit_identical():
    # JSON floats serialize via repr, so float64 round-trips exactly —
    # the property the daemon's bit-identity contract rests on
    result = MicrobenchResult(
        library="PiP-MColl", collective="allgather", nodes=2, ppn=4,
        msg_bytes=512, time=1.2345678901234567e-05,
        samples=(1.2345678901234567e-05, 1.2345678901234568e-05),
        internode_messages=42,
    )
    doc = json.loads(json.dumps(result_to_doc(result)))
    assert result_from_doc(doc) == result


def test_framing_round_trip_and_junk():
    doc = {"op": "sweep", "points": [], "id": 7}
    line = encode_message(doc)
    assert line.endswith(b"\n")
    assert decode_message(line) == doc
    with pytest.raises(ServeError):
        decode_message(b"not json\n")
    with pytest.raises(ServeError):
        decode_message(b"[1, 2]\n")  # an array is not a message


def test_oversized_message_refused_on_encode():
    with pytest.raises(ServeError) as err:
        encode_message({"blob": "x" * MAX_LINE})
    assert err.value.code == "bad-request"


def test_serve_error_doc_round_trip():
    err = ServeError("overloaded", "32 sweeps in flight")
    back = ServeError.from_doc(json.loads(json.dumps(err.to_doc())))
    assert (back.code, back.message) == (err.code, err.message)

"""Tests for the PiP node environment: address board, shared counters."""

import pytest

from repro.hw import tiny_test_machine
from repro.shmem import PipNode
from repro.sim import Engine


@pytest.fixture()
def node():
    return PipNode(Engine(), tiny_test_machine(), node=0)


class TestAddressBoard:
    def test_post_then_lookup(self, node):
        eng = node.engine
        got = []

        def poster():
            yield from node.board.post("key", "value")

        def reader():
            v = yield from node.board.lookup("key")
            got.append((eng.now, v))

        eng.spawn(reader())
        eng.spawn(poster())
        eng.run()
        assert got[0][1] == "value"
        # lookup costs at least the post + flag-poll time
        p = node.params
        assert got[0][0] >= p.pip_post_time + p.pip_flag_time

    def test_lookup_blocks_until_posted(self, node):
        eng = node.engine
        times = {}

        def poster():
            from repro.sim import Delay

            yield Delay(5e-6)
            yield from node.board.post("k", 42)

        def reader():
            v = yield from node.board.lookup("k")
            times["read"] = eng.now
            assert v == 42

        eng.spawn(reader())
        eng.spawn(poster())
        eng.run()
        assert times["read"] >= 5e-6

    def test_multiple_readers_one_post(self, node):
        eng = node.engine
        got = []

        def poster():
            yield from node.board.post("k", "x")

        def reader(i):
            v = yield from node.board.lookup("k")
            got.append((i, v))

        for i in range(4):
            eng.spawn(reader(i))
        eng.spawn(poster())
        eng.run()
        assert sorted(got) == [(i, "x") for i in range(4)]

    def test_post_charges_time(self, node):
        eng = node.engine

        def poster():
            yield from node.board.post("k", 1)

        eng.spawn(poster())
        eng.run()
        assert eng.now == pytest.approx(node.params.pip_post_time)

    def test_clear_drops_slots(self, node):
        eng = node.engine

        def poster():
            yield from node.board.post("k", 1)

        eng.spawn(poster())
        eng.run()
        node.clear()
        assert node.board._slots == {}


class TestSharedCounter:
    def test_add_and_wait(self, node):
        eng = node.engine
        counter = node.counter("c")
        order = []

        def bumper(i):
            yield from counter.add(1)
            order.append(f"add{i}")

        def waiter():
            v = yield from counter.wait_at_least(3)
            order.append(("woke", v))

        eng.spawn(waiter())
        for i in range(3):
            eng.spawn(bumper(i))
        eng.run()
        assert order[-1] == ("woke", 3)
        assert counter.value == 3

    def test_wait_on_already_reached_threshold(self, node):
        eng = node.engine
        counter = node.counter("c")

        def body():
            yield from counter.add(5)
            v = yield from counter.wait_at_least(2)
            return v

        proc = eng.spawn(body())
        eng.run()
        assert proc.result == 5

    def test_counters_are_namespaced(self, node):
        assert node.counter("a") is not node.counter("b")
        assert node.counter("a") is node.counter("a")

    def test_flag_costs_charged(self, node):
        eng = node.engine
        counter = node.counter("c")

        def body():
            yield from counter.add(1)
            yield from counter.wait_at_least(1)

        eng.spawn(body())
        eng.run()
        # one flag write + one satisfied-wait flag read
        assert eng.now == pytest.approx(2 * node.params.pip_flag_time)

    def test_multiple_thresholds_wake_in_order(self, node):
        eng = node.engine
        counter = node.counter("c")
        woke = []

        def waiter(threshold):
            yield from counter.wait_at_least(threshold)
            woke.append(threshold)

        def bumper():
            for _ in range(4):
                yield from counter.add(1)

        eng.spawn(waiter(4))
        eng.spawn(waiter(2))
        eng.spawn(waiter(1))
        eng.spawn(bumper())
        eng.run()
        assert woke == [1, 2, 4]

    def test_fresh_namespace_monotonic(self, node):
        a = node.fresh_namespace()
        b = node.fresh_namespace()
        assert b > a

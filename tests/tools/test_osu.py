"""Tests for the OSU-style CLI tool."""

import pytest

from repro.tools.osu import main, sweep_sizes


class TestSweepSizes:
    def test_powers_of_two_inclusive(self):
        assert sweep_sizes(16, 128) == [16, 32, 64, 128]

    def test_non_power_max_appended(self):
        assert sweep_sizes(16, 100) == [16, 32, 64, 100]

    def test_single_size(self):
        assert sweep_sizes(64, 64) == [64]

    def test_invalid(self):
        with pytest.raises(ValueError):
            sweep_sizes(0, 16)
        with pytest.raises(ValueError):
            sweep_sizes(64, 16)


class TestCli:
    def test_prints_latency_table(self, capsys):
        rc = main([
            "--collective", "allreduce", "--libs", "PiP-MColl,IntelMPI",
            "--nodes", "2", "--ppn", "2", "--min-size", "16",
            "--max-size", "64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PiP-MColl" in out and "IntelMPI" in out
        assert "16B" in out and "64B" in out
        assert "us" in out

    def test_all_collectives_runnable(self, capsys):
        for coll in ("scatter", "allgather", "alltoall"):
            rc = main([
                "--collective", coll, "--libs", "PiP-MColl",
                "--nodes", "2", "--ppn", "2", "--min-size", "32",
                "--max-size", "32",
            ])
            assert rc == 0

    def test_unknown_library_rejected(self):
        with pytest.raises(SystemExit):
            main(["--libs", "LAM/MPI", "--nodes", "2", "--ppn", "2"])

    def test_unknown_collective_rejected(self):
        with pytest.raises(SystemExit):
            main(["--collective", "alltoallw"])

"""Tests for the comparison-matrix CLI."""

import pytest

from repro.tools.compare import build_matrix, format_matrix, main


class TestBuildMatrix:
    def test_covers_all_collectives_and_libs(self):
        libs = ["PiP-MColl", "IntelMPI"]
        matrix = build_matrix(libs, 2, 2, 64)
        from repro.bench.microbench import COLLECTIVES

        assert set(matrix) == set(COLLECTIVES)
        for row in matrix.values():
            assert set(row) == set(libs)
            assert all(t > 0 for t in row.values())


class TestFormat:
    def test_marks_fastest(self):
        matrix = {"scatter": {"A": 2e-6, "B": 1e-6}}
        text = format_matrix(matrix, ["A", "B"])
        assert "1.000us*" in text
        assert "2.000us*" not in text
        assert "fastest in row" in text


class TestCli:
    def test_prints_matrix(self, capsys):
        rc = main([
            "--libs", "PiP-MColl,PiP-MPICH", "--nodes", "2", "--ppn", "2",
            "--size", "128",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for coll in ("scatter", "allgather", "allreduce", "alltoall",
                     "bcast", "gather", "reduce"):
            assert coll in out

    def test_unknown_library_rejected(self):
        with pytest.raises(SystemExit):
            main(["--libs", "HPE-MPI"])

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            main(["--libs", "PiP-MColl", "--size", "a lot"])

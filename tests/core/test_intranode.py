"""Correctness of the PiP-MColl auxiliary intranode collectives (§III-C)."""

import numpy as np
import pytest

from repro.core import (
    intra_barrier,
    intra_bcast,
    intra_gather,
    intra_reduce_binomial,
    intra_reduce_chunked,
)
from repro.mpi import DOUBLE, MAX, SUM, Buffer
from repro.shmem import PipShmem

from tests.helpers import make_world, rank_inputs

PPNS = [1, 2, 3, 4, 7, 8]


def node_world(ppn):
    return make_world(1, ppn, mechanism=PipShmem())


class TestIntraBarrier:
    @pytest.mark.parametrize("ppn", PPNS)
    def test_no_early_exit(self, ppn):
        world = node_world(ppn)
        enter, exit_ = {}, {}

        def body(ctx):
            yield from ctx.compute((ctx.rank + 1) * 1e-5)
            enter[ctx.rank] = world.engine.now
            yield from intra_barrier(ctx, "bar")
            exit_[ctx.rank] = world.engine.now

        world.run(body)
        assert min(exit_.values()) >= max(enter.values())


class TestIntraBcast:
    @pytest.mark.parametrize("ppn", PPNS)
    @pytest.mark.parametrize("large", [False, True])
    @pytest.mark.parametrize("root_local", [0, "last"])
    def test_everyone_gets_root_data(self, ppn, large, root_local):
        world = node_world(ppn)
        rl = ppn - 1 if root_local == "last" else 0
        payload = np.arange(9, dtype=np.float64)
        bufs = [
            Buffer.real(payload.copy()) if r == rl else Buffer.alloc(DOUBLE, 9)
            for r in range(ppn)
        ]

        def body(ctx):
            yield from intra_bcast(ctx, bufs[ctx.rank], rl, large=large)

        world.run(body)
        for b in bufs:
            assert np.array_equal(b.array(), payload)

    def test_small_bcast_root_does_not_wait_for_readers(self):
        """Small path: staging copy frees the root immediately."""
        world = node_world(4)
        buf_root = Buffer.alloc(DOUBLE, 4)
        bufs = [buf_root] + [Buffer.alloc(DOUBLE, 4) for _ in range(3)]
        root_done = [0.0]
        slow = 1e-2

        def body(ctx):
            if ctx.rank != 0:
                yield from ctx.compute(slow)  # readers are late
            yield from intra_bcast(ctx, bufs[ctx.rank], 0, large=False)
            if ctx.rank == 0:
                root_done[0] = world.engine.now

        world.run(body)
        assert root_done[0] < slow

    def test_large_bcast_root_waits_for_readers(self):
        world = node_world(4)
        bufs = [Buffer.alloc(DOUBLE, 4) for _ in range(4)]
        root_done = [0.0]
        slow = 1e-2

        def body(ctx):
            if ctx.rank != 0:
                yield from ctx.compute(slow)
            yield from intra_bcast(ctx, bufs[ctx.rank], 0, large=True)
            if ctx.rank == 0:
                root_done[0] = world.engine.now

        world.run(body)
        assert root_done[0] >= slow


class TestIntraGather:
    @pytest.mark.parametrize("ppn", PPNS)
    @pytest.mark.parametrize("root_local", [0, "last"])
    def test_blocks_land_in_local_rank_order(self, ppn, root_local):
        world = node_world(ppn)
        rl = ppn - 1 if root_local == "last" else 0
        count = 3
        inputs = rank_inputs(world, count)
        recvbuf = Buffer.alloc(DOUBLE, ppn * count)

        def body(ctx):
            rb = recvbuf if ctx.local_rank == rl else None
            yield from intra_gather(ctx, inputs[ctx.rank], rb, rl)

        world.run(body)
        expected = np.concatenate([b.array() for b in inputs])
        assert np.array_equal(recvbuf.array(), expected)


class TestIntraReduce:
    @pytest.mark.parametrize("ppn", PPNS)
    @pytest.mark.parametrize(
        "fn", [intra_reduce_binomial, intra_reduce_chunked],
        ids=["binomial", "chunked"],
    )
    @pytest.mark.parametrize("op,npop", [(SUM, np.sum), (MAX, np.max)])
    def test_root_gets_reduction(self, ppn, fn, op, npop):
        world = node_world(ppn)
        count = 5
        inputs = rank_inputs(world, count)
        recvbuf = Buffer.alloc(DOUBLE, count)

        def body(ctx):
            rb = recvbuf if ctx.local_rank == 0 else None
            yield from fn(ctx, inputs[ctx.rank], rb, op)

        world.run(body)
        expected = npop([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    @pytest.mark.parametrize(
        "fn", [intra_reduce_binomial, intra_reduce_chunked],
        ids=["binomial", "chunked"],
    )
    def test_nonzero_root(self, fn):
        world = node_world(5)
        inputs = rank_inputs(world, 4)
        recvbuf = Buffer.alloc(DOUBLE, 4)

        def body(ctx):
            rb = recvbuf if ctx.local_rank == 3 else None
            yield from fn(ctx, inputs[ctx.rank], rb, SUM, 3)

        world.run(body)
        expected = np.sum([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    def test_chunked_fewer_elements_than_processes(self):
        world = node_world(8)
        inputs = rank_inputs(world, 3)  # 3 elements, 8 chunk slots
        recvbuf = Buffer.alloc(DOUBLE, 3)

        def body(ctx):
            rb = recvbuf if ctx.local_rank == 0 else None
            yield from intra_reduce_chunked(ctx, inputs[ctx.rank], rb, SUM)

        world.run(body)
        expected = np.sum([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    def test_chunked_parallelism_beats_binomial_for_large(self):
        """Fig. 5's point: chunk-parallel reduce uses all P cores."""
        count = 1 << 18

        def run(fn):
            world = node_world(8)
            inputs = rank_inputs(world, count)
            recvbuf = Buffer.alloc(DOUBLE, count)

            def body(ctx):
                rb = recvbuf if ctx.local_rank == 0 else None
                yield from fn(ctx, inputs[ctx.rank], rb, SUM)

            return world.run(body).elapsed

        assert run(intra_reduce_chunked) < run(intra_reduce_binomial)
